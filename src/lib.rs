//! # DOoC — Distributed Out-of-Core dataflow middleware
//!
//! Umbrella crate for the reproduction of *"An Out-Of-Core Dataflow
//! Middleware to Reduce the Cost of Large Scale Iterative Solvers"*
//! (Zhou et al., ICPP 2012): re-exports every subsystem under one roof.
//!
//! * [`filterstream`] — the DataCutter-style filter-stream dataflow runtime;
//! * [`storage`] — the distributed immutable-array storage layer with
//!   out-of-core capabilities;
//! * [`scheduler`] — the hierarchical data-aware task scheduler;
//! * [`core`] — the DOoC runtime gluing the three together;
//! * [`sparse`] — CSR matrices, the binary CRS file format, the synthetic
//!   matrix generator, dense kernels;
//! * [`linalg`] — the iterated-SpMV application, Lanczos, CG, tridiagonal
//!   eigensolver;
//! * [`simulator`] — the SSD-testbed and Hopper models behind the paper's
//!   tables and figures;
//! * [`obs`] — structured tracing (Chrome `trace_event` export) and a
//!   metrics registry spanning all runtime layers.
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for paper-vs-measured results.

#![forbid(unsafe_code)]

pub use dooc_core as core;
pub use dooc_filterstream as filterstream;
pub use dooc_linalg as linalg;
pub use dooc_obs as obs;
pub use dooc_scheduler as scheduler;
pub use dooc_simulator as simulator;
pub use dooc_sparse as sparse;
pub use dooc_storage as storage;

/// The crate version.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
