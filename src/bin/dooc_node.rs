//! `dooc-node` — one process of a real multi-process DOoC cluster.
//!
//! Each invocation is one node: it binds its listen address from the cluster
//! spec, handshakes the full TCP mesh, stages its share of the iterated-SpMV
//! workload into its scratch directory, and runs the distributed out-of-core
//! solve end to end. Start N copies (one per spec line) and they find each
//! other:
//!
//! ```sh
//! cat > cluster.spec <<'EOF'
//! node 0 127.0.0.1:7700
//! node 1 127.0.0.1:7701
//! EOF
//! dooc-node --spec cluster.spec --node 1 --scratch-base /tmp/dooc &
//! dooc-node --spec cluster.spec --node 0 --scratch-base /tmp/dooc --verify
//! ```
//!
//! `--verify` (meaningful on node 0 with a shared scratch base, e.g. a
//! localhost cluster) collects the final vector after the run and checks it
//! against the in-core reference product, exiting non-zero on mismatch.

use dooc::core::{DoocConfig, DoocRuntime};
use dooc::filterstream::{ClusterSpec, TcpTransport};
use dooc::linalg::spmv_app::{
    striped_owner, ReductionPlan, SpmvAppBuilder, SpmvExecutor, SyncPolicy,
};
use dooc::sparse::blockgrid::BlockGrid;
use dooc::sparse::genmat::GapGenerator;
use std::path::PathBuf;
use std::sync::Arc;

struct Args {
    spec: PathBuf,
    node: usize,
    scratch_base: PathBuf,
    k: u64,
    n: u64,
    iters: u64,
    seed: u64,
    memory_budget: u64,
    threads: usize,
    verify: bool,
    trace: Option<PathBuf>,
    metrics: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: dooc-node --spec <file> --node <id> --scratch-base <dir>\n\
         \x20      [--k <grid>] [--n <order>] [--iters <n>] [--seed <s>]\n\
         \x20      [--memory-budget <bytes>] [--threads <n>] [--verify]\n\
         \x20      [--trace <path>] [--metrics <path>]\n\
         \n\
         spec file: one 'node <id> <host:port>' line per node, ids dense from 0"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut spec = None;
    let mut node = None;
    let mut scratch_base = None;
    let mut k = 4u64;
    let mut n = 512u64;
    let mut iters = 3u64;
    let mut seed = 2012u64;
    let mut memory_budget = 4u64 << 20;
    let mut threads = 2usize;
    let mut verify = false;
    let mut trace = None;
    let mut metrics = None;

    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().unwrap_or_else(|| usage_missing(name));
        match flag.as_str() {
            "--spec" => spec = Some(PathBuf::from(val("--spec"))),
            "--node" => node = Some(parse_num(&val("--node"), "--node") as usize),
            "--scratch-base" => scratch_base = Some(PathBuf::from(val("--scratch-base"))),
            "--k" => k = parse_num(&val("--k"), "--k"),
            "--n" => n = parse_num(&val("--n"), "--n"),
            "--iters" => iters = parse_num(&val("--iters"), "--iters"),
            "--seed" => seed = parse_num(&val("--seed"), "--seed"),
            "--memory-budget" => {
                memory_budget = parse_num(&val("--memory-budget"), "--memory-budget")
            }
            "--threads" => threads = parse_num(&val("--threads"), "--threads") as usize,
            "--verify" => verify = true,
            "--trace" => trace = Some(PathBuf::from(val("--trace"))),
            "--metrics" => metrics = Some(PathBuf::from(val("--metrics"))),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("dooc-node: unknown flag '{other}'");
                usage();
            }
        }
    }
    let (Some(spec), Some(node), Some(scratch_base)) = (spec, node, scratch_base) else {
        eprintln!("dooc-node: --spec, --node and --scratch-base are required");
        usage();
    };
    Args {
        spec,
        node,
        scratch_base,
        k,
        n,
        iters,
        seed,
        memory_budget,
        threads,
        verify,
        trace,
        metrics,
    }
}

fn usage_missing(name: &str) -> ! {
    eprintln!("dooc-node: {name} needs a value");
    usage();
}

fn parse_num(s: &str, name: &str) -> u64 {
    s.parse().unwrap_or_else(|_| {
        eprintln!("dooc-node: bad value '{s}' for {name}");
        usage();
    })
}

fn fail(msg: String) -> ! {
    eprintln!("dooc-node: {msg}");
    std::process::exit(1);
}

fn main() {
    let args = parse_args();
    let spec = match ClusterSpec::load(&args.spec) {
        Ok(s) => s,
        Err(e) => fail(format!("cluster spec: {e}")),
    };
    let nnodes = spec.len();
    if args.node >= nnodes {
        fail(format!(
            "node id {} out of range: spec lists {nnodes} nodes",
            args.node
        ));
    }
    if args.trace.is_some() || args.metrics.is_some() {
        dooc::obs::enable();
    }

    // Identical on every process: node i's scratch directory under the
    // shared base. Only our own entry is touched locally.
    let dirs: Vec<PathBuf> = (0..nnodes)
        .map(|i| args.scratch_base.join(format!("node{i}")))
        .collect();
    let me = args.node as u64;
    let my_dir = dirs[args.node].clone();

    eprintln!(
        "[node {}] joining {}-node cluster via {} ...",
        args.node,
        nnodes,
        spec.addr(args.node)
    );
    let transport = match TcpTransport::connect(&spec, args.node, spec.fingerprint()) {
        Ok(t) => Arc::new(t),
        Err(e) => fail(format!("transport: {e}")),
    };
    eprintln!("[node {}] mesh connected", args.node);

    // Stage this node's share of the workload. Metadata is computed for the
    // whole grid (deterministically, same on every process); only files
    // owned here are written.
    let grid = BlockGrid::new(args.k, args.n);
    let gen =
        GapGenerator::for_target_nnz(args.n / args.k, args.n / args.k, 40 * (args.n / args.k));
    let owner = striped_owner(nnodes as u64);
    let blocks = match SpmvAppBuilder::stage_local(&my_dir, me, grid, &gen, args.seed, owner) {
        Ok(b) => b,
        Err(e) => fail(format!("stage matrix blocks: {e}")),
    };
    let app = SpmvAppBuilder::new(grid, args.iters, blocks)
        .reduction(ReductionPlan::LocalAggregation)
        .sync(SyncPolicy::IterationBarrier);
    let x0: Vec<f64> = (0..args.n).map(|i| 1.0 + (i as f64 * 0.01).cos()).collect();
    if let Err(e) = app.stage_initial_vector_local(&my_dir, me, &x0) {
        fail(format!("stage initial vector: {e}"));
    }

    let (graph, external, geometry) = app.build();
    let mut config = DoocConfig::new(dirs.clone())
        .memory_budget(args.memory_budget)
        .threads_per_node(args.threads)
        .seed(args.seed);
    for (name, len, bs) in geometry {
        config = config.with_geometry(name, len, bs);
    }

    eprintln!(
        "[node {}] running {} tasks over {} iterations ...",
        args.node,
        graph.len(),
        args.iters
    );
    let report = match DoocRuntime::new(config).run_distributed(
        graph,
        external,
        Arc::new(SpmvExecutor),
        transport,
    ) {
        Ok(r) => r,
        Err(e) => fail(format!("distributed run: {e}")),
    };

    let st = &report.node_stats[args.node];
    eprintln!(
        "[node {}] done in {:?}: {:.1} MB disk reads, {:.1} MB from peers, {} evictions",
        args.node,
        report.elapsed,
        st.disk_read_bytes as f64 / 1e6,
        st.peer_recv_bytes as f64 / 1e6,
        st.evictions
    );

    if let Some(path) = &args.trace {
        let snap = dooc::obs::ring::take_events();
        if let Err(e) = std::fs::write(path, dooc::obs::trace::chrome_trace(&snap)) {
            fail(format!("write trace {}: {e}", path.display()));
        }
    }
    if let Some(path) = &args.metrics {
        if let Err(e) = std::fs::write(path, dooc::obs::metrics::dump_metrics()) {
            fail(format!("write metrics {}: {e}", path.display()));
        }
    }

    if args.verify {
        let got = match app.collect_final_vector(&dirs) {
            Ok(v) => v,
            Err(e) => fail(format!(
                "collect final vector (needs a shared scratch base): {e}"
            )),
        };
        let want = app.reference_result(&gen, args.seed, &x0);
        let max_rel = got
            .iter()
            .zip(&want)
            .map(|(g, w)| (g - w).abs() / w.abs().max(1.0))
            .fold(0.0f64, f64::max);
        if max_rel >= 1e-9 {
            fail(format!(
                "verification FAILED: max relative error {max_rel:.2e} vs in-core reference"
            ));
        }
        println!("verification OK: max relative error {max_rel:.2e}");
    }
}
