//! The motivating computation (§II): find the lowest eigenvalues of a large
//! sparse symmetric matrix with the Lanczos procedure — the kernel MFDn
//! spends its time in. Also demonstrates the CG solver on the same operator.
//!
//! ```sh
//! cargo run --release --example lanczos_eigen
//! ```

use dooc::linalg::cg::conjugate_gradient;
use dooc::linalg::tridiag::tridiag_eigen;
use dooc::linalg::{lanczos, LanczosOptions};
use dooc::sparse::genmat::GapGenerator;

fn main() {
    // A symmetric positive-definite "Hamiltonian" from the paper's gap
    // generator (symmetrized, diagonally dominant).
    let n = 2000u64;
    let m = GapGenerator::with_d(40).generate_spd(n, 7);
    println!(
        "operator: {}x{} symmetric, {} stored entries",
        m.nrows(),
        m.ncols(),
        m.nnz()
    );

    // Lanczos with full reorthogonalization (MFDn style).
    let opts = LanczosOptions {
        steps: 120,
        seed: 3,
        full_reorthogonalization: true,
    };
    let r = lanczos(&m, &opts);
    println!(
        "lanczos: {} steps, Krylov dimension {}",
        r.steps,
        r.basis.len()
    );
    println!("lowest 5 Ritz values: {:?}", r.lowest(5));

    // Residual check of the lowest Ritz pair: ||A v - λ v||.
    let lambda = r.ritz_values[0];
    let v = r.ritz_vector(0);
    let mut av = vec![0.0; n as usize];
    use dooc::linalg::LinearOperator;
    m.apply(&v, &mut av);
    let resid: f64 = av
        .iter()
        .zip(&v)
        .map(|(a, vi)| (a - lambda * vi).powi(2))
        .sum::<f64>()
        .sqrt();
    println!("lowest pair residual ‖Av - λv‖ = {resid:.2e}");

    // Convergence study: more steps, tighter extreme eigenvalues.
    println!("\nRitz-value convergence (lowest eigenvalue estimate):");
    let mut prev = f64::INFINITY;
    for steps in [10, 20, 40, 80, 120] {
        let r = lanczos(
            &m,
            &LanczosOptions {
                steps,
                seed: 3,
                full_reorthogonalization: true,
            },
        );
        let low = r.ritz_values[0];
        println!("  {steps:4} steps -> {low:.10}");
        assert!(low <= prev + 1e-8, "estimates tighten monotonically");
        prev = low;
    }

    // The tridiagonal projection is tiny: show it directly.
    let t = tridiag_eigen(&r.alpha, &r.beta, false).expect("T diagonalizable");
    println!(
        "\ntridiagonal projection: {} alphas; spectrum [{:.4}, {:.4}]",
        r.alpha.len(),
        t.values.first().expect("nonempty"),
        t.values.last().expect("nonempty")
    );

    // CG on the same SPD operator.
    let xstar: Vec<f64> = (0..n).map(|i| (i as f64 * 0.01).sin()).collect();
    let b = m.spmv(&xstar).expect("dims");
    let sol = conjugate_gradient(&m, &b, 1e-10, 1000);
    let err: f64 = sol
        .x
        .iter()
        .zip(&xstar)
        .map(|(a, c)| (a - c).powi(2))
        .sum::<f64>()
        .sqrt();
    println!(
        "\nCG: converged={} in {} iterations, ‖x - x*‖ = {err:.2e}",
        sol.converged, sol.iterations
    );
    assert!(sol.converged);
}
