//! Replays one configuration of the paper's SSD-testbed experiment (§V) in
//! the calibrated simulator and prints its Table III/IV-style row for both
//! scheduling policies.
//!
//! ```sh
//! cargo run --release --example testbed_replay -- 9
//! ```

use dooc::simulator::testbed::{run_testbed, PolicyKind, TestbedParams};

fn main() {
    let nnodes: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(9);
    println!("replaying the paper's 4-iteration SpMV workload on {nnodes} simulated nodes");
    let params = TestbedParams::paper(nnodes);
    println!(
        "workload: {} sub-matrices of {:.1} GB ({} M rows, {:.1e} non-zeros, {:.2} TB total)\n",
        params.grid_k() * params.grid_k(),
        params.submatrix_bytes as f64 / 1e9,
        params.dimension() / 1_000_000,
        params.total_nnz() as f64,
        params.matrix_bytes() as f64 / 1e12,
    );

    for (policy, label, paper_hint) in [
        (
            PolicyKind::Simple,
            "simple policy (Table III)",
            "published 9-node row for reference: 384 s, 2.40 GF/s, 12.8 GB/s, 30% non-overlapped",
        ),
        (
            PolicyKind::Interleaved,
            "interleaved + local aggregation (Table IV)",
            "published 9-node row for reference: 336 s, 2.74 GF/s, 12.7 GB/s, 11%, 1.68 CPU-h/iter",
        ),
    ] {
        let r = run_testbed(&params, policy);
        println!("{label}:");
        println!(
            "  time {:.0} s | {:.2} GF/s | read {:.1} GB/s | non-overlapped {:.0}% | {:.2} CPU-h/iter",
            r.time_s,
            r.gflops,
            r.read_bw / 1e9,
            100.0 * r.non_overlapped,
            r.cpu_hours_per_iter
        );
        println!("  ({paper_hint})\n");
    }
}
