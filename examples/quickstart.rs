//! Quickstart: run a tiny task DAG out-of-core on a two-node DOoC cluster.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! The application declares tasks by their input/output arrays; DOoC derives
//! the DAG, places tasks on the nodes holding their data, schedules them
//! data-aware, and moves bytes through the distributed storage layer (with
//! spill-to-disk when a node's memory budget is exceeded).

use dooc::core::{
    DoocConfig, DoocRuntime, ExecOutcome, TaskExecutor, TaskGraph, TaskSpec, WorkerContext,
};
use std::collections::HashMap;
use std::sync::Arc;

/// The application's compute logic: one implementation per task kind.
struct VectorOps;

impl TaskExecutor for VectorOps {
    fn execute(&self, task: &TaskSpec, ctx: &mut WorkerContext) -> ExecOutcome {
        match task.kind.as_str() {
            // y = 2 * x
            "double" => {
                let x = ctx.read_f64s(&task.inputs[0].array)?;
                let y: Vec<f64> = x.iter().map(|v| 2.0 * v).collect();
                ctx.write_f64s(&task.outputs[0].array, &y)
            }
            // z = sum of all inputs, persisted to disk so we can check it
            "reduce" => {
                let mut acc: Option<Vec<f64>> = None;
                for input in &task.inputs {
                    let x = ctx.read_f64s(&input.array)?;
                    match &mut acc {
                        None => acc = Some(x),
                        Some(a) => a.iter_mut().zip(&x).for_each(|(a, b)| *a += b),
                    }
                }
                let z = acc.ok_or("no inputs")?;
                ctx.write_f64s(&task.outputs[0].array, &z)?;
                let out = task.outputs[0].array.clone();
                ctx.storage().persist(&out).map_err(|e| e.to_string())
            }
            other => Err(format!("unknown task kind '{other}'")),
        }
    }
}

fn main() {
    // Two simulated nodes, each with its own scratch directory.
    let config = DoocConfig::in_temp_dirs("quickstart", 2)
        .expect("temp dirs")
        .memory_budget(1 << 20)
        .threads_per_node(2);

    // Stage input vectors as raw f64 files, one per node.
    let stage = |node: usize, name: &str, xs: &[f64]| {
        let raw: Vec<u8> = xs.iter().flat_map(|v| v.to_le_bytes()).collect();
        std::fs::write(config.scratch_dirs[node].join(name), raw).expect("stage");
    };
    stage(0, "u", &[1.0, 2.0, 3.0]);
    stage(1, "v", &[10.0, 20.0, 30.0]);

    // Declare the computation: double each vector where it lives, then
    // reduce the results (DOoC figures out the dependencies itself).
    let graph = TaskGraph::new(vec![
        TaskSpec::new("du", "double")
            .input("u", 24)
            .output("du", 24),
        TaskSpec::new("dv", "double")
            .input("v", 24)
            .output("dv", 24),
        TaskSpec::new("total", "reduce")
            .input("du", 24)
            .input("dv", 24)
            .output("total", 24),
    ])
    .expect("acyclic, single-producer task graph");

    // Tell the global scheduler where the staged files are.
    let external = HashMap::from([("u".to_string(), 0u64), ("v".to_string(), 1u64)]);

    let report = DoocRuntime::new(config.clone())
        .run(graph, external, Arc::new(VectorOps))
        .expect("run to completion");

    println!(
        "executed {} tasks in {:?}",
        report.trace.len(),
        report.elapsed
    );
    for e in &report.trace {
        println!("  node{} ran {:10} ({})", e.node, e.name, e.kind);
    }
    println!(
        "bytes: {} read from disk, {} moved between nodes",
        report.total_disk_read_bytes(),
        report.total_peer_bytes()
    );

    // Read the persisted result back.
    let reducer = report
        .trace
        .iter()
        .find(|e| e.kind == "reduce")
        .expect("ran");
    let raw = std::fs::read(config.scratch_dirs[reducer.node as usize].join("total@0"))
        .expect("persisted result");
    let total: Vec<f64> = raw
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
        .collect();
    println!("result: {total:?} (expected [22, 44, 66])");
    assert_eq!(total, vec![22.0, 44.0, 66.0]);

    for d in &config.scratch_dirs {
        std::fs::remove_dir_all(d).ok();
    }
}
