//! The paper's experiment (§IV–V) at laptop scale: iterated SpMV over a K×K
//! grid of binary CRS sub-matrix files, executed out-of-core by the real
//! middleware on 4 simulated nodes, and verified against the in-core
//! reference product.
//!
//! ```sh
//! cargo run --release --example iterated_spmv
//! ```

use dooc::core::{DoocConfig, DoocRuntime};
use dooc::linalg::spmv_app::{
    tiled_owner, ReductionPlan, SpmvAppBuilder, SpmvExecutor, SyncPolicy,
};
use dooc::sparse::blockgrid::BlockGrid;
use dooc::sparse::genmat::GapGenerator;
use std::sync::Arc;

fn main() {
    let nnodes = 4usize;
    let k = 4u64; // 4x4 grid of sub-matrices, one 2x2 tile per node
    let n = 2000u64; // global matrix dimension
    let iterations = 4u64;
    let seed = 2012;

    let config = DoocConfig::in_temp_dirs("iterated-spmv", nnodes)
        .expect("temp dirs")
        .memory_budget(4 << 20) // smaller than the matrix: forces out-of-core
        .threads_per_node(2)
        .prefetch_window(2);

    // Generate the paper's synthetic workload: gaps between consecutive
    // non-zeros uniform in [1, 2d], d chosen for the target density.
    let grid = BlockGrid::new(k, n);
    let gen = GapGenerator::for_target_nnz(n / k, n / k, 40 * (n / k));
    println!(
        "staging {}x{} sub-matrix files (d = {}) across {} nodes...",
        k,
        k,
        gen.d(),
        nnodes
    );
    let blocks = SpmvAppBuilder::stage(
        &config.scratch_dirs,
        grid,
        &gen,
        seed,
        tiled_owner(k, nnodes as u64),
    )
    .expect("stage sub-matrices");
    let total_nnz: u64 = blocks.iter().map(|b| b.nnz).sum();
    let total_bytes: u64 = blocks.iter().map(|b| b.bytes).sum();
    println!("matrix: {n} rows, {total_nnz} non-zeros, {total_bytes} bytes on disk");

    // Table IV's configuration: interleaving + per-node aggregation.
    let app = SpmvAppBuilder::new(grid, iterations, blocks)
        .reduction(ReductionPlan::LocalAggregation)
        .sync(SyncPolicy::None);
    let x0: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64 * 0.01).cos()).collect();
    app.stage_initial_vector(&config.scratch_dirs, &x0)
        .expect("stage x0");

    let (graph, external, geometry) = app.build();
    println!(
        "task DAG: {} tasks ({} multiplies, {} reductions)",
        graph.len(),
        graph
            .ids()
            .filter(|&i| graph.task(i).kind == "multiply")
            .count(),
        graph
            .ids()
            .filter(|&i| graph.task(i).kind.starts_with("sum"))
            .count(),
    );

    let mut config2 = config.clone();
    for (name, len, bs) in geometry {
        config2 = config2.with_geometry(name, len, bs);
    }
    let report = DoocRuntime::new(config2)
        .run(graph, external, Arc::new(SpmvExecutor))
        .expect("out-of-core run");

    println!("\ncompleted in {:?}", report.elapsed);
    for (node, st) in report.node_stats.iter().enumerate() {
        println!(
            "  node{node}: {:6.1} MB read from disk, {:5.1} MB from peers, {} evictions",
            st.disk_read_bytes as f64 / 1e6,
            st.peer_recv_bytes as f64 / 1e6,
            st.evictions
        );
    }
    println!(
        "aggregate read bandwidth: {:.1} MB/s",
        report.read_bandwidth() / 1e6
    );
    println!("\nexecution timeline:");
    print!("{}", dooc::core::render_trace_gantt(&report, 72));

    // Verify against the in-core reference.
    let got = app
        .collect_final_vector(&config.scratch_dirs)
        .expect("result");
    let want = app.reference_result(&gen, seed, &x0);
    let max_rel = got
        .iter()
        .zip(&want)
        .map(|(g, w)| (g - w).abs() / w.abs().max(1.0))
        .fold(0.0f64, f64::max);
    println!("max relative error vs in-core reference: {max_rel:.2e}");
    assert!(max_rel < 1e-9, "out-of-core result must match");
    println!("out-of-core result matches the in-core product ✓");

    for d in &config.scratch_dirs {
        std::fs::remove_dir_all(d).ok();
    }
}
