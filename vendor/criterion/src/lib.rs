//! Minimal offline stand-in for the `criterion` crate.
//!
//! Provides the structural API DOoC's benches compile against —
//! `criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`/`bench_with_input`, `BenchmarkId`, `Throughput` — with a
//! simple wall-clock measurement loop (median of samples) instead of the real
//! crate's statistical machinery. Good enough for relative comparisons while
//! the registry is unreachable.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Declared throughput of one benchmark, used to derive rate output.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark's name plus parameter (`group/name/param` in output).
pub struct BenchmarkId {
    name: String,
    param: String,
}

impl BenchmarkId {
    /// Id from a function name and a parameter value.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        Self {
            name: name.into(),
            param: param.to_string(),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Median nanoseconds per iteration, filled by [`Bencher::iter`].
    ns_per_iter: f64,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Bencher {
    /// Measures `f`: warm-up, then `sample_size` timed samples; records the
    /// median per-iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up while estimating the per-call cost.
        let warm_start = Instant::now();
        let mut calls: u64 = 0;
        while warm_start.elapsed() < self.warm_up || calls == 0 {
            std::hint::black_box(f());
            calls += 1;
            if calls >= 1_000_000 {
                break;
            }
        }
        let per_call = warm_start.elapsed().as_secs_f64() / calls as f64;

        // Size each sample so all samples fit in the measurement budget.
        let budget = self.measurement.as_secs_f64() / self.sample_size as f64;
        let iters = ((budget / per_call.max(1e-9)) as u64).clamp(1, 1_000_000);

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            samples.push(t.elapsed().as_secs_f64() / iters as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.ns_per_iter = samples[samples.len() / 2] * 1e9;
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Warm-up duration per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Declares throughput for subsequent benchmarks in this group.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark identified by a plain name.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, name.into());
        self.run_one(&label, |b| f(b));
        self
    }

    /// Runs a benchmark identified by a [`BenchmarkId`], passing `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}/{}", self.name, id.name, id.param);
        self.run_one(&label, |b| f(b, input));
        self
    }

    fn run_one(&mut self, label: &str, f: impl FnOnce(&mut Bencher)) {
        let mut bencher = Bencher {
            ns_per_iter: f64::NAN,
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        let ns = bencher.ns_per_iter;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if ns.is_finite() && ns > 0.0 => {
                format!("  {:>12.3} Melem/s", n as f64 / ns * 1e3)
            }
            Some(Throughput::Bytes(n)) if ns.is_finite() && ns > 0.0 => {
                format!(
                    "  {:>12.3} MiB/s",
                    n as f64 / ns * 1e9 / (1024.0 * 1024.0) / 1e6
                )
            }
            _ => String::new(),
        };
        println!("{label:<48} {ns:>14.1} ns/iter{rate}");
        self.criterion.completed += 1;
    }

    /// Ends the group (kept for API parity; output is streamed).
    pub fn finish(&mut self) {}
}

/// Benchmark harness entry point.
pub struct Criterion {
    completed: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { completed: 0 }
    }
}

impl Criterion {
    /// Opens a configuration group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            throughput: None,
        }
    }

    /// Runs a stand-alone benchmark (no group configuration).
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        self.benchmark_group(name.clone())
            .bench_function("", &mut f);
        self
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups (ignores harness CLI flags).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        g.measurement_time(Duration::from_millis(30));
        g.warm_up_time(Duration::from_millis(5));
        g.throughput(Throughput::Elements(100));
        let mut ran = false;
        g.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            ran = true;
            b.iter(|| (0..n).sum::<u64>());
        });
        g.finish();
        assert!(ran);
    }
}
