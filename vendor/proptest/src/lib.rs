//! Minimal offline stand-in for the `proptest` crate.
//!
//! Implements the subset DOoC's property tests use: the `proptest!` macro,
//! `prop_assert!`/`prop_assert_eq!`, range/tuple/`Just`/`any` strategies with
//! `prop_map`/`prop_flat_map`, `prop_oneof!`, `collection::vec`, and
//! `sample::subsequence`.
//!
//! Differences from the real crate, deliberate for an offline stub:
//!
//! * **No shrinking.** A failing case reports its case number and seed; rerun
//!   with the same binary to reproduce (generation is deterministic, seeded
//!   from the test name).
//! * **Default case count is 32** (real default: 256) — DOoC's default-config
//!   property tests spin up whole storage clusters per case.

#![forbid(unsafe_code)]

/// Runner, RNG, config and failure types.
pub mod test_runner {
    use crate::strategy::Strategy;
    use std::fmt;

    /// Deterministic generator (SplitMix64) driving all strategies.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeded generator.
        pub fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, span)` (`span > 0`).
        pub fn below(&mut self, span: u64) -> u64 {
            debug_assert!(span > 0);
            ((self.next_u64() as u128 * span as u128) >> 64) as u64
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// A property-body failure (produced by `prop_assert!`).
    #[derive(Debug)]
    pub struct TestCaseError {
        msg: String,
    }

    impl TestCaseError {
        /// Failure with a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            Self { msg: msg.into() }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "{}", self.msg)
        }
    }

    /// Per-block configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 32 }
        }
    }

    /// Stable seed derived from the test name (FNV-1a), so every run of a
    /// given test explores the same sequence of cases.
    fn name_seed(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Executes `config.cases` generated cases of the property `f`.
    /// Panics (failing the enclosing `#[test]`) on the first failure.
    pub fn run<S, F>(config: &ProptestConfig, name: &str, strat: S, f: F)
    where
        S: Strategy,
        F: Fn(S::Value) -> Result<(), TestCaseError>,
    {
        let mut rng = TestRng::seed_from_u64(name_seed(name));
        for case in 0..config.cases {
            let value = strat.generate(&mut rng);
            if let Err(e) = f(value) {
                panic!(
                    "property '{name}' failed at case {case}/{}: {e}",
                    config.cases
                );
            }
        }
    }
}

/// Strategy trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Derives a dependent strategy from each generated value.
        fn prop_flat_map<U, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            U: Strategy,
            F: Fn(Self::Value) -> U,
        {
            FlatMap { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        U: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U::Value;
        fn generate(&self, rng: &mut TestRng) -> U::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among same-typed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        gens: Vec<Box<dyn Fn(&mut TestRng) -> T>>,
    }

    impl<T> Union<T> {
        /// From pre-boxed generator closures (used by `prop_oneof!`).
        pub fn new(gens: Vec<Box<dyn Fn(&mut TestRng) -> T>>) -> Self {
            assert!(!gens.is_empty(), "prop_oneof! needs at least one arm");
            Self { gens }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.gens.len() as u64) as usize;
            (self.gens[i])(rng)
        }
    }

    /// Boxes a strategy into a generator closure for [`Union`].
    pub fn boxed_gen<S>(s: S) -> Box<dyn Fn(&mut TestRng) -> S::Value>
    where
        S: Strategy + 'static,
    {
        Box::new(move |rng| s.generate(rng))
    }

    macro_rules! int_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span + 1) as $t)
                }
            }
        )*};
    }

    int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (self.end - self.start) * rng.unit_f64() as f32
        }
    }

    macro_rules! tuple_strategies {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// Types with a canonical full-domain strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_ints {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Full-domain strategy for an [`Arbitrary`] type.
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T` (`any::<u64>()` etc.).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Acceptable length specifications for [`vec`].
    pub trait SizeSpec {
        /// Draws a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeSpec for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeSpec for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    /// Strategy for `Vec<T>` with a drawn length.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: SizeSpec> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vector of values from `element`, length drawn from `len`.
    pub fn vec<S: Strategy, L: SizeSpec>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

/// Sampling strategies over concrete collections.
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding `amount`-element subsequences (order-preserving).
    pub struct Subsequence<T: Clone> {
        items: Vec<T>,
        amount: usize,
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;
        fn generate(&self, rng: &mut TestRng) -> Vec<T> {
            // Floyd-style draw of `amount` distinct indices, then emit in
            // original order.
            let n = self.items.len();
            let mut picked = vec![false; n];
            let mut left = self.amount;
            let mut slots = n;
            // Reservoir over indices: walk once, keeping exactly `amount`.
            for (i, p) in picked.iter_mut().enumerate() {
                let _ = i;
                if left > 0 && rng.below(slots as u64) < left as u64 {
                    *p = true;
                    left -= 1;
                }
                slots -= 1;
            }
            self.items
                .iter()
                .zip(&picked)
                .filter_map(|(v, &p)| p.then(|| v.clone()))
                .collect()
        }
    }

    /// Order-preserving random subsequence of exactly `amount` elements.
    pub fn subsequence<T: Clone>(items: Vec<T>, amount: usize) -> Subsequence<T> {
        assert!(amount <= items.len(), "subsequence amount exceeds items");
        Subsequence { items, amount }
    }
}

/// The common imports (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Defines deterministic property tests over drawn inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal expansion of `proptest!` — one `#[test]` fn per property.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[allow(unreachable_code)]
        fn $name() {
            let config = $cfg;
            $crate::test_runner::run(
                &config,
                stringify!($name),
                ($($strat,)+),
                |($($pat,)+)| {
                    $body
                    Ok(())
                },
            );
        }
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
}

/// Asserts within a property body; failure fails just this case with context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality within a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{}` != `{}`\n  left: {:?}\n right: {:?}",
            stringify!($a),
            stringify!($b),
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)*);
    }};
}

/// Uniform choice among same-typed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed_gen($s)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn evens() -> impl Strategy<Value = u64> {
        (0u64..1000).prop_map(|v| v * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_in_bounds(v in 10u64..20, f in -1.0..1.0) {
            prop_assert!((10..20).contains(&v));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn mapped_strategy(v in evens()) {
            prop_assert_eq!(v % 2, 0);
        }

        #[test]
        fn vec_and_tuple(items in crate::collection::vec((0u64..64, 1u64..16), 1..20)) {
            prop_assert!(!items.is_empty() && items.len() < 20);
            for (a, b) in items {
                prop_assert!(a < 64 && (1..16).contains(&b), "a={} b={}", a, b);
            }
        }

        #[test]
        fn oneof_and_just(v in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assert!(v == 1 || v == 2);
        }

        #[test]
        fn subsequence_full_is_identity(
            perm in crate::sample::subsequence((0..8u64).collect::<Vec<_>>(), 8)
        ) {
            prop_assert_eq!(perm, (0..8u64).collect::<Vec<_>>());
        }

        #[test]
        fn flat_map_dependent(pair in (1u64..10).prop_flat_map(|n| (Just(n), 0..n))) {
            let (n, k) = pair;
            prop_assert!(k < n);
        }
    }

    #[test]
    fn partial_subsequence_is_ordered_subset() {
        let mut rng = crate::test_runner::TestRng::seed_from_u64(5);
        use crate::strategy::Strategy as _;
        for _ in 0..100 {
            let s = crate::sample::subsequence((0..10u64).collect::<Vec<_>>(), 4);
            let v = s.generate(&mut rng);
            assert_eq!(v.len(), 4);
            assert!(v.windows(2).all(|w| w[0] < w[1]), "ordered: {v:?}");
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics() {
        crate::test_runner::run(
            &ProptestConfig::with_cases(10),
            "always_fails",
            0u64..10,
            |_v| -> Result<(), TestCaseError> { Err(TestCaseError::fail("forced failure")) },
        );
    }
}
