//! Minimal offline stand-in for the `bytes` crate.
//!
//! Implements exactly the subset DOoC uses: a cheaply cloneable, sliceable
//! shared byte buffer ([`Bytes`]), a growable builder ([`BytesMut`]), and the
//! little-endian cursor traits ([`Buf`] / [`BufMut`]). Clones share the
//! underlying allocation (`as_ptr` equality holds across clones and slices),
//! matching the real crate's observable behaviour for this workspace.

#![forbid(unsafe_code)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Immutable, reference-counted view into a shared byte allocation.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::from(Vec::new())
    }

    /// Buffer backed by a static slice (copied once into shared storage).
    pub fn from_static(s: &'static [u8]) -> Self {
        Self::copy_from_slice(s)
    }

    /// Buffer holding a copy of `s`.
    pub fn copy_from_slice(s: &[u8]) -> Self {
        Self::from(s.to_vec())
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Sub-view sharing the same allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Self {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Splits off and returns the first `at` bytes, advancing `self`.
    pub fn split_to(&mut self, at: usize) -> Self {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Self {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = v.into();
        let end = data.len();
        Self {
            data,
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Self::from_static(s)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        **self == *other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        **self == **other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        **self == other[..]
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        (**self).hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.start += cnt;
    }
}

/// Growable byte buffer that freezes into a shared [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }

    /// Converts into an immutable shared buffer.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesMut(len={})", self.buf.len())
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }
}

/// Read-side cursor over a byte source (little-endian accessors).
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// Whether any bytes are left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }
    /// Current contiguous chunk.
    fn chunk(&self) -> &[u8];
    /// Consumes `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_le_bytes(raw)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        u64::from_le_bytes(raw)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    /// Fills `dst` from the source.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "copy_to_slice underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

/// Write-side cursor over a growable byte sink (little-endian accessors).
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, s: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_allocation() {
        let b = Bytes::from(vec![1u8, 2, 3, 4]);
        let c = b.clone();
        assert_eq!(b.as_ptr(), c.as_ptr());
        let s = b.slice(1..3);
        assert_eq!(&s[..], &[2, 3]);
        assert_eq!(s.as_ptr(), &b[1] as *const u8);
    }

    #[test]
    fn roundtrip_le() {
        let mut m = BytesMut::with_capacity(32);
        m.put_u64_le(0xdead_beef);
        m.put_f64_le(1.5);
        m.put_slice(b"xy");
        let mut b = m.freeze();
        assert_eq!(b.remaining(), 18);
        assert_eq!(b.get_u64_le(), 0xdead_beef);
        assert_eq!(b.get_f64_le(), 1.5);
        assert_eq!(&b[..], b"xy");
    }

    #[test]
    fn split_to_advances() {
        let mut b = Bytes::from(vec![1u8, 2, 3, 4]);
        let head = b.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(&b[..], &[3, 4]);
    }
}
