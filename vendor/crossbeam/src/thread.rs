//! Scoped threads with crossbeam's `Result`-returning signature, delegating
//! to `std::thread::scope`. A child panic is caught after all threads join
//! and surfaces as `Err(payload)` instead of unwinding through the caller.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Handle to the scope; spawn closures receive a copy (crossbeam's `|_|`
/// parameter), allowing nested spawns.
#[derive(Clone, Copy)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

/// Join handle for a scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Waits for the thread to finish; `Err` carries its panic payload.
    pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a thread scoped to borrow from `'env`.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let scope = *self;
        ScopedJoinHandle {
            inner: self.inner.spawn(move || f(&scope)),
        }
    }
}

/// Runs `f` with a scope handle; joins every spawned thread before
/// returning. If any thread (or `f` itself) panicked, returns the panic
/// payload as `Err`.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: FnOnce(&Scope<'_, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn borrows_and_joins() {
        let mut data = vec![0u32; 4];
        scope(|s| {
            for (i, d) in data.iter_mut().enumerate() {
                s.spawn(move |_| *d = i as u32 + 1);
            }
        })
        .expect("no panics");
        assert_eq!(data, vec![1, 2, 3, 4]);
    }

    #[test]
    fn child_panic_is_err() {
        let r = scope(|s| {
            s.spawn(|_| panic!("child failure"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn nested_spawn_through_handle() {
        let total = std::sync::atomic::AtomicU32::new(0);
        scope(|s| {
            s.spawn(|inner| {
                inner.spawn(|_| {
                    total.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                });
            });
        })
        .expect("no panics");
        assert_eq!(total.load(std::sync::atomic::Ordering::SeqCst), 1);
    }
}
