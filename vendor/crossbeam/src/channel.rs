//! MPMC channels with a `Select` multiplexer, on std mutex + condvar.
//!
//! Semantics follow `crossbeam-channel` for the operations DOoC exercises:
//! cloneable senders and receivers sharing one queue, `send` blocking when a
//! bounded queue is full, `recv` failing only once the queue is empty *and*
//! all senders are gone, and `Select` blocking across several receivers.
//!
//! `Select` differs internally from crossbeam's lock-free design: during the
//! readiness scan it *dequeues* the winning message and stashes it inside the
//! returned [`SelectedOperation`], so the subsequent `op.recv(&rx)` cannot
//! race with other consumers. That is indistinguishable from crossbeam's
//! behaviour for the select-then-recv pattern the filter runtime uses.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when every receiver is gone.
#[derive(PartialEq, Eq, Clone, Copy)]
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}

/// Error returned by [`Receiver::recv`] when the channel is empty and closed.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum TryRecvError {
    /// Channel is currently empty but senders remain.
    Empty,
    /// Channel is empty and every sender is gone.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum RecvTimeoutError {
    /// The timeout elapsed with no message.
    Timeout,
    /// Channel is empty and every sender is gone.
    Disconnected,
}

/// Error returned by [`Select::select_timeout`].
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub struct SelectTimeoutError;

impl fmt::Display for SelectTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "select timed out")
    }
}

impl std::error::Error for SelectTimeoutError {}

/// Wake-up flag a blocked `Select` parks on; channels it watches set the
/// flag and notify on any state change.
struct SelectWaker {
    fired: Mutex<bool>,
    cv: Condvar,
}

impl SelectWaker {
    fn notify(&self) {
        *self.fired.lock().unwrap_or_else(|p| p.into_inner()) = true;
        self.cv.notify_all();
    }
}

struct State<T> {
    queue: VecDeque<T>,
    /// `None` = unbounded.
    cap: Option<usize>,
    senders: usize,
    receivers: usize,
    /// Selects currently parked on this channel (pruned lazily).
    wakers: Vec<Weak<SelectWaker>>,
}

struct Chan<T> {
    state: Mutex<State<T>>,
    /// Signalled on enqueue and on sender-side disconnect.
    not_empty: Condvar,
    /// Signalled on dequeue and on receiver-side disconnect.
    not_full: Condvar,
}

impl<T> Chan<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn wake_selects(st: &mut State<T>) {
        st.wakers.retain(|w| {
            if let Some(w) = w.upgrade() {
                w.notify();
                true
            } else {
                false
            }
        });
    }
}

/// Sending half of a channel; cloneable.
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

/// Receiving half of a channel; cloneable (clones share the queue).
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

/// Creates a bounded channel with capacity `cap`.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    new_chan(Some(cap))
}

/// Creates an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    new_chan(None)
}

fn new_chan<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            cap,
            senders: 1,
            receivers: 1,
            wakers: Vec::new(),
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            chan: Arc::clone(&chan),
        },
        Receiver { chan },
    )
}

impl<T> Sender<T> {
    /// Blocks until the value is enqueued, or fails if all receivers dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut st = self.chan.lock();
        loop {
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            let full = st.cap.is_some_and(|c| st.queue.len() >= c);
            if !full {
                st.queue.push_back(value);
                Chan::wake_selects(&mut st);
                self.chan.not_empty.notify_one();
                return Ok(());
            }
            st = self
                .chan
                .not_full
                .wait(st)
                .unwrap_or_else(|p| p.into_inner());
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.chan.lock().senders += 1;
        Self {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.chan.lock();
        st.senders -= 1;
        if st.senders == 0 {
            Chan::wake_selects(&mut st);
            self.chan.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives or every sender is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self.chan.lock();
        loop {
            if let Some(v) = st.queue.pop_front() {
                self.chan.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = self
                .chan
                .not_empty
                .wait(st)
                .unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = self.chan.lock();
        if let Some(v) = st.queue.pop_front() {
            self.chan.not_full.notify_one();
            Ok(v)
        } else if st.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Blocking receive with a deadline.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut st = self.chan.lock();
        loop {
            if let Some(v) = st.queue.pop_front() {
                self.chan.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _r) = self
                .chan
                .not_empty
                .wait_timeout(st, left)
                .unwrap_or_else(|p| p.into_inner());
            st = guard;
        }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.chan.lock().queue.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.chan.lock().queue.is_empty()
    }

    /// Registers a select waker; returns whether anything is ready *now*.
    fn register_waker(&self, waker: &Arc<SelectWaker>) {
        let mut st = self.chan.lock();
        st.wakers.retain(|w| w.strong_count() > 0);
        st.wakers.push(Arc::downgrade(waker));
    }

    /// Attempts a select-side dequeue: `Some(Ok)` message, `Some(Err)` closed.
    fn poll_select(&self) -> Option<Result<T, RecvError>> {
        let mut st = self.chan.lock();
        if let Some(v) = st.queue.pop_front() {
            self.chan.not_full.notify_one();
            Some(Ok(v))
        } else if st.senders == 0 {
            Some(Err(RecvError))
        } else {
            None
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.chan.lock().receivers += 1;
        Self {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = self.chan.lock();
        st.receivers -= 1;
        if st.receivers == 0 {
            self.chan.not_full.notify_all();
        }
    }
}

/// Multiplexes blocking receives over several registered receivers.
pub struct Select<'a, T> {
    rxs: Vec<&'a Receiver<T>>,
    /// Rotating scan offset so a chatty low-index channel cannot starve the
    /// rest.
    next_start: usize,
}

/// A ready receive operation returned by [`Select::select`]; the message (or
/// closure verdict) is already captured, so [`SelectedOperation::recv`]
/// simply hands it over.
pub struct SelectedOperation<T> {
    index: usize,
    result: Result<T, RecvError>,
}

impl<'a, T> Select<'a, T> {
    /// Creates an empty selector.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Self {
            rxs: Vec::new(),
            next_start: 0,
        }
    }

    /// Registers a receiver; returns its operation index.
    pub fn recv(&mut self, rx: &'a Receiver<T>) -> usize {
        self.rxs.push(rx);
        self.rxs.len() - 1
    }

    /// Blocks until one registered receiver is ready (message or closed).
    pub fn select(&mut self) -> SelectedOperation<T> {
        self.select_deadline(None)
            .expect("select with no timeout cannot time out")
    }

    /// Like [`Select::select`] with a timeout.
    pub fn select_timeout(
        &mut self,
        timeout: Duration,
    ) -> Result<SelectedOperation<T>, SelectTimeoutError> {
        self.select_deadline(Some(Instant::now() + timeout))
    }

    fn select_deadline(
        &mut self,
        deadline: Option<Instant>,
    ) -> Result<SelectedOperation<T>, SelectTimeoutError> {
        assert!(!self.rxs.is_empty(), "select with no operations");
        let waker = Arc::new(SelectWaker {
            fired: Mutex::new(false),
            cv: Condvar::new(),
        });
        for rx in &self.rxs {
            rx.register_waker(&waker);
        }
        loop {
            // Scan from a rotating start for fairness across channels.
            let n = self.rxs.len();
            let start = self.next_start % n;
            for k in 0..n {
                let i = (start + k) % n;
                if let Some(result) = self.rxs[i].poll_select() {
                    self.next_start = i + 1;
                    return Ok(SelectedOperation { index: i, result });
                }
            }
            // Park until any watched channel changes state.
            let mut fired = waker.fired.lock().unwrap_or_else(|p| p.into_inner());
            while !*fired {
                match deadline {
                    None => {
                        fired = waker.cv.wait(fired).unwrap_or_else(|p| p.into_inner());
                    }
                    Some(d) => {
                        let left = d.saturating_duration_since(Instant::now());
                        if left.is_zero() {
                            return Err(SelectTimeoutError);
                        }
                        let (g, _r) = waker
                            .cv
                            .wait_timeout(fired, left)
                            .unwrap_or_else(|p| p.into_inner());
                        fired = g;
                    }
                }
            }
            *fired = false;
        }
    }
}

impl<T> SelectedOperation<T> {
    /// Index of the ready operation (registration order).
    pub fn index(&self) -> usize {
        self.index
    }

    /// Completes the receive. The receiver argument mirrors crossbeam's API;
    /// the message was already captured at selection time.
    pub fn recv(self, _rx: &Receiver<T>) -> Result<T, RecvError> {
        self.result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = bounded(4);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = bounded(1);
        tx.send(10).unwrap();
        let h = thread::spawn(move || tx.send(11).map_err(|_| ()));
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(10));
        h.join().unwrap().unwrap();
        assert_eq!(rx.recv(), Ok(11));
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert!(tx.send(5).is_err());
    }

    #[test]
    fn recv_timeout_times_out() {
        let (tx, rx) = bounded::<u8>(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn select_across_channels() {
        let (tx0, rx0) = bounded::<u32>(2);
        let (tx1, rx1) = bounded::<u32>(2);
        tx1.send(42).unwrap();
        let mut sel = Select::new();
        assert_eq!(sel.recv(&rx0), 0);
        assert_eq!(sel.recv(&rx1), 1);
        let op = sel.select();
        assert_eq!(op.index(), 1);
        assert_eq!(op.recv(&rx1), Ok(42));

        // Blocked select woken by a late send.
        let h = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            tx0.send(7).unwrap();
        });
        let op = sel.select();
        assert_eq!(op.index(), 0);
        assert_eq!(op.recv(&rx0), Ok(7));
        h.join().unwrap();

        // Disconnection is selected as a ready (closed) operation.
        drop(tx1);
        loop {
            let op = sel.select();
            if op.index() == 1 {
                assert_eq!(op.recv(&rx1), Err(RecvError));
                break;
            }
        }
    }

    #[test]
    fn select_timeout_elapses() {
        let (_tx, rx) = bounded::<u8>(1);
        let mut sel = Select::new();
        sel.recv(&rx);
        assert!(sel.select_timeout(Duration::from_millis(10)).is_err());
    }
}
