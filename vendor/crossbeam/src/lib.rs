//! Minimal offline stand-in for the `crossbeam` crate.
//!
//! Provides the two pieces DOoC uses:
//!
//! * [`channel`] — MPMC bounded (and unbounded) channels with blocking
//!   `send`/`recv`, timeouts, and a [`channel::Select`] multiplexer, built on
//!   `std::sync::{Mutex, Condvar}`.
//! * [`scope`] — scoped threads delegating to `std::thread::scope`, with
//!   crossbeam's `Result`-returning signature (a panicking child surfaces as
//!   `Err` instead of aborting the caller).

#![forbid(unsafe_code)]

pub mod channel;
pub mod thread;

pub use thread::scope;
