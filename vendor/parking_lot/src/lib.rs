//! Minimal offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s infallible API:
//! `lock()` returns a guard directly (poisoning is ignored — a panic while
//! holding a lock does not poison it for other threads, matching
//! parking_lot semantics). Only the surface DOoC uses is provided.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::TryLockError;

/// Mutual exclusion primitive with an infallible `lock()`.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
///
/// The inner std guard is `Option`-wrapped only so [`Condvar::wait`] can
/// move it out and back; it is `Some` at every point user code can observe.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let inner = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner: Some(inner) }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => write!(f, "Mutex {{ <locked> }}"),
        }
    }
}

impl<'a, T: ?Sized> Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard present outside wait")
    }
}

impl<'a, T: ?Sized> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_deref_mut()
            .expect("guard present outside wait")
    }
}

/// Condition variable paired with [`Mutex`], mirroring parking_lot's
/// guard-taking API (`wait(&mut MutexGuard)` rather than consuming it).
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

/// Result of [`Condvar::wait_for`]: whether the wait hit its timeout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait returned because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically releases the guard's mutex and blocks until notified,
    /// reacquiring the mutex before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present outside wait");
        let g = match self.inner.wait(g) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(g);
    }

    /// Like [`wait`](Self::wait) with an upper bound on the blocking time.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present outside wait");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, res)) => (g, res),
            Err(p) => {
                let (g, res) = p.into_inner();
                (g, res)
            }
        };
        guard.inner = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all blocked waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Reader-writer lock with infallible `read()`/`write()`.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-read RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let inner = match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockReadGuard { inner }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let inner = match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockWriteGuard { inner }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RwLock {{ .. }}")
    }
}

impl<'a, T: ?Sized> Deref for RwLockReadGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> Deref for RwLockWriteGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> DerefMut for RwLockWriteGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(0u32);
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn no_poisoning() {
        let m = std::sync::Arc::new(Mutex::new(1u32));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn condvar_wait_notify() {
        use std::sync::Arc;
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut g = m.lock();
            *g = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while !*g {
            cv.wait(&mut g);
        }
        assert!(*g);
        t.join().unwrap();
        let timed = cv.wait_for(&mut g, std::time::Duration::from_millis(1));
        assert!(timed.timed_out());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
