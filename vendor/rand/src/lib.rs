//! Minimal offline stand-in for the `rand` crate (0.8 API subset).
//!
//! DOoC uses randomness only for deterministic, seeded simulation and matrix
//! generation: `StdRng::seed_from_u64(..)` plus `gen_range(..)` over integer
//! and float ranges. This stub provides exactly that, backed by SplitMix64 —
//! a small, well-distributed 64-bit generator. Sequences differ from the real
//! crate's ChaCha-based `StdRng`, which is fine: nothing in the workspace
//! depends on specific sampled values, only on determinism per seed.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods (blanket-implemented for all generators).
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Samples `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.gen_range(0.0..1.0) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Deterministic generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range types that can be sampled to produce a `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

/// Maps 64 random bits into `[0, span)` without modulo bias worth caring
/// about (fixed-point multiply).
fn bounded(bits: u64, span: u64) -> u64 {
    ((bits as u128 * span as u128) >> 64) as u64
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(bounded(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded(rng.next_u64(), span + 1) as $t)
            }
        }
    )*};
}

int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                // 53 uniform mantissa bits in [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                self.start + (self.end - self.start) * unit as $t
            }
        }
    )*};
}

float_ranges!(f64);

impl SampleRange<f32> for Range<f32> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> f32 {
        assert!(self.start < self.end, "empty range in gen_range");
        let unit = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        self.start + (self.end - self.start) * unit
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seeded generator (SplitMix64).
    ///
    /// Not the real crate's ChaCha12 — sequences differ across the two
    /// implementations, but determinism per seed (all DOoC relies on) holds.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(3u64..10);
            assert!((3..10).contains(&v));
            let w = r.gen_range(1u64..=3);
            assert!((1..=3).contains(&w));
            let f = r.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u = r.gen_range(0usize..5);
            assert!(u < 5);
        }
    }

    #[test]
    fn values_spread_across_range() {
        let mut r = StdRng::seed_from_u64(42);
        let mut seen = [false; 8];
        for _ in 0..200 {
            seen[r.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }
}
