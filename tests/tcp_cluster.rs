//! The real thing: two `dooc-node` *processes* on localhost, joined over a
//! cluster-spec file, running the iterated SpMV end to end with node 0
//! verifying the collected final vector against the in-core reference.

use std::io::Read;
use std::net::TcpListener;
use std::process::{Command, Stdio};

/// Picks OS-assigned free ports. The listeners are dropped before the
/// children bind, which leaves a small reuse window — acceptable on a
/// loopback test host, and the dial side retries for up to 30s anyway.
fn free_ports(n: usize) -> Vec<u16> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().expect("addr").port())
        .collect()
}

#[test]
fn two_process_cluster_runs_and_verifies() {
    let base = std::env::temp_dir().join(format!("dooc-tcp-cluster-{}", std::process::id()));
    std::fs::create_dir_all(&base).expect("mkdir base");
    let ports = free_ports(2);
    let spec_path = base.join("cluster.spec");
    std::fs::write(
        &spec_path,
        format!(
            "# two-node localhost cluster\nnode 0 127.0.0.1:{}\nnode 1 127.0.0.1:{}\n",
            ports[0], ports[1]
        ),
    )
    .expect("write spec");

    let bin = env!("CARGO_BIN_EXE_dooc-node");
    let common = |node: usize| {
        let mut c = Command::new(bin);
        c.arg("--spec")
            .arg(&spec_path)
            .arg("--node")
            .arg(node.to_string())
            .arg("--scratch-base")
            .arg(&base)
            .args(["--k", "4", "--n", "256", "--iters", "2", "--seed", "2012"]);
        c
    };

    let mut peer = common(1)
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn node 1");
    let trace = base.join("TRACE_node0.json");
    let metrics = base.join("METRICS_node0.txt");
    let out = common(0)
        .arg("--verify")
        .arg("--trace")
        .arg(&trace)
        .arg("--metrics")
        .arg(&metrics)
        .output()
        .expect("run node 0");
    let status = peer.wait().expect("wait node 1");

    let mut peer_err = String::new();
    if let Some(mut e) = peer.stderr.take() {
        e.read_to_string(&mut peer_err).ok();
    }
    assert!(
        out.status.success(),
        "node 0 failed:\nstdout: {}\nstderr: {}\npeer stderr: {peer_err}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    assert!(status.success(), "node 1 failed: {peer_err}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("verification OK"),
        "node 0 did not verify: {stdout}"
    );

    // The trace must carry transport activity: the run crosses the peer
    // stream every iteration, so TCP byte counters cannot be zero.
    let m = std::fs::read_to_string(&metrics).expect("metrics dump");
    for key in ["fs.tcp.bytes_out", "fs.tcp.bytes_in"] {
        let line = m
            .lines()
            .find(|l| l.contains(key))
            .unwrap_or_else(|| panic!("metric {key} missing from dump:\n{m}"));
        let val: u64 = line
            .split_whitespace()
            .last()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("unparsable metric line: {line}"));
        assert!(val > 0, "{key} is zero — no bytes crossed the sockets?");
    }
    assert!(trace.exists(), "trace file missing");

    std::fs::remove_dir_all(&base).ok();
}
