//! Multi-process-shaped integration tests: the same iterated-SpMV workload
//! run (a) classically in one process, (b) distributed over the in-process
//! channel transport, and (c) distributed over real loopback TCP sockets.
//! All three must produce *bitwise* identical final vectors — the transport
//! is pure plumbing and must never change a floating-point reduction order.

use dooc::core::{DoocConfig, DoocRuntime};
use dooc::filterstream::{ChannelTransport, ClusterSpec, TcpTransport, Transport};
use dooc::linalg::spmv_app::{
    striped_owner, IterationMode, ReductionPlan, SpmvAppBuilder, SpmvExecutor, SyncPolicy,
};
use dooc::sparse::blockgrid::BlockGrid;
use dooc::sparse::genmat::GapGenerator;
use proptest::prelude::*;
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::Arc;

const K: u64 = 4;
const N: u64 = 64;
const ITERS: u64 = 3;
const MAT_SEED: u64 = 9;
const NNODES: usize = 2;

fn x0() -> Vec<f64> {
    (0..N).map(|i| (i % 7) as f64 + 1.0).collect()
}

/// Stages the workload into fresh temp dirs and returns everything a node
/// needs to run it.
fn stage(tag: &str, mode: IterationMode) -> (DoocConfig, SpmvAppBuilder) {
    let base = DoocConfig::in_temp_dirs(tag, NNODES).expect("cfg");
    let grid = BlockGrid::new(K, N);
    let gen = GapGenerator::with_d(4);
    let blocks = SpmvAppBuilder::stage(
        &base.scratch_dirs,
        grid,
        &gen,
        MAT_SEED,
        striped_owner(NNODES as u64),
    )
    .expect("stage matrices");
    let app = SpmvAppBuilder::new(grid, ITERS, blocks)
        .reduction(ReductionPlan::RowRoot)
        .sync(SyncPolicy::None)
        .iteration_mode(mode);
    app.stage_initial_vector(&base.scratch_dirs, &x0())
        .expect("stage x0");
    (base, app)
}

fn config_for(dirs: Vec<PathBuf>, geometry: &[(String, u64, u64)]) -> DoocConfig {
    let mut cfg = DoocConfig::new(dirs)
        .memory_budget(2 << 20)
        .threads_per_node(2);
    for (name, len, bs) in geometry {
        cfg = cfg.with_geometry(name.clone(), *len, *bs);
    }
    cfg
}

fn cleanup(cfg: &DoocConfig) {
    for d in &cfg.scratch_dirs {
        std::fs::remove_dir_all(d).ok();
        if let Some(p) = d.parent() {
            std::fs::remove_dir(p).ok();
        }
    }
}

/// Runs the staged app with one thread per node, each holding its own
/// transport — the thread boundary stands in for the process boundary (the
/// real multi-process path is exercised by `tests/tcp_cluster.rs`).
fn run_over(tag: &str, transports: Vec<Arc<dyn Transport>>, mode: IterationMode) -> Vec<f64> {
    let (base, app) = stage(tag, mode);
    let (graph, external, geometry) = app.build();
    let handles: Vec<_> = transports
        .into_iter()
        .map(|t| {
            let dirs = base.scratch_dirs.clone();
            let cfg = config_for(dirs, &geometry);
            let graph = graph.clone();
            let external = external.clone();
            std::thread::spawn(move || {
                DoocRuntime::new(cfg)
                    .run_distributed(graph, external, Arc::new(SpmvExecutor), t)
                    .expect("distributed run");
            })
        })
        .collect();
    for h in handles {
        h.join().expect("node thread");
    }
    let x = app
        .collect_final_vector(&base.scratch_dirs)
        .expect("final vector");
    cleanup(&base);
    x
}

fn run_classic(tag: &str, mode: IterationMode) -> Vec<f64> {
    let (base, app) = stage(tag, mode);
    let (graph, external, geometry) = app.build();
    let cfg = config_for(base.scratch_dirs.clone(), &geometry);
    DoocRuntime::new(cfg)
        .run(graph, external, Arc::new(SpmvExecutor))
        .expect("classic run");
    let x = app
        .collect_final_vector(&base.scratch_dirs)
        .expect("final vector");
    cleanup(&base);
    x
}

/// Builds a loopback TCP mesh on OS-assigned ports (race-free: listeners
/// are bound before the spec is written).
fn tcp_pair() -> Vec<Arc<dyn Transport>> {
    let listeners: Vec<TcpListener> = (0..NNODES)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind"))
        .collect();
    let spec = ClusterSpec::new(
        listeners
            .iter()
            .map(|l| l.local_addr().expect("addr").to_string())
            .collect(),
    );
    let fp = spec.fingerprint();
    // Handshakes block until the peer dials in, so the transports must be
    // constructed concurrently.
    let handles: Vec<_> = listeners
        .into_iter()
        .enumerate()
        .map(|(i, l)| {
            let spec = spec.clone();
            std::thread::spawn(move || {
                TcpTransport::with_listener(&spec, i, fp, l).expect("tcp mesh")
            })
        })
        .collect();
    handles
        .into_iter()
        .map(|h| Arc::new(h.join().expect("connect thread")) as Arc<dyn Transport>)
        .collect()
}

fn assert_bitwise(label: &str, got: &[f64], want: &[f64]) {
    assert_eq!(got.len(), want.len(), "{label}: length");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert!(
            g.to_bits() == w.to_bits(),
            "{label} diverged at x[{i}]: {g:?} != {w:?}"
        );
    }
}

fn channel_cluster() -> Vec<Arc<dyn Transport>> {
    ChannelTransport::cluster(NNODES)
        .into_iter()
        .map(|t| Arc::new(t) as Arc<dyn Transport>)
        .collect()
}

#[test]
fn channel_transport_matches_classic_run_bitwise() {
    let classic = run_classic("dist-classic", IterationMode::Barrier);
    let chan = run_over("dist-chan", channel_cluster(), IterationMode::Barrier);
    assert_bitwise("channel vs classic", &chan, &classic);
}

#[test]
fn tcp_transport_matches_classic_run_bitwise() {
    let classic = run_classic("dist-classic-tcp", IterationMode::Barrier);
    let tcp = run_over("dist-tcp", tcp_pair(), IterationMode::Barrier);
    assert_bitwise("tcp vs classic", &tcp, &classic);
}

// ---------------------------------------------------------------------------
// Frontier-mode equivalence: the barriered run is the oracle. The frontier
// graph has *fewer* ordering edges (iterations pipeline), but every sum task
// still folds its partials in declared input order, so any divergence —
// a premature release reading an unsealed or stale sub-vector — shows up as
// a bitwise difference in the final iterate.
// ---------------------------------------------------------------------------

#[test]
fn frontier_matches_barrier_classic_bitwise() {
    let barrier = run_classic("dist-front-cb", IterationMode::Barrier);
    let frontier = run_classic("dist-front-cf", IterationMode::Frontier);
    assert_bitwise("frontier vs barrier (classic)", &frontier, &barrier);
}

#[test]
fn frontier_matches_barrier_over_channel_transport() {
    let barrier = run_classic("dist-front-chb", IterationMode::Barrier);
    let frontier = run_over("dist-front-chf", channel_cluster(), IterationMode::Frontier);
    assert_bitwise("frontier vs barrier (channel)", &frontier, &barrier);
}

#[test]
fn frontier_matches_barrier_over_tcp_sockets() {
    let barrier = run_classic("dist-front-tb", IterationMode::Barrier);
    let frontier = run_over("dist-front-tf", tcp_pair(), IterationMode::Frontier);
    assert_bitwise("frontier vs barrier (tcp)", &frontier, &barrier);
}

/// One fully parameterized classic run: stages a k×k grid of an n-order
/// matrix across `nnodes` striped owners and executes `iters` iterations.
#[allow(clippy::too_many_arguments)]
fn run_case(
    tag: &str,
    k: u64,
    n: u64,
    iters: u64,
    seed: u64,
    nnodes: usize,
    reduction: ReductionPlan,
    mode: IterationMode,
) -> Vec<f64> {
    let base = DoocConfig::in_temp_dirs(tag, nnodes).expect("cfg");
    let grid = BlockGrid::new(k, n);
    let gen = GapGenerator::with_d(3);
    let blocks = SpmvAppBuilder::stage(
        &base.scratch_dirs,
        grid,
        &gen,
        seed,
        striped_owner(nnodes as u64),
    )
    .expect("stage matrices");
    let app = SpmvAppBuilder::new(grid, iters, blocks)
        .reduction(reduction)
        .sync(SyncPolicy::None)
        .iteration_mode(mode);
    let x0: Vec<f64> = (0..n).map(|i| ((i * 7 + seed) % 11) as f64 + 0.5).collect();
    app.stage_initial_vector(&base.scratch_dirs, &x0)
        .expect("stage x0");
    let (graph, external, geometry) = app.build();
    let cfg = config_for(base.scratch_dirs.clone(), &geometry);
    DoocRuntime::new(cfg)
        .run(graph, external, Arc::new(SpmvExecutor))
        .expect("classic run");
    let x = app
        .collect_final_vector(&base.scratch_dirs)
        .expect("final vector");
    cleanup(&base);
    x
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Frontier and barrier runs are bitwise identical across generated
    /// grid sizes, block counts, placements, iteration depths and seeds.
    #[test]
    fn frontier_equivalence_across_shapes(
        k in 2u64..5,
        dim in 2u64..8,
        iters in 1u64..4,
        seed in 0u64..1000,
        nnodes in 1usize..3,
        local_agg in any::<bool>(),
    ) {
        let n = k * dim;
        let reduction = if local_agg {
            ReductionPlan::LocalAggregation
        } else {
            ReductionPlan::RowRoot
        };
        let tag_b = format!("dist-prop-b-{k}-{dim}-{iters}-{seed}-{nnodes}-{local_agg}");
        let tag_f = format!("dist-prop-f-{k}-{dim}-{iters}-{seed}-{nnodes}-{local_agg}");
        let barrier = run_case(
            &tag_b, k, n, iters, seed, nnodes, reduction, IterationMode::Barrier,
        );
        let frontier = run_case(
            &tag_f, k, n, iters, seed, nnodes, reduction, IterationMode::Frontier,
        );
        prop_assert_eq!(barrier.len(), frontier.len());
        for (i, (b, f)) in barrier.iter().zip(&frontier).enumerate() {
            prop_assert!(
                b.to_bits() == f.to_bits(),
                "case {tag_f} diverged at x[{i}]: {b:?} != {f:?}"
            );
        }
    }
}

#[test]
fn mismatched_bootstrap_digest_is_rejected() {
    let (base, app) = stage("dist-mismatch", IterationMode::Barrier);
    let (graph, external, geometry) = app.build();
    let transports = ChannelTransport::cluster(NNODES);
    let handles: Vec<_> = transports
        .into_iter()
        .enumerate()
        .map(|(i, t)| {
            let dirs = base.scratch_dirs.clone();
            let mut cfg = config_for(dirs, &geometry);
            if i == 1 {
                // Node 1 disagrees on a run-defining knob.
                cfg = cfg.seed(0xBAD);
            }
            let graph = graph.clone();
            let external = external.clone();
            std::thread::spawn(move || {
                DoocRuntime::new(cfg)
                    .run_distributed(graph, external, Arc::new(SpmvExecutor), Arc::new(t))
                    .err()
                    .map(|e| e.to_string())
            })
        })
        .collect();
    let errs: Vec<Option<String>> = handles
        .into_iter()
        .map(|h| h.join().expect("join"))
        .collect();
    cleanup(&base);
    for (i, e) in errs.iter().enumerate() {
        let e = e
            .as_ref()
            .unwrap_or_else(|| panic!("node {i} should have refused to run"));
        assert!(
            e.contains("digest mismatch"),
            "node {i}: unexpected error {e}"
        );
    }
}
