//! Workspace-level integration tests: the full stack (generator → staged
//! files → DOoC cluster → solvers) through the umbrella `dooc` crate.

use dooc::core::{DoocConfig, DoocRuntime};
use dooc::linalg::spmv_app::{
    tiled_owner, ReductionPlan, SpmvAppBuilder, SpmvExecutor, SyncPolicy,
};
use dooc::sparse::blockgrid::BlockGrid;
use dooc::sparse::genmat::GapGenerator;
use std::sync::Arc;

fn cleanup(cfg: &DoocConfig) {
    for d in &cfg.scratch_dirs {
        std::fs::remove_dir_all(d).ok();
        if let Some(p) = d.parent() {
            std::fs::remove_dir(p).ok();
        }
    }
}

/// Both §V policies must produce bit-identical final vectors (they reorder
/// the same floating-point reductions deterministically per row), and both
/// must match the in-core reference within round-off.
#[test]
fn both_policies_agree_with_reference() {
    let nnodes = 4usize;
    let k = 4u64;
    let n = 200u64;
    let gen = GapGenerator::with_d(4);
    let seed = 77;
    let x0: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64 * 0.05).sin()).collect();

    let mut finals: Vec<Vec<f64>> = Vec::new();
    for (reduction, sync, tag) in [
        (ReductionPlan::RowRoot, SyncPolicy::PhaseBarriers, "simple"),
        (
            ReductionPlan::LocalAggregation,
            SyncPolicy::None,
            "interleaved",
        ),
    ] {
        let cfg = DoocConfig::in_temp_dirs(&format!("pipe-{tag}"), nnodes)
            .expect("cfg")
            .memory_budget(2 << 20)
            .threads_per_node(2);
        let grid = BlockGrid::new(k, n);
        let blocks = SpmvAppBuilder::stage(
            &cfg.scratch_dirs,
            grid,
            &gen,
            seed,
            tiled_owner(k, nnodes as u64),
        )
        .expect("stage");
        let app = SpmvAppBuilder::new(grid, 3, blocks)
            .reduction(reduction)
            .sync(sync);
        app.stage_initial_vector(&cfg.scratch_dirs, &x0)
            .expect("x0");
        let (graph, external, geometry) = app.build();
        let mut cfg2 = cfg.clone();
        for (name, len, bs) in geometry {
            cfg2 = cfg2.with_geometry(name, len, bs);
        }
        DoocRuntime::new(cfg2)
            .run(graph, external, Arc::new(SpmvExecutor))
            .unwrap_or_else(|e| panic!("{tag} run failed: {e}"));
        let got = app.collect_final_vector(&cfg.scratch_dirs).expect("result");
        let want = app.reference_result(&gen, seed, &x0);
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert!(
                (g - w).abs() <= 1e-9 * w.abs().max(1.0),
                "{tag} entry {i}: {g} vs {w}"
            );
        }
        finals.push(got);
        cleanup(&cfg);
    }
    assert_eq!(finals[0].len(), finals[1].len());
}

/// Out-of-core continuation: persist the result of one run, restart a fresh
/// cluster over the same scratch directories, and keep iterating from the
/// discovered state — the storage layer's startup scan at work.
#[test]
fn restart_continues_from_persisted_state() {
    let nnodes = 1usize;
    let k = 2u64;
    let n = 40u64;
    let gen = GapGenerator::with_d(3);
    let seed = 5;
    let x0: Vec<f64> = (0..n).map(|i| (i % 7) as f64 + 1.0).collect();

    let cfg = DoocConfig::in_temp_dirs("pipe-restart", nnodes)
        .expect("cfg")
        .memory_budget(1 << 20);
    let grid = BlockGrid::new(k, n);
    let blocks = SpmvAppBuilder::stage(&cfg.scratch_dirs, grid, &gen, seed, tiled_owner(k, 1))
        .expect("stage");

    // Life 1: two iterations, persisted.
    let app1 = SpmvAppBuilder::new(grid, 2, blocks.clone());
    app1.stage_initial_vector(&cfg.scratch_dirs, &x0)
        .expect("x0");
    let (graph, external, geometry) = app1.build();
    let mut c = cfg.clone();
    for (name, len, bs) in geometry {
        c = c.with_geometry(name, len, bs);
    }
    DoocRuntime::new(c)
        .run(graph, external, Arc::new(SpmvExecutor))
        .expect("life 1");
    let x2 = app1.collect_final_vector(&cfg.scratch_dirs).expect("x2");

    // Life 2: a brand-new cluster over the same directories; feed x2 back in
    // as the new x_0 (staged like any external vector) and run 1 more
    // iteration. The sub-matrix files are *discovered*, not re-staged.
    let app2 = SpmvAppBuilder::new(grid, 1, blocks);
    app2.stage_initial_vector(&cfg.scratch_dirs, &x2)
        .expect("x2 restage");
    let (graph, external, geometry) = app2.build();
    let mut c = cfg.clone();
    for (name, len, bs) in geometry {
        c = c.with_geometry(name, len, bs);
    }
    DoocRuntime::new(c)
        .run(graph, external, Arc::new(SpmvExecutor))
        .expect("life 2");
    let x3 = app2.collect_final_vector(&cfg.scratch_dirs).expect("x3");

    // Reference: three applications of A to x0 (reference_result only needs
    // the grid + generator; reuse app1 which was built for the same grid).
    let appref = SpmvAppBuilder::new(
        BlockGrid::new(k, n),
        3,
        (0..k * k)
            .map(|i| dooc::linalg::spmv_app::StagedBlock {
                coord: dooc::sparse::blockgrid::BlockCoord { u: i / k, v: i % k },
                node: 0,
                bytes: 0,
                nnz: 0,
            })
            .collect(),
    );
    let want = appref.reference_result(&gen, seed, &x0);
    for (i, (g, w)) in x3.iter().zip(&want).enumerate() {
        assert!(
            (g - w).abs() <= 1e-8 * w.abs().max(1.0),
            "entry {i}: {g} vs {w}"
        );
    }
    cleanup(&cfg);
}

/// The umbrella crate exposes every layer.
#[test]
fn umbrella_reexports() {
    let _ = dooc::VERSION;
    let m = dooc::sparse::CsrMatrix::identity(3);
    assert_eq!(m.nnz(), 3);
    let sim = dooc::simulator::FluidSim::new();
    assert!(sim.idle());
    let layers = dooc::simulator::hierarchy::LAYERS;
    assert!(layers.len() >= 4);
}
