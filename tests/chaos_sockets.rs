//! Chaos over real sockets: the faultline drop/delay/reorder schedules that
//! the core chaos suite runs in-process, replayed with the peer traffic
//! crossing actual loopback TCP connections. The runtime must converge to
//! the bitwise-identical final vector regardless — message faults are
//! injected at the writer (before framing), and the TCP connect/frame sites
//! add socket-level delay on top.
//!
//! ```sh
//! cargo test --features faultline --test chaos_sockets
//! ```
#![cfg(feature = "faultline")]

use dooc::core::{DoocConfig, DoocRuntime};
use dooc::filterstream::{ClusterSpec, TcpTransport, Transport};
use dooc::linalg::spmv_app::{
    striped_owner, IterationMode, ReductionPlan, SpmvAppBuilder, SpmvExecutor, SyncPolicy,
};
use dooc::sparse::blockgrid::BlockGrid;
use dooc::sparse::genmat::GapGenerator;
use dooc::storage::RecoveryPolicy;
use dooc_faultline as faultline;
use std::net::TcpListener;
use std::sync::Arc;

const K: u64 = 4;
const N: u64 = 64;
const ITERS: u64 = 3;
const MAT_SEED: u64 = 9;
const NNODES: usize = 2;

/// Wire tags a drop schedule must never eat (mirrors the core chaos suite):
/// `Bye` and `DeleteNotice` have no retry path by design.
const PEER_EXEMPT_TAGS: [u64; 2] = [0x304, 0x303];

/// Seeds per schedule; `DOOC_CHAOS_SEEDS` overrides (CI sets `0,1,2`).
fn seeds() -> Vec<u64> {
    match std::env::var("DOOC_CHAOS_SEEDS") {
        Ok(s) => s.split(',').filter_map(|t| t.trim().parse().ok()).collect(),
        Err(_) => (0..3).collect(),
    }
}

fn cleanup(cfg: &DoocConfig) {
    for d in &cfg.scratch_dirs {
        std::fs::remove_dir_all(d).ok();
        if let Some(p) = d.parent() {
            std::fs::remove_dir(p).ok();
        }
    }
}

fn tcp_pair() -> Vec<Arc<dyn Transport>> {
    let listeners: Vec<TcpListener> = (0..NNODES)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind"))
        .collect();
    let spec = ClusterSpec::new(
        listeners
            .iter()
            .map(|l| l.local_addr().expect("addr").to_string())
            .collect(),
    );
    let fp = spec.fingerprint();
    let handles: Vec<_> = listeners
        .into_iter()
        .enumerate()
        .map(|(i, l)| {
            let spec = spec.clone();
            std::thread::spawn(move || {
                TcpTransport::with_listener(&spec, i, fp, l).expect("tcp mesh")
            })
        })
        .collect();
    handles
        .into_iter()
        .map(|h| Arc::new(h.join().expect("connect thread")) as Arc<dyn Transport>)
        .collect()
}

/// One 2-node run over loopback TCP under whatever schedule
/// `configure_faults` installs; returns the persisted final vector.
fn run_spmv_tcp(tag: &str, mode: IterationMode, configure_faults: impl FnOnce()) -> Vec<f64> {
    let base = DoocConfig::in_temp_dirs(tag, NNODES).expect("cfg");
    let grid = BlockGrid::new(K, N);
    let gen = GapGenerator::with_d(4);
    let blocks = SpmvAppBuilder::stage(
        &base.scratch_dirs,
        grid,
        &gen,
        MAT_SEED,
        striped_owner(NNODES as u64),
    )
    .expect("stage matrices");
    let app = SpmvAppBuilder::new(grid, ITERS, blocks)
        .reduction(ReductionPlan::RowRoot)
        .sync(SyncPolicy::None)
        .iteration_mode(mode);
    let x0: Vec<f64> = (0..N).map(|i| (i % 7) as f64 + 1.0).collect();
    app.stage_initial_vector(&base.scratch_dirs, &x0)
        .expect("stage x0");
    let (graph, external, geometry) = app.build();

    faultline::reset();
    configure_faults();
    faultline::enable();

    let handles: Vec<_> = tcp_pair()
        .into_iter()
        .map(|t| {
            let mut cfg = DoocConfig::new(base.scratch_dirs.clone())
                .memory_budget(2 << 20)
                .threads_per_node(2)
                .recovery(RecoveryPolicy {
                    io_retry_max: 5,
                    io_retry_backoff_ticks: 1,
                    fetch_deadline_ticks: Some(25),
                    stall_retry_max: None,
                });
            for (name, len, bs) in &geometry {
                cfg = cfg.with_geometry(name.clone(), *len, *bs);
            }
            let graph = graph.clone();
            let external = external.clone();
            std::thread::spawn(move || {
                DoocRuntime::new(cfg)
                    .run_distributed(graph, external, Arc::new(SpmvExecutor), t)
                    .expect("chaos run must complete");
            })
        })
        .collect();
    for h in handles {
        h.join().expect("node thread");
    }
    faultline::reset();

    let x = app
        .collect_final_vector(&base.scratch_dirs)
        .expect("persisted final vector");
    cleanup(&base);
    x
}

fn assert_bitwise(schedule: &str, seed: u64, got: &[f64], want: &[f64]) {
    assert_eq!(got.len(), want.len(), "{schedule}: seed {seed} length");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert!(
            g.to_bits() == w.to_bits(),
            "socket chaos schedule '{schedule}' seed {seed} diverged at x[{i}]: \
             {g:?} != fault-free {w:?} — replay with faultline::seed({seed})"
        );
    }
}

#[test]
fn peer_drop_over_sockets_converges_bitwise() {
    let _g = faultline::test_gate();
    let baseline = run_spmv_tcp("sock-drop-base", IterationMode::Barrier, || {});
    for seed in seeds() {
        let got = run_spmv_tcp("sock-drop", IterationMode::Barrier, || {
            faultline::seed(seed);
            faultline::configure(
                "peer_out",
                faultline::FaultSpec::drop_msg()
                    .with_prob(0.10)
                    .with_exempt_tags(PEER_EXEMPT_TAGS.to_vec()),
            );
        });
        assert_bitwise("peer-drop", seed, &got, &baseline);
    }
}

#[test]
fn peer_reorder_over_sockets_converges_bitwise() {
    let _g = faultline::test_gate();
    let baseline = run_spmv_tcp("sock-reorder-base", IterationMode::Barrier, || {});
    for seed in seeds() {
        let got = run_spmv_tcp("sock-reorder", IterationMode::Barrier, || {
            faultline::seed(seed);
            faultline::configure(
                "peer_out",
                faultline::FaultSpec::reorder()
                    .with_prob(0.25)
                    .with_exempt_tags(PEER_EXEMPT_TAGS.to_vec()),
            );
        });
        assert_bitwise("peer-reorder", seed, &got, &baseline);
    }
}

#[test]
fn frame_delay_over_sockets_converges_bitwise() {
    let _g = faultline::test_gate();
    let baseline = run_spmv_tcp("sock-delay-base", IterationMode::Barrier, || {});
    for seed in seeds() {
        let got = run_spmv_tcp("sock-delay", IterationMode::Barrier, || {
            faultline::seed(seed);
            // Socket-level: stall the framing writer on ~20% of data frames.
            faultline::configure(
                "fs.tcp.frame",
                faultline::FaultSpec::delay(2).with_prob(0.20),
            );
        });
        assert_bitwise("frame-delay", seed, &got, &baseline);
    }
}

// ---------------------------------------------------------------------------
// Progress-lane chaos over real sockets (frontier mode). The capability-drop
// batches now cross loopback TCP as `Progress` frames; the oracle is the
// fault-free *barrier* run over the same sockets, so each test chains the
// frontier/barrier equivalence with the lane's fault tolerance: drops heal
// through the cumulative counts' idle re-flush, reorder is absorbed by the
// max-fold, and delay only defers gate openings.
// ---------------------------------------------------------------------------

#[test]
fn progress_drop_over_sockets_converges_bitwise() {
    let _g = faultline::test_gate();
    let baseline = run_spmv_tcp("sock-prog-drop-base", IterationMode::Barrier, || {});
    for seed in seeds() {
        let got = run_spmv_tcp("sock-prog-drop", IterationMode::Frontier, || {
            faultline::seed(seed);
            faultline::configure("prog_out", faultline::FaultSpec::drop_msg().with_prob(0.10));
        });
        assert_bitwise("progress-drop", seed, &got, &baseline);
    }
}

#[test]
fn progress_reorder_over_sockets_converges_bitwise() {
    let _g = faultline::test_gate();
    let baseline = run_spmv_tcp("sock-prog-reorder-base", IterationMode::Barrier, || {});
    for seed in seeds() {
        let got = run_spmv_tcp("sock-prog-reorder", IterationMode::Frontier, || {
            faultline::seed(seed);
            faultline::configure("prog_out", faultline::FaultSpec::reorder().with_prob(0.25));
        });
        assert_bitwise("progress-reorder", seed, &got, &baseline);
    }
}

#[test]
fn progress_delay_over_sockets_converges_bitwise() {
    let _g = faultline::test_gate();
    let baseline = run_spmv_tcp("sock-prog-delay-base", IterationMode::Barrier, || {});
    for seed in seeds() {
        let got = run_spmv_tcp("sock-prog-delay", IterationMode::Frontier, || {
            faultline::seed(seed);
            faultline::configure("prog_out", faultline::FaultSpec::delay(2).with_prob(0.20));
        });
        assert_bitwise("progress-delay", seed, &got, &baseline);
    }
}
