//! Feature-gated lock-order deadlock detection.
//!
//! [`OrderedMutex`] wraps the facade [`Mutex`](crate::Mutex) with a *lock
//! class*: a `&'static str` naming the role of the lock (e.g.
//! `"storage.cluster.port_map"`). With the `order-check` feature enabled,
//! every acquisition records, for each lock class already held by the
//! acquiring thread, a directed edge `held class -> acquired class` into a
//! process-global lock-order graph, together with both acquisition sites.
//! An acquisition that would close a cycle in that graph — some other code
//! path acquires the same classes in the opposite order — panics
//! immediately, naming every edge along the conflicting path. This turns
//! *potential* deadlocks (inconsistent lock ordering that may never actually
//! interleave in a given run) into deterministic test failures, without
//! needing the unlucky schedule.
//!
//! Edges are recorded and checked on **every** acquisition, not just the
//! first time a class pair is seen: the recorded sites are refreshed each
//! time, so a violation report always names a currently-live code path
//! rather than the (possibly long-deleted) first acquisition that
//! established the edge, and a cycle introduced any number of acquisitions
//! after an edge was first recorded is still caught.
//!
//! Detection is by class, not by instance: two distinct mutexes sharing a
//! class are treated as the same lock. That is deliberate — replicas of the
//! same structure must obey one ordering discipline — but it means classes
//! must name roles, not objects.
//!
//! With the feature disabled (the default) the wrapper compiles down to a
//! plain facade mutex plus a `&'static str` it never consults.

use crate::{Mutex, MutexGuard};
use std::ops::{Deref, DerefMut};

#[cfg(feature = "order-check")]
mod detect {
    use std::cell::RefCell;
    use std::collections::{HashMap, HashSet};
    use std::fmt::Write as _;
    use std::panic::Location;
    use std::sync::OnceLock;

    type Site = &'static Location<'static>;

    /// The process-global lock-order graph: edge `(a, b)` means "some thread
    /// acquired class `b` while holding class `a`", annotated with the most
    /// recent pair of acquisition sites that exercised it.
    #[derive(Default)]
    pub(super) struct Graph {
        edges: HashMap<(&'static str, &'static str), (Site, Site)>,
    }

    impl Graph {
        /// Finds a path `from -> ... -> to` over recorded edges, returned as
        /// the list of `(class, class, site, site)` edges along it.
        fn find_path(
            &self,
            from: &'static str,
            to: &'static str,
        ) -> Option<Vec<(&'static str, &'static str, Site, Site)>> {
            // BFS with parent tracking so the report shows a shortest chain.
            let mut queue = std::collections::VecDeque::from([from]);
            let mut parent: HashMap<&'static str, (&'static str, Site, Site)> = HashMap::new();
            let mut seen: HashSet<&'static str> = HashSet::from([from]);
            while let Some(c) = queue.pop_front() {
                if c == to {
                    let mut path = Vec::new();
                    let mut cur = to;
                    while cur != from {
                        let &(prev, s1, s2) = &parent[cur];
                        path.push((prev, cur, s1, s2));
                        cur = prev;
                    }
                    path.reverse();
                    return Some(path);
                }
                for (&(a, b), &(s1, s2)) in self.edges.iter() {
                    if a == c && seen.insert(b) {
                        parent.insert(b, (a, s1, s2));
                        queue.push_back(b);
                    }
                }
            }
            None
        }
    }

    fn graph() -> &'static parking_lot::Mutex<Graph> {
        static GRAPH: OnceLock<parking_lot::Mutex<Graph>> = OnceLock::new();
        GRAPH.get_or_init(Default::default)
    }

    thread_local! {
        /// Lock classes currently held by this thread, with their
        /// acquisition sites, in acquisition order.
        static HELD: RefCell<Vec<(&'static str, Site)>> = const { RefCell::new(Vec::new()) };
    }

    /// Records `held -> class` edges and panics if the acquisition would
    /// close an ordering cycle. Called before blocking on the inner mutex so
    /// the violation is reported rather than deadlocking the test. Runs on
    /// every acquisition: the cycle check always executes, and the recorded
    /// sites are refreshed so reports name live code paths.
    pub(super) fn before_acquire(class: &'static str, site: Site) {
        HELD.with(|h| {
            let held = h.borrow();
            if held.is_empty() {
                return;
            }
            let mut g = graph().lock();
            for &(held_class, held_site) in held.iter() {
                if held_class == class {
                    panic!(
                        "lock-order violation: recursive acquisition of lock class \
                         '{class}' at {site} (already held since {held_site})"
                    );
                }
                if let Some(path) = g.find_path(class, held_class) {
                    let mut chain = String::new();
                    for (a, b, s1, s2) in &path {
                        let _ = write!(chain, "\n  '{a}' (at {s1}) then '{b}' (at {s2})");
                    }
                    panic!(
                        "lock-order violation: acquiring '{class}' at {site} while \
                         holding '{held_class}' (acquired at {held_site}), but the \
                         opposite order is already established:{chain}"
                    );
                }
                g.edges.insert((held_class, class), (held_site, site));
            }
        });
    }

    pub(super) fn push_held(class: &'static str, site: Site) {
        HELD.with(|h| h.borrow_mut().push((class, site)));
    }

    pub(super) fn pop_held(class: &'static str) {
        HELD.with(|h| {
            let mut held = h.borrow_mut();
            if let Some(i) = held.iter().rposition(|&(c, _)| c == class) {
                held.remove(i);
            }
        });
    }

    /// Snapshot of the recorded lock-order graph: every `(held, acquired)`
    /// class pair observed so far, with the most recent acquisition sites
    /// (rendered). Exposed so the dooc-check static sync-graph analysis
    /// can mirror-test its source-derived edges against the dynamic ones.
    pub fn edges() -> Vec<super::OrderEdge> {
        graph()
            .lock()
            .edges
            .iter()
            .map(|(&(a, b), &(s1, s2))| ((a, b), (s1.to_string(), s2.to_string())))
            .collect()
    }
}

/// One dynamic lock-order edge:
/// `((held class, acquired class), (held site, acquired site))`.
#[cfg(feature = "order-check")]
pub type OrderEdge = ((&'static str, &'static str), (String, String));

/// Dynamic lock-order edges observed so far in this process:
/// `((held class, acquired class), (held site, acquired site))` pairs.
#[cfg(feature = "order-check")]
pub fn order_graph_edges() -> Vec<OrderEdge> {
    detect::edges()
}

/// A mutex carrying a lock-order class, checked when the `order-check`
/// feature is enabled (see the module docs). Transparent otherwise.
pub struct OrderedMutex<T> {
    class: &'static str,
    inner: Mutex<T>,
}

impl<T> OrderedMutex<T> {
    /// Wraps `value` under lock class `class`.
    pub const fn new(class: &'static str, value: T) -> Self {
        Self {
            class,
            inner: Mutex::new(value),
        }
    }

    /// The lock class this mutex was declared with.
    pub fn class(&self) -> &'static str {
        self.class
    }

    /// Acquires the lock; with `order-check`, first verifies that doing so
    /// respects the global lock order, panicking (with the acquisition sites
    /// along the conflicting path) if it does not.
    #[cfg(feature = "order-check")]
    #[track_caller]
    pub fn lock(&self) -> OrderedMutexGuard<'_, T> {
        let site = std::panic::Location::caller();
        detect::before_acquire(self.class, site);
        let inner = self.inner.lock();
        detect::push_held(self.class, site);
        OrderedMutexGuard {
            inner,
            class: self.class,
        }
    }

    /// Acquires the lock (order checking compiled out).
    #[cfg(not(feature = "order-check"))]
    #[inline]
    #[track_caller]
    pub fn lock(&self) -> OrderedMutexGuard<'_, T> {
        OrderedMutexGuard {
            inner: self.inner.lock(),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for OrderedMutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OrderedMutex")
            .field("class", &self.class)
            .finish_non_exhaustive()
    }
}

/// Guard returned by [`OrderedMutex::lock`].
pub struct OrderedMutexGuard<'a, T> {
    inner: MutexGuard<'a, T>,
    #[cfg(feature = "order-check")]
    class: &'static str,
}

impl<T> Deref for OrderedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> DerefMut for OrderedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(feature = "order-check")]
impl<T> Drop for OrderedMutexGuard<'_, T> {
    fn drop(&mut self) {
        detect::pop_held(self.class);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trips_value() {
        let m = OrderedMutex::new("test.sync.value", 41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.class(), "test.sync.value");
        assert_eq!(m.into_inner(), 42);
    }

    #[cfg(feature = "order-check")]
    #[test]
    fn consistent_nesting_is_allowed_repeatedly() {
        let a = OrderedMutex::new("test.sync.outer", ());
        let b = OrderedMutex::new("test.sync.inner", ());
        for _ in 0..3 {
            let _ga = a.lock();
            let _gb = b.lock();
        }
    }
}
