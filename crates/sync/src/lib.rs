//! Synchronization facade for the DOoC runtime.
//!
//! Every runtime crate (filterstream, storage, core, scheduler) imports its
//! sync primitives from here instead of from `parking_lot` / `crossbeam`
//! directly (enforced by dooc-check lint rule 7). The facade has two builds:
//!
//! * **Real builds** (default): pure `pub use` re-exports of
//!   `parking_lot::{Mutex, RwLock, Condvar}`, `std::sync::atomic`, and the
//!   crossbeam channel types. Zero cost — the wrapper types *are* the
//!   underlying types, so there is no call-site or layout overhead.
//! * **`model` builds**: each primitive becomes a wrapper that, when used
//!   inside a [`model::run`] execution, yields to a deterministic cooperative
//!   scheduler at every visible operation. A pluggable [`model::Chooser`]
//!   picks which task runs at each scheduling point, so the dooc-check
//!   exploration engine (`crates/check/src/explore.rs`) can drive seeded
//!   random walks and bounded-preemption DFS over the *real* runtime code,
//!   detect panics and deadlocks, and replay any failing interleaving from a
//!   printed schedule token. Outside an execution the wrappers delegate to
//!   the real primitives, so a `model` build remains safe to run normally.
//!
//! * **`record` builds**: each primitive delegates to the real one and,
//!   while [`record::arm`]ed, logs every visible operation (with source
//!   site and a global sequence number) into per-thread rings; the
//!   dooc-check race detector replays the drained log (`record::take_log`)
//!   through a vector-clock happens-before analysis. Disarmed, every hook
//!   costs one relaxed atomic load. `model` takes precedence when both
//!   features are on: the modeled wrappers carry the same recording hooks,
//!   so every explored schedule can be race-checked.
//!
//! [`OrderedMutex`] (lock-class deadlock detection under `order-check`)
//! lives here too, moved from `dooc-filterstream::sync`, which now
//! re-exports it.

#![forbid(unsafe_code)]

mod ordered;
pub mod record;

pub use ordered::{OrderedMutex, OrderedMutexGuard};

#[cfg(feature = "order-check")]
pub use ordered::order_graph_edges;

#[cfg(all(not(feature = "model"), not(feature = "record")))]
mod real;
#[cfg(all(not(feature = "model"), not(feature = "record")))]
pub use real::*;

#[cfg(all(not(feature = "model"), feature = "record"))]
mod recorded;
#[cfg(all(not(feature = "model"), feature = "record"))]
pub use recorded::*;

#[cfg(feature = "model")]
pub mod model;
#[cfg(feature = "model")]
mod modeled;
#[cfg(feature = "model")]
pub use modeled::*;
