//! Sync-event recording for the dooc-check race detector.
//!
//! With the `record` feature enabled, every facade primitive logs its
//! visible operations — lock acquire/release, rwlock read/write, condvar
//! notify/wait, channel send/recv, atomic load/store/rmw (with ordering),
//! thread spawn/start/end/join — into per-thread bounded rings (the
//! generic [`dooc_obs::ring::Rings`] core behind the trace buffer), each
//! event stamped with a global sequence number and its source site.
//! [`take_log`] drains the rings into the `dooc-race v1` text format the
//! happens-before analyzer in `crates/check` replays.
//!
//! Shared-memory *data* accesses are not visible to a library, so they are
//! annotated explicitly: call [`data_read`] / [`data_write`] with a stable
//! address next to an access the detector should check. Both are
//! always-compiled inline no-ops while the feature is off (or recording is
//! disarmed), so annotations need no `cfg` plumbing at call sites.
//!
//! Sequence numbers linearize the log. Recording discipline keeps that
//! linearization sound for the happens-before edges the analyzer draws:
//! acquire-flavored events (lock granted, message dequeued, wait returned)
//! are stamped *after* the operation succeeds, release-flavored events
//! (unlock, send, notify) *before* it, so a real release always carries a
//! smaller sequence number than any acquire that observed it. Atomics,
//! which are both, are stamped under a global recording mutex together
//! with the operation itself (armed recording only; disarmed cost is one
//! relaxed atomic load).

use std::panic::Location;

/// Source site of a recorded event.
pub type Site = &'static Location<'static>;

/// Stable identity of a shared location, for [`data_read`] /
/// [`data_write`] annotation sites.
#[inline(always)]
pub fn addr_of<T: ?Sized>(r: &T) -> usize {
    r as *const T as *const () as usize
}

/// Memory-ordering class of a recorded atomic operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AtomicOrd {
    /// `Ordering::Relaxed` — no happens-before edge.
    Relaxed,
    /// `Ordering::Acquire`.
    Acquire,
    /// `Ordering::Release`.
    Release,
    /// `Ordering::AcqRel`.
    AcqRel,
    /// `Ordering::SeqCst`.
    SeqCst,
}

impl AtomicOrd {
    /// Classifies a std `Ordering`.
    pub fn of(o: std::sync::atomic::Ordering) -> Self {
        use std::sync::atomic::Ordering::*;
        match o {
            Relaxed => AtomicOrd::Relaxed,
            Acquire => AtomicOrd::Acquire,
            Release => AtomicOrd::Release,
            AcqRel => AtomicOrd::AcqRel,
            _ => AtomicOrd::SeqCst,
        }
    }

    /// Token used in the text log.
    pub fn token(self) -> &'static str {
        match self {
            AtomicOrd::Relaxed => "rlx",
            AtomicOrd::Acquire => "acq",
            AtomicOrd::Release => "rel",
            AtomicOrd::AcqRel => "ar",
            AtomicOrd::SeqCst => "sc",
        }
    }
}

/// One recorded sync-operation kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecOp {
    /// Mutex acquired (stamped after the grant).
    LockAcq,
    /// Mutex released (stamped before the release).
    LockRel,
    /// RwLock read lock acquired / released.
    ReadAcq,
    /// See [`RecOp::ReadAcq`].
    ReadRel,
    /// RwLock write lock acquired / released.
    WriteAcq,
    /// See [`RecOp::WriteAcq`].
    WriteRel,
    /// Condvar notify (one or all; release-flavored).
    CvNotify,
    /// Condvar wait returned (acquire-flavored; the mutex reacquisition is
    /// logged separately as [`RecOp::LockAcq`]).
    CvWaitReturn,
    /// Channel send (stamped before enqueue).
    ChanSend,
    /// Channel receive (stamped after dequeue).
    ChanRecv,
    /// Atomic load with the given ordering.
    AtomicLoad(AtomicOrd),
    /// Atomic store with the given ordering.
    AtomicStore(AtomicOrd),
    /// Atomic read-modify-write with the given ordering.
    AtomicRmw(AtomicOrd),
    /// Thread spawned; payload is the child's preallocated recorder tid.
    Spawn(u64),
    /// First event of a spawned thread.
    ThreadStart,
    /// Last event of a spawned thread.
    ThreadEnd,
    /// Thread joined; payload is the joined child's recorder tid.
    Join(u64),
    /// Annotated shared-memory read (see [`data_read`]).
    DataRead,
    /// Annotated shared-memory write (see [`data_write`]).
    DataWrite,
}

impl RecOp {
    /// `(op token, extra column)` for the text log.
    pub fn tokens(self) -> (&'static str, Option<String>) {
        match self {
            RecOp::LockAcq => ("acq", None),
            RecOp::LockRel => ("rel", None),
            RecOp::ReadAcq => ("racq", None),
            RecOp::ReadRel => ("rrel", None),
            RecOp::WriteAcq => ("wacq", None),
            RecOp::WriteRel => ("wrel", None),
            RecOp::CvNotify => ("notify", None),
            RecOp::CvWaitReturn => ("cvret", None),
            RecOp::ChanSend => ("send", None),
            RecOp::ChanRecv => ("recv", None),
            RecOp::AtomicLoad(o) => ("aload", Some(o.token().to_string())),
            RecOp::AtomicStore(o) => ("astore", Some(o.token().to_string())),
            RecOp::AtomicRmw(o) => ("armw", Some(o.token().to_string())),
            RecOp::Spawn(child) => ("spawn", Some(child.to_string())),
            RecOp::ThreadStart => ("start", None),
            RecOp::ThreadEnd => ("end", None),
            RecOp::Join(child) => ("join", Some(child.to_string())),
            RecOp::DataRead => ("dr", None),
            RecOp::DataWrite => ("dw", None),
        }
    }
}

#[cfg(feature = "record")]
mod imp {
    use super::{RecOp, Site};
    use dooc_obs::ring::{LocalRing, Rings};
    use std::cell::{Cell, RefCell};
    use std::fmt::Write as _;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::OnceLock;

    /// One recorded sync event (the `E` line of the text log).
    #[derive(Clone, Debug)]
    pub struct RecEvent {
        /// Global sequence number (linearizes the log).
        pub seq: u64,
        /// Operation kind.
        pub op: RecOp,
        /// Stable object identity (address).
        pub obj: usize,
        /// Source site that performed the operation.
        pub site: Site,
    }

    static ARMED: AtomicBool = AtomicBool::new(false);
    static SEQ: AtomicU64 = AtomicU64::new(0);

    fn rings() -> &'static Rings<RecEvent> {
        static R: OnceLock<Rings<RecEvent>> = OnceLock::new();
        R.get_or_init(|| Rings::new(1 << 18))
    }

    thread_local! {
        static LOCAL: LocalRing<RecEvent> = const { RefCell::new(None) };
        static ADOPTED: Cell<Option<u64>> = const { Cell::new(None) };
    }

    /// Starts recording. Rings keep accumulating until [`take_log`] or
    /// [`clear`]; arm/disarm only gates new events.
    pub fn arm() {
        ARMED.store(true, Ordering::Relaxed);
    }

    /// Stops recording (buffered events stay until drained).
    pub fn disarm() {
        ARMED.store(false, Ordering::Relaxed);
    }

    /// Whether recording is on: the single relaxed load that is the whole
    /// disarmed-path cost of every hook.
    #[inline]
    pub fn armed() -> bool {
        ARMED.load(Ordering::Relaxed)
    }

    /// Reserves a recorder tid for a thread about to be spawned, so the
    /// parent's [`RecOp::Spawn`] event can name it before the child runs.
    pub fn preallocate_tid() -> u64 {
        rings().alloc_tid()
    }

    /// Binds the calling thread to a tid preallocated by its spawner. Must
    /// run before the thread's first recorded event.
    pub fn adopt_tid(tid: u64) {
        ADOPTED.with(|a| a.set(Some(tid)));
    }

    /// Records one event on the calling thread (armed recording only).
    ///
    /// The armed check is all that inlines at call sites; the recording
    /// body stays outlined and cold so the disarmed hot path costs one
    /// relaxed load without bloating every wrapped operation.
    #[inline]
    pub fn ev_at(op: RecOp, obj: usize, site: Site) {
        if !armed() {
            return;
        }
        ev_slow(op, obj, site);
    }

    #[cold]
    #[inline(never)]
    fn ev_slow(op: RecOp, obj: usize, site: Site) {
        let r = rings();
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        r.record_in(
            &LOCAL,
            || ADOPTED.with(|a| a.take()).unwrap_or_else(|| r.alloc_tid()),
            RecEvent { seq, op, obj, site },
        );
    }

    /// Records one event attributed to the caller's source site.
    #[inline]
    #[track_caller]
    pub fn ev(op: RecOp, obj: usize) {
        if !armed() {
            return;
        }
        ev_at(op, obj, std::panic::Location::caller());
    }

    /// Annotates a shared-memory read of `addr` for the race detector.
    #[inline]
    #[track_caller]
    pub fn data_read(addr: usize) {
        if !armed() {
            return;
        }
        ev_at(RecOp::DataRead, addr, std::panic::Location::caller());
    }

    /// Annotates a shared-memory write of `addr` for the race detector.
    #[inline]
    #[track_caller]
    pub fn data_write(addr: usize) {
        if !armed() {
            return;
        }
        ev_at(RecOp::DataWrite, addr, std::panic::Location::caller());
    }

    /// Serializes an armed atomic operation with its record stamp so the
    /// log's sequence order matches the real linearization order of the
    /// atomics (see the module docs). Disarmed paths never touch this.
    pub fn atomic_section() -> parking_lot::MutexGuard<'static, ()> {
        static M: OnceLock<parking_lot::Mutex<()>> = OnceLock::new();
        M.get_or_init(|| parking_lot::Mutex::new(())).lock()
    }

    /// Serializes whole recording sessions. The recorder is one global
    /// facility (arm flag, sequence counter, ring registry), so two
    /// concurrent `clear`/`arm` … `disarm`/`take_log` windows — e.g. test
    /// threads in one binary — would mix their events and disarm each
    /// other. Hold the returned guard across the whole window.
    pub fn session() -> parking_lot::MutexGuard<'static, ()> {
        static M: OnceLock<parking_lot::Mutex<()>> = OnceLock::new();
        M.get_or_init(|| parking_lot::Mutex::new(())).lock()
    }

    type Pins = parking_lot::Mutex<Vec<Box<dyn std::any::Any + Send>>>;

    fn pins() -> &'static Pins {
        static P: OnceLock<Pins> = OnceLock::new();
        P.get_or_init(|| parking_lot::Mutex::new(Vec::new()))
    }

    /// Keeps `obj` alive until [`clear`]. Annotation sites that stamp heap
    /// addresses (e.g. channel payload bytes) pin the owning allocation so
    /// the allocator cannot recycle an annotated address mid-session —
    /// reuse would alias unrelated accesses in the happens-before shadow
    /// state and report phantom races. The pin mutex is internal
    /// `parking_lot`, invisible to the recorder: it must not add
    /// happens-before edges between the accesses it serves.
    pub fn pin(obj: Box<dyn std::any::Any + Send>) {
        pins().lock().push(obj);
    }

    /// Discards everything buffered so far (between analysis runs).
    pub fn clear() {
        let _ = rings().drain();
        pins().lock().clear();
    }

    /// Drains all rings into the `dooc-race v1` text log:
    ///
    /// ```text
    /// dooc-race v1
    /// T <tid> <thread name>
    /// E <seq> <tid> <op> <obj> <extra> <file>:<line>:<col>
    /// ```
    ///
    /// `E` lines are sorted by sequence number; `<extra>` is the atomic
    /// ordering token or the spawned/joined child tid, `-` otherwise.
    pub fn take_log() -> String {
        let (per_thread, dropped) = rings().drain();
        let mut threads: Vec<(u64, String)> = Vec::new();
        let mut events: Vec<(u64, RecEvent)> = Vec::new();
        for (tid, name, evs) in per_thread {
            threads.push((tid, name));
            for e in evs {
                events.push((tid, e));
            }
        }
        threads.sort();
        events.sort_by_key(|(_, e)| e.seq);
        let mut out = String::from("dooc-race v1\n");
        if dropped > 0 {
            let _ = writeln!(out, "# dropped {dropped}");
        }
        for (tid, name) in threads {
            let _ = writeln!(out, "T {tid} {name}");
        }
        for (tid, e) in events {
            let (op, extra) = e.op.tokens();
            let _ = writeln!(
                out,
                "E {} {} {} {} {} {}",
                e.seq,
                tid,
                op,
                e.obj,
                extra.as_deref().unwrap_or("-"),
                e.site
            );
        }
        out
    }
}

#[cfg(feature = "record")]
pub use imp::{
    adopt_tid, arm, armed, atomic_section, clear, data_read, data_write, disarm, ev, ev_at, pin,
    preallocate_tid, session, take_log, RecEvent,
};

// Disarmed-build no-ops: annotation call sites and the modeled-wrapper
// hooks compile away entirely without any `cfg` plumbing of their own.
#[cfg(not(feature = "record"))]
mod noop {
    use super::{RecOp, Site};

    /// Whether recording is on (`record` feature disabled: always false).
    #[inline(always)]
    pub fn armed() -> bool {
        false
    }

    /// No-op (the `record` feature is disabled).
    #[inline(always)]
    pub fn ev(_op: RecOp, _obj: usize) {}

    /// No-op (the `record` feature is disabled).
    #[inline(always)]
    pub fn ev_at(_op: RecOp, _obj: usize, _site: Site) {}

    /// No-op (the `record` feature is disabled).
    #[inline(always)]
    pub fn data_read(_addr: usize) {}

    /// No-op (the `record` feature is disabled).
    #[inline(always)]
    pub fn data_write(_addr: usize) {}

    /// No-op (the `record` feature is disabled).
    #[inline(always)]
    pub fn preallocate_tid() -> u64 {
        0
    }

    /// No-op (the `record` feature is disabled). Never reached at runtime:
    /// callers gate on [`armed`], which is always false here.
    #[inline(always)]
    pub fn atomic_section() {}

    /// No-op (the `record` feature is disabled).
    #[inline(always)]
    pub fn adopt_tid(_tid: u64) {}

    /// No-op (the `record` feature is disabled). Never reached at runtime:
    /// callers gate on [`armed`], which is always false here.
    #[inline(always)]
    pub fn pin(_obj: Box<dyn std::any::Any + Send>) {}
}

#[cfg(not(feature = "record"))]
pub use noop::{
    adopt_tid, armed, atomic_section, data_read, data_write, ev, ev_at, pin, preallocate_tid,
};

#[cfg(all(test, feature = "record"))]
mod tests {
    use super::*;

    #[test]
    fn log_format_round_trip() {
        // Process-global recorder; run the whole scenario under one test.
        imp::clear();
        imp::arm();
        ev(RecOp::LockAcq, 0x10);
        let child = imp::preallocate_tid();
        ev(RecOp::Spawn(child), 0);
        std::thread::spawn(move || {
            imp::adopt_tid(child);
            ev(RecOp::ThreadStart, 0);
            ev(RecOp::AtomicRmw(AtomicOrd::Relaxed), 0x20);
            ev(RecOp::ThreadEnd, 0);
        })
        .join()
        .unwrap();
        ev(RecOp::Join(child), 0);
        ev(RecOp::LockRel, 0x10);
        imp::disarm();
        ev(RecOp::LockAcq, 999983); // disarmed: must not appear
        let log = imp::take_log();
        assert!(log.starts_with("dooc-race v1\n"), "{log}");
        let e_lines: Vec<&str> = log.lines().filter(|l| l.starts_with("E ")).collect();
        assert_eq!(e_lines.len(), 7, "{log}");
        assert!(log.contains(&format!(" spawn 0 {child} ")), "{log}");
        assert!(log.contains(&format!(" join 0 {child} ")), "{log}");
        assert!(log.contains(" armw 32 rlx "), "{log}");
        assert!(!log.contains("999983"), "disarmed event leaked: {log}");
        // Seqs strictly increase down the file.
        let seqs: Vec<u64> = e_lines
            .iter()
            .map(|l| l.split_whitespace().nth(1).unwrap().parse().unwrap())
            .collect();
        assert!(seqs.windows(2).all(|w| w[0] < w[1]));
    }
}
