//! `record`-build wrapper types, path-compatible with the `real` module.
//!
//! Each primitive delegates to the real `parking_lot` / `crossbeam` / `std`
//! implementation and, when recording is armed, logs its visible operations
//! through [`crate::record`] for the dooc-check race detector. Disarmed,
//! every hook is one relaxed atomic load, mirroring the dooc-obs gate.
//!
//! Event placement follows the linearization discipline documented in
//! [`crate::record`]: acquire-flavored events after the operation,
//! release-flavored events before it, and atomics stamped together with
//! their operation under [`crate::record::atomic_section`].
//!
//! Object identity is the wrapper address (channels use an allocated id
//! shared by both halves). The analyzer keys clocks per primitive kind, so
//! addresses recycled across kinds cannot alias; reuse within a kind can
//! only add happens-before edges (missed races, never false reports).

use crate::record::{self, RecOp};
use parking_lot as pl;
use std::ops::{Deref, DerefMut};
use std::panic::Location;

pub use pl::WaitTimeoutResult;

type Site = &'static Location<'static>;

fn addr_of<T: ?Sized>(r: &T) -> usize {
    r as *const T as *const () as usize
}

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// Recording mutex: a `parking_lot::Mutex` whose acquire/release are logged
/// while recording is armed.
pub struct Mutex<T> {
    inner: pl::Mutex<T>,
}

/// RAII guard for the recording [`Mutex`]; logs the release on drop.
pub struct MutexGuard<'a, T> {
    inner: pl::MutexGuard<'a, T>,
    obj: usize,
    site: Site,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: pl::Mutex::new(value),
        }
    }

    /// Acquires the lock, logging the grant.
    #[inline]
    #[track_caller]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let site = Location::caller();
        let inner = self.inner.lock();
        let obj = addr_of(self);
        record::ev_at(RecOp::LockAcq, obj, site);
        MutexGuard { inner, obj, site }
    }

    /// Attempts the lock without blocking.
    #[inline]
    #[track_caller]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let site = Location::caller();
        let inner = self.inner.try_lock()?;
        let obj = addr_of(self);
        record::ev_at(RecOp::LockAcq, obj, site);
        Some(MutexGuard { inner, obj, site })
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Mutex {{ .. }}")
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    #[inline]
    fn drop(&mut self) {
        // Release event first, then the field drop releases the real lock.
        record::ev_at(RecOp::LockRel, self.obj, self.site);
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

/// Recording reader-writer lock.
pub struct RwLock<T> {
    inner: pl::RwLock<T>,
}

/// Shared-read RAII guard for the recording [`RwLock`].
pub struct RwLockReadGuard<'a, T> {
    inner: pl::RwLockReadGuard<'a, T>,
    obj: usize,
    site: Site,
}

/// Exclusive-write RAII guard for the recording [`RwLock`].
pub struct RwLockWriteGuard<'a, T> {
    inner: pl::RwLockWriteGuard<'a, T>,
    obj: usize,
    site: Site,
}

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: pl::RwLock::new(value),
        }
    }

    /// Acquires a shared read lock, logging the grant.
    #[inline]
    #[track_caller]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let site = Location::caller();
        let inner = self.inner.read();
        let obj = addr_of(self);
        record::ev_at(RecOp::ReadAcq, obj, site);
        RwLockReadGuard { inner, obj, site }
    }

    /// Acquires an exclusive write lock, logging the grant.
    #[inline]
    #[track_caller]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let site = Location::caller();
        let inner = self.inner.write();
        let obj = addr_of(self);
        record::ev_at(RecOp::WriteAcq, obj, site);
        RwLockWriteGuard { inner, obj, site }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RwLock {{ .. }}")
    }
}

impl<T> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> DerefMut for RwLockWriteGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T> Drop for RwLockReadGuard<'_, T> {
    #[inline]
    fn drop(&mut self) {
        record::ev_at(RecOp::ReadRel, self.obj, self.site);
    }
}

impl<T> Drop for RwLockWriteGuard<'_, T> {
    #[inline]
    fn drop(&mut self) {
        record::ev_at(RecOp::WriteRel, self.obj, self.site);
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// Recording condition variable paired with the facade [`Mutex`].
pub struct Condvar {
    inner: pl::Condvar,
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: pl::Condvar::new(),
        }
    }

    /// Atomically releases the guard's mutex and parks until notified,
    /// reacquiring the mutex before returning. Logged as mutex release,
    /// wait-return (acquiring the notifier's clock), mutex reacquire.
    #[inline]
    #[track_caller]
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let site = Location::caller();
        record::ev_at(RecOp::LockRel, guard.obj, site);
        self.inner.wait(&mut guard.inner);
        record::ev_at(RecOp::CvWaitReturn, addr_of(self), site);
        record::ev_at(RecOp::LockAcq, guard.obj, site);
    }

    /// Like [`wait`](Self::wait) with an upper bound on the blocking time.
    #[inline]
    #[track_caller]
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let site = Location::caller();
        record::ev_at(RecOp::LockRel, guard.obj, site);
        let res = self.inner.wait_for(&mut guard.inner, timeout);
        record::ev_at(RecOp::CvWaitReturn, addr_of(self), site);
        record::ev_at(RecOp::LockAcq, guard.obj, site);
        res
    }

    /// Wakes one waiter (release-flavored: logged before the notify).
    #[inline]
    #[track_caller]
    pub fn notify_one(&self) {
        record::ev(RecOp::CvNotify, addr_of(self));
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    #[inline]
    #[track_caller]
    pub fn notify_all(&self) {
        record::ev(RecOp::CvNotify, addr_of(self));
        self.inner.notify_all();
    }
}

// ---------------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------------

/// Recording atomic integers: armed accesses are stamped together with the
/// operation under the global recording mutex so the log's sequence order
/// matches the atomics' real linearization order.
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    use super::addr_of;
    use crate::record::{self, AtomicOrd, RecOp};
    use std::panic::Location;

    macro_rules! recorded_atomic {
        ($name:ident, $std:ty, $prim:ty) => {
            /// Recording drop-in for the std atomic of the same name.
            pub struct $name {
                v: $std,
            }

            impl $name {
                /// Creates a new atomic with the given initial value.
                pub const fn new(v: $prim) -> Self {
                    Self { v: <$std>::new(v) }
                }

                /// Atomic load (logged with its ordering when armed).
                #[inline]
                #[track_caller]
                pub fn load(&self, o: Ordering) -> $prim {
                    if record::armed() {
                        let site = Location::caller();
                        let _g = record::atomic_section();
                        let v = self.v.load(o);
                        record::ev_at(RecOp::AtomicLoad(AtomicOrd::of(o)), addr_of(self), site);
                        return v;
                    }
                    self.v.load(o)
                }

                /// Atomic store (logged with its ordering when armed).
                #[inline]
                #[track_caller]
                pub fn store(&self, val: $prim, o: Ordering) {
                    if record::armed() {
                        let site = Location::caller();
                        let _g = record::atomic_section();
                        record::ev_at(RecOp::AtomicStore(AtomicOrd::of(o)), addr_of(self), site);
                        self.v.store(val, o);
                        return;
                    }
                    self.v.store(val, o)
                }

                /// Atomic swap.
                #[inline]
                #[track_caller]
                pub fn swap(&self, val: $prim, o: Ordering) -> $prim {
                    self.rmw(o, |v| v.swap(val, o))
                }

                /// Atomic add, returning the previous value.
                #[inline]
                #[track_caller]
                pub fn fetch_add(&self, val: $prim, o: Ordering) -> $prim {
                    self.rmw(o, |v| v.fetch_add(val, o))
                }

                /// Atomic subtract, returning the previous value.
                #[inline]
                #[track_caller]
                pub fn fetch_sub(&self, val: $prim, o: Ordering) -> $prim {
                    self.rmw(o, |v| v.fetch_sub(val, o))
                }

                /// Atomic max, returning the previous value.
                #[inline]
                #[track_caller]
                pub fn fetch_max(&self, val: $prim, o: Ordering) -> $prim {
                    self.rmw(o, |v| v.fetch_max(val, o))
                }

                /// Atomic min, returning the previous value.
                #[inline]
                #[track_caller]
                pub fn fetch_min(&self, val: $prim, o: Ordering) -> $prim {
                    self.rmw(o, |v| v.fetch_min(val, o))
                }

                /// Atomic compare-exchange (a successful exchange logs as an
                /// rmw, a failed one as a load of the failure ordering).
                #[inline]
                #[track_caller]
                pub fn compare_exchange(
                    &self,
                    current: $prim,
                    new: $prim,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$prim, $prim> {
                    if record::armed() {
                        let site = Location::caller();
                        let _g = record::atomic_section();
                        let r = self.v.compare_exchange(current, new, success, failure);
                        let op = match r {
                            Ok(_) => RecOp::AtomicRmw(AtomicOrd::of(success)),
                            Err(_) => RecOp::AtomicLoad(AtomicOrd::of(failure)),
                        };
                        record::ev_at(op, addr_of(self), site);
                        return r;
                    }
                    self.v.compare_exchange(current, new, success, failure)
                }

                /// Mutable access without synchronization.
                pub fn get_mut(&mut self) -> &mut $prim {
                    self.v.get_mut()
                }

                /// Consumes the atomic, returning the value.
                pub fn into_inner(self) -> $prim {
                    self.v.into_inner()
                }

                #[inline]
                #[track_caller]
                fn rmw(&self, o: Ordering, f: impl FnOnce(&$std) -> $prim) -> $prim {
                    if record::armed() {
                        let site = Location::caller();
                        let _g = record::atomic_section();
                        let v = f(&self.v);
                        record::ev_at(RecOp::AtomicRmw(AtomicOrd::of(o)), addr_of(self), site);
                        return v;
                    }
                    f(&self.v)
                }
            }

            impl Default for $name {
                fn default() -> Self {
                    Self::new(<$prim>::default())
                }
            }

            impl std::fmt::Debug for $name {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    write!(f, "{:?}", self.v)
                }
            }
        };
    }

    recorded_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
    recorded_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);

    /// Recording drop-in for `std::sync::atomic::AtomicBool`.
    pub struct AtomicBool {
        v: std::sync::atomic::AtomicBool,
    }

    impl AtomicBool {
        /// Creates a new atomic with the given initial value.
        pub const fn new(v: bool) -> Self {
            Self {
                v: std::sync::atomic::AtomicBool::new(v),
            }
        }

        /// Atomic load (logged with its ordering when armed).
        #[inline]
        #[track_caller]
        pub fn load(&self, o: Ordering) -> bool {
            if record::armed() {
                let site = Location::caller();
                let _g = record::atomic_section();
                let v = self.v.load(o);
                record::ev_at(RecOp::AtomicLoad(AtomicOrd::of(o)), addr_of(self), site);
                return v;
            }
            self.v.load(o)
        }

        /// Atomic store (logged with its ordering when armed).
        #[inline]
        #[track_caller]
        pub fn store(&self, val: bool, o: Ordering) {
            if record::armed() {
                let site = Location::caller();
                let _g = record::atomic_section();
                record::ev_at(RecOp::AtomicStore(AtomicOrd::of(o)), addr_of(self), site);
                self.v.store(val, o);
                return;
            }
            self.v.store(val, o)
        }

        /// Atomic swap.
        #[inline]
        #[track_caller]
        pub fn swap(&self, val: bool, o: Ordering) -> bool {
            if record::armed() {
                let site = Location::caller();
                let _g = record::atomic_section();
                let v = self.v.swap(val, o);
                record::ev_at(RecOp::AtomicRmw(AtomicOrd::of(o)), addr_of(self), site);
                return v;
            }
            self.v.swap(val, o)
        }
    }

    impl Default for AtomicBool {
        fn default() -> Self {
            Self::new(false)
        }
    }

    impl std::fmt::Debug for AtomicBool {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{:?}", self.v)
        }
    }
}

// ---------------------------------------------------------------------------
// Channels
// ---------------------------------------------------------------------------

/// Recording MPMC channels, path-compatible with the real `channel` module.
/// Both halves share an allocated channel id; sends are stamped before the
/// enqueue and receives after the dequeue, so a matched pair is always
/// send-before-recv in the log.
pub mod channel {
    pub use crossbeam::channel::{
        RecvError, RecvTimeoutError, SelectTimeoutError, SendError, TryRecvError,
    };

    use crate::record::{self, RecOp};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    fn next_chan_id() -> usize {
        static NEXT: AtomicUsize = AtomicUsize::new(1);
        NEXT.fetch_add(1, Ordering::Relaxed)
    }

    /// Sending half of a channel; cloneable.
    pub struct Sender<T> {
        inner: crossbeam::channel::Sender<T>,
        id: usize,
    }

    /// Receiving half of a channel; cloneable (clones share the queue).
    pub struct Receiver<T> {
        inner: crossbeam::channel::Receiver<T>,
        id: usize,
    }

    /// Creates a bounded channel with capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = crossbeam::channel::bounded(cap);
        wrap(tx, rx)
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = crossbeam::channel::unbounded();
        wrap(tx, rx)
    }

    fn wrap<T>(
        tx: crossbeam::channel::Sender<T>,
        rx: crossbeam::channel::Receiver<T>,
    ) -> (Sender<T>, Receiver<T>) {
        let id = next_chan_id();
        (Sender { inner: tx, id }, Receiver { inner: rx, id })
    }

    impl<T> Sender<T> {
        /// Blocks until the value is enqueued, or fails if all receivers
        /// dropped. The send event is stamped before the enqueue.
        #[inline]
        #[track_caller]
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            record::ev(RecOp::ChanSend, self.id);
            self.inner.send(value)
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
                id: self.id,
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is gone.
        #[inline]
        #[track_caller]
        pub fn recv(&self) -> Result<T, RecvError> {
            let r = self.inner.recv();
            if r.is_ok() {
                record::ev(RecOp::ChanRecv, self.id);
            }
            r
        }

        /// Non-blocking receive.
        #[inline]
        #[track_caller]
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let r = self.inner.try_recv();
            if r.is_ok() {
                record::ev(RecOp::ChanRecv, self.id);
            }
            r
        }

        /// Receive with a timeout.
        #[inline]
        #[track_caller]
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let r = self.inner.recv_timeout(timeout);
            if r.is_ok() {
                record::ev(RecOp::ChanRecv, self.id);
            }
            r
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.inner.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.inner.is_empty()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                inner: self.inner.clone(),
                id: self.id,
            }
        }
    }

    /// Multiplexes blocking receives over several registered receivers;
    /// typed, mirroring the vendored crossbeam `Select` (and the `model`
    /// build's wrapper).
    pub struct Select<'a, T> {
        inner: crossbeam::channel::Select<'a, T>,
        rxs: Vec<&'a Receiver<T>>,
    }

    /// A ready receive operation; the message (or closure verdict) is
    /// captured at selection time.
    pub struct SelectedOperation<T> {
        index: usize,
        result: Result<T, RecvError>,
    }

    impl<'a, T> Select<'a, T> {
        /// Creates an empty selector.
        #[allow(clippy::new_without_default)]
        pub fn new() -> Self {
            Self {
                inner: crossbeam::channel::Select::new(),
                rxs: Vec::new(),
            }
        }

        /// Registers a receiver; returns its operation index. Registration
        /// goes straight into the underlying crossbeam selector so
        /// [`select`](Self::select) does no per-call re-registration.
        pub fn recv(&mut self, rx: &'a Receiver<T>) -> usize {
            self.inner.recv(&rx.inner);
            self.rxs.push(rx);
            self.rxs.len() - 1
        }

        /// Blocks until one registered receiver is ready (message or
        /// closed).
        #[inline]
        #[track_caller]
        pub fn select(&mut self) -> SelectedOperation<T> {
            let op = self.inner.select();
            let index = op.index();
            let result = op.recv(&self.rxs[index].inner);
            if result.is_ok() {
                record::ev(RecOp::ChanRecv, self.rxs[index].id);
            }
            SelectedOperation { index, result }
        }

        /// Like [`select`](Self::select) with a timeout.
        #[inline]
        #[track_caller]
        pub fn select_timeout(
            &mut self,
            timeout: Duration,
        ) -> Result<SelectedOperation<T>, SelectTimeoutError> {
            let op = self.inner.select_timeout(timeout)?;
            let index = op.index();
            let result = op.recv(&self.rxs[index].inner);
            if result.is_ok() {
                record::ev(RecOp::ChanRecv, self.rxs[index].id);
            }
            Ok(SelectedOperation { index, result })
        }
    }

    impl<T> SelectedOperation<T> {
        /// Index of the ready operation (registration order).
        pub fn index(&self) -> usize {
            self.index
        }

        /// Completes the receive. The receiver argument mirrors crossbeam's
        /// API; the message was already captured at selection time.
        pub fn recv(self, _rx: &Receiver<T>) -> Result<T, RecvError> {
            self.result
        }
    }
}

// ---------------------------------------------------------------------------
// Threads
// ---------------------------------------------------------------------------

/// Recording thread spawn/join/yield/sleep: spawn preallocates the child's
/// recorder tid so the parent's spawn event can name it, giving the
/// analyzer parent-to-child-start and child-end-to-join edges.
pub mod thread {
    use crate::record::{self, RecOp};

    /// Handle to a spawned thread; logs the join edge.
    pub struct JoinHandle<T> {
        inner: std::thread::JoinHandle<T>,
        child: u64,
    }

    /// Spawns a thread, logging the spawn edge to the child's tid.
    #[inline]
    #[track_caller]
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let child = record::preallocate_tid();
        record::ev(RecOp::Spawn(child), 0);
        let inner = std::thread::spawn(move || {
            record::adopt_tid(child);
            record::ev(RecOp::ThreadStart, 0);
            let v = f();
            record::ev(RecOp::ThreadEnd, 0);
            v
        });
        JoinHandle { inner, child }
    }

    impl<T> JoinHandle<T> {
        /// Waits for the thread to finish, logging the join edge.
        #[inline]
        #[track_caller]
        pub fn join(self) -> std::thread::Result<T> {
            let r = self.inner.join();
            record::ev(RecOp::Join(self.child), 0);
            r
        }
    }

    /// Yields the current thread's timeslice.
    pub fn yield_now() {
        std::thread::yield_now();
    }

    /// Blocks the current thread for `d` (the facade sleep lint rule 8
    /// steers runtime crates through — virtualized in `model` builds).
    pub fn sleep(d: std::time::Duration) {
        std::thread::sleep(d);
    }
}
