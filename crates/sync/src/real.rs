//! Real-build surface: transparent re-exports.
//!
//! Nothing here defines a type — the facade names *are* the underlying
//! `parking_lot` / `std` / `crossbeam` types, so real builds pay nothing
//! for routing imports through dooc-sync. The `model` build replaces this
//! module with `modeled`, which defines wrapper types under the same paths.

pub use parking_lot::{
    Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard, WaitTimeoutResult,
};

/// Atomic integers and `Ordering`, re-exported from `std::sync::atomic`.
pub mod atomic {
    pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
}

/// Bounded/unbounded MPMC channels and the typed `Select` multiplexer,
/// re-exported from the (vendored) crossbeam channel implementation.
pub mod channel {
    pub use crossbeam::channel::{
        bounded, unbounded, Receiver, RecvError, RecvTimeoutError, Select, SelectTimeoutError,
        SelectedOperation, SendError, Sender, TryRecvError,
    };
}

/// Thread spawn/join/yield/sleep, re-exported from `std::thread`. Runtime
/// crates must block through this facade path (dooc-check lint rule 8) so
/// `model` builds can virtualize the wait.
pub mod thread {
    pub use std::thread::{sleep, spawn, yield_now, JoinHandle};
}
