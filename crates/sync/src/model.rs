//! Deterministic cooperative scheduler backing the `model` build.
//!
//! An *execution* ([`run`]) owns a set of virtual tasks. Each task is a real
//! OS thread, but a baton protocol guarantees exactly one runs at a time:
//! every visible operation of a facade primitive (mutex lock, channel
//! send/recv, atomic access, spawn/join, explicit yield) first calls
//! [`Exec::yield_point`], which hands the baton to whichever runnable task
//! the execution's [`Chooser`] picks. Because the only nondeterminism is the
//! chooser's decisions, an interleaving is fully described by the sequence
//! of choices — the exploration engine in dooc-check records that sequence
//! as a schedule token and replays it exactly.
//!
//! Blocking is virtual: a task whose operation cannot proceed registers a
//! [`BlockReason`] and leaves the runnable set; the task that later makes
//! the operation possible (unlock, enqueue, notify, finish) flips it back.
//! If no task is runnable and not all have finished, the execution fails
//! with a deadlock report naming each blocked task and why. A panic in any
//! task (assertion failures included) fails the execution and unwinds the
//! remaining tasks.
//!
//! Scheduling points are placed *before* each visible operation. A context
//! switch between an operation and the invisible straight-line code after it
//! is indistinguishable from switching at the next visible operation, so
//! this placement loses no behaviors (standard partial-order argument) while
//! keeping the decision space small.

use parking_lot::{Condvar, Mutex};
use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Once};

/// Index of a virtual task within its execution (spawn order, main = 0).
pub type TaskId = usize;

/// A visible operation a task is about to perform. The `usize` payloads are
/// stable-per-execution object identities (the primitive's address), used by
/// the exploration engine's independence relation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// First scheduling of a task.
    Start,
    /// Explicit `thread::yield_now`.
    Yield,
    /// Mutex acquisition (facade `Mutex` or the mutex inside `OrderedMutex`).
    MutexLock(usize),
    /// Shared RwLock acquisition.
    RwRead(usize),
    /// Exclusive RwLock acquisition.
    RwWrite(usize),
    /// Condvar wait (releases the paired mutex until notified).
    CvWait(usize),
    /// Atomic read (independent of other reads of the same object).
    AtomicLoad(usize),
    /// Atomic write or read-modify-write.
    AtomicRmw(usize),
    /// Channel enqueue.
    ChanSend(usize),
    /// Channel dequeue (blocking, try, or timeout variants).
    ChanRecv(usize),
    /// Multi-channel select (conservatively dependent with everything).
    ChanSelect,
    /// Join on another task.
    Join(TaskId),
}

impl Op {
    /// The object this operation touches, when it has a single one.
    pub fn obj(&self) -> Option<usize> {
        match self {
            Op::MutexLock(a)
            | Op::RwRead(a)
            | Op::RwWrite(a)
            | Op::CvWait(a)
            | Op::AtomicLoad(a)
            | Op::AtomicRmw(a)
            | Op::ChanSend(a)
            | Op::ChanRecv(a) => Some(*a),
            Op::Start | Op::Yield | Op::ChanSelect | Op::Join(_) => None,
        }
    }
}

/// Conservative dependence relation for partial-order reduction: two ops
/// commute iff they touch distinct objects, or the same object read-only.
/// Ops without a single object (`Select`, `Join`, …) never commute.
pub fn ops_dependent(a: &Op, b: &Op) -> bool {
    match (a.obj(), b.obj()) {
        (Some(x), Some(y)) if x != y => false,
        (Some(_), Some(_)) => !matches!(
            (a, b),
            (Op::AtomicLoad(_), Op::AtomicLoad(_)) | (Op::RwRead(_), Op::RwRead(_))
        ),
        _ => true,
    }
}

/// Why a task is not runnable.
#[derive(Clone, Debug)]
pub enum BlockReason {
    /// Waiting for a mutex to be released.
    Mutex(usize),
    /// Waiting for an RwLock to admit this task's access mode.
    RwLock(usize),
    /// Parked on a condvar until notified.
    Condvar(usize),
    /// Channel send blocked on a full bounded queue.
    ChanFull(usize),
    /// Channel receive blocked on an empty queue.
    ChanEmpty(usize),
    /// Select parked across several channels.
    SelectWait(Vec<usize>),
    /// Waiting for another task to finish.
    Join(TaskId),
}

impl std::fmt::Display for BlockReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BlockReason::Mutex(a) => write!(f, "mutex {a:#x}"),
            BlockReason::RwLock(a) => write!(f, "rwlock {a:#x}"),
            BlockReason::Condvar(a) => write!(f, "condvar {a:#x}"),
            BlockReason::ChanFull(a) => write!(f, "channel {a:#x} full"),
            BlockReason::ChanEmpty(a) => write!(f, "channel {a:#x} empty"),
            BlockReason::SelectWait(_) => write!(f, "select"),
            BlockReason::Join(t) => write!(f, "join task {t}"),
        }
    }
}

/// One executed visible operation, in schedule order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// The task that performed the operation.
    pub task: TaskId,
    /// The operation performed.
    pub op: Op,
}

/// A recorded scheduling decision. Only points where more than one task was
/// runnable are decisions; forced continuations are not recorded, so a
/// schedule token stays compact.
#[derive(Clone, Debug)]
pub struct Decision {
    /// Runnable tasks and the op each would perform, in TaskId order.
    pub enabled: Vec<(TaskId, Op)>,
    /// The task that was running when the decision was taken.
    pub running: Option<TaskId>,
    /// The task the chooser picked.
    pub chosen: TaskId,
}

/// Everything a [`Chooser`] sees at one decision point.
pub struct ChoiceCtx<'a> {
    /// Runnable tasks and their pending ops, in TaskId order; never empty.
    pub enabled: &'a [(TaskId, Op)],
    /// The previously running task (still in `enabled` unless it blocked).
    pub running: Option<TaskId>,
    /// Zero-based index of this decision within the execution.
    pub index: usize,
}

/// Scheduling policy: picks which runnable task runs next. Implemented by
/// the exploration engine (random walk, DFS, token replay).
pub trait Chooser: Send {
    /// Returns the `TaskId` to run next; must be one of `ctx.enabled`.
    fn choose(&mut self, ctx: &ChoiceCtx<'_>) -> TaskId;
}

/// How an execution failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// A task panicked (assertion failure, explicit panic, …).
    Panic,
    /// No task runnable while some were still blocked.
    Deadlock,
    /// The execution exceeded its step budget (livelock guard).
    StepLimit,
    /// The happens-before race detector reported conflicting unordered
    /// accesses in this execution's recorded sync-event log (attached by
    /// the dooc-check explorer when race checking is on; the scheduler
    /// itself never produces this).
    Race,
}

/// A failed execution's verdict, with a human-readable message.
#[derive(Clone, Debug)]
pub struct Failure {
    /// Broad class of the failure.
    pub kind: FailureKind,
    /// Details: panic payload, per-task block reasons, or the step budget.
    pub message: String,
}

/// The full record of one execution.
#[derive(Debug)]
pub struct RunOutcome {
    /// Every visible operation, in the order it ran.
    pub events: Vec<Event>,
    /// Every recorded (multi-choice) scheduling decision.
    pub decisions: Vec<Decision>,
    /// `Some` if the execution panicked, deadlocked, or hit the step limit.
    pub failure: Option<Failure>,
}

/// Knobs for a single execution.
#[derive(Clone, Copy, Debug)]
pub struct RunOpts {
    /// Visible-operation budget before the run fails with `StepLimit`.
    pub max_steps: u64,
}

impl Default for RunOpts {
    fn default() -> Self {
        Self { max_steps: 200_000 }
    }
}

#[derive(Clone, Debug)]
enum Status {
    Runnable,
    Blocked(BlockReason),
    Finished,
}

struct TaskState {
    status: Status,
    /// The op this task will perform when next scheduled.
    pending: Op,
}

struct ExecState {
    tasks: Vec<TaskState>,
    current: Option<TaskId>,
    /// Tasks not yet `Finished`.
    live: usize,
    chooser: Box<dyn Chooser>,
    decisions: Vec<Decision>,
    events: Vec<Event>,
    failure: Option<Failure>,
    /// Set on failure: wakes every parked task into an [`ExecAbort`] unwind.
    poisoned: bool,
    steps: u64,
    max_steps: u64,
    /// Deterministic object identities: address -> small per-execution
    /// ordinal, assigned in first-touch order. Because the schedule fully
    /// determines first-touch order, ordinals are stable across executions
    /// of the same program under the same schedule, regardless of allocator
    /// layout — which keeps event sequences comparable and the DFS
    /// independence checks meaningful across runs.
    obj_ids: HashMap<usize, usize>,
}

/// Panic payload used to unwind tasks of a poisoned execution; never
/// reported as a user panic.
struct ExecAbort;

pub(crate) struct Exec {
    st: Mutex<ExecState>,
    cv: Condvar,
    /// OS handles for every task thread, joined by [`run`] before returning.
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Exec>, TaskId)>> = const { RefCell::new(None) };
}

/// The execution and task id of the calling thread, if it is a model task.
pub(crate) fn active() -> Option<(Arc<Exec>, TaskId)> {
    CURRENT.with(|c| c.borrow().clone())
}

/// True when called from inside a model task (used by the panic filter).
fn in_model_task() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

/// Count of executions currently wanting task panics kept off stderr.
/// Exploration runs thousands of executions where panics are the *expected*
/// signal; the installed hook drops their default report (the payload is
/// still captured into [`Failure::message`]).
static QUIET: AtomicUsize = AtomicUsize::new(0);

fn install_quiet_hook() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if QUIET.load(Ordering::Relaxed) > 0 && in_model_task() {
                return;
            }
            prev(info);
        }));
    });
}

impl Exec {
    /// Scheduling point: record `op` as pending, let the chooser pick the
    /// next task, and wait for the baton. On return the caller holds the
    /// baton and the op has been logged.
    pub(crate) fn yield_point(self: &Arc<Self>, me: TaskId, op: Op) {
        let mut st = self.st.lock();
        if st.poisoned {
            drop(st);
            std::panic::panic_any(ExecAbort);
        }
        st.steps += 1;
        if st.steps > st.max_steps {
            let max = st.max_steps;
            self.fail(
                &mut st,
                FailureKind::StepLimit,
                format!("execution exceeded {max} visible operations (livelock?)"),
            );
            drop(st);
            std::panic::panic_any(ExecAbort);
        }
        st.tasks[me].pending = op.clone();
        self.schedule(&mut st);
        while !st.poisoned && st.current != Some(me) {
            self.cv.wait(&mut st);
        }
        if st.poisoned {
            drop(st);
            std::panic::panic_any(ExecAbort);
        }
        st.events.push(Event { task: me, op });
    }

    /// Parks the calling task with `reason` until another task unblocks it
    /// *and* the scheduler hands it the baton again.
    pub(crate) fn block(self: &Arc<Self>, me: TaskId, reason: BlockReason) {
        let mut st = self.st.lock();
        if st.poisoned {
            drop(st);
            std::panic::panic_any(ExecAbort);
        }
        st.tasks[me].status = Status::Blocked(reason);
        self.schedule(&mut st);
        loop {
            if st.poisoned {
                drop(st);
                std::panic::panic_any(ExecAbort);
            }
            if st.current == Some(me) && matches!(st.tasks[me].status, Status::Runnable) {
                return;
            }
            self.cv.wait(&mut st);
        }
    }

    /// Marks every blocked task matching `pred` runnable. Not a scheduling
    /// point — the woken tasks compete at the caller's next yield.
    pub(crate) fn unblock_where(&self, pred: impl Fn(&BlockReason) -> bool) {
        let mut st = self.st.lock();
        for t in st.tasks.iter_mut() {
            if let Status::Blocked(r) = &t.status {
                if pred(r) {
                    t.status = Status::Runnable;
                }
            }
        }
    }

    /// Marks one specific blocked task runnable (condvar notify_one).
    pub(crate) fn unblock_task(&self, id: TaskId) {
        let mut st = self.st.lock();
        if let Status::Blocked(_) = st.tasks[id].status {
            st.tasks[id].status = Status::Runnable;
        }
    }

    /// Stable per-execution ordinal for the primitive at `addr` (see
    /// `ExecState::obj_ids`).
    pub(crate) fn obj_id(&self, addr: usize) -> usize {
        let mut st = self.st.lock();
        let next = st.obj_ids.len();
        *st.obj_ids.entry(addr).or_insert(next)
    }

    /// Registers a new task; the spawner keeps the baton.
    fn add_task(&self) -> TaskId {
        let mut st = self.st.lock();
        let id = st.tasks.len();
        st.tasks.push(TaskState {
            status: Status::Runnable,
            pending: Op::Start,
        });
        st.live += 1;
        id
    }

    /// Task epilogue: record a panic (if any), wake joiners, pass the baton.
    fn finish_task(self: &Arc<Self>, me: TaskId, panic_msg: Option<String>) {
        let mut st = self.st.lock();
        st.tasks[me].status = Status::Finished;
        st.live -= 1;
        if let Some(msg) = panic_msg {
            self.fail(&mut st, FailureKind::Panic, msg);
        }
        for t in st.tasks.iter_mut() {
            if let Status::Blocked(BlockReason::Join(target)) = t.status {
                if target == me {
                    t.status = Status::Runnable;
                }
            }
        }
        if st.current == Some(me) {
            self.schedule(&mut st);
        }
        self.cv.notify_all();
    }

    /// Picks the next task to run. Reports a deadlock if nothing is
    /// runnable while unfinished tasks remain.
    fn schedule(self: &Arc<Self>, st: &mut ExecState) {
        if st.poisoned {
            self.cv.notify_all();
            return;
        }
        let enabled: Vec<(TaskId, Op)> = st
            .tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| matches!(t.status, Status::Runnable))
            .map(|(id, t)| (id, t.pending.clone()))
            .collect();
        if enabled.is_empty() {
            if st.live == 0 {
                st.current = None;
            } else {
                let mut msg = String::from("deadlock:");
                for (id, t) in st.tasks.iter().enumerate() {
                    if let Status::Blocked(r) = &t.status {
                        msg.push_str(&format!(" task {id} blocked on {r};"));
                    }
                }
                self.fail(st, FailureKind::Deadlock, msg);
            }
            self.cv.notify_all();
            return;
        }
        let chosen = if enabled.len() == 1 {
            enabled[0].0
        } else {
            let ctx = ChoiceCtx {
                enabled: &enabled,
                running: st.current,
                index: st.decisions.len(),
            };
            let chosen = st.chooser.choose(&ctx);
            assert!(
                enabled.iter().any(|&(id, _)| id == chosen),
                "chooser picked task {chosen} which is not enabled"
            );
            st.decisions.push(Decision {
                enabled: enabled.clone(),
                running: st.current,
                chosen,
            });
            chosen
        };
        st.current = Some(chosen);
        self.cv.notify_all();
    }

    /// Records the first failure and poisons the execution.
    fn fail(&self, st: &mut ExecState, kind: FailureKind, message: String) {
        if st.failure.is_none() {
            st.failure = Some(Failure { kind, message });
        }
        st.poisoned = true;
        self.cv.notify_all();
    }
}

fn payload_to_string(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Body shared by the main task and spawned tasks: wait for the first
/// baton grant, run the closure, report the outcome.
fn task_main(exec: Arc<Exec>, id: TaskId, f: Box<dyn FnOnce() + Send>) {
    CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&exec), id)));
    {
        let mut st = exec.st.lock();
        while !st.poisoned && st.current != Some(id) {
            exec.cv.wait(&mut st);
        }
        if st.poisoned {
            drop(st);
            exec.finish_task(id, None);
            CURRENT.with(|c| *c.borrow_mut() = None);
            return;
        }
        let op = st.tasks[id].pending.clone();
        st.events.push(Event { task: id, op });
    }
    let result = catch_unwind(AssertUnwindSafe(f));
    let panic_msg = match result {
        Ok(()) => None,
        Err(p) if p.is::<ExecAbort>() => None,
        Err(p) => Some(payload_to_string(p.as_ref())),
    };
    exec.finish_task(id, panic_msg);
    CURRENT.with(|c| *c.borrow_mut() = None);
}

/// Spawns a task inside the current execution. Exposed to the facade
/// `thread::spawn` wrapper; panics if called outside a model task.
pub(crate) fn spawn_task(f: Box<dyn FnOnce() + Send>) -> TaskId {
    let (exec, _me) = active().expect("model spawn_task outside an execution");
    let id = exec.add_task();
    let exec2 = Arc::clone(&exec);
    let os = std::thread::Builder::new()
        .name(format!("dooc-model-{id}"))
        .spawn(move || task_main(exec2, id, f))
        .expect("spawn model task thread");
    exec.handles.lock().push(os);
    id
}

/// Blocks the calling task until `target` finishes (virtual join).
pub(crate) fn join_task(target: TaskId) {
    let (exec, me) = active().expect("model join outside an execution");
    exec.yield_point(me, Op::Join(target));
    loop {
        {
            let st = exec.st.lock();
            if matches!(st.tasks[target].status, Status::Finished) {
                return;
            }
        }
        exec.block(me, BlockReason::Join(target));
    }
}

/// Runs `f` as task 0 of a fresh execution under `chooser`, returning the
/// complete schedule record. All tasks spawned by `f` (transitively) must
/// finish — or block, which is then reported as a deadlock — before this
/// returns; every OS thread is joined. Nesting executions is not allowed.
pub fn run(
    opts: RunOpts,
    chooser: Box<dyn Chooser>,
    f: impl FnOnce() + Send + 'static,
) -> RunOutcome {
    assert!(
        !in_model_task(),
        "model::run cannot be nested inside an execution"
    );
    install_quiet_hook();
    QUIET.fetch_add(1, Ordering::Relaxed);
    let exec = Arc::new(Exec {
        st: Mutex::new(ExecState {
            tasks: vec![TaskState {
                status: Status::Runnable,
                pending: Op::Start,
            }],
            current: Some(0),
            live: 1,
            chooser,
            decisions: Vec::new(),
            events: Vec::new(),
            failure: None,
            poisoned: false,
            steps: 0,
            max_steps: opts.max_steps,
            obj_ids: HashMap::new(),
        }),
        cv: Condvar::new(),
        handles: Mutex::new(Vec::new()),
    });
    let exec2 = Arc::clone(&exec);
    let main = std::thread::Builder::new()
        .name("dooc-model-0".to_string())
        .spawn(move || task_main(exec2, 0, Box::new(f)))
        .expect("spawn model main thread");
    exec.handles.lock().push(main);
    // Wait for every task to finish (normally or via poison unwind).
    {
        let mut st = exec.st.lock();
        while st.live > 0 {
            exec.cv.wait(&mut st);
        }
    }
    // Join the OS threads so no task outlives its execution. New tasks
    // cannot appear once live == 0 (only live tasks spawn).
    loop {
        let drained: Vec<_> = exec.handles.lock().drain(..).collect();
        if drained.is_empty() {
            break;
        }
        for h in drained {
            let _ = h.join();
        }
    }
    QUIET.fetch_sub(1, Ordering::Relaxed);
    let st = exec.st.lock();
    RunOutcome {
        events: st.events.clone(),
        decisions: st.decisions.clone(),
        failure: st.failure.clone(),
    }
}

/// Virtual channel state shared by the modeled channel wrappers; lives here
/// so the engine and wrappers agree on blocking/wakeup protocol.
pub(crate) struct VirtState<T> {
    pub(crate) queue: std::collections::VecDeque<T>,
    /// `None` = unbounded.
    pub(crate) cap: Option<usize>,
    pub(crate) senders: usize,
    pub(crate) receivers: usize,
}

pub(crate) struct VirtChan<T> {
    pub(crate) st: Mutex<VirtState<T>>,
}

impl<T> VirtChan<T> {
    pub(crate) fn new(cap: Option<usize>) -> Self {
        Self {
            st: Mutex::new(VirtState {
                queue: std::collections::VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
            }),
        }
    }
}

/// Wakes tasks parked waiting for data on channel `addr` (receivers and
/// selects watching it).
pub(crate) fn wake_channel_readers(exec: &Exec, addr: usize) {
    exec.unblock_where(|r| match r {
        BlockReason::ChanEmpty(a) => *a == addr,
        BlockReason::SelectWait(addrs) => addrs.contains(&addr),
        _ => false,
    });
}

/// Wakes tasks parked waiting for space on channel `addr`.
pub(crate) fn wake_channel_writers(exec: &Exec, addr: usize) {
    exec.unblock_where(|r| matches!(r, BlockReason::ChanFull(a) if *a == addr));
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Always picks the lowest-id enabled task.
    struct FirstChooser;
    impl Chooser for FirstChooser {
        fn choose(&mut self, ctx: &ChoiceCtx<'_>) -> TaskId {
            ctx.enabled[0].0
        }
    }

    #[test]
    fn empty_execution_completes() {
        let out = run(RunOpts::default(), Box::new(FirstChooser), || {});
        assert!(out.failure.is_none());
        assert_eq!(out.events.len(), 1); // Start of task 0
    }

    #[test]
    fn panic_is_captured_as_failure() {
        let out = run(RunOpts::default(), Box::new(FirstChooser), || {
            panic!("boom-{}", 42);
        });
        let f = out.failure.expect("panic must fail the run");
        assert_eq!(f.kind, FailureKind::Panic);
        assert!(f.message.contains("boom-42"), "message: {}", f.message);
    }
}
