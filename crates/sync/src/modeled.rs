//! `model`-build wrapper types, path-compatible with the `real` module.
//!
//! Each primitive checks whether the calling thread is a task of a
//! [`model::run`](crate::model::run) execution. Inside one, every visible
//! operation goes through the execution's scheduler: yield before the op,
//! virtual blocking instead of OS blocking, explicit wakeups. Outside an
//! execution the wrappers delegate to the real primitives, so `model`
//! builds still behave correctly in ordinary tests.
//!
//! Contracts that differ from real builds (all checked or documented):
//!
//! * Channels are given a *flavor* at creation time: created inside an
//!   execution they are virtual (explorable), outside they are real. Using
//!   a real channel inside an execution, or a virtual one outside, panics
//!   with a diagnostic — mixing would let a task block the whole execution
//!   on an OS wait the scheduler cannot see.
//! * There is no virtual clock: `recv_timeout`, `select_timeout` and
//!   `Condvar::wait_for` never time out inside an execution; a wait that
//!   can only end by timeout surfaces as a reported deadlock instead.
//! * A panic in any task fails the whole execution (the exploration
//!   engine's detection signal), rather than being contained to `join`.

use crate::model::{self, BlockReason, Op, TaskId};
use crate::record::{self, RecOp};
use parking_lot as pl;
use std::ops::{Deref, DerefMut};
use std::panic::Location;
use std::sync::Arc;

fn addr_of<T: ?Sized>(r: &T) -> usize {
    r as *const T as *const () as usize
}

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// Model-aware mutex: virtual ownership inside an execution, delegation to
/// the real mutex outside.
pub struct Mutex<T> {
    /// Virtual owner, maintained only for model-scheduled acquisitions.
    owner: pl::Mutex<Option<TaskId>>,
    data: pl::Mutex<T>,
}

/// RAII guard for the model-aware [`Mutex`].
///
/// The real guard is `Option`-wrapped so [`Condvar::wait`] can release and
/// re-take it; it is `Some` whenever user code can observe the guard.
pub struct MutexGuard<'a, T> {
    mx: &'a Mutex<T>,
    inner: Option<pl::MutexGuard<'a, T>>,
    /// `Some` when acquired under a scheduler: the execution to notify on
    /// release, plus this mutex's stable object id.
    model: Option<(Arc<model::Exec>, usize)>,
    /// Acquisition site, reused for the recorded release event.
    site: record::Site,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            owner: pl::Mutex::new(None),
            data: pl::Mutex::new(value),
        }
    }

    /// Acquires the lock; a scheduling point inside an execution.
    #[track_caller]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let site = Location::caller();
        if let Some((exec, me)) = model::active() {
            let oid = exec.obj_id(addr_of(self));
            exec.yield_point(me, Op::MutexLock(oid));
            self.lock_logical(&exec, me, oid);
            let inner = self
                .data
                .try_lock()
                .expect("model mutex data free once virtually granted");
            record::ev_at(RecOp::LockAcq, addr_of(self), site);
            return MutexGuard {
                mx: self,
                inner: Some(inner),
                model: Some((exec, oid)),
                site,
            };
        }
        let inner = self.data.lock();
        record::ev_at(RecOp::LockAcq, addr_of(self), site);
        MutexGuard {
            mx: self,
            inner: Some(inner),
            model: None,
            site,
        }
    }

    /// Attempts the lock without (virtually) blocking.
    #[track_caller]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let site = Location::caller();
        if let Some((exec, me)) = model::active() {
            let oid = exec.obj_id(addr_of(self));
            exec.yield_point(me, Op::MutexLock(oid));
            let mut owner = self.owner.lock();
            if owner.is_some() {
                return None;
            }
            *owner = Some(me);
            drop(owner);
            let inner = self
                .data
                .try_lock()
                .expect("model mutex data free once virtually granted");
            record::ev_at(RecOp::LockAcq, addr_of(self), site);
            return Some(MutexGuard {
                mx: self,
                inner: Some(inner),
                model: Some((exec, oid)),
                site,
            });
        }
        self.data.try_lock().map(|inner| {
            record::ev_at(RecOp::LockAcq, addr_of(self), site);
            MutexGuard {
                mx: self,
                inner: Some(inner),
                model: None,
                site,
            }
        })
    }

    /// Virtual acquisition loop: take ownership or park until released.
    fn lock_logical(&self, exec: &Arc<model::Exec>, me: TaskId, oid: usize) {
        loop {
            {
                let mut owner = self.owner.lock();
                if owner.is_none() {
                    *owner = Some(me);
                    return;
                }
            }
            exec.block(me, BlockReason::Mutex(oid));
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Mutex {{ .. }}")
    }
}

impl<'a, T> MutexGuard<'a, T> {
    /// Releases both the real and the virtual lock (condvar wait path).
    fn release_for_wait(&mut self) {
        self.inner = None;
        if let Some((exec, oid)) = &self.model {
            *self.mx.owner.lock() = None;
            exec.unblock_where(|r| matches!(r, BlockReason::Mutex(a) if a == oid));
        }
    }

    /// Re-acquires after a condvar wait (virtual then real).
    fn reacquire_after_wait(&mut self, me: TaskId) {
        if let Some((exec, oid)) = self.model.clone() {
            self.mx.lock_logical(&exec, me, oid);
            self.inner = Some(
                self.mx
                    .data
                    .try_lock()
                    .expect("model mutex data free once virtually granted"),
            );
        }
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard present outside wait")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_deref_mut()
            .expect("guard present outside wait")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release event before the release itself (linearization contract),
        // unless the guard is parked in a condvar wait (inner already None,
        // release recorded by the wait path).
        if self.inner.is_some() {
            record::ev_at(RecOp::LockRel, addr_of(self.mx), self.site);
        }
        // Release the real lock first, then the virtual ownership, so the
        // next virtually-granted owner finds the data lock free.
        self.inner = None;
        if let Some((exec, oid)) = self.model.take() {
            *self.mx.owner.lock() = None;
            exec.unblock_where(|r| matches!(r, BlockReason::Mutex(a) if *a == oid));
        }
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

struct RwCtl {
    writer: Option<TaskId>,
    readers: Vec<TaskId>,
}

/// Model-aware reader-writer lock (virtual admission inside an execution).
pub struct RwLock<T> {
    ctl: pl::Mutex<RwCtl>,
    data: pl::RwLock<T>,
}

/// Shared-read RAII guard for the model-aware [`RwLock`].
pub struct RwLockReadGuard<'a, T> {
    lk: &'a RwLock<T>,
    inner: Option<pl::RwLockReadGuard<'a, T>>,
    model: Option<(Arc<model::Exec>, usize, TaskId)>,
    site: record::Site,
}

/// Exclusive-write RAII guard for the model-aware [`RwLock`].
pub struct RwLockWriteGuard<'a, T> {
    lk: &'a RwLock<T>,
    inner: Option<pl::RwLockWriteGuard<'a, T>>,
    model: Option<(Arc<model::Exec>, usize)>,
    site: record::Site,
}

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            ctl: pl::Mutex::new(RwCtl {
                writer: None,
                readers: Vec::new(),
            }),
            data: pl::RwLock::new(value),
        }
    }

    /// Acquires a shared read lock; a scheduling point inside an execution.
    #[track_caller]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let site = Location::caller();
        if let Some((exec, me)) = model::active() {
            let oid = exec.obj_id(addr_of(self));
            exec.yield_point(me, Op::RwRead(oid));
            loop {
                {
                    let mut ctl = self.ctl.lock();
                    if ctl.writer.is_none() {
                        ctl.readers.push(me);
                        break;
                    }
                }
                exec.block(me, BlockReason::RwLock(oid));
            }
            record::ev_at(RecOp::ReadAcq, addr_of(self), site);
            return RwLockReadGuard {
                lk: self,
                inner: Some(self.data.read()),
                model: Some((exec, oid, me)),
                site,
            };
        }
        let inner = self.data.read();
        record::ev_at(RecOp::ReadAcq, addr_of(self), site);
        RwLockReadGuard {
            lk: self,
            inner: Some(inner),
            model: None,
            site,
        }
    }

    /// Acquires an exclusive write lock; a scheduling point inside an
    /// execution.
    #[track_caller]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let site = Location::caller();
        if let Some((exec, me)) = model::active() {
            let oid = exec.obj_id(addr_of(self));
            exec.yield_point(me, Op::RwWrite(oid));
            loop {
                {
                    let mut ctl = self.ctl.lock();
                    if ctl.writer.is_none() && ctl.readers.is_empty() {
                        ctl.writer = Some(me);
                        break;
                    }
                }
                exec.block(me, BlockReason::RwLock(oid));
            }
            record::ev_at(RecOp::WriteAcq, addr_of(self), site);
            return RwLockWriteGuard {
                lk: self,
                inner: Some(self.data.write()),
                model: Some((exec, oid)),
                site,
            };
        }
        let inner = self.data.write();
        record::ev_at(RecOp::WriteAcq, addr_of(self), site);
        RwLockWriteGuard {
            lk: self,
            inner: Some(inner),
            model: None,
            site,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RwLock {{ .. }}")
    }
}

impl<T> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard present")
    }
}

impl<T> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard present")
    }
}

impl<T> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("guard present")
    }
}

impl<T> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        record::ev_at(RecOp::ReadRel, addr_of(self.lk), self.site);
        self.inner = None;
        if let Some((exec, oid, me)) = self.model.take() {
            let mut ctl = self.lk.ctl.lock();
            if let Some(i) = ctl.readers.iter().position(|&r| r == me) {
                ctl.readers.remove(i);
            }
            drop(ctl);
            exec.unblock_where(|r| matches!(r, BlockReason::RwLock(a) if *a == oid));
        }
    }
}

impl<T> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        record::ev_at(RecOp::WriteRel, addr_of(self.lk), self.site);
        self.inner = None;
        if let Some((exec, oid)) = self.model.take() {
            self.lk.ctl.lock().writer = None;
            exec.unblock_where(|r| matches!(r, BlockReason::RwLock(a) if *a == oid));
        }
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// Result of [`Condvar::wait_for`]: whether the wait hit its timeout.
/// Inside an execution waits never time out (no virtual clock).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait returned because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Model-aware condition variable paired with the facade [`Mutex`].
pub struct Condvar {
    real: pl::Condvar,
    /// FIFO of parked tasks, for deterministic notify_one.
    waiters: pl::Mutex<Vec<TaskId>>,
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self {
            real: pl::Condvar::new(),
            waiters: pl::Mutex::new(Vec::new()),
        }
    }

    /// Atomically releases the guard's mutex and parks until notified,
    /// reacquiring the mutex before returning. A scheduling point.
    #[track_caller]
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let site = Location::caller();
        record::ev_at(RecOp::LockRel, addr_of(guard.mx), site);
        match model::active() {
            Some((exec, me)) if guard.model.is_some() => {
                let oid = exec.obj_id(addr_of(self));
                exec.yield_point(me, Op::CvWait(oid));
                self.waiters.lock().push(me);
                guard.release_for_wait();
                exec.block(me, BlockReason::Condvar(oid));
                guard.reacquire_after_wait(me);
            }
            _ => {
                self.real
                    .wait(guard.inner.as_mut().expect("guard present outside wait"));
            }
        }
        record::ev_at(RecOp::CvWaitReturn, addr_of(self), site);
        record::ev_at(RecOp::LockAcq, addr_of(guard.mx), site);
    }

    /// Like [`wait`](Self::wait) with an upper bound on the blocking time.
    /// Inside an execution the timeout never fires (documented above).
    #[track_caller]
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        match model::active() {
            Some(_) if guard.model.is_some() => {
                self.wait(guard);
                WaitTimeoutResult(false)
            }
            _ => {
                let site = Location::caller();
                record::ev_at(RecOp::LockRel, addr_of(guard.mx), site);
                let res = self.real.wait_for(
                    guard.inner.as_mut().expect("guard present outside wait"),
                    timeout,
                );
                record::ev_at(RecOp::CvWaitReturn, addr_of(self), site);
                record::ev_at(RecOp::LockAcq, addr_of(guard.mx), site);
                WaitTimeoutResult(res.timed_out())
            }
        }
    }

    /// Wakes the longest-parked waiter (deterministic FIFO in the model).
    #[track_caller]
    pub fn notify_one(&self) {
        record::ev(RecOp::CvNotify, addr_of(self));
        if let Some((exec, _)) = model::active() {
            let mut w = self.waiters.lock();
            if !w.is_empty() {
                let id = w.remove(0);
                drop(w);
                exec.unblock_task(id);
            }
        }
        self.real.notify_one();
    }

    /// Wakes all parked waiters.
    #[track_caller]
    pub fn notify_all(&self) {
        record::ev(RecOp::CvNotify, addr_of(self));
        if let Some((exec, _)) = model::active() {
            let ids: Vec<TaskId> = self.waiters.lock().drain(..).collect();
            for id in ids {
                exec.unblock_task(id);
            }
        }
        self.real.notify_all();
    }
}

// ---------------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------------

/// Model-aware atomic integers: every access is a scheduling point inside
/// an execution; the value itself lives in a real std atomic.
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    use super::addr_of;
    use crate::model::{self, Op};
    use crate::record::{self, AtomicOrd, RecOp};
    use std::panic::Location;

    macro_rules! model_atomic {
        ($name:ident, $std:ty, $prim:ty) => {
            /// Model-aware drop-in for the std atomic of the same name.
            pub struct $name {
                v: $std,
            }

            impl $name {
                /// Creates a new atomic with the given initial value.
                pub const fn new(v: $prim) -> Self {
                    Self { v: <$std>::new(v) }
                }

                fn yield_load(&self) {
                    if let Some((exec, me)) = model::active() {
                        let oid = exec.obj_id(addr_of(self));
                        exec.yield_point(me, Op::AtomicLoad(oid));
                    }
                }

                fn yield_rmw(&self) {
                    if let Some((exec, me)) = model::active() {
                        let oid = exec.obj_id(addr_of(self));
                        exec.yield_point(me, Op::AtomicRmw(oid));
                    }
                }

                /// Records an armed atomic op together with the op itself
                /// under the global recording mutex (linearization contract
                /// of `crate::record`); runs the op directly when disarmed.
                fn recorded(
                    &self,
                    op: RecOp,
                    site: record::Site,
                    f: impl FnOnce(&$std) -> $prim,
                ) -> $prim {
                    if record::armed() {
                        let _g = record::atomic_section();
                        let v = f(&self.v);
                        record::ev_at(op, addr_of(self), site);
                        return v;
                    }
                    f(&self.v)
                }

                /// Atomic load; a scheduling point inside an execution.
                #[track_caller]
                pub fn load(&self, o: Ordering) -> $prim {
                    let site = Location::caller();
                    self.yield_load();
                    self.recorded(RecOp::AtomicLoad(AtomicOrd::of(o)), site, |v| v.load(o))
                }

                /// Atomic store; a scheduling point inside an execution.
                #[track_caller]
                pub fn store(&self, val: $prim, o: Ordering) {
                    let site = Location::caller();
                    self.yield_rmw();
                    self.recorded(RecOp::AtomicStore(AtomicOrd::of(o)), site, |v| {
                        v.store(val, o);
                        val
                    });
                }

                /// Atomic swap; a scheduling point inside an execution.
                #[track_caller]
                pub fn swap(&self, val: $prim, o: Ordering) -> $prim {
                    let site = Location::caller();
                    self.yield_rmw();
                    self.recorded(RecOp::AtomicRmw(AtomicOrd::of(o)), site, |v| v.swap(val, o))
                }

                /// Atomic add, returning the previous value.
                #[track_caller]
                pub fn fetch_add(&self, val: $prim, o: Ordering) -> $prim {
                    let site = Location::caller();
                    self.yield_rmw();
                    self.recorded(RecOp::AtomicRmw(AtomicOrd::of(o)), site, |v| {
                        v.fetch_add(val, o)
                    })
                }

                /// Atomic subtract, returning the previous value.
                #[track_caller]
                pub fn fetch_sub(&self, val: $prim, o: Ordering) -> $prim {
                    let site = Location::caller();
                    self.yield_rmw();
                    self.recorded(RecOp::AtomicRmw(AtomicOrd::of(o)), site, |v| {
                        v.fetch_sub(val, o)
                    })
                }

                /// Atomic max, returning the previous value.
                #[track_caller]
                pub fn fetch_max(&self, val: $prim, o: Ordering) -> $prim {
                    let site = Location::caller();
                    self.yield_rmw();
                    self.recorded(RecOp::AtomicRmw(AtomicOrd::of(o)), site, |v| {
                        v.fetch_max(val, o)
                    })
                }

                /// Atomic min, returning the previous value.
                #[track_caller]
                pub fn fetch_min(&self, val: $prim, o: Ordering) -> $prim {
                    let site = Location::caller();
                    self.yield_rmw();
                    self.recorded(RecOp::AtomicRmw(AtomicOrd::of(o)), site, |v| {
                        v.fetch_min(val, o)
                    })
                }

                /// Atomic compare-exchange (a successful exchange records
                /// as an rmw, a failed one as a load of the failure
                /// ordering).
                #[track_caller]
                pub fn compare_exchange(
                    &self,
                    current: $prim,
                    new: $prim,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$prim, $prim> {
                    let site = Location::caller();
                    self.yield_rmw();
                    if record::armed() {
                        let _g = record::atomic_section();
                        let r = self.v.compare_exchange(current, new, success, failure);
                        let op = match r {
                            Ok(_) => RecOp::AtomicRmw(AtomicOrd::of(success)),
                            Err(_) => RecOp::AtomicLoad(AtomicOrd::of(failure)),
                        };
                        record::ev_at(op, addr_of(self), site);
                        return r;
                    }
                    self.v.compare_exchange(current, new, success, failure)
                }

                /// Mutable access without synchronization.
                pub fn get_mut(&mut self) -> &mut $prim {
                    self.v.get_mut()
                }

                /// Consumes the atomic, returning the value.
                pub fn into_inner(self) -> $prim {
                    self.v.into_inner()
                }
            }

            impl Default for $name {
                fn default() -> Self {
                    Self::new(<$prim>::default())
                }
            }

            impl std::fmt::Debug for $name {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    // No scheduling point: Debug must stay side-effect free.
                    write!(f, "{:?}", self.v)
                }
            }
        };
    }

    model_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
    model_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);

    /// Model-aware drop-in for `std::sync::atomic::AtomicBool`.
    pub struct AtomicBool {
        v: std::sync::atomic::AtomicBool,
    }

    impl AtomicBool {
        /// Creates a new atomic with the given initial value.
        pub const fn new(v: bool) -> Self {
            Self {
                v: std::sync::atomic::AtomicBool::new(v),
            }
        }

        /// See the `model_atomic!` helper of the same name.
        fn recorded(
            &self,
            op: RecOp,
            site: record::Site,
            f: impl FnOnce(&std::sync::atomic::AtomicBool) -> bool,
        ) -> bool {
            if record::armed() {
                let _g = record::atomic_section();
                let v = f(&self.v);
                record::ev_at(op, addr_of(self), site);
                return v;
            }
            f(&self.v)
        }

        /// Atomic load; a scheduling point inside an execution.
        #[track_caller]
        pub fn load(&self, o: Ordering) -> bool {
            let site = Location::caller();
            if let Some((exec, me)) = model::active() {
                let oid = exec.obj_id(addr_of(self));
                exec.yield_point(me, Op::AtomicLoad(oid));
            }
            self.recorded(RecOp::AtomicLoad(AtomicOrd::of(o)), site, |v| v.load(o))
        }

        /// Atomic store; a scheduling point inside an execution.
        #[track_caller]
        pub fn store(&self, val: bool, o: Ordering) {
            let site = Location::caller();
            if let Some((exec, me)) = model::active() {
                let oid = exec.obj_id(addr_of(self));
                exec.yield_point(me, Op::AtomicRmw(oid));
            }
            self.recorded(RecOp::AtomicStore(AtomicOrd::of(o)), site, |v| {
                v.store(val, o);
                val
            });
        }

        /// Atomic swap; a scheduling point inside an execution.
        #[track_caller]
        pub fn swap(&self, val: bool, o: Ordering) -> bool {
            let site = Location::caller();
            if let Some((exec, me)) = model::active() {
                let oid = exec.obj_id(addr_of(self));
                exec.yield_point(me, Op::AtomicRmw(oid));
            }
            self.recorded(RecOp::AtomicRmw(AtomicOrd::of(o)), site, |v| v.swap(val, o))
        }
    }

    impl Default for AtomicBool {
        fn default() -> Self {
            Self::new(false)
        }
    }

    impl std::fmt::Debug for AtomicBool {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{:?}", self.v)
        }
    }
}

// ---------------------------------------------------------------------------
// Channels
// ---------------------------------------------------------------------------

/// Model-aware MPMC channels, path-compatible with the real `channel`
/// module. Flavor is fixed at creation: virtual inside an execution, real
/// outside (see the module docs for the mixing contract).
pub mod channel {
    pub use crossbeam::channel::{
        RecvError, RecvTimeoutError, SelectTimeoutError, SendError, TryRecvError,
    };

    use crate::model::{self, BlockReason, Op, VirtChan};
    use crate::record::{self, RecOp};
    use std::panic::Location;
    use std::sync::Arc;
    use std::time::Duration;

    fn chan_oid<T>(exec: &model::Exec, ch: &Arc<VirtChan<T>>) -> usize {
        exec.obj_id(Arc::as_ptr(ch) as usize)
    }

    /// Recorder object id for a virtual channel: the shared state address.
    /// (Real-flavor halves are never recorded in model builds — the
    /// explorer only records inside executions, where channels are Virt.)
    fn chan_rid<T>(ch: &Arc<VirtChan<T>>) -> usize {
        Arc::as_ptr(ch) as usize
    }

    enum SenderFlavor<T> {
        Real(crossbeam::channel::Sender<T>),
        Virt(Arc<VirtChan<T>>),
    }

    enum ReceiverFlavor<T> {
        Real(crossbeam::channel::Receiver<T>),
        Virt(Arc<VirtChan<T>>),
    }

    /// Sending half of a channel; cloneable.
    pub struct Sender<T> {
        f: SenderFlavor<T>,
    }

    /// Receiving half of a channel; cloneable (clones share the queue).
    pub struct Receiver<T> {
        f: ReceiverFlavor<T>,
    }

    /// Creates a bounded channel with capacity `cap`; virtual when created
    /// inside a model execution.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        new_chan(Some(cap))
    }

    /// Creates an unbounded channel; virtual inside a model execution.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        new_chan(None)
    }

    fn new_chan<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        if model::active().is_some() {
            let ch = Arc::new(VirtChan::new(cap));
            (
                Sender {
                    f: SenderFlavor::Virt(Arc::clone(&ch)),
                },
                Receiver {
                    f: ReceiverFlavor::Virt(ch),
                },
            )
        } else {
            let (tx, rx) = match cap {
                Some(c) => crossbeam::channel::bounded(c),
                None => crossbeam::channel::unbounded(),
            };
            (
                Sender {
                    f: SenderFlavor::Real(tx),
                },
                Receiver {
                    f: ReceiverFlavor::Real(rx),
                },
            )
        }
    }

    fn real_inside_execution() -> ! {
        panic!(
            "a channel created outside a model execution was used inside one; \
             create channels inside the exploration closure so they are \
             virtually scheduled"
        )
    }

    fn virt_outside_execution() -> ! {
        panic!(
            "a virtual channel (created inside a model execution) was used \
             after its execution ended; keep channel use inside the \
             exploration closure"
        )
    }

    impl<T> Sender<T> {
        /// Blocks (virtually, inside an execution) until the value is
        /// enqueued, or fails if all receivers dropped.
        #[track_caller]
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let site = Location::caller();
            match &self.f {
                SenderFlavor::Real(tx) => {
                    if model::active().is_some() {
                        real_inside_execution()
                    }
                    tx.send(value)
                }
                SenderFlavor::Virt(ch) => {
                    let Some((exec, me)) = model::active() else {
                        virt_outside_execution()
                    };
                    let oid = chan_oid(&exec, ch);
                    exec.yield_point(me, Op::ChanSend(oid));
                    let mut value = Some(value);
                    loop {
                        {
                            let mut st = ch.st.lock();
                            if st.receivers == 0 {
                                return Err(SendError(value.take().expect("value unsent")));
                            }
                            let full = st.cap.is_some_and(|c| st.queue.len() >= c);
                            if !full {
                                // Release-flavored: stamped before the
                                // message becomes dequeueable (the queue
                                // lock is still held).
                                record::ev_at(RecOp::ChanSend, chan_rid(ch), site);
                                st.queue.push_back(value.take().expect("value unsent"));
                                drop(st);
                                model::wake_channel_readers(&exec, oid);
                                return Ok(());
                            }
                        }
                        exec.block(me, BlockReason::ChanFull(oid));
                    }
                }
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            match &self.f {
                SenderFlavor::Real(tx) => Sender {
                    f: SenderFlavor::Real(tx.clone()),
                },
                SenderFlavor::Virt(ch) => {
                    ch.st.lock().senders += 1;
                    Sender {
                        f: SenderFlavor::Virt(Arc::clone(ch)),
                    }
                }
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if let SenderFlavor::Virt(ch) = &self.f {
                let remaining = {
                    let mut st = ch.st.lock();
                    st.senders -= 1;
                    st.senders
                };
                if remaining == 0 {
                    // Wake receivers so they observe the disconnect. Safe
                    // during unwinds: no scheduling point, just status flips.
                    if let Some((exec, _)) = model::active() {
                        let oid = chan_oid(&exec, ch);
                        model::wake_channel_readers(&exec, oid);
                    }
                }
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks (virtually, inside an execution) until a message arrives
        /// or every sender is gone.
        #[track_caller]
        pub fn recv(&self) -> Result<T, RecvError> {
            let site = Location::caller();
            match &self.f {
                ReceiverFlavor::Real(rx) => {
                    if model::active().is_some() {
                        real_inside_execution()
                    }
                    rx.recv()
                }
                ReceiverFlavor::Virt(ch) => {
                    let Some((exec, me)) = model::active() else {
                        virt_outside_execution()
                    };
                    let oid = chan_oid(&exec, ch);
                    exec.yield_point(me, Op::ChanRecv(oid));
                    loop {
                        {
                            let mut st = ch.st.lock();
                            if let Some(v) = st.queue.pop_front() {
                                // Acquire-flavored: stamped after the
                                // dequeue, under the same queue lock.
                                record::ev_at(RecOp::ChanRecv, chan_rid(ch), site);
                                drop(st);
                                model::wake_channel_writers(&exec, oid);
                                return Ok(v);
                            }
                            if st.senders == 0 {
                                return Err(RecvError);
                            }
                        }
                        exec.block(me, BlockReason::ChanEmpty(oid));
                    }
                }
            }
        }

        /// Non-blocking receive; still a scheduling point inside an
        /// execution.
        #[track_caller]
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let site = Location::caller();
            match &self.f {
                ReceiverFlavor::Real(rx) => {
                    if model::active().is_some() {
                        real_inside_execution()
                    }
                    rx.try_recv()
                }
                ReceiverFlavor::Virt(ch) => {
                    let Some((exec, me)) = model::active() else {
                        virt_outside_execution()
                    };
                    let oid = chan_oid(&exec, ch);
                    exec.yield_point(me, Op::ChanRecv(oid));
                    let mut st = ch.st.lock();
                    if let Some(v) = st.queue.pop_front() {
                        record::ev_at(RecOp::ChanRecv, chan_rid(ch), site);
                        drop(st);
                        model::wake_channel_writers(&exec, oid);
                        Ok(v)
                    } else if st.senders == 0 {
                        Err(TryRecvError::Disconnected)
                    } else {
                        Err(TryRecvError::Empty)
                    }
                }
            }
        }

        /// Receive with a timeout. Inside an execution there is no virtual
        /// clock: this blocks like [`recv`](Self::recv) and never returns
        /// `Timeout`; a stall surfaces as a reported deadlock instead.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            match &self.f {
                ReceiverFlavor::Real(rx) => {
                    if model::active().is_some() {
                        real_inside_execution()
                    }
                    rx.recv_timeout(timeout)
                }
                ReceiverFlavor::Virt(_) => self.recv().map_err(|_| RecvTimeoutError::Disconnected),
            }
        }

        /// Number of messages currently queued. Not a scheduling point
        /// (metrics only).
        pub fn len(&self) -> usize {
            match &self.f {
                ReceiverFlavor::Real(rx) => rx.len(),
                ReceiverFlavor::Virt(ch) => ch.st.lock().queue.len(),
            }
        }

        /// Whether the queue is currently empty. Not a scheduling point.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Select-side poll: dequeue or report closure; `None` = not ready.
        fn poll_select(
            &self,
            exec: &model::Exec,
            site: record::Site,
        ) -> Option<Result<T, RecvError>> {
            let ReceiverFlavor::Virt(ch) = &self.f else {
                real_inside_execution()
            };
            let oid = chan_oid(exec, ch);
            let mut st = ch.st.lock();
            if let Some(v) = st.queue.pop_front() {
                record::ev_at(RecOp::ChanRecv, chan_rid(ch), site);
                drop(st);
                model::wake_channel_writers(exec, oid);
                Some(Ok(v))
            } else if st.senders == 0 {
                Some(Err(RecvError))
            } else {
                None
            }
        }

        fn virt_oid(&self, exec: &model::Exec) -> usize {
            match &self.f {
                ReceiverFlavor::Virt(ch) => chan_oid(exec, ch),
                ReceiverFlavor::Real(_) => real_inside_execution(),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            match &self.f {
                ReceiverFlavor::Real(rx) => Receiver {
                    f: ReceiverFlavor::Real(rx.clone()),
                },
                ReceiverFlavor::Virt(ch) => {
                    ch.st.lock().receivers += 1;
                    Receiver {
                        f: ReceiverFlavor::Virt(Arc::clone(ch)),
                    }
                }
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if let ReceiverFlavor::Virt(ch) = &self.f {
                let remaining = {
                    let mut st = ch.st.lock();
                    st.receivers -= 1;
                    st.receivers
                };
                if remaining == 0 {
                    if let Some((exec, _)) = model::active() {
                        let oid = chan_oid(&exec, ch);
                        model::wake_channel_writers(&exec, oid);
                    }
                }
            }
        }
    }

    /// Multiplexes blocking receives over several registered receivers;
    /// typed, mirroring the vendored crossbeam `Select`.
    pub struct Select<'a, T> {
        rxs: Vec<&'a Receiver<T>>,
        /// Rotating scan offset for fairness (deterministic per instance).
        next_start: usize,
    }

    /// A ready receive operation; the message (or closure verdict) is
    /// captured at selection time.
    pub struct SelectedOperation<T> {
        index: usize,
        result: Result<T, RecvError>,
    }

    impl<'a, T> Select<'a, T> {
        /// Creates an empty selector.
        #[allow(clippy::new_without_default)]
        pub fn new() -> Self {
            Self {
                rxs: Vec::new(),
                next_start: 0,
            }
        }

        /// Registers a receiver; returns its operation index.
        pub fn recv(&mut self, rx: &'a Receiver<T>) -> usize {
            self.rxs.push(rx);
            self.rxs.len() - 1
        }

        /// Blocks until one registered receiver is ready (message or
        /// closed). A scheduling point inside an execution.
        #[track_caller]
        pub fn select(&mut self) -> SelectedOperation<T> {
            let site = Location::caller();
            match model::active() {
                Some((exec, me)) => {
                    assert!(!self.rxs.is_empty(), "select with no operations");
                    exec.yield_point(me, Op::ChanSelect);
                    let oids: Vec<usize> = self.rxs.iter().map(|rx| rx.virt_oid(&exec)).collect();
                    loop {
                        let n = self.rxs.len();
                        let start = self.next_start % n;
                        for k in 0..n {
                            let i = (start + k) % n;
                            if let Some(result) = self.rxs[i].poll_select(&exec, site) {
                                self.next_start = i + 1;
                                return SelectedOperation { index: i, result };
                            }
                        }
                        exec.block(me, BlockReason::SelectWait(oids.clone()));
                    }
                }
                None => {
                    let mut sel = crossbeam::channel::Select::new();
                    for rx in &self.rxs {
                        match &rx.f {
                            ReceiverFlavor::Real(r) => {
                                sel.recv(r);
                            }
                            ReceiverFlavor::Virt(_) => virt_outside_execution(),
                        }
                    }
                    let op = sel.select();
                    let index = op.index();
                    let ReceiverFlavor::Real(r) = &self.rxs[index].f else {
                        virt_outside_execution()
                    };
                    let result = op.recv(r);
                    SelectedOperation { index, result }
                }
            }
        }

        /// Like [`select`](Self::select) with a timeout; inside an
        /// execution the timeout never fires (no virtual clock).
        #[track_caller]
        pub fn select_timeout(
            &mut self,
            timeout: Duration,
        ) -> Result<SelectedOperation<T>, SelectTimeoutError> {
            match model::active() {
                Some(_) => Ok(self.select()),
                None => {
                    let mut sel = crossbeam::channel::Select::new();
                    for rx in &self.rxs {
                        match &rx.f {
                            ReceiverFlavor::Real(r) => {
                                sel.recv(r);
                            }
                            ReceiverFlavor::Virt(_) => virt_outside_execution(),
                        }
                    }
                    let op = sel.select_timeout(timeout)?;
                    let index = op.index();
                    let ReceiverFlavor::Real(r) = &self.rxs[index].f else {
                        virt_outside_execution()
                    };
                    let result = op.recv(r);
                    Ok(SelectedOperation { index, result })
                }
            }
        }
    }

    impl<T> SelectedOperation<T> {
        /// Index of the ready operation (registration order).
        pub fn index(&self) -> usize {
            self.index
        }

        /// Completes the receive. The receiver argument mirrors crossbeam's
        /// API; the message was already captured at selection time.
        pub fn recv(self, _rx: &Receiver<T>) -> Result<T, RecvError> {
            self.result
        }
    }
}

// ---------------------------------------------------------------------------
// Threads
// ---------------------------------------------------------------------------

/// Model-aware thread spawn/join/yield: virtual tasks inside an execution,
/// std threads outside.
pub mod thread {
    use crate::model;
    use crate::record::{self, RecOp};
    use parking_lot as pl;
    use std::panic::Location;
    use std::sync::Arc;
    use std::time::Duration;

    enum Inner<T> {
        Std(std::thread::JoinHandle<T>),
        Model {
            id: model::TaskId,
            result: Arc<pl::Mutex<Option<T>>>,
        },
    }

    /// Handle to a spawned thread or model task.
    pub struct JoinHandle<T> {
        inner: Inner<T>,
        /// Recorder tid preallocated for the child (0 when not recording).
        child: u64,
    }

    /// Spawns a thread; inside an execution this creates a virtual task
    /// scheduled by the execution's chooser.
    #[track_caller]
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let site = Location::caller();
        // Parent stamps Spawn(child) before the child can run (model tasks
        // only start at a scheduling point), so the analyzer's spawn edge
        // always precedes the child's first event.
        let child = record::preallocate_tid();
        record::ev_at(RecOp::Spawn(child), 0, site);
        if model::active().is_some() {
            let result = Arc::new(pl::Mutex::new(None));
            let slot = Arc::clone(&result);
            let id = model::spawn_task(Box::new(move || {
                record::adopt_tid(child);
                record::ev_at(RecOp::ThreadStart, 0, site);
                let v = f();
                *slot.lock() = Some(v);
                record::ev_at(RecOp::ThreadEnd, 0, site);
            }));
            JoinHandle {
                inner: Inner::Model { id, result },
                child,
            }
        } else {
            JoinHandle {
                inner: Inner::Std(std::thread::spawn(move || {
                    record::adopt_tid(child);
                    record::ev_at(RecOp::ThreadStart, 0, site);
                    let v = f();
                    record::ev_at(RecOp::ThreadEnd, 0, site);
                    v
                })),
                child,
            }
        }
    }

    impl<T> JoinHandle<T> {
        /// Waits for the thread/task to finish. In the model a panic in the
        /// task fails the whole execution before `join` returns, so the
        /// `Err` variant only reports that no value was produced.
        #[track_caller]
        pub fn join(self) -> std::thread::Result<T> {
            let site = Location::caller();
            let child = self.child;
            let r: std::thread::Result<T> = match self.inner {
                Inner::Std(h) => h.join(),
                Inner::Model { id, result } => {
                    model::join_task(id);
                    match result.lock().take() {
                        Some(v) => Ok(v),
                        None => Err(Box::new("model task finished without a value")),
                    }
                }
            };
            if r.is_ok() {
                record::ev_at(RecOp::Join(child), 0, site);
            }
            r
        }
    }

    /// Yields: a bare scheduling point inside an execution.
    pub fn yield_now() {
        if let Some((exec, me)) = model::active() {
            exec.yield_point(me, model::Op::Yield);
        } else {
            std::thread::yield_now();
        }
    }

    /// Sleeps; inside an execution there is no virtual clock, so this is a
    /// bare scheduling point (the duration is ignored — a wait that only a
    /// real clock can satisfy surfaces as a deadlock report instead).
    pub fn sleep(d: Duration) {
        if let Some((exec, me)) = model::active() {
            exec.yield_point(me, model::Op::Yield);
        } else {
            std::thread::sleep(d);
        }
    }
}
