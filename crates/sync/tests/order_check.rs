//! Regression tests for the lock-order detector's record-and-check
//! semantics: the cycle check and the edge recording run on *every*
//! acquisition, so a conflicting order introduced long after an edge was
//! first seen — or from a different thread — is still caught, and
//! transitive cycles report the full conflicting chain.
//!
//! Lock classes are per-test: the order graph is process-global, so a class
//! reused across tests would couple them.

#![cfg(feature = "order-check")]

use dooc_sync::OrderedMutex;
use std::panic::{catch_unwind, AssertUnwindSafe};

fn expect_violation<R>(f: impl FnOnce() -> R) -> String {
    let err = catch_unwind(AssertUnwindSafe(|| {
        f();
    }))
    .expect_err("expected a lock-order violation panic");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        msg.starts_with("lock-order violation"),
        "unexpected panic: {msg}"
    );
    msg
}

#[test]
fn late_cycle_same_thread() {
    let a = OrderedMutex::new("regress.late.a", ());
    let b = OrderedMutex::new("regress.late.b", ());
    // Establish a -> b, then exercise each lock alone many times: the edge
    // must survive unrelated acquisitions, not just the one that created it.
    {
        let _ga = a.lock();
        let _gb = b.lock();
    }
    for _ in 0..16 {
        drop(a.lock());
        drop(b.lock());
    }
    let msg = expect_violation(|| {
        let _gb = b.lock();
        let _ga = a.lock();
    });
    assert!(msg.contains("regress.late.a"), "{msg}");
    assert!(msg.contains("regress.late.b"), "{msg}");
}

#[test]
fn late_cycle_three_classes() {
    let a = OrderedMutex::new("regress.chain.a", ());
    let b = OrderedMutex::new("regress.chain.b", ());
    let c = OrderedMutex::new("regress.chain.c", ());
    // a -> b and b -> c recorded on separate paths; c -> a closes the cycle
    // only transitively, and the report must name both recorded edges.
    {
        let _ga = a.lock();
        let _gb = b.lock();
    }
    {
        let _gb = b.lock();
        let _gc = c.lock();
    }
    let msg = expect_violation(|| {
        let _gc = c.lock();
        let _ga = a.lock();
    });
    assert!(
        msg.contains("'regress.chain.a' (at") && msg.contains("then 'regress.chain.b' (at"),
        "report must show the a->b edge with sites: {msg}"
    );
    assert!(
        msg.contains("'regress.chain.b' (at") && msg.contains("then 'regress.chain.c' (at"),
        "report must show the b->c edge with sites: {msg}"
    );
}

#[test]
fn cycle_closed_from_another_thread() {
    let a = std::sync::Arc::new(OrderedMutex::new("regress.xthread.a", ()));
    let b = std::sync::Arc::new(OrderedMutex::new("regress.xthread.b", ()));
    // Thread 1 establishes a -> b; the violating b -> a acquisition happens
    // on a different thread, which has its own (empty) held stack but must
    // still see the global edge.
    let (a2, b2) = (a.clone(), b.clone());
    std::thread::spawn(move || {
        let _ga = a2.lock();
        let _gb = b2.lock();
    })
    .join()
    .expect("recording thread");
    let msg = expect_violation(move || {
        let _gb = b.lock();
        let _ga = a.lock();
    });
    assert!(msg.contains("regress.xthread.b"), "{msg}");
}

#[test]
fn recursive_acquisition_reported() {
    let a = OrderedMutex::new("regress.recursive.a", ());
    let msg = expect_violation(|| {
        let _g1 = a.lock();
        let _g2 = a.lock();
    });
    assert!(msg.contains("recursive acquisition"), "{msg}");
}
