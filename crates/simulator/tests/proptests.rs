//! Property tests of the fluid simulator: conservation, work conservation,
//! and monotonicity over random flow sets, plus testbed-replay sanity over
//! random scaled workloads.

use dooc_simulator::des::FluidSim;
use dooc_simulator::testbed::{run_testbed, PolicyKind, TestbedParams};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Total transferred bytes equal the sum of flow sizes: nothing is lost
    /// or duplicated, and the event count equals the flow count.
    #[test]
    fn all_flows_complete_exactly_once(
        sizes in proptest::collection::vec(1.0f64..1000.0, 1..30),
        caps in proptest::collection::vec(0.5f64..50.0, 1..4),
    ) {
        let mut sim = FluidSim::new();
        let rs: Vec<_> = caps.iter().map(|&c| sim.add_resource(c)).collect();
        for (i, &s) in sizes.iter().enumerate() {
            let path = vec![rs[i % rs.len()]];
            sim.start_flow(s, path, i as u64);
        }
        let mut seen = std::collections::HashSet::new();
        while let Some(e) = sim.next_event() {
            prop_assert!(seen.insert(e.tag()), "duplicate completion {}", e.tag());
        }
        prop_assert_eq!(seen.len(), sizes.len());
        prop_assert!(sim.idle());
    }

    /// Work conservation on one shared link: makespan == total bytes /
    /// capacity whenever all flows share the single resource.
    #[test]
    fn single_link_is_work_conserving(
        sizes in proptest::collection::vec(1.0f64..100.0, 1..20),
        cap in 1.0f64..20.0,
    ) {
        let mut sim = FluidSim::new();
        let r = sim.add_resource(cap);
        for (i, &s) in sizes.iter().enumerate() {
            sim.start_flow(s, vec![r], i as u64);
        }
        let mut last = 0.0;
        while let Some(e) = sim.next_event() {
            last = e.time();
        }
        let expect: f64 = sizes.iter().sum::<f64>() / cap;
        prop_assert!((last - expect).abs() < 1e-6 * expect.max(1.0),
            "makespan {} vs {}", last, expect);
    }

    /// Adding a flow never makes any existing flow finish *earlier*
    /// (max-min sharing is monotone in contention).
    #[test]
    fn extra_contention_never_helps(
        base in proptest::collection::vec(10.0f64..200.0, 1..8),
        extra in 10.0f64..200.0,
    ) {
        let run = |with_extra: bool| -> Vec<f64> {
            let mut sim = FluidSim::new();
            let r = sim.add_resource(7.5);
            for (i, &s) in base.iter().enumerate() {
                sim.start_flow(s, vec![r], i as u64);
            }
            if with_extra {
                sim.start_flow(extra, vec![r], 999);
            }
            let mut done = vec![0.0; base.len()];
            while let Some(e) = sim.next_event() {
                if (e.tag() as usize) < base.len() {
                    done[e.tag() as usize] = e.time();
                }
            }
            done
        };
        let without = run(false);
        let with = run(true);
        for (i, (a, b)) in without.iter().zip(&with).enumerate() {
            prop_assert!(b + 1e-9 >= *a, "flow {i} finished earlier under contention: {b} < {a}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The testbed replay completes for arbitrary small configurations and
    /// reads at least one full sweep of the matrix.
    #[test]
    fn replay_terminates_and_reads_everything(
        nodes_side in 1u64..3,
        iterations in 1u64..3,
        policy in prop_oneof![Just(PolicyKind::Simple), Just(PolicyKind::Interleaved)],
    ) {
        let nnodes = (nodes_side * nodes_side) as usize;
        let mut p = TestbedParams::paper(nnodes);
        p.iterations = iterations;
        p.submatrix_bytes /= 2000;
        p.nnz_per_sub /= 2000;
        p.subvector_bytes /= 2000;
        p.memory_budget = 5 * p.submatrix_bytes + 50 * p.subvector_bytes;
        let r = run_testbed(&p, policy);
        prop_assert!(r.time_s > 0.0);
        let one_sweep = p.grid_k() * p.grid_k() * p.submatrix_bytes;
        prop_assert!(
            r.bytes_read >= one_sweep,
            "must read at least one sweep: {} < {one_sweep}",
            r.bytes_read
        );
        prop_assert!(r.bytes_read <= iterations * one_sweep);
        prop_assert!(r.non_overlapped >= 0.0 && r.non_overlapped <= 1.0);
    }
}
