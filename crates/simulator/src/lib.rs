//! Testbed models for the DOoC reproduction.
//!
//! The paper's experiments ran on hardware we do not have: a 50-node SSD
//! testbed (40 compute + 10 I/O nodes, Virident SSD cards behind GPFS on 4X
//! QDR InfiniBand) and the Hopper Cray XE6. Per the substitution rule, this
//! crate simulates both:
//!
//! * [`des`] — a fluid discrete-event simulator: flows over shared
//!   resources with max-min fair bandwidth allocation plus fixed-duration
//!   compute timers. Bandwidth sharing is *the* first-order effect in the
//!   paper's evaluation (per-node GPFS client links versus the ~20 GB/s
//!   aggregate ceiling), and max-min is what a healthy parallel filesystem
//!   approximates.
//! * [`testbed`] — the Carver SSD-testbed model: the paper's workload (per
//!   node a 50M×50M block of ~12.8G non-zeros split into 25 sub-matrix
//!   files of ~4 GB) replayed at full scale through the *real* DOoC
//!   schedulers (`dooc-scheduler`) in virtual time. Tables III/IV and
//!   Figs. 6–7 come from here.
//! * [`mfdn`] — the in-core MFDn/Hopper model behind Tables I/II and the
//!   Hopper lines of Fig. 7: the 2-D triangular processor layout, derived
//!   per-process memory sizes, and a calibrated compute/communication
//!   per-iteration cost model.
//! * [`hierarchy`] — the Fig. 1 memory-hierarchy constants.
//!
//! Calibration constants are documented where they are defined and recorded
//! in `EXPERIMENTS.md` next to paper-vs-model tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cibasis;
pub mod des;
pub mod hierarchy;
pub mod mfdn;
pub mod testbed;

pub use des::{FluidSim, SimEvent};
pub use mfdn::{HopperModel, MfdnCase};
pub use testbed::{PolicyKind, TestbedParams, TestbedResult};
