//! The Carver SSD-testbed model: paper §V replayed in virtual time.
//!
//! The *logic* is the real middleware's: the task DAG comes from
//! [`dooc_linalg::spmv_app::SpmvAppBuilder`], placement from the real global
//! scheduler, per-node ordering and prefetching from the real
//! [`LocalScheduler`]. Only *time* is modelled, by the fluid simulator:
//!
//! * every sub-matrix load is a flow through the shared GPFS ceiling and the
//!   node's GPFS client link ("Data is streamed from the I/O nodes to the
//!   requesting compute nodes using the 4X QDR InfiniBand interconnect");
//! * every cross-node vector transfer is a flow through the sender's and
//!   receiver's InfiniBand NICs;
//! * multiplies/sums occupy the node's compute for `flops/node_flops` or
//!   `bytes/sum_bw` seconds;
//! * per-(node, iteration) lognormal bandwidth jitter models the "noticeable
//!   variation in read bandwidth observed by individual compute nodes" of
//!   the shared GPFS — the mechanism that makes global barriers expensive.
//!
//! Calibration constants (documented in `TestbedParams::paper`) are fitted
//! to Table IV's single-node row; everything else is prediction.

use crate::des::{FluidSim, ResourceId};
use dooc_linalg::spmv_app::{ReductionPlan, SpmvAppBuilder, StagedBlock, SyncPolicy};
use dooc_scheduler::{assign_affinity, LocalScheduler, NodeId, OrderPolicy, TaskId};
use dooc_sparse::blockgrid::{BlockCoord, BlockGrid};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};

/// Which §V experiment policy to replay.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicyKind {
    /// Table III: simple policy — row-root reduction, barriers after the
    /// SpMV phase and after the reduction.
    Simple,
    /// Table IV: intra-iteration interleaving + per-node aggregation, only
    /// the between-iterations barrier.
    Interleaved,
}

/// Physical and workload parameters of one testbed run.
#[derive(Clone, Debug)]
pub struct TestbedParams {
    /// Compute nodes (perfect square).
    pub nnodes: usize,
    /// SpMV iterations (the paper measures 4).
    pub iterations: u64,
    /// Sub-matrices per node side (5 → a 5×5 block per node).
    pub sub_per_side: u64,
    /// Bytes per sub-matrix file (~4 GB).
    pub submatrix_bytes: u64,
    /// Non-zeros per sub-matrix (12.8e9 / 25).
    pub nnz_per_sub: u64,
    /// Bytes per sub-vector (80 MB: 10 M rows × 8 B).
    pub subvector_bytes: u64,
    /// Aggregate GPFS ceiling, bytes/s (peak 20 GB/s; ~18.5 sustained).
    pub gpfs_bw: f64,
    /// Per-node GPFS client bandwidth, bytes/s.
    pub client_bw: f64,
    /// Per-node InfiniBand bandwidth each direction, bytes/s.
    pub ib_bw: f64,
    /// Whole-node sustained SpMV rate, flops/s (8 cores).
    pub node_flops: f64,
    /// Sum-task processing rate, input bytes/s.
    pub sum_bw: f64,
    /// Usable block-cache bytes per node.
    pub memory_budget: u64,
    /// Lognormal sigma of per-(node, iteration) read-bandwidth jitter.
    pub jitter_sigma: f64,
    /// Local-scheduler prefetch window.
    pub prefetch_window: usize,
    /// RNG seed (jitter).
    pub seed: u64,
    /// Keep sub-matrices cached across iterations when memory allows. The
    /// paper's measured system re-reads every sub-matrix every iteration
    /// (read volume == iterations × matrix size in every row), so paper
    /// reproduction disables this; enabling it is the `cross-iteration
    /// reuse` ablation, where the DAG scheduler serves several iterations
    /// per load.
    pub cross_iteration_reuse: bool,
    /// Override: sub-matrices per node side when the matrix is larger than
    /// the cluster (the Fig. 7 "star" run: the 36-node matrix on 9 nodes).
    pub grid_k_override: Option<u64>,
}

impl TestbedParams {
    /// The paper's configuration for `nnodes` compute nodes.
    ///
    /// Calibration: `client_bw` 1.42 GB/s and `gpfs_bw` 18.5 GB/s reproduce
    /// the read-bandwidth column (1.4–1.5 at 1 node, plateau ≈18.5 past 16
    /// nodes); `node_flops` 6 GF/s keeps multiply compute hidden behind I/O
    /// (as observed); `sum_bw` 0.35 GB/s makes the un-overlapped reduction
    /// phase of the simple policy cost ≈13% at one node (Table III row 1);
    /// `memory_budget` 9 GB (two sub-matrices plus vectors, out of 24 GB —
    /// the rest holds partials, DataCutter buffers and the page cache)
    /// matches the observed near-full re-read per iteration;
    /// `jitter_sigma` 0.10 reproduces the growth of non-overlapped time with
    /// node count under barriers.
    pub fn paper(nnodes: usize) -> Self {
        Self {
            nnodes,
            iterations: 4,
            sub_per_side: 5,
            submatrix_bytes: 4_000_000_000,
            nnz_per_sub: 12_800_000_000 / 25,
            subvector_bytes: 80_000_000,
            gpfs_bw: 18.5e9,
            client_bw: 1.42e9,
            ib_bw: 4.0e9,
            node_flops: 6.0e9,
            sum_bw: 0.35e9,
            memory_budget: 9_000_000_000,
            jitter_sigma: 0.10,
            prefetch_window: 2,
            seed: 1,
            cross_iteration_reuse: false,
            grid_k_override: None,
        }
    }

    /// Node grid side (√nnodes).
    pub fn side(&self) -> u64 {
        let s = (self.nnodes as f64).sqrt().round() as u64;
        assert_eq!(s * s, self.nnodes as u64, "nnodes must be a perfect square");
        s
    }

    /// Global sub-matrix grid dimension K.
    pub fn grid_k(&self) -> u64 {
        self.grid_k_override
            .unwrap_or(self.sub_per_side * self.side())
    }

    /// Global matrix dimension (rows).
    pub fn dimension(&self) -> u64 {
        self.grid_k() * (self.subvector_bytes / 8)
    }

    /// Total non-zeros.
    pub fn total_nnz(&self) -> u64 {
        self.grid_k() * self.grid_k() * self.nnz_per_sub
    }

    /// Total matrix bytes.
    pub fn matrix_bytes(&self) -> u64 {
        self.grid_k() * self.grid_k() * self.submatrix_bytes
    }
}

/// Measured outcome of a replayed run (one row of Table III/IV).
#[derive(Clone, Debug)]
pub struct TestbedResult {
    /// Compute nodes used.
    pub nnodes: usize,
    /// Matrix dimension.
    pub dimension: u64,
    /// Total non-zeros.
    pub nnz: u64,
    /// Matrix size in bytes.
    pub matrix_bytes: u64,
    /// Makespan, seconds.
    pub time_s: f64,
    /// Sustained Gflop/s (2·nnz·iterations / time).
    pub gflops: f64,
    /// Aggregate read bandwidth, bytes/s.
    pub read_bw: f64,
    /// Fraction of (node-averaged) time with no filesystem read in flight.
    pub non_overlapped: f64,
    /// CPU-hour cost of one iteration (nnodes × 8 cores).
    pub cpu_hours_per_iter: f64,
    /// Total bytes read from the filesystem.
    pub bytes_read: u64,
}

impl TestbedResult {
    /// Runtime relative to the minimum achievable time assuming I/O is the
    /// only bottleneck at the 20 GB/s peak (Fig. 6's y-axis).
    pub fn relative_to_optimal_io(&self, peak_bw: f64) -> f64 {
        let optimal = self.bytes_read as f64 / peak_bw;
        self.time_s / optimal
    }
}

const KIND_LOAD: u64 = 1;
const KIND_XFER: u64 = 2;
const KIND_COMP: u64 = 3;

fn tag(kind: u64, node: u64, idx: u64) -> u64 {
    (kind << 56) | (node << 40) | idx
}

fn untag(t: u64) -> (u64, u64, u64) {
    (t >> 56, (t >> 40) & 0xFFFF, t & 0xFF_FFFF_FFFF)
}

/// Array classification for transfer modelling.
#[derive(Clone, Debug)]
enum ArrayKind {
    /// Sub-matrix file (read through GPFS; evictable).
    MatrixFile,
    /// Produced vector/partial/token (transferred over IB from its
    /// producer's node; freed once all consumers finished).
    Produced { producer: TaskId },
    /// Staged initial vector on a node.
    Staged { node: u64 },
}

struct ArrayInfo {
    bytes: u64,
    kind: ArrayKind,
    /// Consumer tasks remaining (for freeing produced arrays).
    remaining_consumers: u64,
}

struct VNode {
    ls: LocalScheduler,
    resident: HashSet<String>,
    pinned: HashMap<String, u64>,
    /// LRU clock per resident *evictable* array.
    matrix_last_use: HashMap<String, u64>,
    mem_used: u64,
    in_flight: HashSet<String>,
    compute_busy: bool,
    pending: Option<TaskId>,
    /// Active filesystem loads (for overlap accounting).
    io_active: u64,
    io_time: f64,
    last_change: f64,
    /// Highest iteration index of any task started here (jitter key).
    cur_iter: u64,
    client_link: ResourceId,
    ib_in: ResourceId,
    ib_out: ResourceId,
}

/// Replays one configuration and returns its table row.
pub fn run_testbed(params: &TestbedParams, policy: PolicyKind) -> TestbedResult {
    let k = params.grid_k();
    let side = params.side();
    let per = k / side;
    let owner = move |c: BlockCoord| (c.u / per) * side + (c.v / per);

    // Synthetic staged blocks (no files: sizes and nnz suffice).
    let grid = BlockGrid::new(k, params.dimension());
    let blocks: Vec<StagedBlock> = grid
        .coords()
        .map(|coord| StagedBlock {
            coord,
            node: owner(coord),
            bytes: params.submatrix_bytes,
            nnz: params.nnz_per_sub,
        })
        .collect();
    let app = SpmvAppBuilder::new(grid, params.iterations, blocks);
    let app = match policy {
        PolicyKind::Simple => app
            .reduction(ReductionPlan::RowRoot)
            .sync(SyncPolicy::PhaseBarriers),
        // "Keep only the synchronization between iterations": in pure
        // iterated SpMV that synchronization *is* the x_i data dependency
        // (multiply of iteration i+1 consumes its column's x_i), so no extra
        // barrier task is inserted.
        PolicyKind::Interleaved => app
            .reduction(ReductionPlan::LocalAggregation)
            .sync(SyncPolicy::None),
    }
    .persist_final(false);
    let (graph, external, geometry) = app.build();
    let placement =
        assign_affinity(&graph, &external, params.nnodes as u64).expect("valid SpMV DAG");

    // Array catalogue.
    let mut arrays: HashMap<String, ArrayInfo> = HashMap::new();
    for (name, len, _bs) in &geometry {
        let kind = if name.ends_with(".crs") {
            ArrayKind::MatrixFile
        } else {
            ArrayKind::Staged {
                node: external[name],
            }
        };
        arrays.insert(
            name.clone(),
            ArrayInfo {
                bytes: *len,
                kind,
                remaining_consumers: 0,
            },
        );
    }
    for id in graph.ids() {
        for out in &graph.task(id).outputs {
            arrays.insert(
                out.array.clone(),
                ArrayInfo {
                    bytes: out.bytes,
                    kind: ArrayKind::Produced { producer: id },
                    remaining_consumers: 0,
                },
            );
        }
    }
    for id in graph.ids() {
        for inp in &graph.task(id).inputs {
            if let Some(a) = arrays.get_mut(&inp.array) {
                a.remaining_consumers += 1;
            }
        }
    }

    // Simulator resources.
    let mut sim = FluidSim::new();
    let gpfs = sim.add_resource(params.gpfs_bw);
    let mut nodes: Vec<VNode> = (0..params.nnodes as u64)
        .map(|n| {
            let client_link = sim.add_resource(params.client_bw);
            let ib_in = sim.add_resource(params.ib_bw);
            let ib_out = sim.add_resource(params.ib_bw);
            let mut ls = LocalScheduler::new(
                &graph,
                placement.tasks_of(NodeId(n as usize)),
                OrderPolicy::DataAware,
            )
            .with_prefetch_window(params.prefetch_window);
            // Staged vectors start resident on their node (they are tiny and
            // written into memory/the page cache during staging).
            let _ = &mut ls;
            VNode {
                ls,
                resident: HashSet::new(),
                pinned: HashMap::new(),
                matrix_last_use: HashMap::new(),
                mem_used: 0,
                in_flight: HashSet::new(),
                compute_busy: false,
                pending: None,
                io_active: 0,
                io_time: 0.0,
                last_change: 0.0,
                cur_iter: 1,
                client_link,
                ib_in,
                ib_out,
            }
        })
        .collect();
    // Stage initial vectors.
    for (name, info) in &arrays {
        if let ArrayKind::Staged { node } = info.kind {
            nodes[node as usize].resident.insert(name.clone());
        }
    }

    // Jitter multipliers per (node, iteration).
    let mut rng = StdRng::seed_from_u64(params.seed);
    let iters = params.iterations as usize;
    let jitter: Vec<Vec<f64>> = (0..params.nnodes)
        .map(|_| {
            (0..=iters)
                .map(|_| {
                    let z: f64 = {
                        // Box-Muller from two uniforms.
                        let u1: f64 = rng.gen_range(1e-12..1.0);
                        let u2: f64 = rng.gen_range(0.0..1.0);
                        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
                    };
                    (params.jitter_sigma * z).exp()
                })
                .collect()
        })
        .collect();

    // Global completion fan-out + array name indexing for tags.
    let mut name_index: Vec<String> = Vec::new();
    let mut index_of: HashMap<String, u64> = HashMap::new();
    let idx = |name: &str, name_index: &mut Vec<String>, index_of: &mut HashMap<String, u64>| {
        *index_of.entry(name.to_string()).or_insert_with(|| {
            name_index.push(name.to_string());
            name_index.len() as u64 - 1
        })
    };

    let mut clock_lru = 0u64;
    let mut bytes_read_nominal: u64 = 0;
    let mut produced_done: HashSet<TaskId> = HashSet::new();
    let mut completed = 0usize;
    let total_tasks = graph.len();

    // Task iteration extraction (x_i_..., q_i_..., bar_mul_i, bar_iter_i).
    let task_iter = |name: &str| -> u64 {
        name.split('_')
            .find_map(|p| p.parse::<u64>().ok())
            .unwrap_or(1)
            .min(params.iterations)
    };

    // -- driver closures as macros over captured state -----------------------
    macro_rules! update_io {
        ($vn:expr, $now:expr, $delta:expr) => {{
            let vn: &mut VNode = $vn;
            if vn.io_active > 0 {
                vn.io_time += $now - vn.last_change;
            }
            vn.last_change = $now;
            let new = vn.io_active as i64 + $delta;
            vn.io_active = new.max(0) as u64;
        }};
    }

    macro_rules! make_resident {
        ($node:expr, $name:expr) => {{
            let n = $node as usize;
            let name: &str = $name;
            if !nodes[n].resident.contains(name) {
                let bytes = arrays[name].bytes;
                nodes[n].resident.insert(name.to_string());
                // The budget governs the sub-matrix block cache; vectors and
                // partials live in the remaining node memory (the 9-of-24 GB
                // calibration embeds exactly this split).
                if matches!(arrays[name].kind, ArrayKind::MatrixFile) {
                    nodes[n].mem_used += bytes;
                    clock_lru += 1;
                    nodes[n].matrix_last_use.insert(name.to_string(), clock_lru);
                }
                // Evict LRU unpinned matrices while over budget.
                while nodes[n].mem_used > params.memory_budget {
                    let victim = nodes[n]
                        .matrix_last_use
                        .iter()
                        .filter(|(a, _)| nodes[n].pinned.get(*a).copied().unwrap_or(0) == 0)
                        .min_by_key(|(_, &lu)| lu)
                        .map(|(a, _)| a.clone());
                    match victim {
                        Some(a) => {
                            nodes[n].matrix_last_use.remove(&a);
                            nodes[n].resident.remove(&a);
                            nodes[n].mem_used -= arrays[&a].bytes;
                        }
                        None => break, // nothing evictable: tolerate overshoot
                    }
                }
            }
        }};
    }

    // Request an input for node `n`; returns true if resident.
    macro_rules! request_input {
        ($sim:expr, $n:expr, $name:expr, $iter:expr) => {{
            let n = $n as usize;
            let name: &str = $name;
            if nodes[n].resident.contains(name) {
                true
            } else {
                if !nodes[n].in_flight.contains(name) {
                    let available = match &arrays[name].kind {
                        ArrayKind::MatrixFile => true,
                        ArrayKind::Staged { .. } => true,
                        ArrayKind::Produced { producer } => produced_done.contains(producer),
                    };
                    if available {
                        let ai = idx(name, &mut name_index, &mut index_of);
                        match &arrays[name].kind {
                            ArrayKind::MatrixFile => {
                                let mult = jitter[n][($iter as usize).min(iters)];
                                bytes_read_nominal += arrays[name].bytes;
                                update_io!(&mut nodes[n], $sim.now(), 1);
                                $sim.start_flow(
                                    arrays[name].bytes as f64 * mult,
                                    vec![gpfs, nodes[n].client_link],
                                    tag(KIND_LOAD, n as u64, ai),
                                );
                            }
                            ArrayKind::Staged { node: src } => {
                                // Staged vector on another node: IB transfer.
                                let src = *src as usize;
                                $sim.start_flow(
                                    arrays[name].bytes as f64,
                                    vec![nodes[src].ib_out, nodes[n].ib_in],
                                    tag(KIND_XFER, n as u64, ai),
                                );
                            }
                            ArrayKind::Produced { producer } => {
                                let src = placement.node(*producer).0;
                                $sim.start_flow(
                                    arrays[name].bytes as f64,
                                    vec![nodes[src].ib_out, nodes[n].ib_in],
                                    tag(KIND_XFER, n as u64, ai),
                                );
                            }
                        }
                        nodes[n].in_flight.insert(name.to_string());
                    }
                }
                false
            }
        }};
    }

    macro_rules! drive {
        ($sim:expr, $n:expr) => {{
            let n = $n as usize;
            // 1. Try to start compute.
            if !nodes[n].compute_busy {
                if nodes[n].pending.is_none() {
                    let oracle = nodes[n].resident.clone();
                    nodes[n].pending = nodes[n].ls.next_task(&graph, &oracle);
                }
                if let Some(t) = nodes[n].pending {
                    let spec = graph.task(t).clone();
                    let it = task_iter(&spec.name);
                    nodes[n].cur_iter = nodes[n].cur_iter.max(it);
                    let mut all = true;
                    for inp in &spec.inputs {
                        if !request_input!($sim, n, &inp.array, it) {
                            all = false;
                        }
                    }
                    if all {
                        // Pin inputs; start compute.
                        for inp in &spec.inputs {
                            *nodes[n].pinned.entry(inp.array.clone()).or_insert(0) += 1;
                            if let Some(lu) = nodes[n].matrix_last_use.get_mut(&inp.array) {
                                clock_lru += 1;
                                *lu = clock_lru;
                            }
                        }
                        let dur = match spec.kind.as_str() {
                            "multiply" => spec.flops as f64 / params.node_flops,
                            "sum" | "sum_final" => spec.input_bytes() as f64 / params.sum_bw,
                            _ => 1e-4, // barrier token
                        };
                        nodes[n].compute_busy = true;
                        nodes[n].pending = None;
                        $sim.start_timer(dur, tag(KIND_COMP, n as u64, t.0));
                    }
                }
            }
            // 2. Prefetch.
            let oracle = nodes[n].resident.clone();
            let candidates = nodes[n].ls.prefetch_candidates(&graph, &oracle);
            for arr in candidates {
                let is_matrix = matches!(arrays[&arr].kind, ArrayKind::MatrixFile);
                let bytes = if is_matrix { arrays[&arr].bytes } else { 0 };
                let inflight_bytes: u64 = nodes[n]
                    .in_flight
                    .iter()
                    .filter(|a| matches!(arrays[*a].kind, ArrayKind::MatrixFile))
                    .map(|a| arrays[a].bytes)
                    .sum();
                if nodes[n].mem_used + inflight_bytes + bytes <= params.memory_budget {
                    let it = nodes[n].cur_iter;
                    let _ = request_input!($sim, n, &arr, it);
                }
            }
        }};
    }

    // Kick off.
    for n in 0..params.nnodes {
        drive!(sim, n);
    }

    // Event loop.
    while completed < total_tasks {
        let Some(event) = sim.next_event() else {
            panic!(
                "simulation deadlock: {completed}/{total_tasks} tasks done (policy {policy:?}, {} nodes)",
                params.nnodes
            );
        };
        let now = event.time();
        let (kind, node, index) = untag(event.tag());
        match kind {
            KIND_LOAD => {
                let name = name_index[index as usize].clone();
                update_io!(&mut nodes[node as usize], now, -1);
                nodes[node as usize].in_flight.remove(&name);
                make_resident!(node, &name);
                drive!(sim, node);
            }
            KIND_XFER => {
                let name = name_index[index as usize].clone();
                nodes[node as usize].in_flight.remove(&name);
                make_resident!(node, &name);
                drive!(sim, node);
            }
            KIND_COMP => {
                let t = TaskId(index);
                let spec = graph.task(t).clone();
                let n = node as usize;
                nodes[n].compute_busy = false;
                // Unpin inputs; decrement consumer counts; free dead arrays.
                for inp in &spec.inputs {
                    if let Some(p) = nodes[n].pinned.get_mut(&inp.array) {
                        *p = p.saturating_sub(1);
                    }
                    // Paper mode: a consumed sub-matrix is released and
                    // reclaimed right away (the measured system re-reads the
                    // full matrix every iteration).
                    if !params.cross_iteration_reuse
                        && matches!(arrays[&inp.array].kind, ArrayKind::MatrixFile)
                        && nodes[n].pinned.get(&inp.array).copied().unwrap_or(0) == 0
                        && nodes[n].resident.remove(&inp.array)
                    {
                        nodes[n].matrix_last_use.remove(&inp.array);
                        nodes[n].mem_used =
                            nodes[n].mem_used.saturating_sub(arrays[&inp.array].bytes);
                    }
                    let dead = {
                        let a = arrays.get_mut(&inp.array).expect("known array");
                        a.remaining_consumers = a.remaining_consumers.saturating_sub(1);
                        a.remaining_consumers == 0 && !matches!(a.kind, ArrayKind::MatrixFile)
                    };
                    if dead {
                        for vn in nodes.iter_mut() {
                            vn.resident.remove(&inp.array);
                        }
                    }
                }
                // Outputs are resident on the producer.
                for out in &spec.outputs {
                    make_resident!(node, &out.array);
                }
                produced_done.insert(t);
                completed += 1;
                for vn in nodes.iter_mut() {
                    vn.ls.on_complete(&graph, t);
                }
                for m in 0..params.nnodes {
                    drive!(sim, m);
                }
            }
            other => panic!("unknown event kind {other}"),
        }
    }

    let time_s = sim.now();
    // Close out I/O accounting.
    let non_overlap_per_node: Vec<f64> = nodes
        .iter_mut()
        .map(|vn| {
            if vn.io_active > 0 {
                vn.io_time += time_s - vn.last_change;
            }
            1.0 - vn.io_time / time_s
        })
        .collect();
    let non_overlapped = non_overlap_per_node.iter().sum::<f64>() / params.nnodes as f64;
    // "We extracted the bandwidth obtained by the filesystem I/O components
    // from the logs": bytes over the time spent reading, not over makespan.
    let mean_io_time = nodes.iter().map(|vn| vn.io_time).sum::<f64>() / params.nnodes as f64;

    let flops = 2.0 * params.total_nnz() as f64 * params.iterations as f64;
    TestbedResult {
        nnodes: params.nnodes,
        dimension: params.dimension(),
        nnz: params.total_nnz(),
        matrix_bytes: params.matrix_bytes(),
        time_s,
        gflops: flops / time_s / 1e9,
        read_bw: bytes_read_nominal as f64 / mean_io_time.max(1e-9),
        non_overlapped,
        cpu_hours_per_iter: params.nnodes as f64 * 8.0 * time_s / params.iterations as f64 / 3600.0,
        bytes_read: bytes_read_nominal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(nnodes: usize) -> TestbedParams {
        // Scaled-down workload for fast tests (same shape, 1000x smaller).
        // Memory holds ~5 sub-matrices so the replay pipelines without the
        // cache-thrash regime (which multiplies event counts and only
        // matters for the full-scale paper configuration).
        let mut p = TestbedParams::paper(nnodes);
        p.submatrix_bytes /= 1000;
        p.nnz_per_sub /= 1000;
        p.subvector_bytes /= 1000;
        p.memory_budget = 5 * p.submatrix_bytes + 50 * p.subvector_bytes;
        p
    }

    #[test]
    fn single_node_is_io_bound() {
        let p = small(1);
        let r = run_testbed(&p, PolicyKind::Interleaved);
        // All 25 sub-matrices x 4 iterations must be read (no reuse at this
        // budget/matrix ratio), so time ≈ bytes / client_bw.
        let expected = r.bytes_read as f64 / p.client_bw;
        assert!(
            r.time_s >= expected * 0.95,
            "time {} < io bound {expected}",
            r.time_s
        );
        assert!(
            r.time_s <= expected * 1.45,
            "time {} far above io bound {expected}",
            r.time_s
        );
        // Cross-iteration reuse may save a few loads, but most of the
        // working set exceeds memory and must be re-read every iteration.
        assert!(r.bytes_read >= 4 * 25 * p.submatrix_bytes * 6 / 10);
        assert!(
            r.bytes_read <= 4 * 25 * p.submatrix_bytes,
            "cannot read more than the naive sweep"
        );
    }

    #[test]
    fn read_bandwidth_plateaus_with_many_nodes() {
        let r9 = run_testbed(&small(9), PolicyKind::Interleaved);
        let r16 = run_testbed(&small(16), PolicyKind::Interleaved);
        let p = small(1);
        // 9 nodes: below the ceiling, ~9x client bw (scaled).
        assert!(
            r9.read_bw < 9.2 * p.client_bw && r9.read_bw > 0.7 * 9.0 * p.client_bw,
            "9-node bw {} vs client {}",
            r9.read_bw,
            p.client_bw
        );
        // 16 nodes: the shared ceiling binds (16 x client > gpfs). The
        // bytes/io-time metric can exceed the ceiling slightly when nodes'
        // read bursts do not fully coincide (each burst runs at the client
        // rate), so allow ~10% headroom.
        assert!(
            r16.read_bw <= p.gpfs_bw * 1.10,
            "16-node bw {} far above ceiling {}",
            r16.read_bw,
            p.gpfs_bw
        );
        assert!(r16.read_bw > 0.65 * p.gpfs_bw, "16-node bw {}", r16.read_bw);
    }

    #[test]
    fn simple_policy_slower_with_more_non_overlap() {
        let ps = small(9);
        let simple = run_testbed(&ps, PolicyKind::Simple);
        let inter = run_testbed(&ps, PolicyKind::Interleaved);
        assert!(
            simple.time_s > inter.time_s,
            "simple {} vs interleaved {}",
            simple.time_s,
            inter.time_s
        );
        assert!(
            simple.non_overlapped > inter.non_overlapped,
            "non-overlap simple {} vs interleaved {}",
            simple.non_overlapped,
            inter.non_overlapped
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let p = small(4);
        let a = run_testbed(&p, PolicyKind::Interleaved);
        let b = run_testbed(&p, PolicyKind::Interleaved);
        assert_eq!(a.time_s, b.time_s);
        assert_eq!(a.bytes_read, b.bytes_read);
    }

    #[test]
    fn star_run_grid_override() {
        // The 36-node matrix on 9 nodes: more sub-matrices per node, longer
        // run, but better bandwidth-per-node utilization.
        let mut p = small(9);
        p.grid_k_override = Some(30);
        let r = run_testbed(&p, PolicyKind::Interleaved);
        assert_eq!(r.dimension, 30 * (p.subvector_bytes / 8));
        assert!(r.bytes_read >= 4 * 900 * p.submatrix_bytes * 9 / 10);
    }

    #[test]
    fn cpu_hours_formula() {
        let p = small(4);
        let r = run_testbed(&p, PolicyKind::Interleaved);
        let expect = 4.0 * 8.0 * r.time_s / p.iterations as f64 / 3600.0;
        assert!((r.cpu_hours_per_iter - expect).abs() < 1e-9);
    }
}
