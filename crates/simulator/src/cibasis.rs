//! M-scheme Configuration-Interaction basis dimension counter.
//!
//! Table I's dimensions `D` are outputs of nuclear structure physics: the
//! number of many-body basis states — Slater determinants of harmonic
//! oscillator single-particle states — for the nucleus at a given truncation
//! (§II: "The total number of many-body states or the dimension of Ĥ in our
//! adopted harmonic oscillator basis, which we denote by D, is controlled by
//! the number of particles A, and the truncation parameter N_max").
//!
//! This module derives those dimensions from first principles instead of
//! quoting them: a dynamic program over the single-particle space counts,
//! for each particle species, the ways to place `k` identical fermions with
//! total oscillator quanta `q` and total angular-momentum projection `m`;
//! proton and neutron counts are then convolved under the N_max truncation
//! (total quanta above the minimal configuration ≤ N_max, with the parity
//! selected by N_max) and the M_j constraint.
//!
//! Single-particle states: shell `N` contains orbitals `l = N, N-2, …` and
//! `j = l ± 1/2`, each with `2j+1` projections — `(N+1)(N+2)` states per
//! shell including spin.

/// One species' placement counts: `ways[k][q][m_index]`.
struct SpeciesCounts {
    particles: usize,
    qmax: usize,
    /// Offset so `m_index = m2 + m_offset` is non-negative (`m2` is twice
    /// the total projection).
    m_offset: i64,
    ways: Vec<Vec<Vec<u128>>>,
}

/// Enumerates the `(quanta, 2·m)` of every single-particle state up to shell
/// `nmax_shell` inclusive.
fn single_particle_states(nmax_shell: u32) -> Vec<(u32, i64)> {
    let mut out = Vec::new();
    for n in 0..=nmax_shell {
        let mut l = n as i64;
        while l >= 0 {
            // j2 = 2l + 1 and, for l > 0, 2l - 1.
            let mut j2s = vec![2 * l + 1];
            if l > 0 {
                j2s.push(2 * l - 1);
            }
            for j2 in j2s {
                let mut m2 = -j2;
                while m2 <= j2 {
                    out.push((n, m2));
                    m2 += 2;
                }
            }
            l -= 2;
        }
    }
    out
}

/// Minimal total quanta for `k` identical fermions (fill shells bottom-up;
/// shell `N` holds `(N+1)(N+2)` states).
pub fn minimal_quanta(k: u32) -> u32 {
    let mut remaining = k;
    let mut q = 0u32;
    let mut shell = 0u32;
    while remaining > 0 {
        let capacity = (shell + 1) * (shell + 2);
        let take = remaining.min(capacity);
        q += take * shell;
        remaining -= take;
        shell += 1;
    }
    q
}

fn count_species(particles: u32, qmax: u32, nmax_shell: u32) -> SpeciesCounts {
    let states = single_particle_states(nmax_shell);
    let max_abs_m: i64 = {
        // Upper bound: the `particles` largest |m2| values.
        let mut ms: Vec<i64> = states.iter().map(|&(_, m2)| m2.abs()).collect();
        ms.sort_unstable_by(|a, b| b.cmp(a));
        ms.iter().take(particles as usize).sum()
    };
    let m_offset = max_abs_m;
    let m_size = (2 * max_abs_m + 1) as usize;
    let (k_size, q_size) = (particles as usize + 1, qmax as usize + 1);
    // ways[k][q][mi]
    let mut ways = vec![vec![vec![0u128; m_size]; q_size]; k_size];
    ways[0][0][m_offset as usize] = 1;
    for &(n, m2) in &states {
        // Knapsack over items, descending k so each state is used once.
        for k in (0..particles as usize).rev() {
            for q in 0..q_size {
                let nq = q + n as usize;
                if nq >= q_size {
                    continue;
                }
                for mi in 0..m_size {
                    let w = ways[k][q][mi];
                    if w == 0 {
                        continue;
                    }
                    let nmi = mi as i64 + m2;
                    if nmi < 0 || nmi >= m_size as i64 {
                        continue;
                    }
                    ways[k + 1][nq][nmi as usize] += w;
                }
            }
        }
    }
    SpeciesCounts {
        particles: particles as usize,
        qmax: qmax as usize,
        m_offset,
        ways,
    }
}

/// M-scheme dimension for a nucleus with `z` protons and `n` neutrons at
/// truncation `nmax`, total projection `mj2` (twice M_j, so integer for any
/// A). Counts Slater determinant pairs with
/// `ΔQ = Q - Q_min ∈ {nmax, nmax-2, …, ≥0}` and total `2m = mj2`.
pub fn m_scheme_dimension(z: u32, n: u32, nmax: u32, mj2: i64) -> u128 {
    let qmin = minimal_quanta(z) + minimal_quanta(n);
    let qmax_total = qmin + nmax;
    // A single particle can be lifted by at most nmax above its minimal
    // shell; the highest shell it can reach is bounded by its own minimal
    // shell + nmax <= shell holding the last particle + nmax.
    let top_shell = |k: u32| -> u32 {
        let mut remaining = k;
        let mut shell = 0u32;
        loop {
            let capacity = (shell + 1) * (shell + 2);
            if remaining <= capacity {
                return shell + nmax;
            }
            remaining -= capacity;
            shell += 1;
        }
    };
    let pz = count_species(z, qmax_total - minimal_quanta(n), top_shell(z));
    let pn = if z == n {
        None // identical table
    } else {
        Some(count_species(
            n,
            qmax_total - minimal_quanta(z),
            top_shell(n),
        ))
    };
    let pn_ref = pn.as_ref().unwrap_or(&pz);

    let mut total = 0u128;
    for qp in 0..=pz.qmax {
        for qn in 0..=pn_ref.qmax {
            let q = qp + qn;
            if q < qmin as usize || q > qmax_total as usize {
                continue;
            }
            let dq = q - qmin as usize;
            if !(nmax as usize).wrapping_sub(dq).is_multiple_of(2) {
                continue; // parity: ΔQ must match N_max's parity
            }
            // Convolve m distributions: sum over mp2 with mn2 = mj2 - mp2.
            for mi in 0..pz.ways[pz.particles][qp].len() {
                let wp = pz.ways[pz.particles][qp][mi];
                if wp == 0 {
                    continue;
                }
                let mp2 = mi as i64 - pz.m_offset;
                let mn2 = mj2 - mp2;
                let nmi = mn2 + pn_ref.m_offset;
                if nmi < 0 || nmi as usize >= pn_ref.ways[pn_ref.particles][qn].len() {
                    continue;
                }
                total += wp * pn_ref.ways[pn_ref.particles][qn][nmi as usize];
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_particle_shell_degeneracies() {
        // Shell N holds (N+1)(N+2) states including spin.
        for n in 0..6u32 {
            let count = single_particle_states(n)
                .iter()
                .filter(|&&(sn, _)| sn == n)
                .count() as u32;
            assert_eq!(count, (n + 1) * (n + 2), "shell {n}");
        }
    }

    #[test]
    fn shell_m_sums_vanish() {
        // Each shell's m2 values are symmetric around zero.
        let states = single_particle_states(4);
        for n in 0..=4u32 {
            let sum: i64 = states
                .iter()
                .filter(|&&(sn, _)| sn == n)
                .map(|&(_, m2)| m2)
                .sum();
            assert_eq!(sum, 0);
        }
    }

    #[test]
    fn minimal_quanta_fills_shells() {
        assert_eq!(minimal_quanta(0), 0);
        assert_eq!(minimal_quanta(2), 0); // s-shell holds 2
        assert_eq!(minimal_quanta(3), 1);
        assert_eq!(minimal_quanta(5), 3); // 10B: 2 in s, 3 in p
        assert_eq!(minimal_quanta(8), 6); // 2 + 6x1
        assert_eq!(minimal_quanta(9), 8); // next particle in sd shell
    }

    #[test]
    fn one_particle_dimensions() {
        // One nucleon, Nmax=0, mj2=±1: the two spin states of the s-shell
        // (after the other species is absent). Use z=1, n=0.
        assert_eq!(m_scheme_dimension(1, 0, 0, 1), 1);
        assert_eq!(m_scheme_dimension(1, 0, 0, -1), 1);
        // Nmax=1: the particle sits in the p shell (parity flip): p3/2 and
        // p1/2 give 2 states with m2=1.
        assert_eq!(m_scheme_dimension(1, 0, 1, 1), 2);
        // Nmax=2: s (unexcited is parity-even ΔQ=0) plus 2ℏω states:
        // shell 2 (d5/2, d3/2, s1/2 -> m2=1 appears 3 times).
        assert_eq!(m_scheme_dimension(1, 0, 2, 1), 4);
    }

    #[test]
    fn two_identical_fermions_antisymmetry() {
        // Two neutrons, Nmax=0: the single s-shell pair, M=0 only.
        assert_eq!(m_scheme_dimension(0, 2, 0, 0), 1);
        assert_eq!(m_scheme_dimension(0, 2, 0, 2), 0, "Pauli forbids m=+1,+1");
    }

    #[test]
    fn deuteron_like_counts() {
        // One proton + one neutron, Nmax=0, M=0: (p up, n down) and
        // (p down, n up).
        assert_eq!(m_scheme_dimension(1, 1, 0, 0), 2);
        // M=1: both up.
        assert_eq!(m_scheme_dimension(1, 1, 0, 2), 1);
    }

    #[test]
    fn dimension_decreases_with_mj() {
        // Higher |M| prunes the space (standard M-scheme property).
        let d0 = m_scheme_dimension(5, 5, 2, 0);
        let d2 = m_scheme_dimension(5, 5, 2, 2);
        let d4 = m_scheme_dimension(5, 5, 2, 4);
        assert!(d0 > d2 && d2 > d4, "{d0} {d2} {d4}");
    }

    #[test]
    fn dimension_grows_exponentially_with_nmax() {
        // §II: "at the expense of an exponential growth in the dimensions".
        let d: Vec<u128> = (0..=6)
            .map(|nmax| m_scheme_dimension(5, 5, nmax, 0))
            .collect();
        for w in d.windows(2).skip(1) {
            assert!(w[1] > 4 * w[0], "{d:?}");
        }
    }

    #[test]
    fn boron10_table_one_dimensions() {
        // The paper's four cases: (Nmax, Mj) with published D. M_j is in
        // units of ħ (integer for the even-A 10B), so mj2 = 2*Mj.
        let published: [(u32, i64, f64); 4] = [
            (7, 0, 4.66e7),
            (8, 1, 1.60e8),
            (9, 2, 4.82e8),
            (10, 3, 1.30e9),
        ];
        for (nmax, mj, want) in published {
            let d = m_scheme_dimension(5, 5, nmax, 2 * mj) as f64;
            let rel = (d - want).abs() / want;
            assert!(
                rel < 0.02,
                "Nmax={nmax} Mj={mj}: derived D = {d:.3e}, published {want:.2e} (rel {rel:.3})"
            );
        }
    }
}
