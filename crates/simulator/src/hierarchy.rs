//! Fig. 1: the memory hierarchy as the paper presents it (2012-era values).
//!
//! "As we move away from registers to cache, to DRAM and finally to
//! hard-disk drive (HDD), we see a steady increase of roughly 3 orders of
//! magnitude in storage capacity between layers. Similarly, data access
//! latencies increase at the rate of an order of magnitude between layers
//! until we hit the 'latency gap' between the DRAM and HDD."

/// One layer of the hierarchy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HierarchyLayer {
    /// Layer name.
    pub name: &'static str,
    /// Typical capacity in bytes (order of magnitude).
    pub capacity_bytes: u64,
    /// Typical access latency in CPU cycles (order of magnitude).
    pub latency_cycles: u64,
}

/// The layers of Fig. 1, innermost first. SSD sits in the latency gap the
/// paper's argument hinges on: ~100× slower than DRAM instead of the HDD's
/// ~10,000×.
pub const LAYERS: &[HierarchyLayer] = &[
    HierarchyLayer {
        name: "registers",
        capacity_bytes: 1 << 10, // ~KB
        latency_cycles: 1,
    },
    HierarchyLayer {
        name: "cache",
        capacity_bytes: 10 << 20, // ~10 MB
        latency_cycles: 10,
    },
    HierarchyLayer {
        name: "DRAM",
        capacity_bytes: 32 << 30, // ~32 GB/node
        latency_cycles: 100,
    },
    HierarchyLayer {
        name: "SSD",
        capacity_bytes: 400 << 30, // ~400 GB/card (Virident tachIOn)
        latency_cycles: 10_000,
    },
    HierarchyLayer {
        name: "HDD",
        capacity_bytes: 2 << 40, // ~TBs
        latency_cycles: 10_000_000,
    },
];

/// The latency gap each layer transition represents, as the ratio of
/// consecutive latencies.
pub fn latency_ratios() -> Vec<(&'static str, &'static str, f64)> {
    LAYERS
        .windows(2)
        .map(|w| {
            (
                w[0].name,
                w[1].name,
                w[1].latency_cycles as f64 / w[0].latency_cycles as f64,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacities_grow_monotonically() {
        for w in LAYERS.windows(2) {
            assert!(w[1].capacity_bytes > w[0].capacity_bytes);
            assert!(w[1].latency_cycles > w[0].latency_cycles);
        }
    }

    #[test]
    fn dram_to_disk_is_the_latency_gap() {
        let ratios = latency_ratios();
        // DRAM -> SSD is ~100x; SSD -> HDD is ~1000x; DRAM -> HDD combined
        // is the paper's 10,000+ cycle gap.
        let dram_ssd = ratios.iter().find(|r| r.0 == "DRAM").expect("layer");
        assert_eq!(dram_ssd.1, "SSD");
        assert!((90.0..110.0).contains(&dram_ssd.2));
        let total: f64 = ratios
            .iter()
            .skip_while(|r| r.0 != "DRAM")
            .map(|r| r.2)
            .product();
        assert!(total >= 10_000.0, "DRAM->HDD gap {total}");
    }
}
