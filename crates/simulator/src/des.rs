//! Fluid discrete-event simulation core.
//!
//! Two primitives cover everything the testbed model needs:
//!
//! * **flows** — data transfers of a known size traversing one or more
//!   shared resources (a GPFS client link, the aggregate GPFS ceiling, an
//!   InfiniBand NIC). Active flows share each resource **max-min fairly**
//!   (progressive filling): repeatedly freeze the flows crossing the
//!   currently most-contended resource at its equal share, subtract, and
//!   continue. Rates are recomputed whenever the active-flow set changes —
//!   the classic fluid approximation of TCP-fair sharing.
//! * **timers** — fixed-duration events (compute kernels).
//!
//! The driver pulls [`SimEvent`]s (each tagged with a caller-supplied `u64`)
//! and reacts by starting more flows/timers, exactly like a worker loop in
//! virtual time.

use std::collections::HashMap;

/// Identity of a shared resource.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ResourceId(usize);

/// Identity of an in-flight flow.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(u64);

/// Identity of a pending timer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TimerId(u64);

/// A completion event.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SimEvent {
    /// A flow finished transferring all its bytes.
    FlowDone {
        /// The flow.
        id: FlowId,
        /// Caller tag.
        tag: u64,
        /// Completion time.
        time: f64,
    },
    /// A timer elapsed.
    TimerDone {
        /// The timer.
        id: TimerId,
        /// Caller tag.
        tag: u64,
        /// Completion time.
        time: f64,
    },
}

impl SimEvent {
    /// The caller tag of either variant.
    pub fn tag(&self) -> u64 {
        match self {
            SimEvent::FlowDone { tag, .. } | SimEvent::TimerDone { tag, .. } => *tag,
        }
    }

    /// The completion time of either variant.
    pub fn time(&self) -> f64 {
        match self {
            SimEvent::FlowDone { time, .. } | SimEvent::TimerDone { time, .. } => *time,
        }
    }
}

struct Flow {
    remaining: f64,
    path: Vec<ResourceId>,
    tag: u64,
    rate: f64,
}

struct Timer {
    deadline: f64,
    tag: u64,
}

/// The fluid simulator.
pub struct FluidSim {
    now: f64,
    capacities: Vec<f64>,
    flows: HashMap<FlowId, Flow>,
    timers: HashMap<TimerId, Timer>,
    next_flow: u64,
    next_timer: u64,
    rates_dirty: bool,
}

impl Default for FluidSim {
    fn default() -> Self {
        Self::new()
    }
}

impl FluidSim {
    /// An empty simulator at time zero.
    pub fn new() -> Self {
        Self {
            now: 0.0,
            capacities: Vec::new(),
            flows: HashMap::new(),
            timers: HashMap::new(),
            next_flow: 0,
            next_timer: 0,
            rates_dirty: false,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Declares a resource with the given capacity (units/second).
    pub fn add_resource(&mut self, capacity: f64) -> ResourceId {
        assert!(capacity > 0.0, "capacity must be positive");
        self.capacities.push(capacity);
        ResourceId(self.capacities.len() - 1)
    }

    /// Starts a flow of `bytes` over `path`. Zero-byte flows complete at the
    /// current time (still delivered as events).
    pub fn start_flow(&mut self, bytes: f64, path: Vec<ResourceId>, tag: u64) -> FlowId {
        assert!(bytes >= 0.0, "negative flow size");
        assert!(!path.is_empty(), "flow must traverse at least one resource");
        for r in &path {
            assert!(r.0 < self.capacities.len(), "unknown resource");
        }
        let id = FlowId(self.next_flow);
        self.next_flow += 1;
        self.flows.insert(
            id,
            Flow {
                remaining: bytes,
                path,
                tag,
                rate: 0.0,
            },
        );
        self.rates_dirty = true;
        id
    }

    /// Starts a timer that fires after `duration` seconds.
    pub fn start_timer(&mut self, duration: f64, tag: u64) -> TimerId {
        assert!(duration >= 0.0, "negative duration");
        let id = TimerId(self.next_timer);
        self.next_timer += 1;
        self.timers.insert(
            id,
            Timer {
                deadline: self.now + duration,
                tag,
            },
        );
        id
    }

    /// Number of in-flight flows.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// Is anything pending?
    pub fn idle(&self) -> bool {
        self.flows.is_empty() && self.timers.is_empty()
    }

    /// Max-min fair rate allocation (progressive filling).
    fn recompute_rates(&mut self) {
        let mut residual = self.capacities.clone();
        // Unfrozen flows per resource.
        let mut per_resource: Vec<Vec<FlowId>> = vec![Vec::new(); self.capacities.len()];
        let mut unfrozen: std::collections::HashSet<FlowId> = self.flows.keys().copied().collect();
        for (id, f) in &self.flows {
            for r in &f.path {
                per_resource[r.0].push(*id);
            }
        }
        while !unfrozen.is_empty() {
            // Fair share per resource over its unfrozen flows.
            let mut best: Option<(f64, usize)> = None;
            for (ri, flows) in per_resource.iter().enumerate() {
                let n = flows.iter().filter(|f| unfrozen.contains(f)).count();
                if n == 0 {
                    continue;
                }
                let share = residual[ri] / n as f64;
                if best.map(|(s, _)| share < s).unwrap_or(true) {
                    best = Some((share, ri));
                }
            }
            let Some((share, ri)) = best else {
                // Flows exist but no resource constrains them — impossible
                // since every flow has a path.
                break;
            };
            // Freeze every unfrozen flow crossing resource `ri` at `share`.
            let to_freeze: Vec<FlowId> = per_resource[ri]
                .iter()
                .filter(|f| unfrozen.contains(f))
                .copied()
                .collect();
            for id in to_freeze {
                unfrozen.remove(&id);
                let f = self.flows.get_mut(&id).expect("flow exists");
                f.rate = share;
                for r in &f.path {
                    residual[r.0] = (residual[r.0] - share).max(0.0);
                }
            }
        }
        self.rates_dirty = false;
    }

    /// Advances to the next completion and returns it, or `None` when
    /// nothing is pending.
    pub fn next_event(&mut self) -> Option<SimEvent> {
        if self.idle() {
            return None;
        }
        if self.rates_dirty {
            self.recompute_rates();
        }
        // Earliest flow completion.
        let flow_next: Option<(f64, FlowId)> = self
            .flows
            .iter()
            .map(|(id, f)| {
                let dt = if f.rate > 0.0 {
                    f.remaining / f.rate
                } else if f.remaining == 0.0 {
                    0.0
                } else {
                    f64::INFINITY
                };
                (self.now + dt, *id)
            })
            .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        // Earliest timer.
        let timer_next: Option<(f64, TimerId)> = self
            .timers
            .iter()
            .map(|(id, t)| (t.deadline, *id))
            .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1 .0.cmp(&b.1 .0)));

        let take_flow = match (flow_next, timer_next) {
            (Some((ft, _)), Some((tt, _))) => ft <= tt,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => return None,
        };

        if take_flow {
            let (t, id) = flow_next.expect("flow present");
            assert!(t.is_finite(), "starved flow can never finish");
            self.advance_flows(t);
            let f = self.flows.remove(&id).expect("completing flow");
            self.now = t;
            self.rates_dirty = true;
            Some(SimEvent::FlowDone {
                id,
                tag: f.tag,
                time: t,
            })
        } else {
            let (t, id) = timer_next.expect("timer present");
            self.advance_flows(t);
            let timer = self.timers.remove(&id).expect("completing timer");
            self.now = t;
            // Timer completion does not change flow rates.
            Some(SimEvent::TimerDone {
                id,
                tag: timer.tag,
                time: t,
            })
        }
    }

    fn advance_flows(&mut self, to: f64) {
        let dt = to - self.now;
        if dt <= 0.0 {
            return;
        }
        for f in self.flows.values_mut() {
            f.remaining = (f.remaining - f.rate * dt).max(0.0);
        }
    }

    /// The current rate of a flow (after the last event; for tests and
    /// instrumentation).
    pub fn flow_rate(&mut self, id: FlowId) -> Option<f64> {
        if self.rates_dirty {
            self.recompute_rates();
        }
        self.flows.get(&id).map(|f| f.rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-9 * b.abs().max(1.0)
    }

    #[test]
    fn single_flow_takes_bytes_over_capacity() {
        let mut sim = FluidSim::new();
        let r = sim.add_resource(10.0);
        sim.start_flow(100.0, vec![r], 1);
        let e = sim.next_event().expect("one event");
        assert!(close(e.time(), 10.0), "{}", e.time());
        assert_eq!(e.tag(), 1);
        assert!(sim.next_event().is_none());
    }

    #[test]
    fn two_flows_share_fairly() {
        let mut sim = FluidSim::new();
        let r = sim.add_resource(10.0);
        sim.start_flow(100.0, vec![r], 1);
        sim.start_flow(100.0, vec![r], 2);
        // Each gets 5/s: both finish at t=20.
        let e1 = sim.next_event().expect("first");
        let e2 = sim.next_event().expect("second");
        assert!(close(e1.time(), 20.0));
        assert!(close(e2.time(), 20.0));
    }

    #[test]
    fn late_flow_speeds_up_after_first_completes() {
        let mut sim = FluidSim::new();
        let r = sim.add_resource(10.0);
        sim.start_flow(50.0, vec![r], 1);
        sim.start_flow(100.0, vec![r], 2);
        // Shared at 5/s: flow 1 done at t=10 (50 bytes). Flow 2 has 50 left,
        // then runs at 10/s: done at t=15.
        let e1 = sim.next_event().expect("first");
        assert_eq!(e1.tag(), 1);
        assert!(close(e1.time(), 10.0));
        let e2 = sim.next_event().expect("second");
        assert_eq!(e2.tag(), 2);
        assert!(close(e2.time(), 15.0));
    }

    #[test]
    fn multi_resource_bottleneck() {
        let mut sim = FluidSim::new();
        let wide = sim.add_resource(100.0);
        let narrow = sim.add_resource(1.0);
        sim.start_flow(10.0, vec![wide, narrow], 1);
        let e = sim.next_event().expect("event");
        assert!(close(e.time(), 10.0), "narrow link dominates: {}", e.time());
    }

    #[test]
    fn max_min_leftover_goes_to_unbottlenecked_flow() {
        // Flow A crosses narrow (cap 2) and shared (cap 10); flow B crosses
        // only shared. Max-min: A gets 2 (narrow), B gets 8.
        let mut sim = FluidSim::new();
        let shared = sim.add_resource(10.0);
        let narrow = sim.add_resource(2.0);
        let a = sim.start_flow(1e9, vec![shared, narrow], 1);
        let b = sim.start_flow(1e9, vec![shared], 2);
        assert!(close(sim.flow_rate(a).expect("a"), 2.0));
        assert!(close(sim.flow_rate(b).expect("b"), 8.0));
    }

    #[test]
    fn rates_never_exceed_capacity() {
        // Property-style: random flows on a small resource set; after every
        // event, per-resource sum of rates <= capacity (+eps).
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(9);
        let mut sim = FluidSim::new();
        let caps: Vec<f64> = (0..4).map(|_| rng.gen_range(1.0..20.0)).collect();
        let rs: Vec<ResourceId> = caps.iter().map(|&c| sim.add_resource(c)).collect();
        for tag in 0..40 {
            let len = rng.gen_range(1..=3);
            let mut path: Vec<ResourceId> = Vec::new();
            for _ in 0..len {
                let r = rs[rng.gen_range(0..rs.len())];
                if !path.contains(&r) {
                    path.push(r);
                }
            }
            sim.start_flow(rng.gen_range(1.0..500.0), path, tag);
        }
        let flow_ids: Vec<FlowId> = (0..40).map(FlowId).collect();
        let mut events = 0;
        while events < 40 {
            // Check conservation before each step.
            let mut per_res = vec![0.0f64; caps.len()];
            for &id in &flow_ids {
                if let Some(rate) = sim.flow_rate(id) {
                    // Re-look-up the path via rate>0 check only; conservation
                    // is verified through the sum below using internal state.
                    let f = &sim.flows[&id];
                    for r in &f.path {
                        per_res[r.0] += rate;
                    }
                }
            }
            for (i, &used) in per_res.iter().enumerate() {
                assert!(
                    used <= caps[i] + 1e-6,
                    "resource {i}: {used} > cap {}",
                    caps[i]
                );
            }
            match sim.next_event() {
                Some(_) => events += 1,
                None => break,
            }
        }
        assert_eq!(events, 40, "all flows completed");
    }

    #[test]
    fn timers_interleave_with_flows() {
        let mut sim = FluidSim::new();
        let r = sim.add_resource(1.0);
        sim.start_flow(10.0, vec![r], 1); // done at 10
        sim.start_timer(4.0, 2); // done at 4
        sim.start_timer(12.0, 3); // done at 12
        let order: Vec<u64> = std::iter::from_fn(|| sim.next_event())
            .map(|e| e.tag())
            .collect();
        assert_eq!(order, vec![2, 1, 3]);
    }

    #[test]
    fn zero_byte_flow_completes_immediately() {
        let mut sim = FluidSim::new();
        let r = sim.add_resource(1.0);
        sim.start_flow(0.0, vec![r], 7);
        let e = sim.next_event().expect("event");
        assert_eq!(e.tag(), 7);
        assert!(close(e.time(), 0.0));
    }

    #[test]
    fn zero_duration_timer_fires_now() {
        let mut sim = FluidSim::new();
        sim.start_timer(0.0, 5);
        let e = sim.next_event().expect("event");
        assert!(close(e.time(), 0.0));
    }

    #[test]
    fn clock_is_monotonic() {
        let mut sim = FluidSim::new();
        let r = sim.add_resource(3.0);
        for i in 0..10 {
            sim.start_flow(10.0 + i as f64, vec![r], i);
            sim.start_timer(2.0 * i as f64, 100 + i);
        }
        let mut last = 0.0;
        while let Some(e) = sim.next_event() {
            assert!(e.time() >= last - 1e-12);
            last = e.time();
        }
    }

    #[test]
    fn aggregate_throughput_matches_capacity() {
        // N symmetric flows through per-flow links (cap 1.45) + shared cap
        // 18.5 — the testbed's shape. 16 flows: shared binds (18.5 < 23.2).
        let mut sim = FluidSim::new();
        let shared = sim.add_resource(18.5);
        let n = 16;
        for i in 0..n {
            let link = sim.add_resource(1.45);
            sim.start_flow(100.0, vec![shared, link], i);
        }
        // All symmetric: each at 18.5/16 ≈ 1.156; done at 100/1.156 ≈ 86.5 s.
        let e = sim.next_event().expect("event");
        assert!(close(e.time(), 100.0 / (18.5 / 16.0)), "{}", e.time());
    }
}
