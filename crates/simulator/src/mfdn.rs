//! The in-core MFDn / Hopper model behind Tables I–II and Fig. 7.
//!
//! MFDn distributes the symmetric Hamiltonian's lower triangle over a 2-D
//! triangular processor grid: `n_p = n(n+1)/2` processors with `n` "diagonal"
//! processors holding the distributed Lanczos vectors (Sternberg et al.
//! SC'08). From the published `(D, nnz, n_p)` of each run this reproduces
//! Table I's derived columns exactly:
//!
//! * `v_local ≈ 4·D / n` bytes — MFDn v13 keeps vectors in single precision;
//! * `Ĥ_local ≈ bpn·nnz / n_p` bytes with `bpn ≈ 8.6` bytes per stored
//!   non-zero (4-byte value + 4-byte column index + row overhead).
//!
//! Table II's per-iteration cost model is
//!
//! ```text
//! t_iter = t_comp + t_comm
//! t_comp = 4·nnz / n_p / F          (half-stored symmetric SpMV: 4 flops/nnz)
//! t_comm = a · n^1.4                (vector distribution/reduction across
//!                                    row/column groups; the 1.4 exponent and
//!                                    `a` are fitted to the published comm
//!                                    fractions, which grow 34% → 86%)
//! ```
//!
//! with two fitted constants `F` (per-core SpMV rate) and `a`. The model's
//! purpose is the *shape* Fig. 7 needs: CPU-hour/iteration growing steeply
//! with problem size because communication swamps computation at scale.

/// One nuclear-structure test case (a row of Tables I–II).
#[derive(Clone, Copy, Debug)]
pub struct MfdnCase {
    /// Test name as in the paper.
    pub name: &'static str,
    /// Truncation parameter N_max.
    pub nmax: u32,
    /// Total magnetic projection M_j.
    pub mj: u32,
    /// Matrix dimension D.
    pub dimension: f64,
    /// Non-zero matrix elements (half-stored count as published).
    pub nnz: f64,
    /// Processors used (a triangular number: n(n+1)/2).
    pub np: u64,
    /// Published total time for 99 Lanczos iterations (s) — calibration
    /// reference, not model output.
    pub published_total_s: f64,
    /// Published communication fraction — calibration reference.
    pub published_comm_frac: f64,
    /// Published CPU-hours per iteration — calibration reference.
    pub published_cpu_h_per_iter: f64,
}

/// The four ¹⁰B cases of Tables I–II.
pub const CASES: &[MfdnCase] = &[
    MfdnCase {
        name: "test276",
        nmax: 7,
        mj: 0,
        dimension: 4.66e7,
        nnz: 2.81e10,
        np: 276,
        published_total_s: 244.0,
        published_comm_frac: 0.34,
        published_cpu_h_per_iter: 0.19,
    },
    MfdnCase {
        name: "test1128",
        nmax: 8,
        mj: 1,
        dimension: 1.60e8,
        nnz: 1.24e11,
        np: 1128,
        published_total_s: 543.0,
        published_comm_frac: 0.60,
        published_cpu_h_per_iter: 1.72,
    },
    MfdnCase {
        name: "test4560",
        nmax: 9,
        mj: 2,
        dimension: 4.82e8,
        nnz: 4.62e11,
        np: 4560,
        published_total_s: 759.0,
        published_comm_frac: 0.67,
        published_cpu_h_per_iter: 9.70,
    },
    MfdnCase {
        name: "test18336",
        nmax: 10,
        mj: 3,
        dimension: 1.30e9,
        nnz: 1.51e12,
        np: 18336,
        published_total_s: 1870.0,
        published_comm_frac: 0.86,
        published_cpu_h_per_iter: 96.2,
    },
];

/// Diagonal processor count `n` for a triangular layout of `np = n(n+1)/2`.
pub fn diagonal_procs(np: u64) -> u64 {
    let n = ((((8 * np + 1) as f64).sqrt() - 1.0) / 2.0).round() as u64;
    assert_eq!(n * (n + 1) / 2, np, "np={np} is not a triangular number");
    n
}

/// Derived Table I columns for a case.
#[derive(Clone, Copy, Debug)]
pub struct TableOneRow {
    /// Diagonal processors.
    pub n_diag: u64,
    /// Average local Lanczos-vector bytes (4·D/n; single precision).
    pub v_local_bytes: f64,
    /// Average local Hamiltonian bytes (bpn·nnz/np).
    pub h_local_bytes: f64,
}

/// Bytes per stored non-zero of the local CSR half (4 B value + 4 B column
/// index + amortized row structure).
pub const BYTES_PER_NNZ: f64 = 8.6;

/// Computes the Table I derived columns.
pub fn table_one_row(case: &MfdnCase) -> TableOneRow {
    let n = diagonal_procs(case.np);
    TableOneRow {
        n_diag: n,
        v_local_bytes: 4.0 * case.dimension / n as f64,
        h_local_bytes: BYTES_PER_NNZ * case.nnz / case.np as f64,
    }
}

/// The minimal processor count model: the smallest triangular `np` such
/// that the local Hamiltonian fits the per-core budget ("each calculation is
/// performed on the minimum number of processors that matches the memory
/// needs").
pub fn minimal_np(nnz: f64, per_core_budget_bytes: f64) -> u64 {
    let needed = (BYTES_PER_NNZ * nnz / per_core_budget_bytes).ceil() as u64;
    let mut n = 1u64;
    while n * (n + 1) / 2 < needed {
        n += 1;
    }
    n * (n + 1) / 2
}

/// The calibrated Hopper per-iteration cost model.
#[derive(Clone, Copy, Debug)]
pub struct HopperModel {
    /// Per-core sustained SpMV rate, flops/s.
    pub flops_per_core: f64,
    /// Communication coefficient of `a · n^1.4` (seconds).
    pub comm_a: f64,
    /// Communication exponent over the diagonal processor count.
    pub comm_exp: f64,
}

impl Default for HopperModel {
    fn default() -> Self {
        Self::calibrated()
    }
}

/// Modelled Table II row.
#[derive(Clone, Copy, Debug)]
pub struct TableTwoRow {
    /// Total time for `iters` iterations, seconds.
    pub total_s: f64,
    /// Communication fraction.
    pub comm_frac: f64,
    /// CPU-hours per iteration.
    pub cpu_h_per_iter: f64,
}

impl HopperModel {
    /// The calibration used by the reproduction (fit documented in
    /// EXPERIMENTS.md): `F` = 1.9e8 flop/s/core single-threaded SpMV on
    /// MagnyCours, `a` = 0.0104 s with exponent 1.4.
    pub fn calibrated() -> Self {
        Self {
            flops_per_core: 1.9e8,
            comm_a: 0.0104,
            comm_exp: 1.4,
        }
    }

    /// Per-iteration computation time (half-stored symmetric SpMV: 4 flops
    /// per stored non-zero, perfectly parallel over `np`).
    pub fn t_comp(&self, case: &MfdnCase) -> f64 {
        4.0 * case.nnz / case.np as f64 / self.flops_per_core
    }

    /// Per-iteration communication time.
    pub fn t_comm(&self, case: &MfdnCase) -> f64 {
        let n = diagonal_procs(case.np) as f64;
        self.comm_a * n.powf(self.comm_exp)
    }

    /// Models a Table II row for `iters` Lanczos iterations.
    pub fn table_two_row(&self, case: &MfdnCase, iters: u64) -> TableTwoRow {
        let t_iter = self.t_comp(case) + self.t_comm(case);
        TableTwoRow {
            total_s: t_iter * iters as f64,
            comm_frac: self.t_comm(case) / t_iter,
            cpu_h_per_iter: case.np as f64 * t_iter / 3600.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_procs_inverts_triangular_numbers() {
        assert_eq!(diagonal_procs(276), 23);
        assert_eq!(diagonal_procs(1128), 47);
        assert_eq!(diagonal_procs(4560), 95);
        assert_eq!(diagonal_procs(18336), 191);
    }

    #[test]
    #[should_panic(expected = "not a triangular number")]
    fn non_triangular_np_rejected() {
        diagonal_procs(100);
    }

    #[test]
    fn table_one_vector_sizes_match_paper() {
        // Published: 8.8, 13.6, 20.4, 27.2 MB.
        let published = [8.8e6, 13.6e6, 20.4e6, 27.2e6];
        for (case, want) in CASES.iter().zip(published) {
            let row = table_one_row(case);
            let rel = (row.v_local_bytes - want).abs() / want;
            assert!(
                rel < 0.08,
                "{}: v_local {} vs published {want}",
                case.name,
                row.v_local_bytes
            );
        }
    }

    #[test]
    fn table_one_matrix_sizes_match_paper() {
        // Published: 880, 880, 800, 750 MB — within ~15% of the single
        // bytes-per-nnz constant (the real constant varies per case).
        let published = [880e6, 880e6, 800e6, 750e6];
        for (case, want) in CASES.iter().zip(published) {
            let row = table_one_row(case);
            let rel = (row.h_local_bytes - want).abs() / want;
            assert!(
                rel < 0.15,
                "{}: H_local {} vs published {want}",
                case.name,
                row.h_local_bytes
            );
        }
    }

    #[test]
    fn minimal_np_orders_match_published() {
        // With ~900 MB usable per core, the model's minimal np lands within
        // 20% of the published processor counts.
        for case in CASES {
            let np = minimal_np(case.nnz, 900e6);
            let rel = (np as f64 - case.np as f64).abs() / case.np as f64;
            assert!(
                rel < 0.25,
                "{}: model np {np} vs published {}",
                case.name,
                case.np
            );
        }
    }

    #[test]
    fn table_two_shape_matches_paper() {
        let m = HopperModel::calibrated();
        for case in CASES {
            let row = m.table_two_row(case, 99);
            // Total time within 35% of published.
            let rel = (row.total_s - case.published_total_s).abs() / case.published_total_s;
            assert!(
                rel < 0.35,
                "{}: total {} vs published {}",
                case.name,
                row.total_s,
                case.published_total_s
            );
            // Comm fraction within 12 points.
            assert!(
                (row.comm_frac - case.published_comm_frac).abs() < 0.12,
                "{}: comm {} vs {}",
                case.name,
                row.comm_frac,
                case.published_comm_frac
            );
        }
    }

    #[test]
    fn comm_fraction_grows_monotonically() {
        let m = HopperModel::calibrated();
        let fracs: Vec<f64> = CASES
            .iter()
            .map(|c| m.table_two_row(c, 99).comm_frac)
            .collect();
        assert!(fracs.windows(2).all(|w| w[1] > w[0]), "{fracs:?}");
        assert!(fracs[0] < 0.5 && fracs[3] > 0.75, "{fracs:?}");
    }

    #[test]
    fn cpu_hours_grow_superlinearly() {
        let m = HopperModel::calibrated();
        let costs: Vec<f64> = CASES
            .iter()
            .map(|c| m.table_two_row(c, 99).cpu_h_per_iter)
            .collect();
        assert!(costs.windows(2).all(|w| w[1] > 2.0 * w[0]), "{costs:?}");
        // Within a factor ~1.5 of published at the extremes.
        assert!((costs[0] / 0.19 - 1.0).abs() < 0.5, "{costs:?}");
        assert!((costs[3] / 96.2 - 1.0).abs() < 0.5, "{costs:?}");
    }
}
