use dooc_simulator::testbed::{run_testbed, PolicyKind, TestbedParams};
fn main() {
    println!("policy nodes time gflops read_bw(GB/s) nonoverlap cpuh/iter");
    for &n in &[1usize, 4, 9] {
        for (pk, label) in [
            (PolicyKind::Simple, "simple"),
            (PolicyKind::Interleaved, "inter "),
        ] {
            let p = TestbedParams::paper(n);
            let r = run_testbed(&p, pk);
            println!(
                "{label} {n:>2} {:>7.0} {:>5.2} {:>5.2} {:>5.1}% {:>6.2}",
                r.time_s,
                r.gflops,
                r.read_bw / 1e9,
                r.non_overlapped * 100.0,
                r.cpu_hours_per_iter
            );
        }
    }
}
