//! Property tests of the dataflow runtime: arbitrary pipeline shapes must
//! deliver every buffer exactly once (round-robin) or to every replica
//! (broadcast), and always terminate.

use dooc_filterstream::{DataBuffer, Delivery, FilterContext, Layout, NodeId, Runtime};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// src -> [workers x w] -> sink with round-robin sharing: the sink sees
    /// every item exactly once, transformed.
    #[test]
    fn work_sharing_conserves_items(nitems in 1u64..200, w in 1usize..6) {
        let mut layout = Layout::new();
        let src = layout.add_filter(
            "src",
            NodeId(0),
            Box::new(move |ctx: &mut FilterContext| {
                let out = ctx.output("out")?;
                for i in 0..nitems {
                    out.send(DataBuffer::from_u64s(0, &[i]))?;
                }
                Ok(())
            }),
        );
        let workers = layout.add_replicated("w", vec![NodeId(0); w], |_| {
            Box::new(|ctx: &mut FilterContext| {
                while let Some(b) = ctx.input("in")?.recv() {
                    let v = b.as_u64s()[0];
                    ctx.output("out")?.send(DataBuffer::from_u64s(0, &[v * 3 + 1]))?;
                }
                Ok(())
            })
        });
        let sum = Arc::new(AtomicU64::new(0));
        let count = Arc::new(AtomicU64::new(0));
        let (s2, c2) = (Arc::clone(&sum), Arc::clone(&count));
        let sink = layout.add_filter(
            "sink",
            NodeId(1),
            Box::new(move |ctx: &mut FilterContext| {
                while let Some(b) = ctx.input("in")?.recv() {
                    s2.fetch_add(b.as_u64s()[0], Ordering::Relaxed);
                    c2.fetch_add(1, Ordering::Relaxed);
                }
                Ok(())
            }),
        );
        layout.connect(src, "out", workers, "in");
        layout.connect(workers, "out", sink, "in");
        Runtime::run(layout).expect("terminates");
        prop_assert_eq!(count.load(Ordering::Relaxed), nitems);
        let expect: u64 = (0..nitems).map(|i| i * 3 + 1).sum();
        prop_assert_eq!(sum.load(Ordering::Relaxed), expect);
    }

    /// Broadcast to R replicas: every replica receives every buffer.
    #[test]
    fn broadcast_reaches_all(nitems in 1u64..100, r in 1usize..5) {
        let mut layout = Layout::new();
        let src = layout.add_filter(
            "src",
            NodeId(0),
            Box::new(move |ctx: &mut FilterContext| {
                let out = ctx.output("out")?;
                for i in 0..nitems {
                    out.send(DataBuffer::tag_only(i))?;
                }
                Ok(())
            }),
        );
        let counts: Arc<Vec<AtomicU64>> =
            Arc::new((0..r).map(|_| AtomicU64::new(0)).collect());
        let c2 = Arc::clone(&counts);
        let reps = layout.add_replicated("rep", vec![NodeId(0); r], move |_| {
            let counts = Arc::clone(&c2);
            Box::new(move |ctx: &mut FilterContext| {
                while ctx.input("in")?.recv().is_some() {
                    counts[ctx.instance].fetch_add(1, Ordering::Relaxed);
                }
                Ok(())
            })
        });
        layout.connect_with(src, "out", reps, "in", Delivery::Broadcast, 64);
        Runtime::run(layout).expect("terminates");
        for c in counts.iter() {
            prop_assert_eq!(c.load(Ordering::Relaxed), nitems);
        }
    }

    /// Chains of any depth terminate and preserve the item count.
    #[test]
    fn deep_chain_terminates(nitems in 1u64..64, depth in 1usize..6) {
        let mut layout = Layout::new();
        let src = layout.add_filter(
            "src",
            NodeId(0),
            Box::new(move |ctx: &mut FilterContext| {
                let out = ctx.output("out")?;
                for i in 0..nitems {
                    out.send(DataBuffer::tag_only(i))?;
                }
                Ok(())
            }),
        );
        let mut prev = src;
        for d in 0..depth {
            let stage = layout.add_filter(
                format!("stage{d}"),
                NodeId(d % 3),
                Box::new(|ctx: &mut FilterContext| {
                    while let Some(b) = ctx.input("in")?.recv() {
                        ctx.output("out")?.send(b)?;
                    }
                    Ok(())
                }),
            );
            layout.connect(prev, "out", stage, "in");
            prev = stage;
        }
        let count = Arc::new(AtomicU64::new(0));
        let c2 = Arc::clone(&count);
        let sink = layout.add_filter(
            "sink",
            NodeId(0),
            Box::new(move |ctx: &mut FilterContext| {
                while ctx.input("in")?.recv().is_some() {
                    c2.fetch_add(1, Ordering::Relaxed);
                }
                Ok(())
            }),
        );
        layout.connect(prev, "out", sink, "in");
        let report = Runtime::run(layout).expect("terminates");
        prop_assert_eq!(count.load(Ordering::Relaxed), nitems);
        // Traffic accounting: every stream carried exactly nitems buffers.
        for s in &report.streams {
            prop_assert_eq!(s.buffers, nitems, "{}", s.name);
        }
    }
}
