//! Logical streams: unidirectional, untyped, possibly fanned out or in.
//!
//! A stream connects the producer instances of one filter to the consumer
//! instances of another. Delivery policies cover the parallelism styles of
//! DataCutter plus the addressed routing DOoC's storage layer needs:
//!
//! * [`Delivery::RoundRobin`] — demand-driven work sharing: all consumer
//!   instances pull from one shared queue (data parallelism for replicated,
//!   stateless filters);
//! * [`Delivery::Broadcast`] — every consumer instance receives every buffer
//!   (payloads are shared, not copied);
//! * [`Delivery::Aligned`] — producer instance *i* feeds consumer instance
//!   *i* (e.g. each node's storage filter to that node's I/O filter);
//! * [`Delivery::Addressed`] — the producer names the destination instance
//!   per buffer via [`StreamWriter::send_to`] (peer-to-peer storage traffic,
//!   replies to specific clients).
//!
//! Several streams may target the same *(consumer filter, input port)* pair
//! — fan-in — provided they agree on the delivery policy; their buffers are
//! merged into one inbox. The port closes once **all** producer endpoints of
//! **all** fanned-in streams have been dropped.
//!
//! Streams are bounded (default 256 buffers), giving natural backpressure: a
//! fast producer blocks rather than ballooning memory, as in the real
//! middleware.

use crate::buffer::DataBuffer;
use crate::{FsError, NodeId, Result};
use dooc_obs::metrics::{counter, Counter};
use dooc_sync::atomic::{AtomicU64, Ordering};
use dooc_sync::channel::{bounded, Receiver, Select, Sender};
use std::sync::{Arc, OnceLock};

/// Stream-layer metric handles, resolved once (updates are gated relaxed
/// atomics, so the disabled cost per send/recv is one load and a branch).
struct FsObs {
    buffers_sent: &'static Counter,
    bytes_sent: &'static Counter,
    buffers_recv: &'static Counter,
}

fn fs_obs() -> &'static FsObs {
    static O: OnceLock<FsObs> = OnceLock::new();
    O.get_or_init(|| FsObs {
        buffers_sent: counter("fs.buffers_sent"),
        bytes_sent: counter("fs.bytes_sent"),
        buffers_recv: counter("fs.buffers_recv"),
    })
}

/// Delivery policy of a stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Delivery {
    /// Each buffer goes to exactly one consumer instance, demand-driven.
    #[default]
    RoundRobin,
    /// Each buffer goes to every consumer instance.
    Broadcast,
    /// Producer instance `i` feeds consumer instance `i`; instance counts
    /// must match.
    Aligned,
    /// Producer picks the destination instance per buffer with
    /// [`StreamWriter::send_to`].
    Addressed,
}

/// Default bound on in-flight buffers per inbox lane.
pub const DEFAULT_CAPACITY: usize = 256;

/// Traffic counters of one stream, observable after the run (the
/// application "logs" the paper reads bandwidth from).
#[derive(Debug, Default)]
pub struct StreamStats {
    /// Buffers sent by producers.
    pub buffers: AtomicU64,
    /// Total wire bytes sent by producers (before any broadcast fan-out).
    pub bytes: AtomicU64,
    /// Wire bytes that crossed a node boundary (sender node != receiver
    /// node). For broadcast this counts each remote replica.
    pub remote_bytes: AtomicU64,
}

impl StreamStats {
    /// Snapshot of (buffers, bytes, remote_bytes).
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.buffers.load(Ordering::Relaxed),
            self.bytes.load(Ordering::Relaxed),
            self.remote_bytes.load(Ordering::Relaxed),
        )
    }
}

/// Enqueue/dequeue tally of one inbox, for the shutdown leak audit: every
/// buffer enqueued into a consumer lane (each broadcast replica counts as
/// one) should eventually be dequeued by a consumer; a shortfall at the end
/// of a run means buffers were abandoned in a lane.
#[derive(Debug, Default)]
pub struct PortCounters {
    /// Buffers enqueued into consumer lanes.
    pub enqueued: AtomicU64,
    /// Buffers dequeued by consumers.
    pub dequeued: AtomicU64,
}

/// The consumer-side channel set of one (filter, input port): either a
/// single shared queue or one lane per consumer instance.
#[derive(Clone)]
pub(crate) enum InboxLanes {
    Shared(Sender<DataBuffer>),
    PerConsumer(Vec<Sender<DataBuffer>>),
}

/// Inbox of one (consumer filter, input port): the receiving half that
/// consumer instances read from. Built once per port; every fanned-in stream
/// sends into the same lanes.
pub(crate) struct Inbox {
    pub delivery: Delivery,
    pub lanes: InboxLanes,
    readers: Vec<Option<StreamReader>>,
    pub consumer_nodes: Arc<[NodeId]>,
    pub counters: Arc<PortCounters>,
}

impl Inbox {
    pub fn new(
        delivery: Delivery,
        capacity: usize,
        consumer_nodes: &[NodeId],
        consumer_port: &str,
    ) -> Self {
        assert!(
            !consumer_nodes.is_empty(),
            "inbox needs at least one consumer"
        );
        let counters = Arc::new(PortCounters::default());
        let (lanes, readers) = match delivery {
            Delivery::RoundRobin => {
                let (tx, rx) = bounded(capacity);
                let readers = consumer_nodes
                    .iter()
                    .map(|_| {
                        Some(StreamReader {
                            port: consumer_port.to_string(),
                            rx: rx.clone(),
                            counters: Arc::clone(&counters),
                        })
                    })
                    .collect();
                (InboxLanes::Shared(tx), readers)
            }
            Delivery::Broadcast | Delivery::Aligned | Delivery::Addressed => {
                let mut txs = Vec::with_capacity(consumer_nodes.len());
                let mut readers = Vec::with_capacity(consumer_nodes.len());
                for _ in consumer_nodes {
                    let (tx, rx) = bounded(capacity);
                    txs.push(tx);
                    readers.push(Some(StreamReader {
                        port: consumer_port.to_string(),
                        rx,
                        counters: Arc::clone(&counters),
                    }));
                }
                (InboxLanes::PerConsumer(txs), readers)
            }
        };
        Self {
            delivery,
            lanes,
            readers,
            consumer_nodes: consumer_nodes.into(),
            counters,
        }
    }

    /// Takes the reader of consumer instance `i` (exactly once).
    pub fn take_reader(&mut self, i: usize) -> StreamReader {
        match self.readers[i].take() {
            Some(r) => r,
            None => panic!("reader {i} already taken — each consumer instance gets exactly one"),
        }
    }

    /// Creates a writer for producer instance `instance` placed on `node`.
    pub fn writer(
        &self,
        producer_port: &str,
        instance: usize,
        node: NodeId,
        stats: Arc<StreamStats>,
    ) -> StreamWriter {
        if self.delivery == Delivery::Aligned {
            assert!(
                instance < self.consumer_nodes.len(),
                "aligned stream requires consumer instance {instance} to exist"
            );
        }
        StreamWriter {
            port: producer_port.to_string(),
            delivery: self.delivery,
            lanes: self.lanes.clone(),
            stats,
            counters: Arc::clone(&self.counters),
            instance,
            from_node: node,
            consumer_nodes: Arc::clone(&self.consumer_nodes),
            #[cfg(feature = "faultline")]
            held: dooc_sync::Mutex::new(None),
        }
    }
}

/// Producer endpoint of a stream. Dropping every producer endpoint of every
/// stream fanned into a port closes that port for consumers.
pub struct StreamWriter {
    port: String,
    delivery: Delivery,
    lanes: InboxLanes,
    stats: Arc<StreamStats>,
    /// Inbox-level enqueue tally (shared by all streams fanned into the
    /// consumer port) for the shutdown leak audit.
    counters: Arc<PortCounters>,
    /// Producer instance index (selects the lane for aligned delivery).
    instance: usize,
    /// Node of the filter holding this writer.
    from_node: NodeId,
    /// Node of each consumer instance. For the shared (round-robin) lane the
    /// precise receiver of a buffer is unknowable before a demand-driven
    /// pull, so a buffer is charged as remote if *any* consumer sits on a
    /// different node — the pessimistic bound.
    consumer_nodes: Arc<[NodeId]>,
    /// Reorder hold-back slot: a buffer a `Fault::Reorder` injection parked
    /// so it is emitted *after* the next send (flushed on writer drop so no
    /// message is ever lost to reordering). `None` dest means [`Self::send`],
    /// `Some(d)` means [`Self::send_to`].
    #[cfg(feature = "faultline")]
    held: dooc_sync::Mutex<Option<(Option<usize>, DataBuffer)>>,
}

impl StreamWriter {
    fn account(&self, wire: u64, remote: bool) {
        self.counters.enqueued.fetch_add(1, Ordering::Relaxed);
        fs_obs().buffers_sent.inc();
        fs_obs().bytes_sent.add(wire);
        self.stats.buffers.fetch_add(1, Ordering::Relaxed);
        self.stats.bytes.fetch_add(wire, Ordering::Relaxed);
        if remote {
            self.stats.remote_bytes.fetch_add(wire, Ordering::Relaxed);
        }
    }

    /// Consults the `faultline` message failpoint keyed by this writer's
    /// producer port name, with the buffer's tag word exposed to the
    /// schedule's `exempt_tags` guard. Returns `None` when the buffer was
    /// consumed by the fault (dropped or parked for reordering).
    #[cfg(feature = "faultline")]
    fn inject(&self, dest: Option<usize>, buf: DataBuffer) -> Option<DataBuffer> {
        use dooc_faultline::{fail, Fault};
        match fail::message(&self.port, &buf.tag.to_le_bytes()) {
            None | Some(Fault::Error) | Some(Fault::Fire) => Some(buf),
            Some(Fault::Delay(ms)) => {
                dooc_sync::thread::sleep(std::time::Duration::from_millis(ms));
                Some(buf)
            }
            Some(Fault::Drop) => None,
            Some(Fault::Reorder) => {
                let mut held = self.held.lock();
                if held.is_some() {
                    // Already holding one back — deliver this buffer normally
                    // rather than grow an unbounded reorder queue.
                    return Some(buf);
                }
                *held = Some((dest, buf));
                None
            }
        }
    }

    /// Emits a buffer parked by a `Reorder` injection, now that a later
    /// message has overtaken it (or the writer is closing). The armed-gate
    /// fast path skips the lock entirely: a buffer can only be parked while
    /// injection is armed, and one parked across a disarm is flushed by the
    /// writer's drop (which calls [`Self::flush_held_now`] unconditionally).
    #[cfg(feature = "faultline")]
    fn flush_held(&self) -> Result<()> {
        if !dooc_faultline::enabled() {
            return Ok(());
        }
        self.flush_held_now()
    }

    /// Unconditional variant of [`Self::flush_held`] for the drop path.
    #[cfg(feature = "faultline")]
    fn flush_held_now(&self) -> Result<()> {
        let held = self.held.lock().take();
        match held {
            Some((Some(d), buf)) => self.deliver_to(d, buf),
            Some((None, buf)) => self.deliver(buf),
            None => Ok(()),
        }
    }

    /// Sends a buffer. Blocks when the stream is at capacity. Fails if every
    /// consumer has terminated, or if this is an addressed stream (use
    /// [`StreamWriter::send_to`]).
    pub fn send(&self, buf: DataBuffer) -> Result<()> {
        #[cfg(feature = "faultline")]
        let buf = match self.inject(None, buf) {
            Some(b) => b,
            None => return Ok(()),
        };
        self.deliver(buf)?;
        #[cfg(feature = "faultline")]
        self.flush_held()?;
        Ok(())
    }

    fn deliver(&self, buf: DataBuffer) -> Result<()> {
        note_payload_write(&buf);
        let wire = buf.wire_size();
        match (&self.lanes, self.delivery) {
            (InboxLanes::Shared(tx), _) => {
                let remote = self.consumer_nodes.iter().any(|&n| n != self.from_node);
                tx.send(buf).map_err(|_| FsError::StreamClosed {
                    port: self.port.clone(),
                })?;
                self.account(wire, remote);
            }
            (InboxLanes::PerConsumer(txs), Delivery::Broadcast) => {
                let mut delivered = 0usize;
                for (i, tx) in txs.iter().enumerate() {
                    if tx.send(buf.clone()).is_ok() {
                        delivered += 1;
                        if self.consumer_nodes[i] != self.from_node {
                            self.stats.remote_bytes.fetch_add(wire, Ordering::Relaxed);
                        }
                    }
                }
                if delivered == 0 {
                    return Err(FsError::StreamClosed {
                        port: self.port.clone(),
                    });
                }
                self.counters
                    .enqueued
                    .fetch_add(delivered as u64, Ordering::Relaxed);
                fs_obs().buffers_sent.inc();
                fs_obs().bytes_sent.add(wire);
                self.stats.buffers.fetch_add(1, Ordering::Relaxed);
                self.stats.bytes.fetch_add(wire, Ordering::Relaxed);
            }
            (InboxLanes::PerConsumer(txs), Delivery::Aligned) => {
                let lane = self.instance;
                let remote = self.consumer_nodes[lane] != self.from_node;
                txs[lane].send(buf).map_err(|_| FsError::StreamClosed {
                    port: self.port.clone(),
                })?;
                self.account(wire, remote);
            }
            (InboxLanes::PerConsumer(_), Delivery::Addressed) => {
                return Err(FsError::StreamClosed {
                    port: format!("{} (addressed stream requires send_to)", self.port),
                });
            }
            (InboxLanes::PerConsumer(_), Delivery::RoundRobin) => {
                unreachable!("round-robin inbox always uses a shared lane")
            }
        }
        Ok(())
    }

    /// Sends a buffer to consumer instance `dest` of an addressed stream.
    pub fn send_to(&self, dest: usize, buf: DataBuffer) -> Result<()> {
        #[cfg(feature = "faultline")]
        let buf = match self.inject(Some(dest), buf) {
            Some(b) => b,
            None => return Ok(()),
        };
        self.deliver_to(dest, buf)?;
        #[cfg(feature = "faultline")]
        self.flush_held()?;
        Ok(())
    }

    fn deliver_to(&self, dest: usize, buf: DataBuffer) -> Result<()> {
        note_payload_write(&buf);
        let wire = buf.wire_size();
        match &self.lanes {
            InboxLanes::PerConsumer(txs) if self.delivery == Delivery::Addressed => {
                let tx = txs.get(dest).ok_or_else(|| FsError::StreamClosed {
                    port: format!("{} (no consumer instance {dest})", self.port),
                })?;
                let remote = self.consumer_nodes[dest] != self.from_node;
                tx.send(buf).map_err(|_| FsError::StreamClosed {
                    port: self.port.clone(),
                })?;
                self.account(wire, remote);
                Ok(())
            }
            _ => Err(FsError::StreamClosed {
                port: format!("{} (send_to requires an addressed stream)", self.port),
            }),
        }
    }

    /// Number of consumer instances reachable through this writer.
    pub fn consumer_count(&self) -> usize {
        self.consumer_nodes.len()
    }

    /// The port name this writer was bound to.
    pub fn port(&self) -> &str {
        &self.port
    }
}

/// A dropped writer flushes any buffer a `Reorder` injection parked, so the
/// reorder fault permutes delivery order but never loses the message.
#[cfg(feature = "faultline")]
impl Drop for StreamWriter {
    fn drop(&mut self) {
        let _ = self.flush_held_now();
    }
}

/// dooc-race annotation: the payload bytes a producer publishes into a
/// stream. Pairs with [`note_payload_read`] on the consumer side — the
/// channel's send→recv edge must order every such pair, so a fault in the
/// stream plumbing (a buffer observable before its send) shows up as a
/// race. Empty payloads are skipped: `Bytes::new` shares one static
/// allocation, which would alias unrelated streams. Compiled to a no-op
/// without the `record` feature of `dooc-sync`.
#[inline]
fn note_payload_write(buf: &DataBuffer) {
    if !buf.payload.is_empty() && dooc_sync::record::armed() {
        // Pin the allocation for the rest of the recording session: if the
        // allocator recycled an annotated address for an unrelated payload
        // on another thread, the shadow state would report phantom races.
        dooc_sync::record::pin(Box::new(buf.payload.clone()));
        dooc_sync::record::data_write(buf.payload.as_ptr() as usize);
    }
}

/// See [`note_payload_write`].
#[inline]
fn note_payload_read(buf: &DataBuffer) {
    if !buf.payload.is_empty() && dooc_sync::record::armed() {
        dooc_sync::record::pin(Box::new(buf.payload.clone()));
        dooc_sync::record::data_read(buf.payload.as_ptr() as usize);
    }
}

/// Consumer endpoint of one (filter instance, input port).
pub struct StreamReader {
    port: String,
    rx: Receiver<DataBuffer>,
    /// Inbox-level dequeue tally for the shutdown leak audit.
    counters: Arc<PortCounters>,
}

impl StreamReader {
    /// Receives the next buffer; `None` once the port is closed (every
    /// producer endpoint dropped) and drained.
    pub fn recv(&self) -> Option<DataBuffer> {
        let b = self.rx.recv().ok();
        if let Some(b) = &b {
            note_payload_read(b);
            self.counters.dequeued.fetch_add(1, Ordering::Relaxed);
            fs_obs().buffers_recv.inc();
        }
        b
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<DataBuffer> {
        let b = self.rx.try_recv().ok();
        if let Some(b) = &b {
            note_payload_read(b);
            self.counters.dequeued.fetch_add(1, Ordering::Relaxed);
            fs_obs().buffers_recv.inc();
        }
        b
    }

    /// Receives with a timeout; `None` on timeout *or* closure — callers that
    /// must distinguish should use [`StreamReader::recv`].
    pub fn recv_timeout(&self, d: std::time::Duration) -> Option<DataBuffer> {
        let b = self.rx.recv_timeout(d).ok();
        if let Some(b) = &b {
            note_payload_read(b);
            self.counters.dequeued.fetch_add(1, Ordering::Relaxed);
            fs_obs().buffers_recv.inc();
        }
        b
    }

    /// The port name this reader was bound to.
    pub fn port(&self) -> &str {
        &self.port
    }

    /// Drains everything currently queued without blocking.
    pub fn drain(&self) -> Vec<DataBuffer> {
        let mut out = Vec::new();
        while let Some(b) = self.try_recv() {
            out.push(b);
        }
        out
    }
}

/// Builds a standalone point-to-point stream outside any layout: one
/// producer instance feeding one consumer instance (both as instance 0 on
/// node 0) with [`Delivery::Addressed`] delivery, so `send`, `send_to(0, _)`
/// and `recv` all work. For harnesses (benches, dooc-check's schedule
/// exploration suite) that wire a client to a hand-rolled server loop
/// instead of standing up a full [`crate::Runtime`] layout.
pub fn standalone_stream(port: &str, capacity: usize) -> (StreamWriter, StreamReader) {
    let mut inbox = Inbox::new(Delivery::Addressed, capacity, &[NodeId(0)], port);
    let reader = inbox.take_reader(0);
    let writer = inbox.writer(port, 0, NodeId(0), Arc::new(StreamStats::default()));
    (writer, reader)
}

/// Blocking receive over several readers: returns the index of the reader
/// that produced the buffer, or `None` once **every** reader is closed and
/// drained. This is how a storage filter multiplexes client requests, peer
/// messages and I/O completions.
pub fn select_recv(readers: &[&StreamReader]) -> Option<(usize, DataBuffer)> {
    let mut closed = vec![false; readers.len()];
    loop {
        match select_event(readers, &mut closed) {
            Some(SelectEvent::Buffer(i, b)) => return Some((i, b)),
            Some(SelectEvent::Closed(_)) => continue,
            None => return None,
        }
    }
}

/// One observation from [`select_event`].
#[derive(Debug)]
pub enum SelectEvent {
    /// Reader `usize` produced a buffer.
    Buffer(usize, DataBuffer),
    /// Reader `usize` closed (reported exactly once).
    Closed(usize),
}

/// Like [`select_recv`] but additionally reports each reader's closure as an
/// event. `closed` is caller-owned state (initialize to `false`s); once every
/// entry is `true`, returns `None`. Lets a server react to a client stream
/// disappearing (e.g. treat it as an implicit shutdown) while other inputs
/// stay open.
pub fn select_event(readers: &[&StreamReader], closed: &mut [bool]) -> Option<SelectEvent> {
    match select_event_timeout(readers, closed, None) {
        SelectOutcome::Event(e) => Some(e),
        SelectOutcome::AllClosed => None,
        SelectOutcome::Timeout => unreachable!("no timeout configured"),
    }
}

/// Result of [`select_event_timeout`].
#[derive(Debug)]
pub enum SelectOutcome {
    /// A buffer arrived or a reader closed.
    Event(SelectEvent),
    /// The timeout elapsed with no event.
    Timeout,
    /// Every reader is closed and drained.
    AllClosed,
}

/// [`select_event`] with an optional timeout — servers with retryable
/// background work (e.g. stalled remote fetches) poll with a short timeout
/// instead of blocking forever.
pub fn select_event_timeout(
    readers: &[&StreamReader],
    closed: &mut [bool],
    timeout: Option<std::time::Duration>,
) -> SelectOutcome {
    assert_eq!(readers.len(), closed.len());
    let open: Vec<usize> = (0..readers.len()).filter(|&i| !closed[i]).collect();
    if open.is_empty() {
        return SelectOutcome::AllClosed;
    }
    let mut sel = Select::new();
    for &i in &open {
        sel.recv(&readers[i].rx);
    }
    let op = match timeout {
        Some(d) => match sel.select_timeout(d) {
            Ok(op) => op,
            Err(_) => return SelectOutcome::Timeout,
        },
        None => sel.select(),
    };
    let slot = op.index();
    let idx = open[slot];
    match op.recv(&readers[idx].rx) {
        Ok(buf) => {
            readers[idx]
                .counters
                .dequeued
                .fetch_add(1, Ordering::Relaxed);
            SelectOutcome::Event(SelectEvent::Buffer(idx, buf))
        }
        Err(_) => {
            closed[idx] = true;
            SelectOutcome::Event(SelectEvent::Closed(idx))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn stats() -> Arc<StreamStats> {
        Arc::new(StreamStats::default())
    }

    fn inbox(delivery: Delivery, consumers: usize) -> Inbox {
        Inbox::new(delivery, 8, &vec![NodeId(0); consumers], "in")
    }

    #[test]
    fn roundrobin_each_buffer_once() {
        let mut ib = inbox(Delivery::RoundRobin, 2);
        let r0 = ib.take_reader(0);
        let r1 = ib.take_reader(1);
        let w = ib.writer("out", 0, NodeId(0), stats());
        drop(ib);
        for i in 0..6 {
            w.send(DataBuffer::tag_only(i)).expect("open");
        }
        drop(w);
        let mut seen: Vec<u64> = r0.drain().into_iter().map(|x| x.tag).collect();
        seen.extend(r1.drain().into_iter().map(|x| x.tag));
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn broadcast_each_buffer_everywhere() {
        let mut ib = inbox(Delivery::Broadcast, 3);
        let readers: Vec<_> = (0..3).map(|i| ib.take_reader(i)).collect();
        let w = ib.writer("out", 0, NodeId(0), stats());
        drop(ib);
        w.send(DataBuffer::tag_only(7)).expect("open");
        drop(w);
        for r in &readers {
            assert_eq!(r.recv().expect("delivered").tag, 7);
            assert!(r.recv().is_none(), "closed after producer drop");
        }
    }

    #[test]
    fn aligned_routes_instance_to_instance() {
        let mut ib = inbox(Delivery::Aligned, 2);
        let r0 = ib.take_reader(0);
        let r1 = ib.take_reader(1);
        let w0 = ib.writer("out", 0, NodeId(0), stats());
        let w1 = ib.writer("out", 1, NodeId(0), stats());
        drop(ib);
        w0.send(DataBuffer::tag_only(10)).expect("open");
        w1.send(DataBuffer::tag_only(11)).expect("open");
        drop((w0, w1));
        assert_eq!(r0.recv().expect("lane 0").tag, 10);
        assert!(r0.recv().is_none());
        assert_eq!(r1.recv().expect("lane 1").tag, 11);
        assert!(r1.recv().is_none());
    }

    #[test]
    fn addressed_routes_by_destination() {
        let mut ib = inbox(Delivery::Addressed, 3);
        let readers: Vec<_> = (0..3).map(|i| ib.take_reader(i)).collect();
        let w = ib.writer("out", 0, NodeId(0), stats());
        drop(ib);
        w.send_to(2, DataBuffer::tag_only(2)).expect("open");
        w.send_to(0, DataBuffer::tag_only(0)).expect("open");
        assert!(
            w.send(DataBuffer::tag_only(9)).is_err(),
            "plain send rejected"
        );
        assert!(w.send_to(5, DataBuffer::tag_only(9)).is_err(), "bad dest");
        drop(w);
        assert_eq!(readers[0].recv().expect("to 0").tag, 0);
        assert!(readers[1].recv().is_none(), "nothing to 1");
        assert_eq!(readers[2].recv().expect("to 2").tag, 2);
    }

    #[test]
    fn fan_in_merges_writers() {
        let mut ib = inbox(Delivery::RoundRobin, 1);
        let r = ib.take_reader(0);
        let w1 = ib.writer("a", 0, NodeId(0), stats());
        let w2 = ib.writer("b", 0, NodeId(0), stats());
        drop(ib);
        w1.send(DataBuffer::tag_only(1)).expect("open");
        w2.send(DataBuffer::tag_only(2)).expect("open");
        drop(w1);
        let mut tags = vec![r.recv().expect("first").tag, r.recv().expect("second").tag];
        tags.sort_unstable();
        assert_eq!(tags, vec![1, 2]);
        assert!(
            r.recv_timeout(Duration::from_millis(10)).is_none(),
            "w2 still open"
        );
        drop(w2);
        assert!(
            r.recv().is_none(),
            "closed after all fan-in writers dropped"
        );
    }

    #[test]
    fn send_fails_when_all_consumers_gone() {
        let mut ib = inbox(Delivery::RoundRobin, 1);
        let r = ib.take_reader(0);
        let w = ib.writer("out", 0, NodeId(0), stats());
        drop(ib);
        drop(r);
        assert!(matches!(
            w.send(DataBuffer::tag_only(0)),
            Err(FsError::StreamClosed { .. })
        ));
    }

    #[test]
    fn stats_count_buffers_and_bytes() {
        let st = stats();
        let mut ib = inbox(Delivery::RoundRobin, 1);
        let _r = ib.take_reader(0);
        let w = ib.writer("out", 0, NodeId(0), Arc::clone(&st));
        w.send(DataBuffer::from_u64s(0, &[1, 2])).expect("open");
        w.send(DataBuffer::tag_only(0)).expect("open");
        let (bufs, bytes, remote) = st.snapshot();
        assert_eq!(bufs, 2);
        assert_eq!(bytes, 32 + 16);
        assert_eq!(remote, 0, "same-node traffic is local");
    }

    #[test]
    fn remote_bytes_counted_across_nodes() {
        let st = stats();
        let mut ib = Inbox::new(Delivery::Broadcast, 4, &[NodeId(0), NodeId(1)], "in");
        let _r0 = ib.take_reader(0);
        let _r1 = ib.take_reader(1);
        let w = ib.writer("out", 0, NodeId(0), Arc::clone(&st));
        w.send(DataBuffer::tag_only(0)).expect("open");
        let (_, bytes, remote) = st.snapshot();
        assert_eq!(bytes, 16);
        assert_eq!(remote, 16, "only the NodeId(1) replica is remote");
    }

    #[test]
    fn addressed_remote_accounting_is_per_destination() {
        let st = stats();
        let mut ib = Inbox::new(Delivery::Addressed, 4, &[NodeId(0), NodeId(1)], "in");
        let _r0 = ib.take_reader(0);
        let _r1 = ib.take_reader(1);
        let w = ib.writer("out", 0, NodeId(0), Arc::clone(&st));
        w.send_to(0, DataBuffer::tag_only(0)).expect("local");
        w.send_to(1, DataBuffer::tag_only(0)).expect("remote");
        let (_, bytes, remote) = st.snapshot();
        assert_eq!(bytes, 32);
        assert_eq!(remote, 16);
    }

    #[test]
    fn backpressure_blocks_then_resumes() {
        let mut ib = Inbox::new(Delivery::RoundRobin, 2, &[NodeId(0)], "in");
        let r = ib.take_reader(0);
        let w = ib.writer("out", 0, NodeId(0), stats());
        drop(ib);
        w.send(DataBuffer::tag_only(0)).expect("open");
        w.send(DataBuffer::tag_only(1)).expect("open");
        let h = std::thread::spawn(move || w.send(DataBuffer::tag_only(2)));
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(r.recv().expect("first").tag, 0);
        h.join().expect("no panic").expect("send succeeded");
        assert_eq!(r.recv().expect("second").tag, 1);
        assert_eq!(r.recv().expect("third").tag, 2);
    }

    #[test]
    fn select_recv_multiplexes_and_terminates() {
        let mut a = inbox(Delivery::RoundRobin, 1);
        let mut b = inbox(Delivery::RoundRobin, 1);
        let ra = a.take_reader(0);
        let rb = b.take_reader(0);
        let wa = a.writer("out", 0, NodeId(0), stats());
        let wb = b.writer("out", 0, NodeId(0), stats());
        drop((a, b));
        wa.send(DataBuffer::tag_only(1)).expect("open");
        wb.send(DataBuffer::tag_only(2)).expect("open");
        drop((wa, wb));
        let mut got = Vec::new();
        while let Some((idx, buf)) = select_recv(&[&ra, &rb]) {
            got.push((idx, buf.tag));
        }
        got.sort_unstable();
        assert_eq!(got, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn recv_timeout_expires() {
        let mut ib = inbox(Delivery::RoundRobin, 1);
        let r = ib.take_reader(0);
        let _w = ib.writer("out", 0, NodeId(0), stats());
        assert!(r.recv_timeout(Duration::from_millis(10)).is_none());
    }

    #[test]
    #[should_panic(expected = "already taken")]
    fn reader_taken_once() {
        let mut ib = inbox(Delivery::RoundRobin, 1);
        let _ = ib.take_reader(0);
        let _ = ib.take_reader(0);
    }

    #[cfg(feature = "faultline")]
    mod faults {
        use super::*;
        use dooc_faultline as faultline;

        #[test]
        fn injected_drop_loses_messages_silently() {
            let _g = faultline::test_gate();
            faultline::reset();
            faultline::seed(11);
            faultline::configure("out", faultline::FaultSpec::drop_msg().with_max(1));
            faultline::enable();
            let mut ib = inbox(Delivery::RoundRobin, 1);
            let r = ib.take_reader(0);
            let w = ib.writer("out", 0, NodeId(0), stats());
            drop(ib);
            w.send(DataBuffer::tag_only(1)).expect("dropped, not error");
            w.send(DataBuffer::tag_only(2)).expect("open");
            drop(w);
            faultline::reset();
            let tags: Vec<u64> = r.drain().into_iter().map(|b| b.tag).collect();
            assert_eq!(tags, vec![2], "first message eaten by the fault");
        }

        #[test]
        fn injected_reorder_swaps_adjacent_messages() {
            let _g = faultline::test_gate();
            faultline::reset();
            faultline::seed(12);
            faultline::configure("out", faultline::FaultSpec::reorder().with_max(1));
            faultline::enable();
            let mut ib = inbox(Delivery::Addressed, 1);
            let r = ib.take_reader(0);
            let w = ib.writer("out", 0, NodeId(0), stats());
            drop(ib);
            w.send_to(0, DataBuffer::tag_only(1)).expect("held back");
            w.send_to(0, DataBuffer::tag_only(2)).expect("open");
            w.send_to(0, DataBuffer::tag_only(3)).expect("open");
            drop(w);
            faultline::reset();
            let tags: Vec<u64> = r.drain().into_iter().map(|b| b.tag).collect();
            assert_eq!(tags, vec![2, 1, 3], "held message lands after the next");
        }

        #[test]
        fn reorder_hold_back_flushed_on_writer_drop() {
            let _g = faultline::test_gate();
            faultline::reset();
            faultline::seed(13);
            faultline::configure("out", faultline::FaultSpec::reorder());
            faultline::enable();
            let mut ib = inbox(Delivery::RoundRobin, 1);
            let r = ib.take_reader(0);
            let w = ib.writer("out", 0, NodeId(0), stats());
            drop(ib);
            w.send(DataBuffer::tag_only(9)).expect("held back");
            drop(w); // no later message overtakes it — the drop flush emits it
            faultline::reset();
            let tags: Vec<u64> = r.drain().into_iter().map(|b| b.tag).collect();
            assert_eq!(tags, vec![9], "parked buffer not lost on close");
        }

        #[test]
        fn exempt_tags_pass_through_untouched() {
            let _g = faultline::test_gate();
            faultline::reset();
            faultline::seed(14);
            faultline::configure(
                "out",
                faultline::FaultSpec::drop_msg().with_exempt_tags(vec![42]),
            );
            faultline::enable();
            let mut ib = inbox(Delivery::RoundRobin, 1);
            let r = ib.take_reader(0);
            let w = ib.writer("out", 0, NodeId(0), stats());
            drop(ib);
            w.send(DataBuffer::tag_only(42)).expect("exempt");
            w.send(DataBuffer::tag_only(7)).expect("dropped silently");
            drop(w);
            faultline::reset();
            let tags: Vec<u64> = r.drain().into_iter().map(|b| b.tag).collect();
            assert_eq!(tags, vec![42], "only the exempt tag survives");
        }
    }
}
