//! Logical streams: unidirectional, untyped, possibly fanned out or in.
//!
//! A stream connects the producer instances of one filter to the consumer
//! instances of another. Delivery policies cover the parallelism styles of
//! DataCutter plus the addressed routing DOoC's storage layer needs:
//!
//! * [`Delivery::RoundRobin`] — demand-driven work sharing: all consumer
//!   instances pull from one shared queue (data parallelism for replicated,
//!   stateless filters);
//! * [`Delivery::Broadcast`] — every consumer instance receives every buffer
//!   (payloads are shared, not copied);
//! * [`Delivery::Aligned`] — producer instance *i* feeds consumer instance
//!   *i* (e.g. each node's storage filter to that node's I/O filter);
//! * [`Delivery::Addressed`] — the producer names the destination instance
//!   per buffer via [`StreamWriter::send_to`] (peer-to-peer storage traffic,
//!   replies to specific clients).
//!
//! Several streams may target the same *(consumer filter, input port)* pair
//! — fan-in — provided they agree on the delivery policy; their buffers are
//! merged into one inbox. The port closes once **all** producer endpoints of
//! **all** fanned-in streams have been dropped.
//!
//! Streams are bounded (default 256 buffers), giving natural backpressure: a
//! fast producer blocks rather than ballooning memory, as in the real
//! middleware.
//!
//! # Local and remote lanes
//!
//! Each consumer lane is either a channel in this process or an address on a
//! [`Transport`] ([`LaneTx`]). A writer routes per buffer: local lanes get
//! the `DataBuffer` directly (payload shared, never copied); remote lanes
//! get a [`Frame`] whose payload is the same shared [`bytes::Bytes`]. The
//! delivery policy is applied entirely on the producer side, so in-process
//! and distributed runs make identical routing decisions. When a writer with
//! remote lanes drops, it sends one `Close` frame per reachable remote lane;
//! the receiving runtime's router mirrors the producer-endpoint refcount and
//! closes the port once local drops and remote closes agree (see
//! [`crate::runtime`]).

use crate::buffer::DataBuffer;
use crate::codec::Frame;
use crate::transport::Transport;
use crate::{FsError, NodeId, Result};
use dooc_obs::metrics::{counter, Counter};
use dooc_sync::atomic::{AtomicU64, Ordering};
use dooc_sync::channel::{bounded, Receiver, Select, Sender};
use std::sync::{Arc, OnceLock};

/// Stream-layer metric handles, resolved once (updates are gated relaxed
/// atomics, so the disabled cost per send/recv is one load and a branch).
struct FsObs {
    buffers_sent: &'static Counter,
    bytes_sent: &'static Counter,
    buffers_recv: &'static Counter,
    bytes_recv: &'static Counter,
}

fn fs_obs() -> &'static FsObs {
    static O: OnceLock<FsObs> = OnceLock::new();
    O.get_or_init(|| FsObs {
        buffers_sent: counter("fs.buffers_sent"),
        bytes_sent: counter("fs.bytes_sent"),
        buffers_recv: counter("fs.buffers_recv"),
        bytes_recv: counter("fs.bytes_recv"),
    })
}

/// Port-name prefix designating progress-tracking lanes. Buffers leaving a
/// producer port with this prefix cross the wire as
/// [`crate::codec::FrameKind::Progress`] frames (routed identically to
/// data, but discriminated so transports count control-plane traffic and
/// chaos schedules can target it).
pub const PROGRESS_PORT_PREFIX: &str = "prog_";

/// Is this port a progress lane (see [`PROGRESS_PORT_PREFIX`])?
pub fn is_progress_port(port: &str) -> bool {
    port.starts_with(PROGRESS_PORT_PREFIX)
}

/// Delivery policy of a stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Delivery {
    /// Each buffer goes to exactly one consumer instance, demand-driven.
    #[default]
    RoundRobin,
    /// Each buffer goes to every consumer instance.
    Broadcast,
    /// Producer instance `i` feeds consumer instance `i`; instance counts
    /// must match.
    Aligned,
    /// Producer picks the destination instance per buffer with
    /// [`StreamWriter::send_to`].
    Addressed,
}

/// Default bound on in-flight buffers per inbox lane.
pub const DEFAULT_CAPACITY: usize = 256;

/// Traffic counters of one stream, observable after the run (the
/// application "logs" the paper reads bandwidth from).
#[derive(Debug, Default)]
pub struct StreamStats {
    /// Buffers sent by producers.
    pub buffers: AtomicU64,
    /// Total wire bytes sent by producers (before any broadcast fan-out).
    pub bytes: AtomicU64,
    /// Wire bytes that crossed a node boundary (sender node != receiver
    /// node). For broadcast this counts each remote replica.
    pub remote_bytes: AtomicU64,
}

impl StreamStats {
    /// Snapshot of (buffers, bytes, remote_bytes).
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.buffers.load(Ordering::Relaxed),
            self.bytes.load(Ordering::Relaxed),
            self.remote_bytes.load(Ordering::Relaxed),
        )
    }
}

/// Enqueue/dequeue tally of one inbox, for the shutdown leak audit: every
/// buffer enqueued into a consumer lane (each broadcast replica counts as
/// one) should eventually be dequeued by a consumer; a shortfall at the end
/// of a run means buffers were abandoned in a lane. Byte totals use the
/// buffer wire size, so `bytes_enqueued == bytes_dequeued` at the end of a
/// clean run — the send/recv balance the obs tests assert. In distributed
/// runs the *receiving* process counts the enqueue (its router does the lane
/// insert), keeping the per-process balance exact.
#[derive(Debug, Default)]
pub struct PortCounters {
    /// Buffers enqueued into consumer lanes.
    pub enqueued: AtomicU64,
    /// Buffers dequeued by consumers.
    pub dequeued: AtomicU64,
    /// Wire bytes enqueued into consumer lanes.
    pub bytes_enqueued: AtomicU64,
    /// Wire bytes dequeued by consumers.
    pub bytes_dequeued: AtomicU64,
}

/// Producer-side address of one consumer lane: a channel in this process or
/// an `(inbox, lane)` slot on a remote node.
#[derive(Clone)]
pub(crate) enum LaneTx {
    Local(Sender<DataBuffer>),
    Remote { peer: NodeId, inbox: u16, lane: u32 },
}

/// The consumer-side channel set of one (filter, input port): either a
/// single shared queue or one lane per consumer instance.
#[derive(Clone)]
pub(crate) enum InboxLanes {
    Shared(LaneTx),
    PerConsumer(Vec<LaneTx>),
}

/// Inbox of one (consumer filter, input port): the receiving half that
/// consumer instances read from. Built once per port; every fanned-in stream
/// sends into the same lanes. In a distributed runtime only the lanes of
/// consumer instances placed in this process are backed by channels; the
/// rest are [`LaneTx::Remote`] addresses.
pub(crate) struct Inbox {
    pub delivery: Delivery,
    pub lanes: InboxLanes,
    readers: Vec<Option<StreamReader>>,
    pub consumer_nodes: Arc<[NodeId]>,
    pub counters: Arc<PortCounters>,
    transport: Option<Arc<dyn Transport>>,
}

impl Inbox {
    /// An all-local inbox (single-process runtime).
    pub fn new(
        delivery: Delivery,
        capacity: usize,
        consumer_nodes: &[NodeId],
        consumer_port: &str,
    ) -> Self {
        Self::build(delivery, capacity, consumer_nodes, consumer_port, None)
    }

    /// A distributed inbox: lanes for consumer instances placed on
    /// `transport.node()` are channels; the rest address `inbox_idx` on
    /// their owning node. For round-robin delivery every consumer must sit
    /// on one node (the runtime validates this before building inboxes).
    pub fn new_on(
        delivery: Delivery,
        capacity: usize,
        consumer_nodes: &[NodeId],
        consumer_port: &str,
        inbox_idx: u16,
        transport: Arc<dyn Transport>,
    ) -> Self {
        Self::build(
            delivery,
            capacity,
            consumer_nodes,
            consumer_port,
            Some((inbox_idx, transport)),
        )
    }

    fn build(
        delivery: Delivery,
        capacity: usize,
        consumer_nodes: &[NodeId],
        consumer_port: &str,
        remote: Option<(u16, Arc<dyn Transport>)>,
    ) -> Self {
        assert!(
            !consumer_nodes.is_empty(),
            "inbox needs at least one consumer"
        );
        let counters = Arc::new(PortCounters::default());
        let local = remote.as_ref().map(|(_, t)| t.node());
        let is_local = |n: NodeId| local.is_none_or(|me| me == n);
        let (lanes, readers) = match delivery {
            Delivery::RoundRobin => {
                if is_local(consumer_nodes[0]) {
                    debug_assert!(
                        consumer_nodes.iter().all(|&n| is_local(n)),
                        "round-robin consumers must share a node in distributed mode"
                    );
                    let (tx, rx) = bounded(capacity);
                    let readers = consumer_nodes
                        .iter()
                        .map(|_| {
                            Some(StreamReader {
                                port: consumer_port.to_string(),
                                rx: rx.clone(),
                                counters: Arc::clone(&counters),
                            })
                        })
                        .collect();
                    (InboxLanes::Shared(LaneTx::Local(tx)), readers)
                } else {
                    let inbox_idx = remote.as_ref().map(|(i, _)| *i).unwrap_or(0);
                    let lane = LaneTx::Remote {
                        peer: consumer_nodes[0],
                        inbox: inbox_idx,
                        lane: 0,
                    };
                    let readers = consumer_nodes.iter().map(|_| None).collect();
                    (InboxLanes::Shared(lane), readers)
                }
            }
            Delivery::Broadcast | Delivery::Aligned | Delivery::Addressed => {
                let mut txs = Vec::with_capacity(consumer_nodes.len());
                let mut readers = Vec::with_capacity(consumer_nodes.len());
                for (i, &n) in consumer_nodes.iter().enumerate() {
                    if is_local(n) {
                        let (tx, rx) = bounded(capacity);
                        txs.push(LaneTx::Local(tx));
                        readers.push(Some(StreamReader {
                            port: consumer_port.to_string(),
                            rx,
                            counters: Arc::clone(&counters),
                        }));
                    } else {
                        let inbox_idx = remote.as_ref().map(|(i, _)| *i).unwrap_or(0);
                        txs.push(LaneTx::Remote {
                            peer: n,
                            inbox: inbox_idx,
                            lane: i as u32,
                        });
                        readers.push(None);
                    }
                }
                (InboxLanes::PerConsumer(txs), readers)
            }
        };
        Self {
            delivery,
            lanes,
            readers,
            consumer_nodes: consumer_nodes.into(),
            counters,
            transport: remote.map(|(_, t)| t),
        }
    }

    /// Takes the reader of consumer instance `i` (exactly once; only local
    /// instances have one in distributed mode).
    pub fn take_reader(&mut self, i: usize) -> StreamReader {
        match self.readers[i].take() {
            Some(r) => r,
            None => panic!("reader {i} already taken — each consumer instance gets exactly one"),
        }
    }

    /// A sender clone for a local lane, used by the distributed runtime's
    /// router to feed frames from remote producers into the inbox. `None`
    /// for remote lanes.
    pub fn local_lane_sender(&self, lane: usize) -> Option<Sender<DataBuffer>> {
        match &self.lanes {
            InboxLanes::Shared(LaneTx::Local(tx)) if lane == 0 => Some(tx.clone()),
            InboxLanes::Shared(_) => None,
            InboxLanes::PerConsumer(lanes) => match lanes.get(lane) {
                Some(LaneTx::Local(tx)) => Some(tx.clone()),
                _ => None,
            },
        }
    }

    /// Creates a writer for producer instance `instance` placed on `node`.
    pub fn writer(
        &self,
        producer_port: &str,
        instance: usize,
        node: NodeId,
        stats: Arc<StreamStats>,
    ) -> StreamWriter {
        if self.delivery == Delivery::Aligned {
            assert!(
                instance < self.consumer_nodes.len(),
                "aligned stream requires consumer instance {instance} to exist"
            );
        }
        StreamWriter {
            port: producer_port.to_string(),
            delivery: self.delivery,
            lanes: self.lanes.clone(),
            stats,
            counters: Arc::clone(&self.counters),
            instance,
            from_node: node,
            consumer_nodes: Arc::clone(&self.consumer_nodes),
            transport: self.transport.clone(),
            #[cfg(feature = "faultline")]
            held: dooc_sync::Mutex::new(None),
        }
    }
}

/// Producer endpoint of a stream. Dropping every producer endpoint of every
/// stream fanned into a port closes that port for consumers; endpoints with
/// remote lanes announce their drop with `Close` frames so the consumer-side
/// router can mirror the refcount.
pub struct StreamWriter {
    port: String,
    delivery: Delivery,
    lanes: InboxLanes,
    stats: Arc<StreamStats>,
    /// Inbox-level enqueue tally (shared by all streams fanned into the
    /// consumer port) for the shutdown leak audit.
    counters: Arc<PortCounters>,
    /// Producer instance index (selects the lane for aligned delivery).
    instance: usize,
    /// Node of the filter holding this writer.
    from_node: NodeId,
    /// Node of each consumer instance. For the shared (round-robin) lane the
    /// precise receiver of a buffer is unknowable before a demand-driven
    /// pull, so a buffer is charged as remote if *any* consumer sits on a
    /// different node — the pessimistic bound.
    consumer_nodes: Arc<[NodeId]>,
    /// Frame pipe for remote lanes; `None` in single-process runtimes.
    transport: Option<Arc<dyn Transport>>,
    /// Reorder hold-back slot: a buffer a `Fault::Reorder` injection parked
    /// so it is emitted *after* the next send (flushed on writer drop so no
    /// message is ever lost to reordering). `None` dest means [`Self::send`],
    /// `Some(d)` means [`Self::send_to`].
    #[cfg(feature = "faultline")]
    held: dooc_sync::Mutex<Option<(Option<NodeId>, DataBuffer)>>,
}

impl StreamWriter {
    /// Producer-side accounting shared by every delivery: global counters
    /// plus the per-stream stats. Local lane inserts additionally call
    /// [`Self::account_enqueued`].
    fn account_sent(&self, wire: u64, remote: bool) {
        fs_obs().buffers_sent.inc();
        fs_obs().bytes_sent.add(wire);
        self.stats.buffers.fetch_add(1, Ordering::Relaxed);
        self.stats.bytes.fetch_add(wire, Ordering::Relaxed);
        if remote {
            self.stats.remote_bytes.fetch_add(wire, Ordering::Relaxed);
        }
    }

    /// Leak-audit tally for a buffer placed into a *local* lane. Remote
    /// sends skip this: the receiving process's router counts the enqueue
    /// when it performs the lane insert, so each process balances on its
    /// own.
    fn account_enqueued(&self, wire: u64) {
        self.counters.enqueued.fetch_add(1, Ordering::Relaxed);
        self.counters
            .bytes_enqueued
            .fetch_add(wire, Ordering::Relaxed);
    }

    fn send_remote(&self, peer: NodeId, inbox: u16, lane: u32, buf: &DataBuffer) -> Result<()> {
        let Some(t) = &self.transport else {
            return Err(FsError::Transport(format!(
                "port '{}' routes to {peer} but this writer has no transport",
                self.port
            )));
        };
        let frame = if is_progress_port(&self.port) {
            Frame::progress(inbox, lane, buf.tag, buf.payload.clone())
        } else {
            Frame::data(inbox, lane, buf.tag, buf.payload.clone())
        };
        t.send(peer, frame)
    }

    /// Consults the `faultline` message failpoint keyed by this writer's
    /// producer port name, with the buffer's tag word exposed to the
    /// schedule's `exempt_tags` guard. Returns `None` when the buffer was
    /// consumed by the fault (dropped or parked for reordering).
    #[cfg(feature = "faultline")]
    fn inject(&self, dest: Option<NodeId>, buf: DataBuffer) -> Option<DataBuffer> {
        use dooc_faultline::{fail, Fault};
        match fail::message(&self.port, &buf.tag.to_le_bytes()) {
            None | Some(Fault::Error) | Some(Fault::Fire) => Some(buf),
            Some(Fault::Delay(ms)) => {
                dooc_sync::thread::sleep(std::time::Duration::from_millis(ms));
                Some(buf)
            }
            Some(Fault::Drop) => None,
            Some(Fault::Reorder) => {
                let mut held = self.held.lock();
                if held.is_some() {
                    // Already holding one back — deliver this buffer normally
                    // rather than grow an unbounded reorder queue.
                    return Some(buf);
                }
                *held = Some((dest, buf));
                None
            }
        }
    }

    /// Emits a buffer parked by a `Reorder` injection, now that a later
    /// message has overtaken it (or the writer is closing). The armed-gate
    /// fast path skips the lock entirely: a buffer can only be parked while
    /// injection is armed, and one parked across a disarm is flushed by the
    /// writer's drop (which calls [`Self::flush_held_now`] unconditionally).
    #[cfg(feature = "faultline")]
    fn flush_held(&self) -> Result<()> {
        if !dooc_faultline::enabled() {
            return Ok(());
        }
        self.flush_held_now()
    }

    /// Unconditional variant of [`Self::flush_held`] for the drop path.
    #[cfg(feature = "faultline")]
    fn flush_held_now(&self) -> Result<()> {
        let held = self.held.lock().take();
        match held {
            Some((Some(d), buf)) => self.deliver_to(d, buf),
            Some((None, buf)) => self.deliver(buf),
            None => Ok(()),
        }
    }

    /// Sends a buffer. Blocks when the stream is at capacity. Fails if every
    /// consumer has terminated, or if this is an addressed stream (use
    /// [`StreamWriter::send_to`]).
    pub fn send(&self, buf: DataBuffer) -> Result<()> {
        #[cfg(feature = "faultline")]
        let buf = match self.inject(None, buf) {
            Some(b) => b,
            None => return Ok(()),
        };
        self.deliver(buf)?;
        #[cfg(feature = "faultline")]
        self.flush_held()?;
        Ok(())
    }

    fn deliver(&self, buf: DataBuffer) -> Result<()> {
        note_payload_write(&buf);
        let wire = buf.wire_size();
        match (&self.lanes, self.delivery) {
            (InboxLanes::Shared(LaneTx::Local(tx)), _) => {
                let remote = self.consumer_nodes.iter().any(|&n| n != self.from_node);
                tx.send(buf).map_err(|_| FsError::StreamClosed {
                    port: self.port.clone(),
                })?;
                self.account_enqueued(wire);
                self.account_sent(wire, remote);
            }
            (InboxLanes::Shared(LaneTx::Remote { peer, inbox, lane }), _) => {
                self.send_remote(*peer, *inbox, *lane, &buf)?;
                self.account_sent(wire, true);
            }
            (InboxLanes::PerConsumer(lanes), Delivery::Broadcast) => {
                let mut delivered = 0usize;
                for (i, lane) in lanes.iter().enumerate() {
                    match lane {
                        LaneTx::Local(tx) => {
                            if tx.send(buf.clone()).is_ok() {
                                delivered += 1;
                                self.account_enqueued(wire);
                                if self.consumer_nodes[i] != self.from_node {
                                    self.stats.remote_bytes.fetch_add(wire, Ordering::Relaxed);
                                }
                            }
                        }
                        LaneTx::Remote { peer, inbox, lane } => {
                            if self.send_remote(*peer, *inbox, *lane, &buf).is_ok() {
                                delivered += 1;
                                self.stats.remote_bytes.fetch_add(wire, Ordering::Relaxed);
                            }
                        }
                    }
                }
                if delivered == 0 {
                    return Err(FsError::StreamClosed {
                        port: self.port.clone(),
                    });
                }
                fs_obs().buffers_sent.inc();
                fs_obs().bytes_sent.add(wire);
                self.stats.buffers.fetch_add(1, Ordering::Relaxed);
                self.stats.bytes.fetch_add(wire, Ordering::Relaxed);
            }
            (InboxLanes::PerConsumer(lanes), Delivery::Aligned) => match &lanes[self.instance] {
                LaneTx::Local(tx) => {
                    let remote = self.consumer_nodes[self.instance] != self.from_node;
                    tx.send(buf).map_err(|_| FsError::StreamClosed {
                        port: self.port.clone(),
                    })?;
                    self.account_enqueued(wire);
                    self.account_sent(wire, remote);
                }
                LaneTx::Remote { peer, inbox, lane } => {
                    self.send_remote(*peer, *inbox, *lane, &buf)?;
                    self.account_sent(wire, true);
                }
            },
            (InboxLanes::PerConsumer(_), Delivery::Addressed) => {
                return Err(FsError::StreamClosed {
                    port: format!("{} (addressed stream requires send_to)", self.port),
                });
            }
            (InboxLanes::PerConsumer(_), Delivery::RoundRobin) => {
                unreachable!("round-robin inbox always uses a shared lane")
            }
        }
        Ok(())
    }

    /// Sends a buffer to consumer instance `dest` of an addressed stream.
    /// Destinations are [`NodeId`]s: every addressed stream in this codebase
    /// is consumed by a per-node filter whose instance *i* sits on node *i*,
    /// and the type forces callers to say which node they mean rather than
    /// do raw index arithmetic.
    pub fn send_to(&self, dest: NodeId, buf: DataBuffer) -> Result<()> {
        #[cfg(feature = "faultline")]
        let buf = match self.inject(Some(dest), buf) {
            Some(b) => b,
            None => return Ok(()),
        };
        self.deliver_to(dest, buf)?;
        #[cfg(feature = "faultline")]
        self.flush_held()?;
        Ok(())
    }

    fn deliver_to(&self, dest: NodeId, buf: DataBuffer) -> Result<()> {
        note_payload_write(&buf);
        let wire = buf.wire_size();
        match &self.lanes {
            InboxLanes::PerConsumer(lanes) if self.delivery == Delivery::Addressed => {
                let lane = lanes.get(dest.0).ok_or_else(|| FsError::StreamClosed {
                    port: format!("{} (no consumer instance {dest})", self.port),
                })?;
                match lane {
                    LaneTx::Local(tx) => {
                        let remote = self.consumer_nodes[dest.0] != self.from_node;
                        tx.send(buf).map_err(|_| FsError::StreamClosed {
                            port: self.port.clone(),
                        })?;
                        self.account_enqueued(wire);
                        self.account_sent(wire, remote);
                    }
                    LaneTx::Remote { peer, inbox, lane } => {
                        self.send_remote(*peer, *inbox, *lane, &buf)?;
                        self.account_sent(wire, true);
                    }
                }
                Ok(())
            }
            _ => Err(FsError::StreamClosed {
                port: format!("{} (send_to requires an addressed stream)", self.port),
            }),
        }
    }

    /// One `Close` frame per remote lane this endpoint could have written
    /// to; the consumer-side router decrements its mirrored refcount.
    fn send_closes(&self) {
        let Some(t) = &self.transport else { return };
        let close = |peer: NodeId, inbox: u16, lane: u32| {
            // Best effort: the peer may already have shut down.
            let _ = t.send(peer, Frame::close(inbox, lane));
        };
        match (&self.lanes, self.delivery) {
            (InboxLanes::Shared(LaneTx::Remote { peer, inbox, lane }), _) => {
                close(*peer, *inbox, *lane);
            }
            (InboxLanes::Shared(LaneTx::Local(_)), _) => {}
            (InboxLanes::PerConsumer(lanes), Delivery::Aligned) => {
                if let Some(LaneTx::Remote { peer, inbox, lane }) = lanes.get(self.instance) {
                    close(*peer, *inbox, *lane);
                }
            }
            (InboxLanes::PerConsumer(lanes), _) => {
                for l in lanes {
                    if let LaneTx::Remote { peer, inbox, lane } = l {
                        close(*peer, *inbox, *lane);
                    }
                }
            }
        }
    }

    /// Number of consumer instances reachable through this writer.
    pub fn consumer_count(&self) -> usize {
        self.consumer_nodes.len()
    }

    /// The port name this writer was bound to.
    pub fn port(&self) -> &str {
        &self.port
    }
}

/// A dropped writer flushes any buffer a `Reorder` injection parked (so the
/// reorder fault permutes delivery order but never loses the message), then
/// announces the endpoint drop to every remote lane.
impl Drop for StreamWriter {
    fn drop(&mut self) {
        #[cfg(feature = "faultline")]
        let _ = self.flush_held_now();
        self.send_closes();
    }
}

/// dooc-race annotation: the payload bytes a producer publishes into a
/// stream. Pairs with [`note_payload_read`] on the consumer side — the
/// channel's send→recv edge must order every such pair, so a fault in the
/// stream plumbing (a buffer observable before its send) shows up as a
/// race. Empty payloads are skipped: `Bytes::new` shares one static
/// allocation, which would alias unrelated streams. Compiled to a no-op
/// without the `record` feature of `dooc-sync`.
#[inline]
fn note_payload_write(buf: &DataBuffer) {
    if !buf.payload.is_empty() && dooc_sync::record::armed() {
        // Pin the allocation for the rest of the recording session: if the
        // allocator recycled an annotated address for an unrelated payload
        // on another thread, the shadow state would report phantom races.
        dooc_sync::record::pin(Box::new(buf.payload.clone()));
        dooc_sync::record::data_write(buf.payload.as_ptr() as usize);
    }
}

/// See [`note_payload_write`].
#[inline]
fn note_payload_read(buf: &DataBuffer) {
    if !buf.payload.is_empty() && dooc_sync::record::armed() {
        dooc_sync::record::pin(Box::new(buf.payload.clone()));
        dooc_sync::record::data_read(buf.payload.as_ptr() as usize);
    }
}

/// Consumer endpoint of one (filter instance, input port).
pub struct StreamReader {
    port: String,
    rx: Receiver<DataBuffer>,
    /// Inbox-level dequeue tally for the shutdown leak audit.
    counters: Arc<PortCounters>,
}

impl StreamReader {
    /// Consumer-side accounting for one received buffer: race annotation,
    /// leak-audit tally (count + bytes), and the global recv counters. Every
    /// receive path — `recv`, `try_recv`, `recv_timeout`, `drain`, and
    /// [`StreamSet`] selection — funnels through this, so the send/recv byte
    /// totals balance no matter how the buffer was consumed.
    fn account_recv(&self, buf: &DataBuffer) {
        note_payload_read(buf);
        let wire = buf.wire_size();
        self.counters.dequeued.fetch_add(1, Ordering::Relaxed);
        self.counters
            .bytes_dequeued
            .fetch_add(wire, Ordering::Relaxed);
        let o = fs_obs();
        o.buffers_recv.inc();
        o.bytes_recv.add(wire);
    }

    /// Receives the next buffer; `None` once the port is closed (every
    /// producer endpoint dropped) and drained.
    pub fn recv(&self) -> Option<DataBuffer> {
        let b = self.rx.recv().ok();
        if let Some(b) = &b {
            self.account_recv(b);
        }
        b
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<DataBuffer> {
        let b = self.rx.try_recv().ok();
        if let Some(b) = &b {
            self.account_recv(b);
        }
        b
    }

    /// Receives with a timeout; `None` on timeout *or* closure — callers that
    /// must distinguish should use [`StreamReader::recv`].
    pub fn recv_timeout(&self, d: std::time::Duration) -> Option<DataBuffer> {
        let b = self.rx.recv_timeout(d).ok();
        if let Some(b) = &b {
            self.account_recv(b);
        }
        b
    }

    /// The port name this reader was bound to.
    pub fn port(&self) -> &str {
        &self.port
    }

    /// Drains everything currently queued without blocking.
    pub fn drain(&self) -> Vec<DataBuffer> {
        let mut out = Vec::new();
        while let Some(b) = self.try_recv() {
            out.push(b);
        }
        out
    }
}

/// One observation from [`StreamSet::event`].
#[derive(Debug)]
pub enum SelectEvent {
    /// Reader `usize` produced a buffer.
    Buffer(usize, DataBuffer),
    /// Reader `usize` closed (reported exactly once).
    Closed(usize),
}

/// Result of [`StreamSet::event_timeout`].
#[derive(Debug)]
pub enum SelectOutcome {
    /// A buffer arrived or a reader closed.
    Event(SelectEvent),
    /// The timeout elapsed with no event.
    Timeout,
    /// Every reader is closed and drained.
    AllClosed,
}

/// A set of stream endpoints with one entry point for multi-reader waiting.
///
/// Owns its readers and tracks which have closed, replacing the former
/// free-function trio (`select_recv` / `select_event` /
/// `select_event_timeout`) and the caller-managed `closed` slice. This is
/// how a storage filter multiplexes client requests, peer messages and I/O
/// completions from one loop:
///
/// ```ignore
/// let mut set = StreamSet::new(vec![clients, peers, io]);
/// loop {
///     match set.event_timeout(tick) {
///         SelectOutcome::Event(SelectEvent::Buffer(i, buf)) => handle(i, buf),
///         SelectOutcome::Event(SelectEvent::Closed(i)) => on_closed(i),
///         SelectOutcome::Timeout => on_tick(),
///         SelectOutcome::AllClosed => break,
///     }
/// }
/// ```
pub struct StreamSet {
    readers: Vec<StreamReader>,
    closed: Vec<bool>,
}

impl StreamSet {
    /// Wraps `readers` (indices in events match positions here).
    pub fn new(readers: Vec<StreamReader>) -> Self {
        let closed = vec![false; readers.len()];
        Self { readers, closed }
    }

    /// Builds a standalone point-to-point stream outside any layout: one
    /// producer instance feeding one consumer instance (both as instance 0
    /// on node 0) with [`Delivery::Addressed`] delivery — send with
    /// `send_to(NodeId(0), _)`. For harnesses (benches, dooc-check's
    /// schedule exploration suite) that wire a client to a hand-rolled
    /// server loop instead of standing up a full [`crate::Runtime`] layout.
    pub fn standalone(port: &str, capacity: usize) -> (StreamWriter, StreamReader) {
        let mut inbox = Inbox::new(Delivery::Addressed, capacity, &[NodeId(0)], port);
        let reader = inbox.take_reader(0);
        let writer = inbox.writer(port, 0, NodeId(0), Arc::new(StreamStats::default()));
        (writer, reader)
    }

    /// Number of readers in the set.
    pub fn len(&self) -> usize {
        self.readers.len()
    }

    /// Whether the set holds no readers.
    pub fn is_empty(&self) -> bool {
        self.readers.is_empty()
    }

    /// Borrows reader `i` (for `drain`, `port`, etc.).
    pub fn reader(&self, i: usize) -> &StreamReader {
        &self.readers[i]
    }

    /// Whether reader `i` has reported closure.
    pub fn is_closed(&self, i: usize) -> bool {
        self.closed[i]
    }

    /// Whether every reader has closed.
    pub fn all_closed(&self) -> bool {
        self.closed.iter().all(|&c| c)
    }

    /// Consumes the set, returning the readers.
    pub fn into_readers(self) -> Vec<StreamReader> {
        self.readers
    }

    /// Blocks for the next buffer or closure; `None` once every reader is
    /// closed and drained. Each closure is reported exactly once.
    pub fn event(&mut self) -> Option<SelectEvent> {
        match self.event_timeout(None) {
            SelectOutcome::Event(e) => Some(e),
            SelectOutcome::AllClosed => None,
            SelectOutcome::Timeout => unreachable!("no timeout configured"),
        }
    }

    /// [`StreamSet::event`] with an optional timeout — servers with
    /// retryable background work (e.g. stalled remote fetches) poll with a
    /// short timeout instead of blocking forever.
    pub fn event_timeout(&mut self, timeout: Option<std::time::Duration>) -> SelectOutcome {
        let open: Vec<usize> = (0..self.readers.len())
            .filter(|&i| !self.closed[i])
            .collect();
        if open.is_empty() {
            return SelectOutcome::AllClosed;
        }
        let mut sel = Select::new();
        for &i in &open {
            sel.recv(&self.readers[i].rx);
        }
        let op = match timeout {
            Some(d) => match sel.select_timeout(d) {
                Ok(op) => op,
                Err(_) => return SelectOutcome::Timeout,
            },
            None => sel.select(),
        };
        let slot = op.index();
        let idx = open[slot];
        match op.recv(&self.readers[idx].rx) {
            Ok(buf) => {
                self.readers[idx].account_recv(&buf);
                SelectOutcome::Event(SelectEvent::Buffer(idx, buf))
            }
            Err(_) => {
                self.closed[idx] = true;
                SelectOutcome::Event(SelectEvent::Closed(idx))
            }
        }
    }

    /// Blocking receive over the set: the index of the reader that produced
    /// the buffer, or `None` once **every** reader is closed and drained.
    pub fn recv(&mut self) -> Option<(usize, DataBuffer)> {
        loop {
            match self.event()? {
                SelectEvent::Buffer(i, b) => return Some((i, b)),
                SelectEvent::Closed(_) => continue,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn stats() -> Arc<StreamStats> {
        Arc::new(StreamStats::default())
    }

    fn inbox(delivery: Delivery, consumers: usize) -> Inbox {
        Inbox::new(delivery, 8, &vec![NodeId(0); consumers], "in")
    }

    #[test]
    fn roundrobin_each_buffer_once() {
        let mut ib = inbox(Delivery::RoundRobin, 2);
        let r0 = ib.take_reader(0);
        let r1 = ib.take_reader(1);
        let w = ib.writer("out", 0, NodeId(0), stats());
        drop(ib);
        for i in 0..6 {
            w.send(DataBuffer::tag_only(i)).expect("open");
        }
        drop(w);
        let mut seen: Vec<u64> = r0.drain().into_iter().map(|x| x.tag).collect();
        seen.extend(r1.drain().into_iter().map(|x| x.tag));
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn broadcast_each_buffer_everywhere() {
        let mut ib = inbox(Delivery::Broadcast, 3);
        let readers: Vec<_> = (0..3).map(|i| ib.take_reader(i)).collect();
        let w = ib.writer("out", 0, NodeId(0), stats());
        drop(ib);
        w.send(DataBuffer::tag_only(7)).expect("open");
        drop(w);
        for r in &readers {
            assert_eq!(r.recv().expect("delivered").tag, 7);
            assert!(r.recv().is_none(), "closed after producer drop");
        }
    }

    #[test]
    fn aligned_routes_instance_to_instance() {
        let mut ib = inbox(Delivery::Aligned, 2);
        let r0 = ib.take_reader(0);
        let r1 = ib.take_reader(1);
        let w0 = ib.writer("out", 0, NodeId(0), stats());
        let w1 = ib.writer("out", 1, NodeId(0), stats());
        drop(ib);
        w0.send(DataBuffer::tag_only(10)).expect("open");
        w1.send(DataBuffer::tag_only(11)).expect("open");
        drop((w0, w1));
        assert_eq!(r0.recv().expect("lane 0").tag, 10);
        assert!(r0.recv().is_none());
        assert_eq!(r1.recv().expect("lane 1").tag, 11);
        assert!(r1.recv().is_none());
    }

    #[test]
    fn addressed_routes_by_destination() {
        let mut ib = inbox(Delivery::Addressed, 3);
        let readers: Vec<_> = (0..3).map(|i| ib.take_reader(i)).collect();
        let w = ib.writer("out", 0, NodeId(0), stats());
        drop(ib);
        w.send_to(NodeId(2), DataBuffer::tag_only(2)).expect("open");
        w.send_to(NodeId(0), DataBuffer::tag_only(0)).expect("open");
        assert!(
            w.send(DataBuffer::tag_only(9)).is_err(),
            "plain send rejected"
        );
        assert!(
            w.send_to(NodeId(5), DataBuffer::tag_only(9)).is_err(),
            "bad dest"
        );
        drop(w);
        assert_eq!(readers[0].recv().expect("to 0").tag, 0);
        assert!(readers[1].recv().is_none(), "nothing to 1");
        assert_eq!(readers[2].recv().expect("to 2").tag, 2);
    }

    #[test]
    fn fan_in_merges_writers() {
        let mut ib = inbox(Delivery::RoundRobin, 1);
        let r = ib.take_reader(0);
        let w1 = ib.writer("a", 0, NodeId(0), stats());
        let w2 = ib.writer("b", 0, NodeId(0), stats());
        drop(ib);
        w1.send(DataBuffer::tag_only(1)).expect("open");
        w2.send(DataBuffer::tag_only(2)).expect("open");
        drop(w1);
        let mut tags = vec![r.recv().expect("first").tag, r.recv().expect("second").tag];
        tags.sort_unstable();
        assert_eq!(tags, vec![1, 2]);
        assert!(
            r.recv_timeout(Duration::from_millis(10)).is_none(),
            "w2 still open"
        );
        drop(w2);
        assert!(
            r.recv().is_none(),
            "closed after all fan-in writers dropped"
        );
    }

    #[test]
    fn send_fails_when_all_consumers_gone() {
        let mut ib = inbox(Delivery::RoundRobin, 1);
        let r = ib.take_reader(0);
        let w = ib.writer("out", 0, NodeId(0), stats());
        drop(ib);
        drop(r);
        assert!(matches!(
            w.send(DataBuffer::tag_only(0)),
            Err(FsError::StreamClosed { .. })
        ));
    }

    #[test]
    fn stats_count_buffers_and_bytes() {
        let st = stats();
        let mut ib = inbox(Delivery::RoundRobin, 1);
        let _r = ib.take_reader(0);
        let w = ib.writer("out", 0, NodeId(0), Arc::clone(&st));
        w.send(DataBuffer::from_u64s(0, &[1, 2])).expect("open");
        w.send(DataBuffer::tag_only(0)).expect("open");
        let (bufs, bytes, remote) = st.snapshot();
        assert_eq!(bufs, 2);
        assert_eq!(bytes, 32 + 16);
        assert_eq!(remote, 0, "same-node traffic is local");
    }

    #[test]
    fn remote_bytes_counted_across_nodes() {
        let st = stats();
        let mut ib = Inbox::new(Delivery::Broadcast, 4, &[NodeId(0), NodeId(1)], "in");
        let _r0 = ib.take_reader(0);
        let _r1 = ib.take_reader(1);
        let w = ib.writer("out", 0, NodeId(0), Arc::clone(&st));
        w.send(DataBuffer::tag_only(0)).expect("open");
        let (_, bytes, remote) = st.snapshot();
        assert_eq!(bytes, 16);
        assert_eq!(remote, 16, "only the NodeId(1) replica is remote");
    }

    #[test]
    fn addressed_remote_accounting_is_per_destination() {
        let st = stats();
        let mut ib = Inbox::new(Delivery::Addressed, 4, &[NodeId(0), NodeId(1)], "in");
        let _r0 = ib.take_reader(0);
        let _r1 = ib.take_reader(1);
        let w = ib.writer("out", 0, NodeId(0), Arc::clone(&st));
        w.send_to(NodeId(0), DataBuffer::tag_only(0))
            .expect("local");
        w.send_to(NodeId(1), DataBuffer::tag_only(0))
            .expect("remote");
        let (_, bytes, remote) = st.snapshot();
        assert_eq!(bytes, 32);
        assert_eq!(remote, 16);
    }

    #[test]
    fn backpressure_blocks_then_resumes() {
        let mut ib = Inbox::new(Delivery::RoundRobin, 2, &[NodeId(0)], "in");
        let r = ib.take_reader(0);
        let w = ib.writer("out", 0, NodeId(0), stats());
        drop(ib);
        w.send(DataBuffer::tag_only(0)).expect("open");
        w.send(DataBuffer::tag_only(1)).expect("open");
        let h = std::thread::spawn(move || w.send(DataBuffer::tag_only(2)));
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(r.recv().expect("first").tag, 0);
        h.join().expect("no panic").expect("send succeeded");
        assert_eq!(r.recv().expect("second").tag, 1);
        assert_eq!(r.recv().expect("third").tag, 2);
    }

    #[test]
    fn stream_set_multiplexes_and_terminates() {
        let mut a = inbox(Delivery::RoundRobin, 1);
        let mut b = inbox(Delivery::RoundRobin, 1);
        let ra = a.take_reader(0);
        let rb = b.take_reader(0);
        let wa = a.writer("out", 0, NodeId(0), stats());
        let wb = b.writer("out", 0, NodeId(0), stats());
        drop((a, b));
        wa.send(DataBuffer::tag_only(1)).expect("open");
        wb.send(DataBuffer::tag_only(2)).expect("open");
        drop((wa, wb));
        let mut set = StreamSet::new(vec![ra, rb]);
        let mut got = Vec::new();
        while let Some((idx, buf)) = set.recv() {
            got.push((idx, buf.tag));
        }
        got.sort_unstable();
        assert_eq!(got, vec![(0, 1), (1, 2)]);
        assert!(set.all_closed());
    }

    #[test]
    fn stream_set_timeout_and_closure_reporting() {
        let mut a = inbox(Delivery::RoundRobin, 1);
        let mut b = inbox(Delivery::RoundRobin, 1);
        let ra = a.take_reader(0);
        let rb = b.take_reader(0);
        let wa = a.writer("out", 0, NodeId(0), stats());
        let wb = b.writer("out", 0, NodeId(0), stats());
        drop((a, b));
        let mut set = StreamSet::new(vec![ra, rb]);
        assert!(matches!(
            set.event_timeout(Some(Duration::from_millis(5))),
            SelectOutcome::Timeout
        ));
        drop(wa);
        match set.event_timeout(Some(Duration::from_millis(200))) {
            SelectOutcome::Event(SelectEvent::Closed(0)) => {}
            other => panic!("expected Closed(0), got {other:?}"),
        }
        assert!(set.is_closed(0) && !set.is_closed(1));
        wb.send(DataBuffer::tag_only(3)).expect("open");
        match set.event() {
            Some(SelectEvent::Buffer(1, buf)) => assert_eq!(buf.tag, 3),
            other => panic!("expected Buffer(1, _), got {other:?}"),
        }
        drop(wb);
        assert!(matches!(set.event(), Some(SelectEvent::Closed(1))));
        assert!(set.event().is_none(), "all closed");
    }

    /// Satellite check: every receive path (recv, drain, recv_timeout, and
    /// StreamSet selection) tallies bytes, so a clean run's enqueue/dequeue
    /// byte totals balance exactly.
    #[test]
    fn port_byte_totals_balance() {
        let mut ib = inbox(Delivery::RoundRobin, 2);
        let counters = Arc::clone(&ib.counters);
        let r0 = ib.take_reader(0);
        let r1 = ib.take_reader(1);
        let w = ib.writer("out", 0, NodeId(0), stats());
        drop(ib);
        w.send(DataBuffer::from_u64s(1, &[1, 2, 3])).expect("open");
        w.send(DataBuffer::from_u64s(2, &[4])).expect("open");
        w.send(DataBuffer::tag_only(3)).expect("open");
        w.send(DataBuffer::from_f64s(4, &[0.5; 8])).expect("open");
        drop(w);
        // Mix the receive paths deliberately.
        let first = r0.recv().expect("one buffered");
        assert!(first.tag >= 1);
        let _ = r0.recv_timeout(Duration::from_millis(5));
        let mut set = StreamSet::new(vec![r1]);
        while let Some((_, _b)) = set.recv() {}
        for r in set.into_readers() {
            let _ = r.drain();
        }
        let enq = counters.enqueued.load(Ordering::Relaxed);
        let deq = counters.dequeued.load(Ordering::Relaxed);
        let benq = counters.bytes_enqueued.load(Ordering::Relaxed);
        let bdeq = counters.bytes_dequeued.load(Ordering::Relaxed);
        assert_eq!(enq, 4);
        assert_eq!(deq, enq, "every enqueued buffer dequeued");
        assert_eq!(benq, 16 * 4 + 24 + 8 + 64, "wire bytes of the four sends");
        assert_eq!(bdeq, benq, "byte totals balance across mixed recv paths");
    }

    #[test]
    fn standalone_pair_roundtrips() {
        let (w, r) = StreamSet::standalone("p", 4);
        w.send_to(NodeId(0), DataBuffer::tag_only(5))
            .expect("send_to works");
        w.send_to(NodeId(0), DataBuffer::tag_only(6))
            .expect("send_to works");
        drop(w);
        assert_eq!(r.recv().expect("first").tag, 5);
        assert_eq!(r.recv().expect("second").tag, 6);
        assert!(r.recv().is_none());
    }

    #[cfg(feature = "faultline")]
    mod faults {
        use super::*;
        use dooc_faultline as faultline;

        #[test]
        fn injected_drop_loses_messages_silently() {
            let _g = faultline::test_gate();
            faultline::reset();
            faultline::seed(11);
            faultline::configure("out", faultline::FaultSpec::drop_msg().with_max(1));
            faultline::enable();
            let mut ib = inbox(Delivery::RoundRobin, 1);
            let r = ib.take_reader(0);
            let w = ib.writer("out", 0, NodeId(0), stats());
            drop(ib);
            w.send(DataBuffer::tag_only(1)).expect("dropped, not error");
            w.send(DataBuffer::tag_only(2)).expect("open");
            drop(w);
            faultline::reset();
            let tags: Vec<u64> = r.drain().into_iter().map(|b| b.tag).collect();
            assert_eq!(tags, vec![2], "first message eaten by the fault");
        }

        #[test]
        fn injected_reorder_swaps_adjacent_messages() {
            let _g = faultline::test_gate();
            faultline::reset();
            faultline::seed(12);
            faultline::configure("out", faultline::FaultSpec::reorder().with_max(1));
            faultline::enable();
            let mut ib = inbox(Delivery::Addressed, 1);
            let r = ib.take_reader(0);
            let w = ib.writer("out", 0, NodeId(0), stats());
            drop(ib);
            w.send_to(NodeId(0), DataBuffer::tag_only(1))
                .expect("held back");
            w.send_to(NodeId(0), DataBuffer::tag_only(2)).expect("open");
            w.send_to(NodeId(0), DataBuffer::tag_only(3)).expect("open");
            drop(w);
            faultline::reset();
            let tags: Vec<u64> = r.drain().into_iter().map(|b| b.tag).collect();
            assert_eq!(tags, vec![2, 1, 3], "held message lands after the next");
        }

        #[test]
        fn reorder_hold_back_flushed_on_writer_drop() {
            let _g = faultline::test_gate();
            faultline::reset();
            faultline::seed(13);
            faultline::configure("out", faultline::FaultSpec::reorder());
            faultline::enable();
            let mut ib = inbox(Delivery::RoundRobin, 1);
            let r = ib.take_reader(0);
            let w = ib.writer("out", 0, NodeId(0), stats());
            drop(ib);
            w.send(DataBuffer::tag_only(9)).expect("held back");
            drop(w); // no later message overtakes it — the drop flush emits it
            faultline::reset();
            let tags: Vec<u64> = r.drain().into_iter().map(|b| b.tag).collect();
            assert_eq!(tags, vec![9], "parked buffer not lost on close");
        }

        #[test]
        fn exempt_tags_pass_through_untouched() {
            let _g = faultline::test_gate();
            faultline::reset();
            faultline::seed(14);
            faultline::configure(
                "out",
                faultline::FaultSpec::drop_msg().with_exempt_tags(vec![42]),
            );
            faultline::enable();
            let mut ib = inbox(Delivery::RoundRobin, 1);
            let r = ib.take_reader(0);
            let w = ib.writer("out", 0, NodeId(0), stats());
            drop(ib);
            w.send(DataBuffer::tag_only(42)).expect("exempt");
            w.send(DataBuffer::tag_only(7)).expect("dropped silently");
            drop(w);
            faultline::reset();
            let tags: Vec<u64> = r.drain().into_iter().map(|b| b.tag).collect();
            assert_eq!(tags, vec![42], "only the exempt tag survives");
        }
    }
}
