//! A filter-stream dataflow middleware — the DataCutter substrate of DOoC.
//!
//! DataCutter (Beynon et al., *Parallel Computing* 2001) "implements
//! computations as a set of components, referred to as *filters*, that
//! exchange data through logical streams. A stream denotes a uni-directional
//! data flow from some filters (the producers) to others (the consumers).
//! Data flows along these streams in untyped data-buffers in order to
//! minimize various system overheads. A *layout* is a filter ontology which
//! describes the set of application tasks, streams, and the connections
//! required for the computation." (paper §III-A)
//!
//! This crate reproduces that model in-process:
//!
//! * [`filter::Filter`] — the component trait; the application author writes
//!   filter functions and a layout, exactly as in DataCutter;
//! * [`buffer::DataBuffer`] — untyped, cheaply cloneable data buffers
//!   ([`bytes::Bytes`] underneath) with a small tag word for app-level
//!   message discrimination;
//! * [`stream::Delivery`] — stream delivery policies: demand-driven
//!   round-robin across replicated consumers (data parallelism) or broadcast;
//! * [`layout::Layout`] — declarative description of filters, their
//!   *placement* on (simulated) compute nodes, replication, and stream
//!   connections;
//! * [`runtime::Runtime`] — spawns one thread per filter instance, wires the
//!   streams, runs to completion and reports per-stream traffic statistics
//!   (the paper extracts observed bandwidth "from the logs of the
//!   application" — these stats are those logs).
//!
//! ## Substituted hardware
//!
//! The original DataCutter rides on MPI across cluster nodes. Here a *node*
//! ([`NodeId`]) is a placement label: every filter instance is pinned to a
//! node, and all inter-filter traffic is accounted per (source node, target
//! node) pair so the testbed simulator can later charge network time for
//! exactly the bytes that crossed node boundaries. The dataflow semantics —
//! what DOoC builds on — are identical.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buffer;
pub mod codec;
pub mod filter;
pub mod layout;
pub mod runtime;
pub mod stream;
pub mod sync;
pub mod tcp;
pub mod transport;

pub use buffer::DataBuffer;
pub use filter::{Filter, FilterContext};
pub use layout::{FilterId, Layout};
pub use runtime::{PortReport, Runtime, RuntimeReport};
pub use stream::{
    is_progress_port, Delivery, SelectEvent, SelectOutcome, StreamReader, StreamSet, StreamWriter,
    PROGRESS_PORT_PREFIX,
};
pub use sync::OrderedMutex;
pub use tcp::{ClusterSpec, TcpTransport};
pub use transport::{ChannelTransport, FrameSink, Transport};

/// Identity of a (simulated) compute node filters are placed on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Errors surfaced by the filter-stream middleware.
#[derive(Debug)]
pub enum FsError {
    /// A filter returned an application error from its `run` method.
    Filter {
        /// Filter name as declared in the layout.
        filter: String,
        /// Instance index (0-based replica number).
        instance: usize,
        /// The application's error message.
        message: String,
    },
    /// A filter panicked.
    FilterPanicked {
        /// Filter name as declared in the layout.
        filter: String,
        /// Instance index.
        instance: usize,
    },
    /// The layout was structurally invalid (message explains the problem).
    InvalidLayout(String),
    /// A filter referenced a port the layout never connected.
    UnknownPort {
        /// Filter name.
        filter: String,
        /// The port that was requested.
        port: String,
    },
    /// A send failed because every consumer of the stream has terminated.
    StreamClosed {
        /// The port the send was attempted on.
        port: String,
    },
    /// A wire-transport failure: framing violation, handshake mismatch,
    /// connect timeout, or a peer that went away mid-stream.
    Transport(String),
}

impl std::fmt::Display for FsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsError::Filter {
                filter,
                instance,
                message,
            } => write!(f, "filter '{filter}'[{instance}] failed: {message}"),
            FsError::FilterPanicked { filter, instance } => {
                write!(f, "filter '{filter}'[{instance}] panicked")
            }
            FsError::InvalidLayout(m) => write!(f, "invalid layout: {m}"),
            FsError::UnknownPort { filter, port } => {
                write!(f, "filter '{filter}' has no port '{port}'")
            }
            FsError::StreamClosed { port } => {
                write!(f, "stream on port '{port}' is closed (all consumers gone)")
            }
            FsError::Transport(m) => write!(f, "transport error: {m}"),
        }
    }
}

impl std::error::Error for FsError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, FsError>;
