//! Layouts: the filter ontology.
//!
//! "A layout is a filter ontology which describes the set of application
//! tasks, streams, and the connections required for the computation."
//!
//! A [`Layout`] declares filters (each instance pinned to a node — replicated
//! filters get one instance per listed node) and streams connecting an output
//! port of one filter to an input port of another. Validation catches
//! structural errors (duplicate port bindings, self-loops on the same port,
//! unknown filter ids) before any thread is spawned.

use crate::filter::Filter;
use crate::stream::{Delivery, DEFAULT_CAPACITY};
use crate::{FsError, NodeId, Result};
use std::collections::{HashMap, HashSet};

/// Handle to a filter declared in a layout.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FilterId(pub(crate) usize);

pub(crate) struct FilterDecl {
    pub name: String,
    /// One instance per entry; `placements[i]` is the node of replica `i`.
    pub placements: Vec<NodeId>,
    /// Factory invoked once per instance.
    pub factory: Box<dyn FnMut(usize) -> Box<dyn Filter> + Send>,
}

pub(crate) struct StreamDecl {
    pub from: FilterId,
    pub from_port: String,
    pub to: FilterId,
    pub to_port: String,
    pub delivery: Delivery,
    pub capacity: usize,
}

/// Declarative description of a dataflow computation.
#[derive(Default)]
pub struct Layout {
    pub(crate) filters: Vec<FilterDecl>,
    pub(crate) streams: Vec<StreamDecl>,
}

impl Layout {
    /// An empty layout.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a single-instance filter placed on `node`.
    pub fn add_filter(
        &mut self,
        name: impl Into<String>,
        node: NodeId,
        filter: Box<dyn Filter>,
    ) -> FilterId {
        let mut slot = Some(filter);
        self.add_replicated(name, vec![node], move |_| match slot.take() {
            Some(f) => f,
            None => panic!("single-instance factory invoked more than once"),
        })
    }

    /// Declares a replicated filter: one instance per node in `placements`
    /// (a node may appear several times for multiple local replicas — e.g.
    /// one compute filter per core). `factory(i)` builds replica `i`; for a
    /// *replicable* (stateless) DataCutter filter the factory returns
    /// identical components.
    pub fn add_replicated(
        &mut self,
        name: impl Into<String>,
        placements: Vec<NodeId>,
        factory: impl FnMut(usize) -> Box<dyn Filter> + Send + 'static,
    ) -> FilterId {
        assert!(
            !placements.is_empty(),
            "a filter needs at least one instance"
        );
        let id = FilterId(self.filters.len());
        self.filters.push(FilterDecl {
            name: name.into(),
            placements,
            factory: Box::new(factory),
        });
        id
    }

    /// Connects `from.from_port` to `to.to_port` with the default
    /// (round-robin) delivery and capacity.
    pub fn connect(
        &mut self,
        from: FilterId,
        from_port: impl Into<String>,
        to: FilterId,
        to_port: impl Into<String>,
    ) {
        self.connect_with(
            from,
            from_port,
            to,
            to_port,
            Delivery::RoundRobin,
            DEFAULT_CAPACITY,
        );
    }

    /// Connects with an explicit delivery policy and stream capacity.
    pub fn connect_with(
        &mut self,
        from: FilterId,
        from_port: impl Into<String>,
        to: FilterId,
        to_port: impl Into<String>,
        delivery: Delivery,
        capacity: usize,
    ) {
        self.streams.push(StreamDecl {
            from,
            from_port: from_port.into(),
            to,
            to_port: to_port.into(),
            delivery,
            capacity: capacity.max(1),
        });
    }

    /// Number of declared filter instances (sum over replication).
    pub fn instance_count(&self) -> usize {
        self.filters.iter().map(|f| f.placements.len()).sum()
    }

    /// Structural validation. Checks:
    /// * stream endpoints reference declared filters;
    /// * no filter binds the same **output** port to two streams (declare two
    ///   ports instead; this keeps delivery semantics explicit);
    /// * fan-in is allowed — several streams may target the same input port —
    ///   but they must agree on the delivery policy;
    /// * aligned streams require equal producer/consumer instance counts;
    /// * no stream connects a port to itself on the same filter.
    pub fn validate(&self) -> Result<()> {
        let nf = self.filters.len();
        let mut in_ports: HashMap<(usize, &str), Delivery> = HashMap::new();
        let mut out_ports: HashSet<(usize, &str)> = HashSet::new();
        for s in &self.streams {
            if s.from.0 >= nf || s.to.0 >= nf {
                return Err(FsError::InvalidLayout(format!(
                    "stream references undeclared filter ({} filters declared)",
                    nf
                )));
            }
            if s.from == s.to && s.from_port == s.to_port {
                return Err(FsError::InvalidLayout(format!(
                    "filter '{}' connects port '{}' to itself",
                    self.filters[s.from.0].name, s.from_port
                )));
            }
            if !out_ports.insert((s.from.0, s.from_port.as_str())) {
                return Err(FsError::InvalidLayout(format!(
                    "filter '{}' output port '{}' bound to two streams",
                    self.filters[s.from.0].name, s.from_port
                )));
            }
            if s.delivery == Delivery::Aligned
                && self.filters[s.from.0].placements.len() != self.filters[s.to.0].placements.len()
            {
                return Err(FsError::InvalidLayout(format!(
                    "aligned stream '{}'.'{}' -> '{}'.'{}' requires equal instance counts",
                    self.filters[s.from.0].name, s.from_port, self.filters[s.to.0].name, s.to_port
                )));
            }
            match in_ports.entry((s.to.0, s.to_port.as_str())) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(s.delivery);
                }
                std::collections::hash_map::Entry::Occupied(e) => {
                    if *e.get() != s.delivery {
                        return Err(FsError::InvalidLayout(format!(
                            "filter '{}' input port '{}' fanned in with conflicting deliveries",
                            self.filters[s.to.0].name, s.to_port
                        )));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::FilterContext;

    fn noop() -> Box<dyn Filter> {
        Box::new(|_ctx: &mut FilterContext| Ok(()))
    }

    #[test]
    fn validate_accepts_simple_pipeline() {
        let mut l = Layout::new();
        let a = l.add_filter("a", NodeId(0), noop());
        let b = l.add_filter("b", NodeId(0), noop());
        l.connect(a, "out", b, "in");
        assert!(l.validate().is_ok());
        assert_eq!(l.instance_count(), 2);
    }

    #[test]
    fn validate_accepts_fan_in_same_delivery() {
        let mut l = Layout::new();
        let a = l.add_filter("a", NodeId(0), noop());
        let b = l.add_filter("b", NodeId(0), noop());
        let c = l.add_filter("c", NodeId(0), noop());
        l.connect(a, "out", c, "in");
        l.connect(b, "out", c, "in");
        assert!(l.validate().is_ok());
    }

    #[test]
    fn validate_rejects_fan_in_conflicting_delivery() {
        let mut l = Layout::new();
        let a = l.add_filter("a", NodeId(0), noop());
        let b = l.add_filter("b", NodeId(0), noop());
        let c = l.add_filter("c", NodeId(0), noop());
        l.connect(a, "out", c, "in");
        l.connect_with(b, "out", c, "in", Delivery::Broadcast, 8);
        assert!(matches!(l.validate(), Err(FsError::InvalidLayout(_))));
    }

    #[test]
    fn validate_rejects_misaligned_instance_counts() {
        let mut l = Layout::new();
        let a = l.add_replicated("a", vec![NodeId(0); 2], |_| -> Box<dyn Filter> {
            Box::new(|_: &mut FilterContext| Ok(()))
        });
        let b = l.add_filter("b", NodeId(0), noop());
        l.connect_with(a, "out", b, "in", Delivery::Aligned, 8);
        assert!(matches!(l.validate(), Err(FsError::InvalidLayout(_))));
    }

    #[test]
    fn validate_rejects_duplicate_output_binding() {
        let mut l = Layout::new();
        let a = l.add_filter("a", NodeId(0), noop());
        let b = l.add_filter("b", NodeId(0), noop());
        let c = l.add_filter("c", NodeId(0), noop());
        l.connect(a, "out", b, "in");
        l.connect(a, "out", c, "in");
        assert!(matches!(l.validate(), Err(FsError::InvalidLayout(_))));
    }

    #[test]
    fn validate_rejects_self_loop_same_port() {
        let mut l = Layout::new();
        let a = l.add_filter("a", NodeId(0), noop());
        l.connect(a, "loop", a, "loop");
        assert!(matches!(l.validate(), Err(FsError::InvalidLayout(_))));
    }

    #[test]
    fn self_loop_distinct_ports_allowed() {
        // A filter may feed itself through distinct ports (e.g. iteration).
        let mut l = Layout::new();
        let a = l.add_filter("a", NodeId(0), noop());
        l.connect(a, "out", a, "in");
        assert!(l.validate().is_ok());
    }

    #[test]
    fn replicated_instances_counted() {
        let mut l = Layout::new();
        l.add_replicated("w", vec![NodeId(0), NodeId(1), NodeId(1)], |_| {
            Box::new(|_: &mut FilterContext| Ok(()))
        });
        assert_eq!(l.instance_count(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one instance")]
    fn empty_placement_panics() {
        let mut l = Layout::new();
        l.add_replicated("w", vec![], |_| -> Box<dyn Filter> {
            Box::new(|_: &mut FilterContext| Ok(()))
        });
    }
}
