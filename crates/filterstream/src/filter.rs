//! The filter component model.
//!
//! "In the implementation of the filter-stream programming model, the key job
//! left to application developers is writing the filter functions and
//! determining the filter and stream layout." A [`Filter`] is the filter
//! function; it runs on its own thread with a [`FilterContext`] giving access
//! to the stream endpoints the layout connected to it.

use crate::stream::{StreamReader, StreamWriter};
use crate::{FsError, NodeId, Result};
use std::collections::HashMap;

/// A dataflow component. Implementations read buffers from input ports,
/// compute, and write buffers to output ports until their inputs close (or
/// their work is done, for source filters).
pub trait Filter: Send {
    /// Executes the filter to completion. Returning an `Err` aborts the run
    /// and is reported against this filter by the runtime.
    fn run(&mut self, ctx: &mut FilterContext) -> Result<()>;
}

/// Blanket impl so simple filters can be written as closures.
impl<F> Filter for F
where
    F: FnMut(&mut FilterContext) -> Result<()> + Send,
{
    fn run(&mut self, ctx: &mut FilterContext) -> Result<()> {
        self(ctx)
    }
}

/// Everything a running filter instance can see: its identity, placement,
/// replication group, and connected stream endpoints.
pub struct FilterContext {
    /// Name the layout declared this filter under.
    pub name: String,
    /// The (simulated) node this instance is placed on.
    pub node: NodeId,
    /// Replica index within the filter's replication group (0-based).
    pub instance: usize,
    /// Total number of replicas of this filter.
    pub replicas: usize,
    inputs: HashMap<String, StreamReader>,
    outputs: HashMap<String, StreamWriter>,
}

impl FilterContext {
    pub(crate) fn new(
        name: String,
        node: NodeId,
        instance: usize,
        replicas: usize,
        inputs: HashMap<String, StreamReader>,
        outputs: HashMap<String, StreamWriter>,
    ) -> Self {
        Self {
            name,
            node,
            instance,
            replicas,
            inputs,
            outputs,
        }
    }

    /// The input stream bound to `port`.
    pub fn input(&self, port: &str) -> Result<&StreamReader> {
        self.inputs.get(port).ok_or_else(|| FsError::UnknownPort {
            filter: self.name.clone(),
            port: port.to_string(),
        })
    }

    /// The output stream bound to `port`.
    pub fn output(&self, port: &str) -> Result<&StreamWriter> {
        self.outputs.get(port).ok_or_else(|| FsError::UnknownPort {
            filter: self.name.clone(),
            port: port.to_string(),
        })
    }

    /// Takes ownership of the input stream bound to `port` (e.g. to wrap it
    /// in a higher-level client handle). Subsequent `input(port)` calls fail.
    pub fn take_input(&mut self, port: &str) -> Result<StreamReader> {
        self.inputs
            .remove(port)
            .ok_or_else(|| FsError::UnknownPort {
                filter: self.name.clone(),
                port: port.to_string(),
            })
    }

    /// Takes ownership of the output stream bound to `port`.
    pub fn take_output(&mut self, port: &str) -> Result<StreamWriter> {
        self.outputs
            .remove(port)
            .ok_or_else(|| FsError::UnknownPort {
                filter: self.name.clone(),
                port: port.to_string(),
            })
    }

    /// Names of all connected input ports.
    pub fn input_ports(&self) -> impl Iterator<Item = &str> {
        self.inputs.keys().map(String::as_str)
    }

    /// Names of all connected output ports.
    pub fn output_ports(&self) -> impl Iterator<Item = &str> {
        self.outputs.keys().map(String::as_str)
    }

    /// Closes an output port early (before the filter returns), signalling
    /// end-of-stream to downstream consumers that wait on it.
    pub fn close_output(&mut self, port: &str) {
        self.outputs.remove(port);
    }

    /// Convenience: application error with this filter's identity attached.
    pub fn error(&self, message: impl Into<String>) -> FsError {
        FsError::Filter {
            filter: self.name.clone(),
            instance: self.instance,
            message: message.into(),
        }
    }
}
