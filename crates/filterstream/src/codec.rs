//! Length-prefixed wire framing with a zero-copy payload decoder.
//!
//! Every message that crosses a process boundary is one **frame**:
//!
//! ```text
//! [len: u32 LE][kind: u8][pad: u8][inbox: u16 LE][lane: u32 LE][tag: u64 LE][payload…]
//!  └── 4 B ──┘└──────────────── 16 B fixed tail ───────────────┘└─ len-16 B ─┘
//! ```
//!
//! `len` counts everything after the length field itself (the 16-byte fixed
//! tail plus the payload), so a reader needs `4 + len` bytes for a complete
//! frame. `(inbox, lane)` addresses a consumer-side channel lane (see the
//! router in [`crate::runtime`]); `tag` carries the [`DataBuffer`] tag
//! unmodified so a data frame round-trips without re-encoding.
//!
//! # Codec invariants
//!
//! - **Slice-per-block decode.** [`FrameDecoder`] keeps each socket read as
//!   one shared [`Bytes`] segment and serves payloads via `split_to`, so a
//!   payload that fits inside a single read is a zero-copy view into the
//!   read buffer — the PR 2 discipline (`DataBuffer` payload = one `Bytes`,
//!   f64 views borrow it) survives the wire unchanged. Only payloads that
//!   *straddle* two reads are stitched with a copy, and the decoder counts
//!   those bytes in [`FrameDecoder::copied_payload_bytes`] so tests can
//!   assert the hot path stayed at zero.
//! - **Headers never alias payloads.** Header fields are parsed onto the
//!   stack; the payload `Bytes` contains exactly the payload.
//! - **Bounded frames.** `len` beyond [`MAX_PAYLOAD`] + 16 is a protocol
//!   error (corrupt peer), surfaced as [`FsError::Transport`] rather than an
//!   attempt to buffer it.
//!
//! [`DataBuffer`]: crate::buffer::DataBuffer

use crate::{FsError, Result};
use bytes::Bytes;
use std::collections::VecDeque;

/// Fixed bytes before the payload: 4-byte length prefix + 16-byte tail.
pub const HEADER_LEN: usize = 20;

/// Upper bound on a single frame's payload (1 GiB): anything larger is a
/// corrupt or hostile peer, not a block.
pub const MAX_PAYLOAD: usize = 1 << 30;

/// What a frame means to the receiving endpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameKind {
    /// A [`crate::buffer::DataBuffer`] for inbox lane `(inbox, lane)`.
    Data,
    /// One remote producer endpoint for `(inbox, lane)` dropped its writer.
    Close,
    /// Connection handshake: `tag` = sender's node id, payload = magic,
    /// protocol version, and cluster fingerprint.
    Hello,
    /// Out-of-band blob for [`crate::transport::Transport::exchange`].
    Blob,
    /// A progress-tracking change batch for inbox lane `(inbox, lane)`:
    /// cumulative capability-drop counts (see `dooc-core::progress`).
    /// Routed exactly like [`FrameKind::Data`] but discriminated on the
    /// wire so transports can count control-plane traffic separately.
    Progress,
}

impl FrameKind {
    fn as_u8(self) -> u8 {
        match self {
            FrameKind::Data => 0,
            FrameKind::Close => 1,
            FrameKind::Hello => 2,
            FrameKind::Blob => 3,
            FrameKind::Progress => 4,
        }
    }

    fn from_u8(b: u8) -> Result<Self> {
        match b {
            0 => Ok(FrameKind::Data),
            1 => Ok(FrameKind::Close),
            2 => Ok(FrameKind::Hello),
            3 => Ok(FrameKind::Blob),
            4 => Ok(FrameKind::Progress),
            other => Err(FsError::Transport(format!(
                "unknown frame kind {other:#04x} (corrupt stream?)"
            ))),
        }
    }
}

/// One wire frame. `payload` is a shared [`Bytes`] view — encoding never
/// copies it and decoding copies it only on a read-boundary straddle.
#[derive(Clone, Debug)]
pub struct Frame {
    /// Frame discriminator.
    pub kind: FrameKind,
    /// Destination inbox index (deterministic per layout; see the router).
    pub inbox: u16,
    /// Destination lane within the inbox (consumer instance, or 0 for the
    /// shared round-robin lane).
    pub lane: u32,
    /// The [`crate::buffer::DataBuffer`] tag, carried verbatim.
    pub tag: u64,
    /// The buffer payload (empty for `Close`).
    pub payload: Bytes,
}

impl Frame {
    /// A data frame carrying `payload` to `(inbox, lane)`.
    pub fn data(inbox: u16, lane: u32, tag: u64, payload: Bytes) -> Self {
        Self {
            kind: FrameKind::Data,
            inbox,
            lane,
            tag,
            payload,
        }
    }

    /// A producer-endpoint close notice for `(inbox, lane)`.
    pub fn close(inbox: u16, lane: u32) -> Self {
        Self {
            kind: FrameKind::Close,
            inbox,
            lane,
            tag: 0,
            payload: Bytes::new(),
        }
    }

    /// A handshake frame from node `node` with the given payload.
    pub fn hello(node: u64, payload: Bytes) -> Self {
        Self {
            kind: FrameKind::Hello,
            inbox: 0,
            lane: 0,
            tag: node,
            payload,
        }
    }

    /// An out-of-band exchange blob.
    pub fn blob(payload: Bytes) -> Self {
        Self {
            kind: FrameKind::Blob,
            inbox: 0,
            lane: 0,
            tag: 0,
            payload,
        }
    }

    /// A progress change batch for `(inbox, lane)`; `tag` carries the
    /// sender's node id so receivers fold per peer.
    pub fn progress(inbox: u16, lane: u32, tag: u64, payload: Bytes) -> Self {
        Self {
            kind: FrameKind::Progress,
            inbox,
            lane,
            tag,
            payload,
        }
    }

    /// Total encoded size in bytes.
    pub fn wire_len(&self) -> usize {
        HEADER_LEN + self.payload.len()
    }

    /// Serializes the header. The payload follows verbatim on the wire.
    pub fn header_bytes(&self) -> [u8; HEADER_LEN] {
        let mut h = [0u8; HEADER_LEN];
        let len = (HEADER_LEN - 4 + self.payload.len()) as u32;
        h[0..4].copy_from_slice(&len.to_le_bytes());
        h[4] = self.kind.as_u8();
        h[5] = 0;
        h[6..8].copy_from_slice(&self.inbox.to_le_bytes());
        h[8..12].copy_from_slice(&self.lane.to_le_bytes());
        h[12..20].copy_from_slice(&self.tag.to_le_bytes());
        h
    }

    /// Serializes the whole frame into one allocation (header + payload
    /// copy). Used for handshakes and tests; the socket writer avoids this
    /// by writing header and payload separately.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_len());
        out.extend_from_slice(&self.header_bytes());
        out.extend_from_slice(&self.payload);
        out
    }
}

/// Incremental frame decoder over a sequence of read chunks.
///
/// Feed each socket read (as one [`Bytes`]) with [`push`], then drain
/// complete frames with [`next_frame`]. Payloads contained in a single chunk
/// are returned as zero-copy slices of that chunk.
///
/// [`push`]: FrameDecoder::push
/// [`next_frame`]: FrameDecoder::next_frame
#[derive(Default)]
pub struct FrameDecoder {
    segments: VecDeque<Bytes>,
    buffered: usize,
    copied_payload_bytes: u64,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one read chunk. Empty chunks are ignored.
    pub fn push(&mut self, chunk: Bytes) {
        if !chunk.is_empty() {
            self.buffered += chunk.len();
            self.segments.push_back(chunk);
        }
    }

    /// Bytes buffered but not yet consumed by a decoded frame.
    pub fn buffered(&self) -> usize {
        self.buffered
    }

    /// Payload bytes that had to be copied because they straddled a chunk
    /// boundary. Zero means every payload so far was a zero-copy slice.
    pub fn copied_payload_bytes(&self) -> u64 {
        self.copied_payload_bytes
    }

    /// Copies the next `out.len()` buffered bytes without consuming them.
    /// Returns false if fewer bytes are buffered.
    fn peek(&self, out: &mut [u8]) -> bool {
        if self.buffered < out.len() {
            return false;
        }
        let mut filled = 0;
        for seg in &self.segments {
            if filled == out.len() {
                break;
            }
            let n = seg.len().min(out.len() - filled);
            out[filled..filled + n].copy_from_slice(&seg[..n]);
            filled += n;
        }
        filled == out.len()
    }

    /// Discards `n` buffered bytes (caller guarantees they exist).
    fn consume(&mut self, mut n: usize) {
        self.buffered -= n;
        while n > 0 {
            let Some(front) = self.segments.front_mut() else {
                debug_assert!(false, "consume past buffered bytes");
                return;
            };
            if front.len() > n {
                let _ = front.split_to(n);
                return;
            }
            n -= front.len();
            self.segments.pop_front();
        }
    }

    /// Takes the next `n` buffered bytes as a payload, zero-copy when they
    /// sit inside one segment.
    fn take_payload(&mut self, n: usize) -> Bytes {
        if n == 0 {
            return Bytes::new();
        }
        self.buffered -= n;
        // Skip exhausted segments so "fits in the front segment" is tested
        // against real data.
        while matches!(self.segments.front(), Some(s) if s.is_empty()) {
            self.segments.pop_front();
        }
        if let Some(front) = self.segments.front_mut() {
            if front.len() >= n {
                let out = front.split_to(n);
                if front.is_empty() {
                    self.segments.pop_front();
                }
                return out;
            }
        }
        // Straddles a read boundary: stitch with one copy and account for it.
        self.copied_payload_bytes += n as u64;
        let mut out = Vec::with_capacity(n);
        let mut left = n;
        while left > 0 {
            let Some(front) = self.segments.front_mut() else {
                debug_assert!(false, "take_payload past buffered bytes");
                break;
            };
            let take = front.len().min(left);
            out.extend_from_slice(&front[..take]);
            left -= take;
            if take == front.len() {
                self.segments.pop_front();
            } else {
                let _ = front.split_to(take);
            }
        }
        Bytes::from(out)
    }

    /// Decodes the next complete frame, or `Ok(None)` if more bytes are
    /// needed. Protocol violations (bad kind, oversized length) are errors.
    pub fn next_frame(&mut self) -> Result<Option<Frame>> {
        let mut head = [0u8; HEADER_LEN];
        if !self.peek(&mut head) {
            return Ok(None);
        }
        let len = u32::from_le_bytes([head[0], head[1], head[2], head[3]]) as usize;
        if len < HEADER_LEN - 4 {
            return Err(FsError::Transport(format!(
                "frame length {len} shorter than the fixed header tail"
            )));
        }
        let payload_len = len - (HEADER_LEN - 4);
        if payload_len > MAX_PAYLOAD {
            return Err(FsError::Transport(format!(
                "frame payload of {payload_len} bytes exceeds MAX_PAYLOAD"
            )));
        }
        if self.buffered < HEADER_LEN + payload_len {
            return Ok(None);
        }
        let kind = FrameKind::from_u8(head[4])?;
        let inbox = u16::from_le_bytes([head[6], head[7]]);
        let lane = u32::from_le_bytes([head[8], head[9], head[10], head[11]]);
        let tag = u64::from_le_bytes([
            head[12], head[13], head[14], head[15], head[16], head[17], head[18], head[19],
        ]);
        self.consume(HEADER_LEN);
        let payload = self.take_payload(payload_len);
        Ok(Some(Frame {
            kind,
            inbox,
            lane,
            tag,
            payload,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip_one(frame: &Frame, chunk_sizes: &[usize]) -> Frame {
        let wire = frame.encode();
        let mut dec = FrameDecoder::new();
        let mut off = 0;
        let mut sizes = chunk_sizes.iter().copied();
        while off < wire.len() {
            let n = sizes
                .next()
                .unwrap_or(wire.len() - off)
                .min(wire.len() - off);
            let n = n.max(1);
            dec.push(Bytes::copy_from_slice(&wire[off..off + n]));
            off += n;
        }
        let out = dec.next_frame().expect("decode ok").expect("complete");
        assert!(dec.next_frame().expect("decode ok").is_none());
        assert_eq!(dec.buffered(), 0);
        out
    }

    #[test]
    fn header_roundtrip_all_kinds() {
        for kind in [
            FrameKind::Data,
            FrameKind::Close,
            FrameKind::Hello,
            FrameKind::Blob,
            FrameKind::Progress,
        ] {
            let f = Frame {
                kind,
                inbox: 513,
                lane: 70_000,
                tag: 0xdead_beef_cafe_f00d,
                payload: Bytes::copy_from_slice(b"block-payload"),
            };
            let got = roundtrip_one(&f, &[]);
            assert_eq!(got.kind, f.kind);
            assert_eq!(got.inbox, f.inbox);
            assert_eq!(got.lane, f.lane);
            assert_eq!(got.tag, f.tag);
            assert_eq!(&got.payload[..], &f.payload[..]);
        }
    }

    #[test]
    fn zero_length_payload_decodes() {
        let f = Frame::close(3, 1);
        let got = roundtrip_one(&f, &[1, 2, 3]);
        assert_eq!(got.kind, FrameKind::Close);
        assert_eq!(got.inbox, 3);
        assert_eq!(got.lane, 1);
        assert!(got.payload.is_empty());
    }

    /// The codec invariant the whole PR rests on: a payload that arrives
    /// inside one read chunk is a slice of that chunk's allocation —
    /// pointer-identical memory, zero bytes memcpy'd.
    #[test]
    fn single_chunk_payload_is_zero_copy_slice() {
        let payload: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        let f = Frame::data(7, 2, 42, Bytes::from(payload));
        let chunk = Bytes::from(f.encode());
        let chunk_range = chunk.as_ptr() as usize..chunk.as_ptr() as usize + chunk.len();

        let mut dec = FrameDecoder::new();
        dec.push(chunk.clone());
        let got = dec.next_frame().expect("ok").expect("complete");
        assert_eq!(&got.payload[..], &chunk[HEADER_LEN..]);
        assert!(
            chunk_range.contains(&(got.payload.as_ptr() as usize)),
            "payload must alias the read chunk, not a copy"
        );
        assert_eq!(dec.copied_payload_bytes(), 0, "no straddle, no copy");
    }

    #[test]
    fn straddling_payload_is_stitched_and_counted() {
        let f = Frame::data(0, 0, 9, Bytes::copy_from_slice(&[7u8; 100]));
        let wire = f.encode();
        let mut dec = FrameDecoder::new();
        // Split mid-payload: 20-byte header + 30 payload bytes, then the rest.
        dec.push(Bytes::copy_from_slice(&wire[..50]));
        assert!(dec.next_frame().expect("ok").is_none(), "incomplete");
        dec.push(Bytes::copy_from_slice(&wire[50..]));
        let got = dec.next_frame().expect("ok").expect("complete");
        assert_eq!(&got.payload[..], &[7u8; 100][..]);
        assert_eq!(dec.copied_payload_bytes(), 100);
    }

    #[test]
    fn back_to_back_frames_in_one_chunk() {
        let a = Frame::data(1, 0, 1, Bytes::copy_from_slice(b"aaaa"));
        let b = Frame::close(1, 0);
        let c = Frame::data(2, 3, 4, Bytes::new());
        let mut wire = a.encode();
        wire.extend_from_slice(&b.encode());
        wire.extend_from_slice(&c.encode());
        let mut dec = FrameDecoder::new();
        dec.push(Bytes::from(wire));
        let got_a = dec.next_frame().expect("ok").expect("a");
        let got_b = dec.next_frame().expect("ok").expect("b");
        let got_c = dec.next_frame().expect("ok").expect("c");
        assert_eq!(got_a.kind, FrameKind::Data);
        assert_eq!(&got_a.payload[..], b"aaaa");
        assert_eq!(got_b.kind, FrameKind::Close);
        assert_eq!((got_c.inbox, got_c.lane, got_c.tag), (2, 3, 4));
        assert!(dec.next_frame().expect("ok").is_none());
    }

    #[test]
    fn bad_kind_is_a_transport_error() {
        let f = Frame::data(0, 0, 0, Bytes::new());
        let mut wire = f.encode();
        wire[4] = 0x7f;
        let mut dec = FrameDecoder::new();
        dec.push(Bytes::from(wire));
        assert!(matches!(
            dec.next_frame(),
            Err(crate::FsError::Transport(_))
        ));
    }

    #[test]
    fn oversized_length_is_a_transport_error() {
        let mut wire = Frame::data(0, 0, 0, Bytes::new()).encode();
        wire[0..4].copy_from_slice(&(u32::MAX).to_le_bytes());
        let mut dec = FrameDecoder::new();
        dec.push(Bytes::from(wire));
        assert!(dec.next_frame().is_err());
    }

    proptest! {
        /// Any frame sequence, chopped at arbitrary chunk boundaries,
        /// decodes to the same (kind, inbox, lane, tag, payload) sequence.
        #[test]
        fn chunked_stream_roundtrips(
            frames in proptest::collection::vec(
                (0u16..32, 0u32..8, any::<u64>(),
                 proptest::collection::vec(any::<u8>(), 0..200)),
                1..8,
            ),
            cuts in proptest::collection::vec(1usize..64, 0..40),
        ) {
            let frames: Vec<Frame> = frames
                .into_iter()
                .map(|(i, l, t, p)| Frame::data(i, l, t, Bytes::from(p)))
                .collect();
            let mut wire = Vec::new();
            for f in &frames {
                wire.extend_from_slice(&f.encode());
            }
            let mut dec = FrameDecoder::new();
            let mut got = Vec::new();
            let mut off = 0;
            let mut cut_iter = cuts.iter().copied();
            while off < wire.len() {
                let n = cut_iter
                    .next()
                    .unwrap_or(wire.len() - off)
                    .min(wire.len() - off);
                dec.push(Bytes::copy_from_slice(&wire[off..off + n]));
                off += n;
                while let Some(f) = dec.next_frame().expect("well-formed stream") {
                    got.push(f);
                }
            }
            prop_assert_eq!(got.len(), frames.len());
            for (g, f) in got.iter().zip(&frames) {
                prop_assert_eq!(g.kind, f.kind);
                prop_assert_eq!(g.inbox, f.inbox);
                prop_assert_eq!(g.lane, f.lane);
                prop_assert_eq!(g.tag, f.tag);
                prop_assert_eq!(&g.payload[..], &f.payload[..]);
            }
            prop_assert_eq!(dec.buffered(), 0);
        }
    }
}
