//! Transport abstraction: how frames move between nodes.
//!
//! The stream layer ([`crate::stream`]) routes a [`crate::buffer::DataBuffer`]
//! either into a local channel lane (consumer in this process) or into a
//! [`Frame`] handed to a [`Transport`] (consumer on another node). The
//! transport is *only* a reliable, ordered, per-peer frame pipe — all
//! delivery semantics (fan-in, broadcast, alignment, addressing, close
//! refcounts) live above it, so swapping transports cannot change routing
//! behaviour.
//!
//! Two implementations ship:
//!
//! * [`ChannelTransport`] — in-process bounded channels between "nodes" that
//!   are really thread groups. The default for tests, shuttle exploration,
//!   and race recording; also the semantic reference the TCP path is checked
//!   against.
//! * [`crate::tcp::TcpTransport`] — one OS process per node, length-prefixed
//!   frames over `TcpStream` (see [`crate::codec`]).
//!
//! # Lifecycle
//!
//! ```text
//! construct → exchange(...)* → start(sink) → send(...)* → shutdown()
//! ```
//!
//! [`Transport::exchange`] is a pre-start all-to-all barrier used by node
//! bootstrap (storage-map digests, staging consensus). [`Transport::start`]
//! installs the [`FrameSink`] (the runtime's router) and begins delivering
//! incoming frames. [`Transport::shutdown`] flushes outgoing frames, signals
//! peers that this node is done, and blocks until incoming delivery has
//! drained — callers invoke it only after every local producer endpoint has
//! dropped (and therefore emitted its `Close` frames).

use crate::codec::Frame;
use crate::{FsError, NodeId, Result};
use bytes::Bytes;
use dooc_sync::channel::{bounded, Receiver, Sender};
use dooc_sync::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::Arc;

/// Capacity of each per-node frame queue in [`ChannelTransport`]. Bounded so
/// in-process runs keep the same backpressure shape as a TCP socket buffer.
const CHANNEL_TRANSPORT_CAP: usize = 1024;

/// Receiver side of a transport: the runtime's frame router.
pub trait FrameSink: Send + Sync {
    /// A `Data` or `Close` frame arrived from `from`. Called from a
    /// transport-owned thread; may block on lane backpressure.
    fn on_frame(&self, from: NodeId, frame: Frame);

    /// Peer `from` shut down (or its connection reached EOF). Any producer
    /// endpoints it still held are to be treated as closed.
    fn on_peer_closed(&self, from: NodeId);
}

/// A reliable, ordered, per-peer frame pipe between cluster nodes.
pub trait Transport: Send + Sync {
    /// This node's id.
    fn node(&self) -> NodeId;

    /// Cluster size.
    fn nnodes(&self) -> usize;

    /// Queues `frame` toward `to` (never this node). Blocks on backpressure;
    /// errors if the transport (or peer) has shut down.
    fn send(&self, to: NodeId, frame: Frame) -> Result<()>;

    /// All-to-all rendezvous: publishes `blob`, blocks until every node has
    /// published, returns all blobs sorted by node id (own blob included).
    /// One round per run; used by bootstrap before [`Transport::start`].
    fn exchange(&self, blob: Bytes) -> Result<Vec<(NodeId, Bytes)>>;

    /// Installs the sink and starts delivering incoming frames to it.
    fn start(&self, sink: Arc<dyn FrameSink>) -> Result<()>;

    /// Flushes outgoing frames, notifies peers, and drains incoming delivery.
    /// Idempotent. Call only after all local producer endpoints dropped.
    fn shutdown(&self);
}

/// What travels over a [`ChannelTransport`] queue.
enum Wire {
    Frame(NodeId, Frame),
    Bye(NodeId),
}

/// Shared all-to-all rendezvous state for one in-process cluster.
struct ExchangeBoard {
    slots: Mutex<HashMap<usize, Bytes>>,
    cv: Condvar,
}

impl ExchangeBoard {
    fn exchange(&self, node: NodeId, blob: Bytes, nnodes: usize) -> Vec<(NodeId, Bytes)> {
        let mut slots = self.slots.lock();
        slots.insert(node.0, blob);
        if slots.len() == nnodes {
            self.cv.notify_all();
        }
        while slots.len() < nnodes {
            self.cv.wait(&mut slots);
        }
        let mut out: Vec<(NodeId, Bytes)> =
            slots.iter().map(|(n, b)| (NodeId(*n), b.clone())).collect();
        out.sort_by_key(|(n, _)| n.0);
        out
    }
}

/// In-process transport: every "node" is a thread group in this process and
/// frames travel over bounded channels. Semantically identical to the TCP
/// transport (same frames, same close protocol, same backpressure shape)
/// minus the sockets — which is exactly what makes it the reference
/// implementation for equivalence tests.
pub struct ChannelTransport {
    node: NodeId,
    nnodes: usize,
    /// Senders toward each node, dropped on shutdown. `txs[self]` exists but
    /// is never used (local lanes bypass the transport entirely).
    txs: Mutex<Vec<Option<Sender<Wire>>>>,
    /// Incoming queue, taken by [`Transport::start`].
    rx: Mutex<Option<Receiver<Wire>>>,
    pump: Mutex<Option<std::thread::JoinHandle<()>>>,
    board: Arc<ExchangeBoard>,
}

impl ChannelTransport {
    /// Builds a connected `n`-node in-process cluster; element `i` is node
    /// `i`'s transport.
    pub fn cluster(n: usize) -> Vec<ChannelTransport> {
        let mut txs = Vec::with_capacity(n);
        let mut rxs = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = bounded::<Wire>(CHANNEL_TRANSPORT_CAP);
            txs.push(tx);
            rxs.push(rx);
        }
        let board = Arc::new(ExchangeBoard {
            slots: Mutex::new(HashMap::new()),
            cv: Condvar::new(),
        });
        rxs.into_iter()
            .enumerate()
            .map(|(i, rx)| ChannelTransport {
                node: NodeId(i),
                nnodes: n,
                txs: Mutex::new(txs.iter().map(|t| Some(t.clone())).collect()),
                rx: Mutex::new(Some(rx)),
                pump: Mutex::new(None),
                board: Arc::clone(&board),
            })
            .collect()
    }
}

impl Transport for ChannelTransport {
    fn node(&self) -> NodeId {
        self.node
    }

    fn nnodes(&self) -> usize {
        self.nnodes
    }

    fn send(&self, to: NodeId, frame: Frame) -> Result<()> {
        if to == self.node || to.0 >= self.nnodes {
            return Err(FsError::Transport(format!(
                "invalid frame destination {to} from {}",
                self.node
            )));
        }
        // Clone the sender out of the lock so backpressure on one peer never
        // serializes sends to the others.
        let tx = {
            let txs = self.txs.lock();
            match txs.get(to.0).and_then(|t| t.clone()) {
                Some(tx) => tx,
                None => {
                    return Err(FsError::Transport(format!(
                        "transport on {} already shut down",
                        self.node
                    )))
                }
            }
        };
        tx.send(Wire::Frame(self.node, frame))
            .map_err(|_| FsError::Transport(format!("peer {to} stopped receiving (shut down)")))
    }

    fn exchange(&self, blob: Bytes) -> Result<Vec<(NodeId, Bytes)>> {
        Ok(self.board.exchange(self.node, blob, self.nnodes))
    }

    fn start(&self, sink: Arc<dyn FrameSink>) -> Result<()> {
        let rx = self.rx.lock().take().ok_or_else(|| {
            FsError::Transport(format!("transport on {} already started", self.node))
        })?;
        let handle = std::thread::Builder::new()
            .name(format!("fs-pump-{}", self.node))
            .spawn(move || loop {
                match rx.recv() {
                    Ok(Wire::Frame(from, f)) => sink.on_frame(from, f),
                    Ok(Wire::Bye(from)) => sink.on_peer_closed(from),
                    Err(_) => break,
                }
            })
            .map_err(|e| FsError::Transport(format!("spawn pump: {e}")))?;
        *self.pump.lock() = Some(handle);
        Ok(())
    }

    fn shutdown(&self) {
        let taken: Vec<Option<Sender<Wire>>> = {
            let mut txs = self.txs.lock();
            std::mem::take(&mut *txs)
        };
        for (i, tx) in taken.into_iter().enumerate() {
            if i == self.node.0 {
                continue;
            }
            if let Some(tx) = tx {
                // Best effort: the peer may already be fully gone.
                let _ = tx.send(Wire::Bye(self.node));
            }
        }
        // The pump exits once every cluster member has dropped its senders,
        // i.e. once every node has reached shutdown — a clean global drain.
        let handle = self.pump.lock().take();
        if let Some(h) = handle {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::FrameKind;
    use dooc_sync::atomic::{AtomicUsize, Ordering};

    struct CountingSink {
        frames: AtomicUsize,
        closes: AtomicUsize,
    }

    impl FrameSink for CountingSink {
        fn on_frame(&self, _from: NodeId, frame: Frame) {
            assert_eq!(frame.kind, FrameKind::Data);
            self.frames.fetch_add(1, Ordering::SeqCst);
        }
        fn on_peer_closed(&self, _from: NodeId) {
            self.closes.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn frames_flow_and_shutdown_drains() {
        let cluster = ChannelTransport::cluster(3);
        let sinks: Vec<Arc<CountingSink>> = (0..3)
            .map(|_| {
                Arc::new(CountingSink {
                    frames: AtomicUsize::new(0),
                    closes: AtomicUsize::new(0),
                })
            })
            .collect();
        for (t, s) in cluster.iter().zip(&sinks) {
            t.start(Arc::clone(s) as Arc<dyn FrameSink>).expect("start");
        }
        // Every node sends 5 frames to every other node.
        let handles: Vec<_> = cluster
            .into_iter()
            .map(|t| {
                std::thread::spawn(move || {
                    for peer in 0..t.nnodes() {
                        if peer == t.node().0 {
                            continue;
                        }
                        for k in 0..5u64 {
                            t.send(NodeId(peer), Frame::data(0, 0, k, Bytes::new()))
                                .expect("send");
                        }
                    }
                    t.shutdown();
                })
            })
            .collect();
        for h in handles {
            h.join().expect("node thread");
        }
        for s in &sinks {
            assert_eq!(s.frames.load(Ordering::SeqCst), 10);
            assert_eq!(s.closes.load(Ordering::SeqCst), 2);
        }
    }

    #[test]
    fn exchange_is_an_all_to_all_barrier() {
        let cluster = ChannelTransport::cluster(4);
        let handles: Vec<_> = cluster
            .into_iter()
            .map(|t| {
                std::thread::spawn(move || {
                    let mine = Bytes::from(vec![t.node().0 as u8; 3]);
                    let all = t.exchange(mine).expect("exchange");
                    assert_eq!(all.len(), 4);
                    for (i, (n, b)) in all.iter().enumerate() {
                        assert_eq!(n.0, i);
                        assert_eq!(&b[..], &[i as u8; 3]);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("node thread");
        }
    }

    #[test]
    fn send_to_self_or_out_of_range_is_an_error() {
        let mut cluster = ChannelTransport::cluster(2);
        let t = cluster.remove(0);
        assert!(t.send(NodeId(0), Frame::close(0, 0)).is_err());
        assert!(t.send(NodeId(7), Frame::close(0, 0)).is_err());
    }
}
