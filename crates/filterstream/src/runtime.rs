//! The execution engine: threads, wiring, and run reports.
//!
//! [`Runtime::run`] validates a [`Layout`], builds one inbox per
//! *(consumer filter, input port)* — merging fanned-in streams — spawns one
//! OS thread per filter instance, waits for every filter to finish, and
//! returns a [`RuntimeReport`] with the per-stream traffic counters. Filter
//! errors and panics are collected and reported (the first error wins;
//! remaining filters unwind naturally as their streams close).
//!
//! [`Runtime::run_distributed`] is the same engine restricted to one node of
//! a cluster: every process runs the *same* layout, but only the filter
//! instances placed on its [`crate::Transport::node`] are spawned locally.
//! Inboxes for local consumers get real channel lanes; lanes of consumers
//! placed elsewhere become frame sends over the transport. Incoming frames
//! from remote producers are dispatched by a [`Router`] that mirrors the
//! producer-endpoint refcount: a local port closes once every local writer
//! has dropped *and* a `Close` frame has arrived for every remote producer
//! endpoint that could reach it — the exact closure rule of the in-process
//! runtime, split across processes.

use crate::buffer::DataBuffer;
use crate::codec::{Frame, FrameKind};
use crate::filter::FilterContext;
use crate::layout::Layout;
use crate::stream::{Delivery, Inbox, PortCounters, StreamStats};
use crate::transport::{FrameSink, Transport};
use crate::{FsError, NodeId, Result};
use dooc_sync::channel::Sender;
use dooc_sync::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Post-run traffic summary of one stream.
#[derive(Clone, Debug)]
pub struct StreamReport {
    /// `producer.port -> consumer.port` label.
    pub name: String,
    /// Buffers sent.
    pub buffers: u64,
    /// Total wire bytes sent.
    pub bytes: u64,
    /// Wire bytes that crossed node boundaries.
    pub remote_bytes: u64,
}

/// Post-run delivery tally of one (consumer filter, input port) inbox.
#[derive(Clone, Debug)]
pub struct PortReport {
    /// `consumer.port` label.
    pub name: String,
    /// Buffers enqueued into the port's lanes (each broadcast replica
    /// counts as one).
    pub delivered: u64,
    /// Buffers dequeued by consumer instances.
    pub received: u64,
    /// Wire bytes enqueued into the port's lanes.
    pub delivered_bytes: u64,
    /// Wire bytes dequeued by consumer instances.
    pub received_bytes: u64,
}

/// Result of a completed dataflow run.
#[derive(Clone, Debug)]
pub struct RuntimeReport {
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Per-stream traffic.
    pub streams: Vec<StreamReport>,
    /// Per-port delivery tallies (for the shutdown leak audit).
    pub ports: Vec<PortReport>,
}

impl RuntimeReport {
    /// Total bytes sent over all streams.
    pub fn total_bytes(&self) -> u64 {
        self.streams.iter().map(|s| s.bytes).sum()
    }

    /// Total bytes that crossed node boundaries.
    pub fn total_remote_bytes(&self) -> u64 {
        self.streams.iter().map(|s| s.remote_bytes).sum()
    }

    /// Traffic of the stream with the given label, if present.
    pub fn stream(&self, name: &str) -> Option<&StreamReport> {
        self.streams.iter().find(|s| s.name == name)
    }

    /// Ports whose consumers dequeued fewer buffers than producers
    /// enqueued — buffers abandoned in a lane at shutdown. An empty result
    /// means every stream buffer was returned.
    pub fn undrained_ports(&self) -> Vec<&PortReport> {
        self.ports
            .iter()
            .filter(|p| p.received != p.delivered)
            .collect()
    }
}

/// Per-lane state of the [`Router`]: where incoming `Data` frames for the
/// lane go, and how many `Close` frames each remote producer node still owes
/// before the lane's sender clone can be released.
struct LaneState {
    tx: Option<Sender<DataBuffer>>,
    counters: Arc<PortCounters>,
    /// `peer node -> outstanding remote producer endpoints`. While non-empty
    /// the router keeps `tx` alive, holding the port open on behalf of the
    /// remote writers.
    refs: HashMap<usize, usize>,
}

/// Consumer-side dispatcher for frames arriving over a [`Transport`]: maps
/// `(inbox, lane)` to the matching local channel lane and mirrors the
/// producer-endpoint close protocol (see [`crate::stream::StreamWriter`]'s
/// drop impl, which emits the `Close` frames this router consumes).
pub(crate) struct Router {
    lanes: Mutex<HashMap<(u16, u32), LaneState>>,
}

impl Router {
    fn release(lanes: &mut HashMap<(u16, u32), LaneState>, key: (u16, u32), from: usize, n: usize) {
        if let Some(l) = lanes.get_mut(&key) {
            if let Some(c) = l.refs.get_mut(&from) {
                *c = c.saturating_sub(n);
                if *c == 0 {
                    l.refs.remove(&from);
                }
            }
            if l.refs.is_empty() {
                // Last remote producer endpoint gone: drop the sender clone
                // so the port can close once local writers are gone too.
                lanes.remove(&key);
            }
        }
    }
}

impl FrameSink for Router {
    fn on_frame(&self, from: NodeId, frame: Frame) {
        let key = (frame.inbox, frame.lane);
        match frame.kind {
            // Progress change batches ride the same inbox lanes as data —
            // the kind only discriminates control-plane traffic on the wire.
            FrameKind::Data | FrameKind::Progress => {
                // Clone the sender out of the lock before the (possibly
                // blocking) lane insert, so backpressure on one lane never
                // stalls close handling for others… it does stall this pump
                // thread, which is exactly the socket-level backpressure we
                // want.
                let slot = {
                    let lanes = self.lanes.lock();
                    lanes
                        .get(&key)
                        .and_then(|l| l.tx.clone().map(|tx| (tx, Arc::clone(&l.counters))))
                };
                let Some((tx, counters)) = slot else {
                    // Consumers already exited (error shutdown) — drop the
                    // frame, as a local writer's failed send would.
                    dooc_obs::instant(
                        dooc_obs::Category::Filterstream,
                        "fs.router.orphan_frame",
                        from.0 as i64,
                    );
                    return;
                };
                let buf = DataBuffer {
                    tag: frame.tag,
                    payload: frame.payload,
                };
                let wire = buf.wire_size();
                if tx.send(buf).is_ok() {
                    use dooc_sync::atomic::Ordering;
                    counters.enqueued.fetch_add(1, Ordering::Relaxed);
                    counters.bytes_enqueued.fetch_add(wire, Ordering::Relaxed);
                }
            }
            FrameKind::Close => {
                let mut lanes = self.lanes.lock();
                Router::release(&mut lanes, key, from.0, 1);
            }
            FrameKind::Hello | FrameKind::Blob => {
                dooc_obs::instant(
                    dooc_obs::Category::Filterstream,
                    "fs.router.unexpected_frame",
                    from.0 as i64,
                );
            }
        }
    }

    fn on_peer_closed(&self, from: NodeId) {
        // The peer process is gone: whatever Close frames it still owed will
        // never arrive. Treat its remaining endpoints as closed so local
        // consumers unblock instead of hanging on a dead node.
        let mut lanes = self.lanes.lock();
        lanes.retain(|_, l| {
            l.refs.remove(&from.0);
            !l.refs.is_empty()
        });
    }
}

/// Checks the extra constraints a multi-process run imposes on a layout.
fn validate_distributed(layout: &Layout, nnodes: usize) -> Result<()> {
    for f in &layout.filters {
        for &n in &f.placements {
            if n.0 >= nnodes {
                return Err(FsError::InvalidLayout(format!(
                    "filter '{}' placed on {n} but the cluster has {nnodes} nodes",
                    f.name
                )));
            }
        }
    }
    for s in &layout.streams {
        if s.delivery == Delivery::RoundRobin {
            let consumers = &layout.filters[s.to.0].placements;
            if consumers.windows(2).any(|w| w[0] != w[1]) {
                return Err(FsError::InvalidLayout(format!(
                    "round-robin stream into '{}.{}' spans nodes — a shared \
                     demand-driven lane cannot cross processes; use aligned, \
                     broadcast or addressed delivery",
                    layout.filters[s.to.0].name, s.to_port
                )));
            }
        }
    }
    Ok(())
}

/// The filter-stream execution engine.
pub struct Runtime;

impl Runtime {
    /// Runs a layout to completion in this process (every node is a thread
    /// group; no transport involved).
    pub fn run(layout: Layout) -> Result<RuntimeReport> {
        Self::run_inner(layout, None)
    }

    /// Runs this node's share of a layout: spawns only the filter instances
    /// placed on `transport.node()`, routes streams toward other nodes
    /// through the transport, and dispatches incoming frames into local
    /// inboxes. Every participating process must call this with an
    /// *identical* layout (same filters, placements and stream declarations
    /// in the same order — inbox indices are assigned by declaration order
    /// and must agree across the cluster). The caller performs any pre-start
    /// [`Transport::exchange`] rounds; this method starts frame delivery and
    /// shuts the transport down after the local filters finish.
    ///
    /// The returned report covers *this process's* view: stream stats count
    /// local producers only, port tallies cover local lanes only.
    pub fn run_distributed(layout: Layout, transport: Arc<dyn Transport>) -> Result<RuntimeReport> {
        Self::run_inner(layout, Some(transport))
    }

    fn run_inner(layout: Layout, transport: Option<Arc<dyn Transport>>) -> Result<RuntimeReport> {
        layout.validate()?;
        if let Some(t) = &transport {
            validate_distributed(&layout, t.nnodes())?;
        }
        // `None` means "everything is local" (single-process run).
        let me: Option<NodeId> = transport.as_ref().map(|t| t.node());
        let is_local = |n: NodeId| me.is_none_or(|m| m == n);
        let Layout {
            mut filters,
            streams,
        } = layout;

        // One inbox per (consumer filter, input port); fanned-in streams
        // share it. Validation guaranteed delivery agreement. Inbox indices
        // follow first occurrence in stream declaration order, so identical
        // layouts yield identical wire addresses on every node.
        let mut inbox_idx: HashMap<(usize, String), u16> = HashMap::new();
        let mut inboxes: HashMap<(usize, String), Inbox> = HashMap::new();
        for s in &streams {
            let key = (s.to.0, s.to_port.clone());
            if inboxes.contains_key(&key) {
                continue;
            }
            let idx = u16::try_from(inbox_idx.len())
                .map_err(|_| FsError::InvalidLayout("more than 65535 input ports".into()))?;
            inbox_idx.insert(key.clone(), idx);
            let placements = &filters[s.to.0].placements;
            let inbox = match &transport {
                Some(t) => Inbox::new_on(
                    s.delivery,
                    s.capacity,
                    placements,
                    &s.to_port,
                    idx,
                    Arc::clone(t),
                ),
                None => Inbox::new(s.delivery, s.capacity, placements, &s.to_port),
            };
            inboxes.insert(key, inbox);
        }

        // Per-stream stats and per-producer-instance writers — writers exist
        // only for producer instances in this process (remote ones announce
        // themselves through the transport).
        let mut stream_stats: Vec<(String, Arc<StreamStats>)> = Vec::with_capacity(streams.len());
        // writers[fidx][inst] : Vec<(port, StreamWriter)>
        let mut writers: Vec<Vec<Vec<(String, crate::stream::StreamWriter)>>> = filters
            .iter()
            .map(|f| (0..f.placements.len()).map(|_| Vec::new()).collect())
            .collect();
        for s in &streams {
            let name = format!(
                "{}.{} -> {}.{}",
                filters[s.from.0].name, s.from_port, filters[s.to.0].name, s.to_port
            );
            let stats = Arc::new(StreamStats::default());
            stream_stats.push((name, Arc::clone(&stats)));
            let inbox = &inboxes[&(s.to.0, s.to_port.clone())];
            for (inst, &node) in filters[s.from.0].placements.iter().enumerate() {
                if !is_local(node) {
                    continue;
                }
                let w = inbox.writer(&s.from_port, inst, node, Arc::clone(&stats));
                writers[s.from.0][inst].push((s.from_port.clone(), w));
            }
        }

        // In distributed mode, build the router (it holds sender clones for
        // lanes remote producers can reach) and start frame delivery before
        // any local filter runs.
        if let Some(t) = &transport {
            let m = t.node();
            let mut lanes: HashMap<(u16, u32), LaneState> = HashMap::new();
            for s in &streams {
                let key = (s.to.0, s.to_port.clone());
                let idx = inbox_idx[&key];
                let inbox = &inboxes[&key];
                let consumers = &filters[s.to.0].placements;
                for &pnode in filters[s.from.0].placements.iter() {
                    if pnode == m {
                        continue;
                    }
                    // Lanes on this node the remote endpoint can reach —
                    // must mirror StreamWriter::send_closes exactly.
                    let reachable: Vec<u32> = match s.delivery {
                        Delivery::RoundRobin => {
                            if consumers[0] == m {
                                vec![0]
                            } else {
                                vec![]
                            }
                        }
                        Delivery::Aligned => Vec::new(), // filled below per-instance
                        Delivery::Broadcast | Delivery::Addressed => consumers
                            .iter()
                            .enumerate()
                            .filter(|(_, &n)| n == m)
                            .map(|(i, _)| i as u32)
                            .collect(),
                    };
                    for lane in reachable {
                        let entry = lanes.entry((idx, lane)).or_insert_with(|| LaneState {
                            tx: inbox.local_lane_sender(lane as usize),
                            counters: Arc::clone(&inbox.counters),
                            refs: HashMap::new(),
                        });
                        *entry.refs.entry(pnode.0).or_insert(0) += 1;
                    }
                }
                if s.delivery == Delivery::Aligned {
                    for (p, &pnode) in filters[s.from.0].placements.iter().enumerate() {
                        if pnode == m || consumers.get(p) != Some(&m) {
                            continue;
                        }
                        let lane = p as u32;
                        let entry = lanes.entry((idx, lane)).or_insert_with(|| LaneState {
                            tx: inbox.local_lane_sender(p),
                            counters: Arc::clone(&inbox.counters),
                            refs: HashMap::new(),
                        });
                        *entry.refs.entry(pnode.0).or_insert(0) += 1;
                    }
                }
            }
            let router = Arc::new(Router {
                lanes: Mutex::new(lanes),
            });
            t.start(router)?;
        }

        // Distribute readers (local consumer instances only); keep each
        // inbox's delivery tally for the post-run leak audit.
        // readers[fidx][inst] : Vec<(port, StreamReader)>
        let mut readers: Vec<Vec<Vec<(String, crate::stream::StreamReader)>>> = filters
            .iter()
            .map(|f| (0..f.placements.len()).map(|_| Vec::new()).collect())
            .collect();
        let mut port_counters: Vec<(String, Arc<PortCounters>)> = Vec::new();
        for ((fidx, port), mut inbox) in inboxes {
            port_counters.push((
                format!("{}.{}", filters[fidx].name, port),
                Arc::clone(&inbox.counters),
            ));
            for (inst, slot) in readers[fidx].iter_mut().enumerate() {
                if is_local(filters[fidx].placements[inst]) {
                    slot.push((port.clone(), inbox.take_reader(inst)));
                }
            }
        }
        port_counters.sort_by(|a, b| a.0.cmp(&b.0));

        // Spawn every local filter instance.
        let started = Instant::now();
        let mut handles = Vec::new();
        for (fidx, decl) in filters.iter_mut().enumerate().rev() {
            let replicas = decl.placements.len();
            for (inst, &node) in decl.placements.iter().enumerate().rev() {
                if !is_local(node) {
                    continue;
                }
                let inputs: HashMap<_, _> = readers[fidx].pop_if_last(inst);
                let outputs: HashMap<_, _> = writers[fidx].pop_if_last(inst);
                let mut ctx =
                    FilterContext::new(decl.name.clone(), node, inst, replicas, inputs, outputs);
                let mut filter = (decl.factory)(inst);
                let name = decl.name.clone();
                let handle = std::thread::Builder::new()
                    .name(format!("{name}[{inst}]"))
                    .spawn(move || -> Result<()> {
                        let _span = dooc_obs::enabled().then(|| {
                            dooc_obs::span(
                                dooc_obs::Category::Filterstream,
                                dooc_obs::intern(&format!("filter:{}", ctx.name)),
                                ctx.node.0 as i64,
                            )
                        });
                        filter.run(&mut ctx)
                    })
                    .map_err(|e| {
                        FsError::InvalidLayout(format!(
                            "failed to spawn thread for {name}[{inst}]: {e}"
                        ))
                    })?;
                handles.push((name, inst, handle));
            }
        }
        // All endpoint collections were moved into threads; nothing in this
        // frame keeps a sender alive, so closure cascades correctly.
        drop(writers);
        drop(readers);

        let mut first_error: Option<FsError> = None;
        for (name, inst, handle) in handles {
            match handle.join() {
                Ok(Ok(())) => {}
                Ok(Err(e)) => {
                    if first_error.is_none() {
                        first_error = Some(e);
                    }
                }
                Err(_) => {
                    if first_error.is_none() {
                        first_error = Some(FsError::FilterPanicked {
                            filter: name,
                            instance: inst,
                        });
                    }
                }
            }
        }
        // Every local producer endpoint has dropped (and emitted its Close
        // frames) — flush, announce, and drain. Runs on the error path too,
        // so a failing node still tells its peers it is gone rather than
        // leaving them blocked on a silent socket.
        if let Some(t) = &transport {
            t.shutdown();
        }
        if let Some(e) = first_error {
            return Err(e);
        }

        let elapsed = started.elapsed();
        let streams = stream_stats
            .into_iter()
            .map(|(name, st)| {
                let (buffers, bytes, remote_bytes) = st.snapshot();
                StreamReport {
                    name,
                    buffers,
                    bytes,
                    remote_bytes,
                }
            })
            .collect();
        let ports = port_counters
            .into_iter()
            .map(|(name, c)| {
                use dooc_sync::atomic::Ordering;
                PortReport {
                    name,
                    delivered: c.enqueued.load(Ordering::Relaxed),
                    received: c.dequeued.load(Ordering::Relaxed),
                    delivered_bytes: c.bytes_enqueued.load(Ordering::Relaxed),
                    received_bytes: c.bytes_dequeued.load(Ordering::Relaxed),
                }
            })
            .collect();
        Ok(RuntimeReport {
            elapsed,
            streams,
            ports,
        })
    }
}

/// Helper: move instance `inst`'s endpoint list out of a per-filter vector,
/// leaving an empty slot (instances are consumed back-to-front).
trait PopIfLast<T> {
    fn pop_if_last(&mut self, inst: usize) -> HashMap<String, T>;
}

impl<T> PopIfLast<T> for Vec<Vec<(String, T)>> {
    fn pop_if_last(&mut self, inst: usize) -> HashMap<String, T> {
        std::mem::take(&mut self[inst]).into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::DataBuffer;
    use crate::layout::Layout;
    use crate::{Delivery, FilterContext, NodeId};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn two_stage_pipeline_transfers_data() {
        let mut layout = Layout::new();
        let total = Arc::new(AtomicU64::new(0));
        let src = layout.add_filter(
            "source",
            NodeId(0),
            Box::new(|ctx: &mut FilterContext| {
                let out = ctx.output("out")?;
                for i in 0..100u64 {
                    out.send(DataBuffer::from_u64s(0, &[i]))?;
                }
                Ok(())
            }),
        );
        let sum = Arc::clone(&total);
        let sink = layout.add_filter(
            "sink",
            NodeId(1),
            Box::new(move |ctx: &mut FilterContext| {
                let inp = ctx.input("in")?;
                while let Some(b) = inp.recv() {
                    sum.fetch_add(b.as_u64s()[0], Ordering::Relaxed);
                }
                Ok(())
            }),
        );
        layout.connect(src, "out", sink, "in");
        let report = Runtime::run(layout).expect("run ok");
        assert_eq!(total.load(Ordering::Relaxed), 99 * 100 / 2);
        let s = report
            .stream("source.out -> sink.in")
            .expect("stream logged");
        assert_eq!(s.buffers, 100);
        assert_eq!(s.remote_bytes, s.bytes, "cross-node stream fully remote");
    }

    #[test]
    fn replicated_consumer_shares_work() {
        let mut layout = Layout::new();
        let src = layout.add_filter(
            "source",
            NodeId(0),
            Box::new(|ctx: &mut FilterContext| {
                let out = ctx.output("out")?;
                for i in 0..64u64 {
                    out.send(DataBuffer::tag_only(i))?;
                }
                Ok(())
            }),
        );
        let counts: Arc<Vec<AtomicU64>> = Arc::new((0..4).map(|_| AtomicU64::new(0)).collect());
        let c2 = Arc::clone(&counts);
        let workers = layout.add_replicated("worker", vec![NodeId(0); 4], move |_i| {
            let counts = Arc::clone(&c2);
            Box::new(move |ctx: &mut FilterContext| {
                let inp = ctx.input("in")?;
                while inp.recv().is_some() {
                    counts[ctx.instance].fetch_add(1, Ordering::Relaxed);
                }
                Ok(())
            })
        });
        layout.connect(src, "out", workers, "in");
        Runtime::run(layout).expect("run ok");
        let total: u64 = counts.iter().map(|c| c.load(Ordering::Relaxed)).sum();
        assert_eq!(total, 64, "every buffer processed exactly once");
    }

    #[test]
    fn broadcast_reaches_every_replica() {
        let mut layout = Layout::new();
        let src = layout.add_filter(
            "source",
            NodeId(0),
            Box::new(|ctx: &mut FilterContext| {
                ctx.output("out")?.send(DataBuffer::tag_only(5))?;
                Ok(())
            }),
        );
        let seen: Arc<Vec<AtomicU64>> = Arc::new((0..3).map(|_| AtomicU64::new(0)).collect());
        let s2 = Arc::clone(&seen);
        let workers = layout.add_replicated("w", vec![NodeId(0); 3], move |_| {
            let seen = Arc::clone(&s2);
            Box::new(move |ctx: &mut FilterContext| {
                let inp = ctx.input("in")?;
                while let Some(b) = inp.recv() {
                    seen[ctx.instance].fetch_add(b.tag, Ordering::Relaxed);
                }
                Ok(())
            })
        });
        layout.connect_with(src, "out", workers, "in", Delivery::Broadcast, 8);
        Runtime::run(layout).expect("run ok");
        for c in seen.iter() {
            assert_eq!(c.load(Ordering::Relaxed), 5);
        }
    }

    #[test]
    fn addressed_replies_reach_requesting_instance() {
        // Workers send their instance id to a server; the server replies to
        // exactly that instance (the DOoC storage reply pattern).
        let mut layout = Layout::new();
        let nworkers = 3;
        let server = layout.add_filter(
            "server",
            NodeId(0),
            Box::new(move |ctx: &mut FilterContext| {
                let inp = ctx.input("req")?;
                let out = ctx.output("rep")?;
                while let Some(b) = inp.recv() {
                    let who = b.as_u64s()[0] as usize;
                    out.send_to(NodeId(who), DataBuffer::from_u64s(0, &[who as u64 * 10]))?;
                }
                Ok(())
            }),
        );
        let oks: Arc<Vec<AtomicU64>> = Arc::new((0..nworkers).map(|_| AtomicU64::new(0)).collect());
        let o2 = Arc::clone(&oks);
        let workers = layout.add_replicated("worker", vec![NodeId(1); nworkers], move |_| {
            let oks = Arc::clone(&o2);
            Box::new(move |ctx: &mut FilterContext| {
                ctx.output("req")?
                    .send(DataBuffer::from_u64s(0, &[ctx.instance as u64]))?;
                ctx.close_output("req");
                let rep = ctx.input("rep")?.recv().expect("a reply");
                assert_eq!(rep.as_u64s()[0], ctx.instance as u64 * 10);
                oks[ctx.instance].fetch_add(1, Ordering::Relaxed);
                Ok(())
            })
        });
        layout.connect(workers, "req", server, "req");
        layout.connect_with(server, "rep", workers, "rep", Delivery::Addressed, 8);
        Runtime::run(layout).expect("run ok");
        for c in oks.iter() {
            assert_eq!(c.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn fan_in_from_two_declarations() {
        let mut layout = Layout::new();
        let mk_src = |tag: u64| -> Box<dyn crate::Filter> {
            Box::new(move |ctx: &mut FilterContext| {
                ctx.output("out")?.send(DataBuffer::tag_only(tag))?;
                Ok(())
            })
        };
        let a = layout.add_filter("a", NodeId(0), mk_src(1));
        let b = layout.add_filter("b", NodeId(0), mk_src(2));
        let total = Arc::new(AtomicU64::new(0));
        let t = Arc::clone(&total);
        let sink = layout.add_filter(
            "sink",
            NodeId(0),
            Box::new(move |ctx: &mut FilterContext| {
                let inp = ctx.input("in")?;
                while let Some(buf) = inp.recv() {
                    t.fetch_add(buf.tag, Ordering::Relaxed);
                }
                Ok(())
            }),
        );
        layout.connect(a, "out", sink, "in");
        layout.connect(b, "out", sink, "in");
        Runtime::run(layout).expect("run ok");
        assert_eq!(total.load(Ordering::Relaxed), 3, "both sources merged");
    }

    #[test]
    fn aligned_pairs_instances() {
        let mut layout = Layout::new();
        let nodes = vec![NodeId(0), NodeId(1)];
        let prod = layout.add_replicated("p", nodes.clone(), |_| {
            Box::new(|ctx: &mut FilterContext| {
                ctx.output("out")?
                    .send(DataBuffer::from_u64s(0, &[ctx.instance as u64]))?;
                Ok(())
            })
        });
        let seen: Arc<Vec<AtomicU64>> = Arc::new((0..2).map(|_| AtomicU64::new(99)).collect());
        let s2 = Arc::clone(&seen);
        let cons = layout.add_replicated("c", nodes, move |_| {
            let seen = Arc::clone(&s2);
            Box::new(move |ctx: &mut FilterContext| {
                if let Some(b) = ctx.input("in")?.recv() {
                    seen[ctx.instance].store(b.as_u64s()[0], Ordering::Relaxed);
                }
                Ok(())
            })
        });
        layout.connect_with(prod, "out", cons, "in", Delivery::Aligned, 8);
        Runtime::run(layout).expect("run ok");
        assert_eq!(seen[0].load(Ordering::Relaxed), 0);
        assert_eq!(seen[1].load(Ordering::Relaxed), 1);
    }

    #[test]
    fn filter_error_is_reported() {
        let mut layout = Layout::new();
        layout.add_filter(
            "bad",
            NodeId(0),
            Box::new(|ctx: &mut FilterContext| Err(ctx.error("boom"))),
        );
        match Runtime::run(layout) {
            Err(FsError::Filter {
                filter, message, ..
            }) => {
                assert_eq!(filter, "bad");
                assert_eq!(message, "boom");
            }
            other => panic!("expected filter error, got {other:?}"),
        }
    }

    #[test]
    fn filter_panic_is_reported() {
        let mut layout = Layout::new();
        layout.add_filter(
            "panics",
            NodeId(0),
            Box::new(|_: &mut FilterContext| -> Result<()> { panic!("kaboom") }),
        );
        assert!(matches!(
            Runtime::run(layout),
            Err(FsError::FilterPanicked { .. })
        ));
    }

    #[test]
    fn error_in_one_filter_cascades_shutdown() {
        let mut layout = Layout::new();
        let src = layout.add_filter(
            "source",
            NodeId(0),
            Box::new(|ctx: &mut FilterContext| Err(ctx.error("early out"))),
        );
        let sink = layout.add_filter(
            "sink",
            NodeId(0),
            Box::new(|ctx: &mut FilterContext| {
                let inp = ctx.input("in")?;
                while inp.recv().is_some() {}
                Ok(())
            }),
        );
        layout.connect(src, "out", sink, "in");
        assert!(matches!(Runtime::run(layout), Err(FsError::Filter { .. })));
    }

    #[test]
    fn three_stage_pipelined_parallelism() {
        let mut layout = Layout::new();
        let src = layout.add_filter(
            "src",
            NodeId(0),
            Box::new(|ctx: &mut FilterContext| {
                let out = ctx.output("out")?;
                for i in 1..=10u64 {
                    out.send(DataBuffer::from_u64s(0, &[i]))?;
                }
                Ok(())
            }),
        );
        let mid = layout.add_filter(
            "double",
            NodeId(1),
            Box::new(|ctx: &mut FilterContext| {
                while let Some(b) = ctx.input("in")?.recv() {
                    let v = b.as_u64s()[0] * 2;
                    ctx.output("out")?.send(DataBuffer::from_u64s(0, &[v]))?;
                }
                Ok(())
            }),
        );
        let got = Arc::new(AtomicU64::new(0));
        let g = Arc::clone(&got);
        let sink = layout.add_filter(
            "sink",
            NodeId(2),
            Box::new(move |ctx: &mut FilterContext| {
                while let Some(b) = ctx.input("in")?.recv() {
                    g.fetch_add(b.as_u64s()[0], Ordering::Relaxed);
                }
                Ok(())
            }),
        );
        layout.connect(src, "out", mid, "in");
        layout.connect(mid, "out", sink, "in");
        Runtime::run(layout).expect("run ok");
        assert_eq!(got.load(Ordering::Relaxed), 2 * 55);
    }

    #[test]
    fn unknown_port_is_reported() {
        let mut layout = Layout::new();
        layout.add_filter(
            "lost",
            NodeId(0),
            Box::new(|ctx: &mut FilterContext| {
                ctx.output("nonexistent")?;
                Ok(())
            }),
        );
        assert!(matches!(
            Runtime::run(layout),
            Err(FsError::UnknownPort { .. })
        ));
    }

    #[test]
    fn close_output_signals_downstream() {
        let mut layout = Layout::new();
        let src = layout.add_filter(
            "src",
            NodeId(0),
            Box::new(|ctx: &mut FilterContext| {
                ctx.output("out")?.send(DataBuffer::tag_only(1))?;
                ctx.close_output("out");
                std::thread::sleep(std::time::Duration::from_millis(50));
                Ok(())
            }),
        );
        let sink = layout.add_filter(
            "sink",
            NodeId(0),
            Box::new(|ctx: &mut FilterContext| {
                let inp = ctx.input("in")?;
                assert_eq!(inp.recv().expect("one buffer").tag, 1);
                assert!(inp.recv().is_none(), "closed early via close_output");
                Ok(())
            }),
        );
        layout.connect(src, "out", sink, "in");
        Runtime::run(layout).expect("run ok");
    }
}
