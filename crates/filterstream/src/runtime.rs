//! The execution engine: threads, wiring, and run reports.
//!
//! [`Runtime::run`] validates a [`Layout`], builds one inbox per
//! *(consumer filter, input port)* — merging fanned-in streams — spawns one
//! OS thread per filter instance, waits for every filter to finish, and
//! returns a [`RuntimeReport`] with the per-stream traffic counters. Filter
//! errors and panics are collected and reported (the first error wins;
//! remaining filters unwind naturally as their streams close).

use crate::filter::FilterContext;
use crate::layout::Layout;
use crate::stream::{Inbox, PortCounters, StreamStats};
use crate::{FsError, Result};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Post-run traffic summary of one stream.
#[derive(Clone, Debug)]
pub struct StreamReport {
    /// `producer.port -> consumer.port` label.
    pub name: String,
    /// Buffers sent.
    pub buffers: u64,
    /// Total wire bytes sent.
    pub bytes: u64,
    /// Wire bytes that crossed node boundaries.
    pub remote_bytes: u64,
}

/// Post-run delivery tally of one (consumer filter, input port) inbox.
#[derive(Clone, Debug)]
pub struct PortReport {
    /// `consumer.port` label.
    pub name: String,
    /// Buffers enqueued into the port's lanes (each broadcast replica
    /// counts as one).
    pub delivered: u64,
    /// Buffers dequeued by consumer instances.
    pub received: u64,
}

/// Result of a completed dataflow run.
#[derive(Clone, Debug)]
pub struct RuntimeReport {
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Per-stream traffic.
    pub streams: Vec<StreamReport>,
    /// Per-port delivery tallies (for the shutdown leak audit).
    pub ports: Vec<PortReport>,
}

impl RuntimeReport {
    /// Total bytes sent over all streams.
    pub fn total_bytes(&self) -> u64 {
        self.streams.iter().map(|s| s.bytes).sum()
    }

    /// Total bytes that crossed node boundaries.
    pub fn total_remote_bytes(&self) -> u64 {
        self.streams.iter().map(|s| s.remote_bytes).sum()
    }

    /// Traffic of the stream with the given label, if present.
    pub fn stream(&self, name: &str) -> Option<&StreamReport> {
        self.streams.iter().find(|s| s.name == name)
    }

    /// Ports whose consumers dequeued fewer buffers than producers
    /// enqueued — buffers abandoned in a lane at shutdown. An empty result
    /// means every stream buffer was returned.
    pub fn undrained_ports(&self) -> Vec<&PortReport> {
        self.ports
            .iter()
            .filter(|p| p.received != p.delivered)
            .collect()
    }
}

/// The filter-stream execution engine.
pub struct Runtime;

impl Runtime {
    /// Runs a layout to completion.
    pub fn run(layout: Layout) -> Result<RuntimeReport> {
        layout.validate()?;
        let Layout {
            mut filters,
            streams,
        } = layout;

        // One inbox per (consumer filter, input port); fanned-in streams
        // share it. Validation guaranteed delivery agreement.
        let mut inboxes: HashMap<(usize, String), Inbox> = HashMap::new();
        for s in &streams {
            let key = (s.to.0, s.to_port.clone());
            inboxes.entry(key).or_insert_with(|| {
                Inbox::new(
                    s.delivery,
                    s.capacity,
                    &filters[s.to.0].placements,
                    &s.to_port,
                )
            });
        }

        // Per-stream stats and per-producer-instance writers.
        let mut stream_stats: Vec<(String, Arc<StreamStats>)> = Vec::with_capacity(streams.len());
        // writers[fidx][inst] : Vec<(port, StreamWriter)>
        let mut writers: Vec<Vec<Vec<(String, crate::stream::StreamWriter)>>> = filters
            .iter()
            .map(|f| (0..f.placements.len()).map(|_| Vec::new()).collect())
            .collect();
        for s in &streams {
            let name = format!(
                "{}.{} -> {}.{}",
                filters[s.from.0].name, s.from_port, filters[s.to.0].name, s.to_port
            );
            let stats = Arc::new(StreamStats::default());
            stream_stats.push((name, Arc::clone(&stats)));
            let inbox = &inboxes[&(s.to.0, s.to_port.clone())];
            for (inst, &node) in filters[s.from.0].placements.iter().enumerate() {
                let w = inbox.writer(&s.from_port, inst, node, Arc::clone(&stats));
                writers[s.from.0][inst].push((s.from_port.clone(), w));
            }
        }

        // Distribute readers; keep each inbox's delivery tally for the
        // post-run leak audit.
        // readers[fidx][inst] : Vec<(port, StreamReader)>
        let mut readers: Vec<Vec<Vec<(String, crate::stream::StreamReader)>>> = filters
            .iter()
            .map(|f| (0..f.placements.len()).map(|_| Vec::new()).collect())
            .collect();
        let mut port_counters: Vec<(String, Arc<PortCounters>)> = Vec::new();
        for ((fidx, port), mut inbox) in inboxes {
            port_counters.push((
                format!("{}.{}", filters[fidx].name, port),
                Arc::clone(&inbox.counters),
            ));
            for (inst, slot) in readers[fidx].iter_mut().enumerate() {
                slot.push((port.clone(), inbox.take_reader(inst)));
            }
        }
        port_counters.sort_by(|a, b| a.0.cmp(&b.0));

        // Spawn every filter instance.
        let started = Instant::now();
        let mut handles = Vec::new();
        for (fidx, decl) in filters.iter_mut().enumerate().rev() {
            let replicas = decl.placements.len();
            for (inst, &node) in decl.placements.iter().enumerate().rev() {
                let inputs: HashMap<_, _> = readers[fidx].pop_if_last(inst);
                let outputs: HashMap<_, _> = writers[fidx].pop_if_last(inst);
                let mut ctx =
                    FilterContext::new(decl.name.clone(), node, inst, replicas, inputs, outputs);
                let mut filter = (decl.factory)(inst);
                let name = decl.name.clone();
                let handle = std::thread::Builder::new()
                    .name(format!("{name}[{inst}]"))
                    .spawn(move || -> Result<()> {
                        let _span = dooc_obs::enabled().then(|| {
                            dooc_obs::span(
                                dooc_obs::Category::Filterstream,
                                dooc_obs::intern(&format!("filter:{}", ctx.name)),
                                ctx.node.0 as i64,
                            )
                        });
                        filter.run(&mut ctx)
                    })
                    .map_err(|e| {
                        FsError::InvalidLayout(format!(
                            "failed to spawn thread for {name}[{inst}]: {e}"
                        ))
                    })?;
                handles.push((name, inst, handle));
            }
        }
        // All endpoint collections were moved into threads; nothing in this
        // frame keeps a sender alive, so closure cascades correctly.
        drop(writers);
        drop(readers);

        let mut first_error: Option<FsError> = None;
        for (name, inst, handle) in handles {
            match handle.join() {
                Ok(Ok(())) => {}
                Ok(Err(e)) => {
                    if first_error.is_none() {
                        first_error = Some(e);
                    }
                }
                Err(_) => {
                    if first_error.is_none() {
                        first_error = Some(FsError::FilterPanicked {
                            filter: name,
                            instance: inst,
                        });
                    }
                }
            }
        }
        if let Some(e) = first_error {
            return Err(e);
        }

        let elapsed = started.elapsed();
        let streams = stream_stats
            .into_iter()
            .map(|(name, st)| {
                let (buffers, bytes, remote_bytes) = st.snapshot();
                StreamReport {
                    name,
                    buffers,
                    bytes,
                    remote_bytes,
                }
            })
            .collect();
        let ports = port_counters
            .into_iter()
            .map(|(name, c)| PortReport {
                name,
                delivered: c.enqueued.load(std::sync::atomic::Ordering::Relaxed),
                received: c.dequeued.load(std::sync::atomic::Ordering::Relaxed),
            })
            .collect();
        Ok(RuntimeReport {
            elapsed,
            streams,
            ports,
        })
    }
}

/// Helper: move instance `inst`'s endpoint list out of a per-filter vector,
/// leaving an empty slot (instances are consumed back-to-front).
trait PopIfLast<T> {
    fn pop_if_last(&mut self, inst: usize) -> HashMap<String, T>;
}

impl<T> PopIfLast<T> for Vec<Vec<(String, T)>> {
    fn pop_if_last(&mut self, inst: usize) -> HashMap<String, T> {
        std::mem::take(&mut self[inst]).into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::DataBuffer;
    use crate::layout::Layout;
    use crate::{Delivery, FilterContext, NodeId};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn two_stage_pipeline_transfers_data() {
        let mut layout = Layout::new();
        let total = Arc::new(AtomicU64::new(0));
        let src = layout.add_filter(
            "source",
            NodeId(0),
            Box::new(|ctx: &mut FilterContext| {
                let out = ctx.output("out")?;
                for i in 0..100u64 {
                    out.send(DataBuffer::from_u64s(0, &[i]))?;
                }
                Ok(())
            }),
        );
        let sum = Arc::clone(&total);
        let sink = layout.add_filter(
            "sink",
            NodeId(1),
            Box::new(move |ctx: &mut FilterContext| {
                let inp = ctx.input("in")?;
                while let Some(b) = inp.recv() {
                    sum.fetch_add(b.as_u64s()[0], Ordering::Relaxed);
                }
                Ok(())
            }),
        );
        layout.connect(src, "out", sink, "in");
        let report = Runtime::run(layout).expect("run ok");
        assert_eq!(total.load(Ordering::Relaxed), 99 * 100 / 2);
        let s = report
            .stream("source.out -> sink.in")
            .expect("stream logged");
        assert_eq!(s.buffers, 100);
        assert_eq!(s.remote_bytes, s.bytes, "cross-node stream fully remote");
    }

    #[test]
    fn replicated_consumer_shares_work() {
        let mut layout = Layout::new();
        let src = layout.add_filter(
            "source",
            NodeId(0),
            Box::new(|ctx: &mut FilterContext| {
                let out = ctx.output("out")?;
                for i in 0..64u64 {
                    out.send(DataBuffer::tag_only(i))?;
                }
                Ok(())
            }),
        );
        let counts: Arc<Vec<AtomicU64>> = Arc::new((0..4).map(|_| AtomicU64::new(0)).collect());
        let c2 = Arc::clone(&counts);
        let workers = layout.add_replicated("worker", vec![NodeId(0); 4], move |_i| {
            let counts = Arc::clone(&c2);
            Box::new(move |ctx: &mut FilterContext| {
                let inp = ctx.input("in")?;
                while inp.recv().is_some() {
                    counts[ctx.instance].fetch_add(1, Ordering::Relaxed);
                }
                Ok(())
            })
        });
        layout.connect(src, "out", workers, "in");
        Runtime::run(layout).expect("run ok");
        let total: u64 = counts.iter().map(|c| c.load(Ordering::Relaxed)).sum();
        assert_eq!(total, 64, "every buffer processed exactly once");
    }

    #[test]
    fn broadcast_reaches_every_replica() {
        let mut layout = Layout::new();
        let src = layout.add_filter(
            "source",
            NodeId(0),
            Box::new(|ctx: &mut FilterContext| {
                ctx.output("out")?.send(DataBuffer::tag_only(5))?;
                Ok(())
            }),
        );
        let seen: Arc<Vec<AtomicU64>> = Arc::new((0..3).map(|_| AtomicU64::new(0)).collect());
        let s2 = Arc::clone(&seen);
        let workers = layout.add_replicated("w", vec![NodeId(0); 3], move |_| {
            let seen = Arc::clone(&s2);
            Box::new(move |ctx: &mut FilterContext| {
                let inp = ctx.input("in")?;
                while let Some(b) = inp.recv() {
                    seen[ctx.instance].fetch_add(b.tag, Ordering::Relaxed);
                }
                Ok(())
            })
        });
        layout.connect_with(src, "out", workers, "in", Delivery::Broadcast, 8);
        Runtime::run(layout).expect("run ok");
        for c in seen.iter() {
            assert_eq!(c.load(Ordering::Relaxed), 5);
        }
    }

    #[test]
    fn addressed_replies_reach_requesting_instance() {
        // Workers send their instance id to a server; the server replies to
        // exactly that instance (the DOoC storage reply pattern).
        let mut layout = Layout::new();
        let nworkers = 3;
        let server = layout.add_filter(
            "server",
            NodeId(0),
            Box::new(move |ctx: &mut FilterContext| {
                let inp = ctx.input("req")?;
                let out = ctx.output("rep")?;
                while let Some(b) = inp.recv() {
                    let who = b.as_u64s()[0] as usize;
                    out.send_to(who, DataBuffer::from_u64s(0, &[who as u64 * 10]))?;
                }
                Ok(())
            }),
        );
        let oks: Arc<Vec<AtomicU64>> = Arc::new((0..nworkers).map(|_| AtomicU64::new(0)).collect());
        let o2 = Arc::clone(&oks);
        let workers = layout.add_replicated("worker", vec![NodeId(1); nworkers], move |_| {
            let oks = Arc::clone(&o2);
            Box::new(move |ctx: &mut FilterContext| {
                ctx.output("req")?
                    .send(DataBuffer::from_u64s(0, &[ctx.instance as u64]))?;
                ctx.close_output("req");
                let rep = ctx.input("rep")?.recv().expect("a reply");
                assert_eq!(rep.as_u64s()[0], ctx.instance as u64 * 10);
                oks[ctx.instance].fetch_add(1, Ordering::Relaxed);
                Ok(())
            })
        });
        layout.connect(workers, "req", server, "req");
        layout.connect_with(server, "rep", workers, "rep", Delivery::Addressed, 8);
        Runtime::run(layout).expect("run ok");
        for c in oks.iter() {
            assert_eq!(c.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn fan_in_from_two_declarations() {
        let mut layout = Layout::new();
        let mk_src = |tag: u64| -> Box<dyn crate::Filter> {
            Box::new(move |ctx: &mut FilterContext| {
                ctx.output("out")?.send(DataBuffer::tag_only(tag))?;
                Ok(())
            })
        };
        let a = layout.add_filter("a", NodeId(0), mk_src(1));
        let b = layout.add_filter("b", NodeId(0), mk_src(2));
        let total = Arc::new(AtomicU64::new(0));
        let t = Arc::clone(&total);
        let sink = layout.add_filter(
            "sink",
            NodeId(0),
            Box::new(move |ctx: &mut FilterContext| {
                let inp = ctx.input("in")?;
                while let Some(buf) = inp.recv() {
                    t.fetch_add(buf.tag, Ordering::Relaxed);
                }
                Ok(())
            }),
        );
        layout.connect(a, "out", sink, "in");
        layout.connect(b, "out", sink, "in");
        Runtime::run(layout).expect("run ok");
        assert_eq!(total.load(Ordering::Relaxed), 3, "both sources merged");
    }

    #[test]
    fn aligned_pairs_instances() {
        let mut layout = Layout::new();
        let nodes = vec![NodeId(0), NodeId(1)];
        let prod = layout.add_replicated("p", nodes.clone(), |_| {
            Box::new(|ctx: &mut FilterContext| {
                ctx.output("out")?
                    .send(DataBuffer::from_u64s(0, &[ctx.instance as u64]))?;
                Ok(())
            })
        });
        let seen: Arc<Vec<AtomicU64>> = Arc::new((0..2).map(|_| AtomicU64::new(99)).collect());
        let s2 = Arc::clone(&seen);
        let cons = layout.add_replicated("c", nodes, move |_| {
            let seen = Arc::clone(&s2);
            Box::new(move |ctx: &mut FilterContext| {
                if let Some(b) = ctx.input("in")?.recv() {
                    seen[ctx.instance].store(b.as_u64s()[0], Ordering::Relaxed);
                }
                Ok(())
            })
        });
        layout.connect_with(prod, "out", cons, "in", Delivery::Aligned, 8);
        Runtime::run(layout).expect("run ok");
        assert_eq!(seen[0].load(Ordering::Relaxed), 0);
        assert_eq!(seen[1].load(Ordering::Relaxed), 1);
    }

    #[test]
    fn filter_error_is_reported() {
        let mut layout = Layout::new();
        layout.add_filter(
            "bad",
            NodeId(0),
            Box::new(|ctx: &mut FilterContext| Err(ctx.error("boom"))),
        );
        match Runtime::run(layout) {
            Err(FsError::Filter {
                filter, message, ..
            }) => {
                assert_eq!(filter, "bad");
                assert_eq!(message, "boom");
            }
            other => panic!("expected filter error, got {other:?}"),
        }
    }

    #[test]
    fn filter_panic_is_reported() {
        let mut layout = Layout::new();
        layout.add_filter(
            "panics",
            NodeId(0),
            Box::new(|_: &mut FilterContext| -> Result<()> { panic!("kaboom") }),
        );
        assert!(matches!(
            Runtime::run(layout),
            Err(FsError::FilterPanicked { .. })
        ));
    }

    #[test]
    fn error_in_one_filter_cascades_shutdown() {
        let mut layout = Layout::new();
        let src = layout.add_filter(
            "source",
            NodeId(0),
            Box::new(|ctx: &mut FilterContext| Err(ctx.error("early out"))),
        );
        let sink = layout.add_filter(
            "sink",
            NodeId(0),
            Box::new(|ctx: &mut FilterContext| {
                let inp = ctx.input("in")?;
                while inp.recv().is_some() {}
                Ok(())
            }),
        );
        layout.connect(src, "out", sink, "in");
        assert!(matches!(Runtime::run(layout), Err(FsError::Filter { .. })));
    }

    #[test]
    fn three_stage_pipelined_parallelism() {
        let mut layout = Layout::new();
        let src = layout.add_filter(
            "src",
            NodeId(0),
            Box::new(|ctx: &mut FilterContext| {
                let out = ctx.output("out")?;
                for i in 1..=10u64 {
                    out.send(DataBuffer::from_u64s(0, &[i]))?;
                }
                Ok(())
            }),
        );
        let mid = layout.add_filter(
            "double",
            NodeId(1),
            Box::new(|ctx: &mut FilterContext| {
                while let Some(b) = ctx.input("in")?.recv() {
                    let v = b.as_u64s()[0] * 2;
                    ctx.output("out")?.send(DataBuffer::from_u64s(0, &[v]))?;
                }
                Ok(())
            }),
        );
        let got = Arc::new(AtomicU64::new(0));
        let g = Arc::clone(&got);
        let sink = layout.add_filter(
            "sink",
            NodeId(2),
            Box::new(move |ctx: &mut FilterContext| {
                while let Some(b) = ctx.input("in")?.recv() {
                    g.fetch_add(b.as_u64s()[0], Ordering::Relaxed);
                }
                Ok(())
            }),
        );
        layout.connect(src, "out", mid, "in");
        layout.connect(mid, "out", sink, "in");
        Runtime::run(layout).expect("run ok");
        assert_eq!(got.load(Ordering::Relaxed), 2 * 55);
    }

    #[test]
    fn unknown_port_is_reported() {
        let mut layout = Layout::new();
        layout.add_filter(
            "lost",
            NodeId(0),
            Box::new(|ctx: &mut FilterContext| {
                ctx.output("nonexistent")?;
                Ok(())
            }),
        );
        assert!(matches!(
            Runtime::run(layout),
            Err(FsError::UnknownPort { .. })
        ));
    }

    #[test]
    fn close_output_signals_downstream() {
        let mut layout = Layout::new();
        let src = layout.add_filter(
            "src",
            NodeId(0),
            Box::new(|ctx: &mut FilterContext| {
                ctx.output("out")?.send(DataBuffer::tag_only(1))?;
                ctx.close_output("out");
                std::thread::sleep(std::time::Duration::from_millis(50));
                Ok(())
            }),
        );
        let sink = layout.add_filter(
            "sink",
            NodeId(0),
            Box::new(|ctx: &mut FilterContext| {
                let inp = ctx.input("in")?;
                assert_eq!(inp.recv().expect("one buffer").tag, 1);
                assert!(inp.recv().is_none(), "closed early via close_output");
                Ok(())
            }),
        );
        layout.connect(src, "out", sink, "in");
        Runtime::run(layout).expect("run ok");
    }
}
