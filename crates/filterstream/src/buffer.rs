//! Untyped data buffers.
//!
//! "Data flows along these streams in untyped data-buffers in order to
//! minimize various system overheads." A [`DataBuffer`] is a tag word plus a
//! reference-counted byte payload; cloning (needed for broadcast delivery)
//! never copies the payload.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// An untyped message travelling on a stream: a small `tag` for application
/// level discrimination plus an opaque byte payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DataBuffer {
    /// Application-defined discriminator (e.g. request opcode).
    pub tag: u64,
    /// Opaque payload bytes (cheaply cloneable).
    pub payload: Bytes,
}

impl DataBuffer {
    /// A buffer with a tag and no payload.
    pub fn tag_only(tag: u64) -> Self {
        Self {
            tag,
            payload: Bytes::new(),
        }
    }

    /// A buffer from raw bytes.
    pub fn from_bytes(tag: u64, payload: impl Into<Bytes>) -> Self {
        Self {
            tag,
            payload: payload.into(),
        }
    }

    /// Total size accounted on the wire: payload plus the 16-byte header the
    /// real middleware would frame messages with. The testbed simulator
    /// charges network transfer time for exactly this many bytes.
    pub fn wire_size(&self) -> u64 {
        16 + self.payload.len() as u64
    }

    /// Builds a payload from a sequence of little-endian `u64` words.
    pub fn from_u64s(tag: u64, words: &[u64]) -> Self {
        let mut b = BytesMut::with_capacity(8 * words.len());
        for &w in words {
            b.put_u64_le(w);
        }
        Self {
            tag,
            payload: b.freeze(),
        }
    }

    /// Builds a payload from a slice of `f64`s.
    pub fn from_f64s(tag: u64, xs: &[f64]) -> Self {
        let mut b = BytesMut::with_capacity(8 * xs.len());
        for &x in xs {
            b.put_f64_le(x);
        }
        Self {
            tag,
            payload: b.freeze(),
        }
    }

    /// Decodes the payload as little-endian `u64` words. Panics if the
    /// payload length is not a multiple of 8 (a protocol error, not a user
    /// input error).
    pub fn as_u64s(&self) -> Vec<u64> {
        assert!(
            self.payload.len().is_multiple_of(8),
            "payload length {} not a multiple of 8",
            self.payload.len()
        );
        let mut p = self.payload.clone();
        let mut out = Vec::with_capacity(p.len() / 8);
        while p.has_remaining() {
            out.push(p.get_u64_le());
        }
        out
    }

    /// Decodes the payload as `f64`s. Panics on misaligned payloads.
    pub fn as_f64s(&self) -> Vec<f64> {
        assert!(
            self.payload.len().is_multiple_of(8),
            "payload length {} not a multiple of 8",
            self.payload.len()
        );
        let mut p = self.payload.clone();
        let mut out = Vec::with_capacity(p.len() / 8);
        while p.has_remaining() {
            out.push(p.get_f64_le());
        }
        out
    }

    /// Builds a payload holding a UTF-8 string.
    pub fn from_str(tag: u64, s: &str) -> Self {
        Self {
            tag,
            payload: Bytes::copy_from_slice(s.as_bytes()),
        }
    }

    /// Decodes the payload as UTF-8, if valid.
    pub fn as_str(&self) -> Option<&str> {
        std::str::from_utf8(&self.payload).ok()
    }
}

/// Incremental builder for composite payloads (strings + integers + floats),
/// paired with [`PayloadReader`] on the receiving side.
#[derive(Debug, Default)]
pub struct PayloadBuilder {
    buf: BytesMut,
}

impl PayloadBuilder {
    /// A fresh, empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a `u64`.
    pub fn put_u64(&mut self, x: u64) -> &mut Self {
        self.buf.put_u64_le(x);
        self
    }

    /// Appends an `f64`.
    pub fn put_f64(&mut self, x: f64) -> &mut Self {
        self.buf.put_f64_le(x);
        self
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) -> &mut Self {
        self.buf.put_u64_le(s.len() as u64);
        self.buf.put_slice(s.as_bytes());
        self
    }

    /// Appends a length-prefixed byte blob.
    pub fn put_blob(&mut self, b: &[u8]) -> &mut Self {
        self.buf.put_u64_le(b.len() as u64);
        self.buf.put_slice(b);
        self
    }

    /// Appends length-prefixed `f64`s.
    pub fn put_f64s(&mut self, xs: &[f64]) -> &mut Self {
        self.buf.put_u64_le(xs.len() as u64);
        for &x in xs {
            self.buf.put_f64_le(x);
        }
        self
    }

    /// Finishes into a tagged buffer.
    pub fn build(self, tag: u64) -> DataBuffer {
        DataBuffer {
            tag,
            payload: self.buf.freeze(),
        }
    }
}

/// Sequential reader over a composite payload built by [`PayloadBuilder`].
#[derive(Debug)]
pub struct PayloadReader {
    buf: Bytes,
}

impl PayloadReader {
    /// Wraps a buffer's payload for sequential decoding.
    pub fn new(b: &DataBuffer) -> Self {
        Self {
            buf: b.payload.clone(),
        }
    }

    /// Reads the next `u64`, or `None` if exhausted.
    pub fn u64(&mut self) -> Option<u64> {
        (self.buf.remaining() >= 8).then(|| self.buf.get_u64_le())
    }

    /// Reads the next `f64`, or `None` if exhausted.
    pub fn f64(&mut self) -> Option<f64> {
        (self.buf.remaining() >= 8).then(|| self.buf.get_f64_le())
    }

    /// Reads a length-prefixed string.
    pub fn str(&mut self) -> Option<String> {
        let len = self.u64()? as usize;
        if self.buf.remaining() < len {
            return None;
        }
        let raw = self.buf.split_to(len);
        String::from_utf8(raw.to_vec()).ok()
    }

    /// Reads a length-prefixed byte blob (zero-copy slice of the payload).
    pub fn blob(&mut self) -> Option<Bytes> {
        let len = self.u64()? as usize;
        (self.buf.remaining() >= len).then(|| self.buf.split_to(len))
    }

    /// Reads length-prefixed `f64`s.
    pub fn f64s(&mut self) -> Option<Vec<f64>> {
        let len = self.u64()? as usize;
        if self.buf.remaining() < 8 * len {
            return None;
        }
        Some((0..len).map(|_| self.buf.get_f64_le()).collect())
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.remaining()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_roundtrip() {
        let b = DataBuffer::from_u64s(3, &[1, 2, u64::MAX]);
        assert_eq!(b.tag, 3);
        assert_eq!(b.as_u64s(), vec![1, 2, u64::MAX]);
    }

    #[test]
    fn f64_roundtrip() {
        let xs = [1.5, -2.25, f64::MIN_POSITIVE];
        let b = DataBuffer::from_f64s(0, &xs);
        assert_eq!(b.as_f64s(), xs.to_vec());
    }

    #[test]
    fn str_roundtrip() {
        let b = DataBuffer::from_str(9, "hello");
        assert_eq!(b.as_str(), Some("hello"));
    }

    #[test]
    fn wire_size_includes_header() {
        assert_eq!(DataBuffer::tag_only(1).wire_size(), 16);
        assert_eq!(DataBuffer::from_u64s(1, &[0, 0]).wire_size(), 32);
    }

    #[test]
    fn clone_shares_payload() {
        let b = DataBuffer::from_u64s(1, &[42; 100]);
        let c = b.clone();
        // Bytes clones share the same backing allocation.
        assert_eq!(b.payload.as_ptr(), c.payload.as_ptr());
    }

    #[test]
    fn composite_payload_roundtrip() {
        let mut pb = PayloadBuilder::new();
        pb.put_u64(7)
            .put_str("array_A")
            .put_f64(3.5)
            .put_f64s(&[1.0, 2.0])
            .put_blob(&[9, 9, 9]);
        let buf = pb.build(11);
        let mut r = PayloadReader::new(&buf);
        assert_eq!(r.u64(), Some(7));
        assert_eq!(r.str().as_deref(), Some("array_A"));
        assert_eq!(r.f64(), Some(3.5));
        assert_eq!(r.f64s(), Some(vec![1.0, 2.0]));
        assert_eq!(r.blob().as_deref(), Some(&[9u8, 9, 9][..]));
        assert_eq!(r.remaining(), 0);
        assert_eq!(r.u64(), None);
    }

    #[test]
    fn reader_returns_none_on_truncation() {
        let mut pb = PayloadBuilder::new();
        pb.put_str("abcdef");
        let buf = pb.build(0);
        // Truncate mid-string.
        let cut = DataBuffer::from_bytes(0, buf.payload.slice(0..10));
        let mut r = PayloadReader::new(&cut);
        assert_eq!(r.str(), None);
    }

    #[test]
    #[should_panic(expected = "multiple of 8")]
    fn misaligned_decode_panics() {
        DataBuffer::from_bytes(0, vec![1u8, 2, 3]).as_u64s();
    }
}
