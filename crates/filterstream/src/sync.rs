//! Re-export shim: the synchronization primitives live in `dooc-sync`.
//!
//! [`OrderedMutex`] (lock-class deadlock detection under the `order-check`
//! feature) moved to the dedicated sync facade crate so every runtime crate
//! — and the dooc-check schedule-exploration engine — shares one set of
//! primitives. This module keeps the historical `dooc_filterstream::sync`
//! paths working.

pub use dooc_sync::{OrderedMutex, OrderedMutexGuard};
