//! TCP transport: one OS process per node, frames over real sockets.
//!
//! # Topology and handshake
//!
//! Every node binds the listener named by its [`ClusterSpec`] entry, then
//! **dials every lower id and accepts from every higher id** — exactly one
//! duplex `TcpStream` per peer pair, no coordinator. The first frame on
//! every new connection (in both directions) is a [`FrameKind::Hello`]
//! carrying the magic `b"DOOC"`, the protocol version, and the caller's
//! cluster fingerprint; a mismatch in any of the three rejects the
//! connection, so two differently-configured clusters can never
//! half-connect. Dial attempts retry for up to [`CONNECT_DEADLINE`] to ride
//! out peers that are still binding.
//!
//! # Data path
//!
//! Per peer, the transport owns two threads:
//!
//! * a **writer** draining a bounded outbox: frames are written
//!   header-then-payload through a `BufWriter` (no intermediate frame
//!   allocation) and flushed when the outbox goes idle, batching bursts into
//!   few syscalls;
//! * a **demux** reading into fresh chunks handed to a
//!   [`FrameDecoder`], so decoded payloads alias the read allocation
//!   (zero-copy; see [`crate::codec`]) and are pushed into the runtime's
//!   router via [`FrameSink::on_frame`]. EOF reports
//!   [`FrameSink::on_peer_closed`].
//!
//! Shutdown drops the outboxes (writers flush and half-close), then joins
//! the demux threads, which end at peer EOF — i.e. shutdown completes when
//! the whole cluster has shut down, mirroring
//! [`crate::transport::ChannelTransport`].
//!
//! # Fault sites
//!
//! With the `faultline` feature, `fs.tcp.connect` can delay or fail dial
//! attempts (exercising the retry loop) and `fs.tcp.frame` can delay data
//! frames in the writer (exercising flush batching under jitter). Message
//! *loss and reordering* stay at the stream-writer layer
//! (`fail::message`), which runs before the transport — so chaos schedules
//! behave identically over channels and sockets, and TCP's reliable-stream
//! contract is never violated by the injector.

use crate::codec::{Frame, FrameDecoder, FrameKind};
use crate::transport::{FrameSink, Transport};
use crate::{FsError, NodeId, Result};
use bytes::Bytes;
use dooc_obs::{metrics, Category};
use dooc_sync::channel::{bounded, Receiver, Sender, TryRecvError};
use dooc_sync::Mutex;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Handshake magic — first payload bytes on every connection.
const MAGIC: &[u8; 4] = b"DOOC";
/// Wire protocol version; bump on any framing change.
const PROTOCOL_VERSION: u16 = 1;
/// How long dials and accepts wait for the rest of the cluster.
const CONNECT_DEADLINE: Duration = Duration::from_secs(30);
/// Pause between dial/accept retries.
const RETRY_PAUSE: Duration = Duration::from_millis(25);
/// Per-peer outbox depth (frames) before senders block.
const OUTBOX_CAP: usize = 256;
/// Socket read chunk size; each read becomes one shared `Bytes` segment.
const READ_CHUNK: usize = 64 * 1024;
/// BufWriter capacity on the send side.
const WRITE_BUF: usize = 64 * 1024;

/// Cluster membership: `addrs[i]` is the listen address of node `i`.
///
/// Text form, one node per line (`#` comments allowed):
///
/// ```text
/// node 0 127.0.0.1:7100
/// node 1 127.0.0.1:7101
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClusterSpec {
    addrs: Vec<String>,
}

impl ClusterSpec {
    /// A spec from in-memory addresses (`addrs[i]` = node `i`).
    pub fn new(addrs: Vec<String>) -> Self {
        Self { addrs }
    }

    /// Parses the text form. Node ids must be unique and dense from 0.
    pub fn parse(text: &str) -> Result<Self> {
        let mut entries: Vec<(usize, String)> = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let toks: Vec<&str> = line.split_whitespace().collect();
            let (id_tok, addr) = match toks.as_slice() {
                ["node", id, addr] => (*id, *addr),
                [id, addr] => (*id, *addr),
                _ => {
                    return Err(FsError::Transport(format!(
                        "cluster spec line {}: expected 'node <id> <host:port>', got '{line}'",
                        lineno + 1
                    )))
                }
            };
            let id: usize = id_tok.parse().map_err(|_| {
                FsError::Transport(format!(
                    "cluster spec line {}: bad node id '{id_tok}'",
                    lineno + 1
                ))
            })?;
            entries.push((id, addr.to_string()));
        }
        entries.sort_by_key(|(id, _)| *id);
        if entries.is_empty() {
            return Err(FsError::Transport("cluster spec has no nodes".to_string()));
        }
        for (i, (id, _)) in entries.iter().enumerate() {
            if *id != i {
                return Err(FsError::Transport(format!(
                    "cluster spec node ids must be dense from 0 (missing or duplicate id {i})"
                )));
            }
        }
        Ok(Self {
            addrs: entries.into_iter().map(|(_, a)| a).collect(),
        })
    }

    /// Loads and parses a spec file.
    pub fn load(path: &std::path::Path) -> Result<Self> {
        let text = std::fs::read_to_string(path).map_err(|e| {
            FsError::Transport(format!("read cluster spec {}: {e}", path.display()))
        })?;
        Self::parse(&text)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// Whether the spec is empty (parse rejects this, but `new` allows it).
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// Listen address of `node`.
    pub fn addr(&self, node: usize) -> &str {
        &self.addrs[node]
    }

    /// FNV-1a digest over the membership, used in the handshake so only
    /// identically-configured nodes interconnect.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for (i, a) in self.addrs.iter().enumerate() {
            for b in i.to_le_bytes().iter().chain(a.as_bytes()).chain(&[0xffu8]) {
                h ^= *b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        }
        h
    }
}

/// Per-peer connection state.
struct Peer {
    /// Frame queue toward the peer; `take`n (dropped) at shutdown.
    outbox: Mutex<Option<Sender<Frame>>>,
    writer: Mutex<Option<std::thread::JoinHandle<()>>>,
    /// Read half + decoder: used in-place by `exchange`, moved into the
    /// demux thread by `start`.
    read: Mutex<Option<(TcpStream, FrameDecoder)>>,
}

/// Process-per-node transport over TCP (see module docs).
pub struct TcpTransport {
    node: NodeId,
    nnodes: usize,
    /// Indexed by peer id; `None` at `self.node`.
    peers: Vec<Option<Peer>>,
    demux: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

fn transport_err(ctx: &str, e: impl std::fmt::Display) -> FsError {
    FsError::Transport(format!("{ctx}: {e}"))
}

fn hello_frame(node: usize, fingerprint: u64) -> Frame {
    let mut p = Vec::with_capacity(14);
    p.extend_from_slice(MAGIC);
    p.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    p.extend_from_slice(&fingerprint.to_le_bytes());
    Frame::hello(node as u64, Bytes::from(p))
}

/// Blocking-reads exactly one frame (used for handshake and exchange).
fn read_one_frame(stream: &mut TcpStream, dec: &mut FrameDecoder) -> Result<Frame> {
    loop {
        if let Some(f) = dec.next_frame()? {
            return Ok(f);
        }
        let mut chunk = vec![0u8; READ_CHUNK];
        let n = stream
            .read(&mut chunk)
            .map_err(|e| transport_err("socket read", e))?;
        if n == 0 {
            return Err(FsError::Transport(
                "connection closed mid-handshake".to_string(),
            ));
        }
        chunk.truncate(n);
        dec.push(Bytes::from(chunk));
    }
}

/// Sends our hello, reads and validates the peer's, returns the peer id it
/// claimed. The socket is left in blocking mode with nodelay set.
fn handshake(
    stream: &mut TcpStream,
    dec: &mut FrameDecoder,
    node: usize,
    fingerprint: u64,
) -> Result<u64> {
    stream
        .set_nodelay(true)
        .map_err(|e| transport_err("set_nodelay", e))?;
    stream
        .set_read_timeout(Some(CONNECT_DEADLINE))
        .map_err(|e| transport_err("set_read_timeout", e))?;
    stream
        .write_all(&hello_frame(node, fingerprint).encode())
        .map_err(|e| transport_err("send hello", e))?;
    stream
        .flush()
        .map_err(|e| transport_err("flush hello", e))?;
    let f = read_one_frame(stream, dec)?;
    if f.kind != FrameKind::Hello {
        return Err(FsError::Transport(format!(
            "expected hello, got {:?}",
            f.kind
        )));
    }
    if f.payload.len() < 14 || &f.payload[0..4] != MAGIC {
        return Err(FsError::Transport("bad hello magic".to_string()));
    }
    let version = u16::from_le_bytes([f.payload[4], f.payload[5]]);
    if version != PROTOCOL_VERSION {
        return Err(FsError::Transport(format!(
            "protocol version mismatch: ours {PROTOCOL_VERSION}, peer {version}"
        )));
    }
    let peer_fp = u64::from_le_bytes([
        f.payload[6],
        f.payload[7],
        f.payload[8],
        f.payload[9],
        f.payload[10],
        f.payload[11],
        f.payload[12],
        f.payload[13],
    ]);
    if peer_fp != fingerprint {
        return Err(FsError::Transport(format!(
            "cluster fingerprint mismatch: ours {fingerprint:#x}, peer {peer_fp:#x}"
        )));
    }
    stream
        .set_read_timeout(None)
        .map_err(|e| transport_err("clear read_timeout", e))?;
    Ok(f.tag)
}

/// Dials `addr`, retrying until [`CONNECT_DEADLINE`]; the `fs.tcp.connect`
/// fault site can delay or fail individual attempts.
fn dial(addr: &str, to: usize) -> Result<TcpStream> {
    let deadline = Instant::now() + CONNECT_DEADLINE;
    loop {
        #[cfg(feature = "faultline")]
        {
            match dooc_faultline::fail::at("fs.tcp.connect") {
                Some(dooc_faultline::Fault::Delay(ms)) => {
                    dooc_sync::thread::sleep(Duration::from_millis(ms));
                }
                Some(dooc_faultline::Fault::Error) => {
                    // Simulated refused attempt: skip the dial, take the
                    // retry path.
                    if Instant::now() >= deadline {
                        return Err(FsError::Transport(format!(
                            "dial node {to} at {addr}: injected connect failures until deadline"
                        )));
                    }
                    dooc_sync::thread::sleep(RETRY_PAUSE);
                    continue;
                }
                _ => {}
            }
        }
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(FsError::Transport(format!(
                        "dial node {to} at {addr}: {e} (gave up after {CONNECT_DEADLINE:?})"
                    )));
                }
                dooc_sync::thread::sleep(RETRY_PAUSE);
            }
        }
    }
}

fn writer_loop(stream: TcpStream, rx: Receiver<Frame>, peer: i64) {
    let mut w = std::io::BufWriter::with_capacity(WRITE_BUF, stream);
    let bytes_out = metrics::counter("fs.tcp.bytes_out");
    let frames_out = metrics::counter("fs.tcp.frames_out");
    let progress_out = metrics::counter("fs.tcp.progress_out");
    let mut broken = false;
    'outer: while let Ok(frame) = rx.recv() {
        let mut frame = frame;
        loop {
            #[cfg(feature = "faultline")]
            if frame.kind == FrameKind::Data {
                if let Some(dooc_faultline::Fault::Delay(ms)) =
                    dooc_faultline::fail::at("fs.tcp.frame")
                {
                    dooc_sync::thread::sleep(Duration::from_millis(ms));
                }
            }
            let wrote = w
                .write_all(&frame.header_bytes())
                .and_then(|_| {
                    if frame.payload.is_empty() {
                        Ok(())
                    } else {
                        w.write_all(&frame.payload)
                    }
                })
                .is_ok();
            if !wrote {
                broken = true;
                break 'outer;
            }
            frames_out.inc();
            if frame.kind == FrameKind::Progress {
                progress_out.inc();
            }
            bytes_out.add(frame.wire_len() as u64);
            match rx.try_recv() {
                Ok(next) => frame = next,
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => break,
            }
        }
        // Outbox idle (or closed): push the batch onto the wire.
        let g = dooc_obs::span(Category::Filterstream, "tcp:flush", peer);
        let flushed = w.flush();
        drop(g);
        if flushed.is_err() {
            broken = true;
            break;
        }
    }
    if broken {
        dooc_obs::instant(Category::Filterstream, "tcp.write_error", peer);
    }
    let _ = w.flush();
    // Half-close so the peer's demux sees EOF once our frames are drained.
    let _ = w.get_ref().shutdown(Shutdown::Write);
}

fn demux_loop(
    peer: NodeId,
    mut stream: TcpStream,
    mut dec: FrameDecoder,
    sink: Arc<dyn FrameSink>,
) {
    let bytes_in = metrics::counter("fs.tcp.bytes_in");
    let frames_in = metrics::counter("fs.tcp.frames_in");
    let progress_in = metrics::counter("fs.tcp.progress_in");
    loop {
        match dec.next_frame() {
            Ok(Some(f)) => {
                frames_in.inc();
                match f.kind {
                    FrameKind::Progress => {
                        progress_in.inc();
                        sink.on_frame(peer, f);
                    }
                    FrameKind::Data | FrameKind::Close => sink.on_frame(peer, f),
                    FrameKind::Hello | FrameKind::Blob => {
                        dooc_obs::instant(
                            Category::Filterstream,
                            "tcp.unexpected_frame",
                            peer.0 as i64,
                        );
                    }
                }
                continue;
            }
            Ok(None) => {}
            Err(_) => {
                dooc_obs::instant(Category::Filterstream, "tcp.decode_error", peer.0 as i64);
                break;
            }
        }
        let mut chunk = vec![0u8; READ_CHUNK];
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                chunk.truncate(n);
                bytes_in.add(n as u64);
                dec.push(Bytes::from(chunk));
            }
            Err(_) => break,
        }
    }
    sink.on_peer_closed(peer);
}

impl TcpTransport {
    /// Binds this node's listen address from `spec` and connects the full
    /// mesh. Blocks until every peer has handshaked (or the deadline).
    pub fn connect(spec: &ClusterSpec, node: usize, fingerprint: u64) -> Result<TcpTransport> {
        let listener = TcpListener::bind(spec.addr(node))
            .map_err(|e| transport_err(&format!("bind {}", spec.addr(node)), e))?;
        Self::with_listener(spec, node, fingerprint, listener)
    }

    /// Like [`TcpTransport::connect`] but with a pre-bound listener —
    /// tests bind `127.0.0.1:0` themselves to pick free ports race-free.
    pub fn with_listener(
        spec: &ClusterSpec,
        node: usize,
        fingerprint: u64,
        listener: TcpListener,
    ) -> Result<TcpTransport> {
        let n = spec.len();
        if node >= n {
            return Err(FsError::Transport(format!(
                "node id {node} out of range for a {n}-node cluster spec"
            )));
        }
        let _g = dooc_obs::span(Category::Filterstream, "tcp:connect", node as i64);
        let mut peers: Vec<Option<Peer>> = (0..n).map(|_| None).collect();

        // Dial every lower id; their listeners may not be up yet, so `dial`
        // retries inside the deadline.
        for (j, slot) in peers.iter_mut().enumerate().take(node) {
            let mut stream = dial(spec.addr(j), j)?;
            let mut dec = FrameDecoder::new();
            let claimed = handshake(&mut stream, &mut dec, node, fingerprint)?;
            if claimed != j as u64 {
                return Err(FsError::Transport(format!(
                    "dialed {} expecting node {j}, it claims to be node {claimed}",
                    spec.addr(j)
                )));
            }
            *slot = Some(Peer::spawn(node, NodeId(j), stream, dec)?);
        }

        // Accept every higher id (they identify themselves in the hello).
        listener
            .set_nonblocking(true)
            .map_err(|e| transport_err("listener nonblocking", e))?;
        let mut remaining = n - 1 - node;
        let deadline = Instant::now() + CONNECT_DEADLINE;
        while remaining > 0 {
            match listener.accept() {
                Ok((mut stream, _)) => {
                    stream
                        .set_nonblocking(false)
                        .map_err(|e| transport_err("stream blocking", e))?;
                    let mut dec = FrameDecoder::new();
                    let claimed = handshake(&mut stream, &mut dec, node, fingerprint)? as usize;
                    if claimed <= node || claimed >= n {
                        return Err(FsError::Transport(format!(
                            "accepted connection claims node {claimed}, expected one of {}..{n}",
                            node + 1
                        )));
                    }
                    if peers[claimed].is_some() {
                        return Err(FsError::Transport(format!(
                            "node {claimed} connected twice"
                        )));
                    }
                    peers[claimed] = Some(Peer::spawn(node, NodeId(claimed), stream, dec)?);
                    remaining -= 1;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Err(FsError::Transport(format!(
                            "timed out waiting for {remaining} peer connection(s)"
                        )));
                    }
                    dooc_sync::thread::sleep(RETRY_PAUSE);
                }
                Err(e) => return Err(transport_err("accept", e)),
            }
        }

        Ok(TcpTransport {
            node: NodeId(node),
            nnodes: n,
            peers,
            demux: Mutex::new(Vec::new()),
        })
    }
}

impl Peer {
    /// Wires up one handshaked connection: outbox + writer thread now, read
    /// half parked for `exchange`/`start`.
    fn spawn(local: usize, id: NodeId, stream: TcpStream, dec: FrameDecoder) -> Result<Peer> {
        let write_stream = stream
            .try_clone()
            .map_err(|e| transport_err("clone stream", e))?;
        let (tx, rx) = bounded::<Frame>(OUTBOX_CAP);
        let handle = std::thread::Builder::new()
            .name(format!("fs-tcp-w-{local}-{id}"))
            .spawn(move || writer_loop(write_stream, rx, id.0 as i64))
            .map_err(|e| transport_err("spawn writer", e))?;
        Ok(Peer {
            outbox: Mutex::new(Some(tx)),
            writer: Mutex::new(Some(handle)),
            read: Mutex::new(Some((stream, dec))),
        })
    }
}

impl Transport for TcpTransport {
    fn node(&self) -> NodeId {
        self.node
    }

    fn nnodes(&self) -> usize {
        self.nnodes
    }

    fn send(&self, to: NodeId, frame: Frame) -> Result<()> {
        let peer = self
            .peers
            .get(to.0)
            .and_then(|p| p.as_ref())
            .ok_or_else(|| {
                FsError::Transport(format!("invalid frame destination {to} from {}", self.node))
            })?;
        let tx = peer.outbox.lock().clone().ok_or_else(|| {
            FsError::Transport(format!("transport on {} already shut down", self.node))
        })?;
        tx.send(frame)
            .map_err(|_| FsError::Transport(format!("writer to {to} exited (connection lost?)")))
    }

    fn exchange(&self, blob: Bytes) -> Result<Vec<(NodeId, Bytes)>> {
        for peer in self.peers.iter().flatten() {
            let tx = peer
                .outbox
                .lock()
                .clone()
                .ok_or_else(|| FsError::Transport("exchange after shutdown".to_string()))?;
            tx.send(Frame::blob(blob.clone()))
                .map_err(|_| FsError::Transport("exchange: writer exited".to_string()))?;
        }
        let mut out = vec![(self.node, blob)];
        for (j, peer) in self.peers.iter().enumerate() {
            let Some(peer) = peer else { continue };
            let mut slot = peer.read.lock();
            let Some((stream, dec)) = slot.as_mut() else {
                return Err(FsError::Transport(
                    "exchange must run before start()".to_string(),
                ));
            };
            let f = read_one_frame(stream, dec)?;
            if f.kind != FrameKind::Blob {
                return Err(FsError::Transport(format!(
                    "exchange: expected blob from node {j}, got {:?}",
                    f.kind
                )));
            }
            out.push((NodeId(j), f.payload));
        }
        out.sort_by_key(|(n, _)| n.0);
        Ok(out)
    }

    fn start(&self, sink: Arc<dyn FrameSink>) -> Result<()> {
        let mut handles = self.demux.lock();
        for (j, peer) in self.peers.iter().enumerate() {
            let Some(peer) = peer else { continue };
            let taken = peer.read.lock().take();
            let Some((stream, dec)) = taken else {
                return Err(FsError::Transport(format!(
                    "transport on {} already started",
                    self.node
                )));
            };
            let s = Arc::clone(&sink);
            let h = std::thread::Builder::new()
                .name(format!("fs-tcp-r-{}-{j}", self.node))
                .spawn(move || demux_loop(NodeId(j), stream, dec, s))
                .map_err(|e| transport_err("spawn demux", e))?;
            handles.push(h);
        }
        Ok(())
    }

    fn shutdown(&self) {
        for peer in self.peers.iter().flatten() {
            let tx = peer.outbox.lock().take();
            drop(tx);
            let wh = peer.writer.lock().take();
            if let Some(h) = wh {
                let _ = h.join();
            }
        }
        let handles: Vec<_> = std::mem::take(&mut *self.demux.lock());
        for h in handles {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dooc_sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn spec_parses_and_fingerprints() {
        let s =
            ClusterSpec::parse("# cluster\nnode 1 127.0.0.1:7101\nnode 0 127.0.0.1:7100  # head\n")
                .expect("parse");
        assert_eq!(s.len(), 2);
        assert_eq!(s.addr(0), "127.0.0.1:7100");
        assert_eq!(s.addr(1), "127.0.0.1:7101");
        let t = ClusterSpec::parse("0 127.0.0.1:7100\n1 127.0.0.1:7101").expect("parse");
        assert_eq!(s.fingerprint(), t.fingerprint());
        assert_ne!(
            s.fingerprint(),
            ClusterSpec::parse("0 127.0.0.1:7100\n1 127.0.0.1:7102")
                .expect("parse")
                .fingerprint()
        );
        assert!(ClusterSpec::parse("node 0 a:1\nnode 2 b:2").is_err(), "gap");
        assert!(ClusterSpec::parse("nonsense").is_err());
    }

    struct TotalSink {
        frames: AtomicU64,
        bytes: AtomicU64,
        closed: AtomicU64,
    }

    impl TotalSink {
        fn new() -> Arc<Self> {
            Arc::new(Self {
                frames: AtomicU64::new(0),
                bytes: AtomicU64::new(0),
                closed: AtomicU64::new(0),
            })
        }
    }

    impl FrameSink for TotalSink {
        fn on_frame(&self, _from: NodeId, frame: Frame) {
            if frame.kind == FrameKind::Data {
                self.frames.fetch_add(1, Ordering::SeqCst);
                self.bytes
                    .fetch_add(frame.payload.len() as u64, Ordering::SeqCst);
            }
        }
        fn on_peer_closed(&self, _from: NodeId) {
            self.closed.fetch_add(1, Ordering::SeqCst);
        }
    }

    /// Two real sockets on loopback: handshake, exchange, bidirectional
    /// data, clean shutdown with EOF-driven close.
    #[test]
    fn loopback_pair_end_to_end() {
        let l0 = TcpListener::bind("127.0.0.1:0").expect("bind");
        let l1 = TcpListener::bind("127.0.0.1:0").expect("bind");
        let spec = ClusterSpec::new(vec![
            l0.local_addr().expect("addr").to_string(),
            l1.local_addr().expect("addr").to_string(),
        ]);
        let fp = spec.fingerprint();
        let spec1 = spec.clone();
        let handles: Vec<_> = [(0usize, l0), (1usize, l1)]
            .into_iter()
            .map(|(me, listener)| {
                let spec = spec1.clone();
                std::thread::spawn(move || {
                    let t =
                        TcpTransport::with_listener(&spec, me, fp, listener).expect("connect mesh");
                    let all = t
                        .exchange(Bytes::from(vec![me as u8; 4]))
                        .expect("exchange");
                    assert_eq!(all.len(), 2);
                    assert_eq!(&all[0].1[..], &[0u8; 4]);
                    assert_eq!(&all[1].1[..], &[1u8; 4]);
                    let sink = TotalSink::new();
                    t.start(Arc::clone(&sink) as Arc<dyn FrameSink>)
                        .expect("start");
                    let other = NodeId(1 - me);
                    for k in 0..100u64 {
                        let payload = Bytes::from(vec![(k % 251) as u8; 1000]);
                        t.send(other, Frame::data(0, 0, k, payload)).expect("send");
                    }
                    t.shutdown();
                    assert_eq!(sink.frames.load(Ordering::SeqCst), 100);
                    assert_eq!(sink.bytes.load(Ordering::SeqCst), 100_000);
                    assert_eq!(sink.closed.load(Ordering::SeqCst), 1);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("node thread");
        }
    }

    /// Records every data frame in arrival order.
    struct OrderedSink {
        got: dooc_sync::Mutex<Vec<(u64, Bytes)>>,
    }

    impl FrameSink for OrderedSink {
        fn on_frame(&self, _from: NodeId, frame: Frame) {
            if frame.kind == FrameKind::Data {
                self.got.lock().push((frame.tag, frame.payload));
            }
        }
        fn on_peer_closed(&self, _from: NodeId) {}
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Random frame bursts over a *real* loopback socket pair: every
        /// frame arrives intact and in order no matter how payloads
        /// straddle socket reads — zero-length payloads, tiny frames that
        /// coalesce into one read, and payloads bigger than the demux read
        /// buffer all included.
        #[test]
        fn loopback_roundtrip_preserves_frames(
            sizes in proptest::collection::vec(
                prop_oneof![Just(0usize), 1usize..4, 4000usize..20_000],
                1..24),
        ) {
            let l0 = TcpListener::bind("127.0.0.1:0").expect("bind");
            let l1 = TcpListener::bind("127.0.0.1:0").expect("bind");
            let spec = ClusterSpec::new(vec![
                l0.local_addr().expect("addr").to_string(),
                l1.local_addr().expect("addr").to_string(),
            ]);
            let fp = spec.fingerprint();
            let spec1 = spec.clone();
            let receiver = std::thread::spawn(move || {
                let t = TcpTransport::with_listener(&spec1, 1, fp, l1).expect("mesh");
                let sink = Arc::new(OrderedSink {
                    got: dooc_sync::Mutex::new(Vec::new()),
                });
                t.start(Arc::clone(&sink) as Arc<dyn FrameSink>).expect("start");
                // Blocks until node 0 half-closes, i.e. after all sends.
                t.shutdown();
                let frames = std::mem::take(&mut *sink.got.lock());
                frames
            });
            let t0 = TcpTransport::with_listener(&spec, 0, fp, l0).expect("mesh");
            t0.start(TotalSink::new() as Arc<dyn FrameSink>).expect("start");
            let payload = |k: usize, n: usize| {
                Bytes::from((0..n).map(|j| ((k * 31 + j) % 251) as u8).collect::<Vec<u8>>())
            };
            for (k, &n) in sizes.iter().enumerate() {
                t0.send(NodeId(1), Frame::data(0, 0, k as u64, payload(k, n)))
                    .expect("send");
            }
            t0.shutdown();
            let got = receiver.join().expect("receiver thread");
            prop_assert_eq!(got.len(), sizes.len());
            for (k, ((tag, body), &n)) in got.iter().zip(&sizes).enumerate() {
                prop_assert_eq!(*tag, k as u64);
                prop_assert_eq!(body, &payload(k, n));
            }
        }
    }

    /// Fingerprint mismatch must refuse the connection on both sides.
    #[test]
    fn fingerprint_mismatch_refuses() {
        let l0 = TcpListener::bind("127.0.0.1:0").expect("bind");
        let l1 = TcpListener::bind("127.0.0.1:0").expect("bind");
        let spec = ClusterSpec::new(vec![
            l0.local_addr().expect("addr").to_string(),
            l1.local_addr().expect("addr").to_string(),
        ]);
        let fp = spec.fingerprint();
        let spec1 = spec.clone();
        let h1 =
            std::thread::spawn(move || TcpTransport::with_listener(&spec1, 1, fp ^ 1, l1).is_err());
        let r0 = TcpTransport::with_listener(&spec, 0, fp, l0);
        assert!(r0.is_err(), "node 0 must reject the mismatched hello");
        assert!(h1.join().expect("thread"), "node 1 must see the mismatch");
    }
}
