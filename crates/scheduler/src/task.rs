//! Task specifications and the data-derived DAG.
//!
//! "Each computation takes some data as an input and outputs some data. Each
//! data is a complete array that is (or will be) stored within the storage
//! layer. The input and output data information is used to derive a DAG of
//! the tasks."

use crate::progress::Timestamp;
use crate::{Result, SchedError};
use std::collections::HashMap;

/// Identity of a task within one [`TaskGraph`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u64);

impl std::fmt::Display for TaskId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A reference to a storage-layer array consumed or produced by a task.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DataRef {
    /// Array name in the storage layer.
    pub array: String,
    /// Size in bytes (drives affinity weighting and transfer accounting).
    pub bytes: u64,
    /// Frontier gate: when set, this input crosses an iteration boundary
    /// and contributes *no* DAG edge. The task instead stays gated until
    /// the frontier closes this timestamp — i.e. every capability at or
    /// below it has been dropped, which implies the array is sealed.
    pub gate: Option<Timestamp>,
}

impl DataRef {
    /// Creates a reference.
    pub fn new(array: impl Into<String>, bytes: u64) -> Self {
        Self {
            array: array.into(),
            bytes,
            gate: None,
        }
    }

    /// Creates a frontier-gated reference (see [`DataRef::gate`]).
    pub fn gated(array: impl Into<String>, bytes: u64, gate: Timestamp) -> Self {
        Self {
            array: array.into(),
            bytes,
            gate: Some(gate),
        }
    }
}

/// A task: a named computation with declared inputs and outputs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaskSpec {
    /// Human-readable name (e.g. `x_1_0_2` — the paper labels tasks by their
    /// output vector).
    pub name: String,
    /// Application-defined kind tag (e.g. "multiply", "sum"); the executing
    /// filter dispatches on it.
    pub kind: String,
    /// Arrays read.
    pub inputs: Vec<DataRef>,
    /// Arrays written (exactly one producer per array across the graph).
    pub outputs: Vec<DataRef>,
    /// Floating-point operations this task performs (cost model input).
    pub flops: u64,
    /// May the local scheduler split this task by output range "to match the
    /// parallelism available on the node"?
    pub splittable: bool,
    /// Explicit placement override: run on this node regardless of affinity
    /// (how an application encodes a fixed policy such as the paper's
    /// row-root reduction; `None` = let the global scheduler decide).
    pub pin: Option<u64>,
    /// Logical time of this task's outputs in an iterated solve. A
    /// timestamped task holds one *capability* at this time, dropped when
    /// the task completes (all outputs sealed); the drops drive the
    /// frontier that releases gated tasks. `None` for untimed graphs.
    pub timestamp: Option<Timestamp>,
}

impl TaskSpec {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, kind: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            kind: kind.into(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            flops: 0,
            splittable: false,
            pin: None,
            timestamp: None,
        }
    }

    /// Adds an input.
    pub fn input(mut self, array: impl Into<String>, bytes: u64) -> Self {
        self.inputs.push(DataRef::new(array, bytes));
        self
    }

    /// Adds a frontier-gated input: no DAG edge is derived; the local
    /// scheduler holds the task until the frontier closes `gate`.
    pub fn input_gated(mut self, array: impl Into<String>, bytes: u64, gate: Timestamp) -> Self {
        self.inputs.push(DataRef::gated(array, bytes, gate));
        self
    }

    /// Adds an output.
    pub fn output(mut self, array: impl Into<String>, bytes: u64) -> Self {
        self.outputs.push(DataRef::new(array, bytes));
        self
    }

    /// Sets the flop estimate.
    pub fn flops(mut self, flops: u64) -> Self {
        self.flops = flops;
        self
    }

    /// Marks the task splittable.
    pub fn splittable(mut self) -> Self {
        self.splittable = true;
        self
    }

    /// Pins the task to a node.
    pub fn pin_to(mut self, node: u64) -> Self {
        self.pin = Some(node);
        self
    }

    /// Stamps the task with a logical time (it holds one capability there).
    pub fn at(mut self, ts: Timestamp) -> Self {
        self.timestamp = Some(ts);
        self
    }

    /// Total input bytes.
    pub fn input_bytes(&self) -> u64 {
        self.inputs.iter().map(|d| d.bytes).sum()
    }
}

/// The task DAG derived from input/output declarations.
#[derive(Clone, Debug)]
pub struct TaskGraph {
    tasks: Vec<TaskSpec>,
    /// Producer of each array (tasks whose outputs include it).
    producer: HashMap<String, TaskId>,
    preds: Vec<Vec<TaskId>>,
    succs: Vec<Vec<TaskId>>,
}

impl TaskGraph {
    /// Derives the DAG. Fails on duplicate producers (immutability requires
    /// a single writer per array) and on cycles.
    pub fn new(tasks: Vec<TaskSpec>) -> Result<Self> {
        let mut producer: HashMap<String, TaskId> = HashMap::new();
        for (i, t) in tasks.iter().enumerate() {
            for out in &t.outputs {
                if producer
                    .insert(out.array.clone(), TaskId(i as u64))
                    .is_some()
                {
                    return Err(SchedError::DuplicateProducer {
                        array: out.array.clone(),
                    });
                }
            }
        }
        let mut preds = vec![Vec::new(); tasks.len()];
        let mut succs = vec![Vec::new(); tasks.len()];
        for (i, t) in tasks.iter().enumerate() {
            for inp in &t.inputs {
                if let Some(gate) = inp.gate {
                    // Gated inputs cross an iteration boundary: no DAG edge
                    // (that would re-serialize the iterations the frontier
                    // exists to overlap). Soundness instead rests on the
                    // producer's capability: it must sit at or below the
                    // gate on the same chain, so `closed(gate)` implies the
                    // producer completed and sealed the array.
                    if let Some(&p) = producer.get(&inp.array) {
                        let ok = tasks[p.0 as usize]
                            .timestamp
                            .is_some_and(|ts| ts.less_equal(&gate));
                        if !ok {
                            return Err(SchedError::BadGate {
                                task: t.name.clone(),
                                array: inp.array.clone(),
                            });
                        }
                    }
                    continue;
                }
                if let Some(&p) = producer.get(&inp.array) {
                    if p.0 as usize != i {
                        preds[i].push(p);
                        succs[p.0 as usize].push(TaskId(i as u64));
                    }
                }
                // Inputs without a producer are external (files on disk).
            }
        }
        for p in &mut preds {
            p.sort_unstable();
            p.dedup();
        }
        for s in &mut succs {
            s.sort_unstable();
            s.dedup();
        }
        let g = Self {
            tasks,
            producer,
            preds,
            succs,
        };
        g.topo_order()?; // cycle check
        Ok(g)
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Is the graph empty?
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// The task with the given id.
    pub fn task(&self, id: TaskId) -> &TaskSpec {
        &self.tasks[id.0 as usize]
    }

    /// All task ids in declaration order.
    pub fn ids(&self) -> impl Iterator<Item = TaskId> {
        (0..self.tasks.len() as u64).map(TaskId)
    }

    /// Predecessors (tasks producing this task's inputs).
    pub fn preds(&self, id: TaskId) -> &[TaskId] {
        &self.preds[id.0 as usize]
    }

    /// Successors (tasks consuming this task's outputs).
    pub fn succs(&self, id: TaskId) -> &[TaskId] {
        &self.succs[id.0 as usize]
    }

    /// The producer of an array, if it is produced inside this graph.
    pub fn producer_of(&self, array: &str) -> Option<TaskId> {
        self.producer.get(array).copied()
    }

    /// The gate timestamps of a task's gated inputs (empty for plain tasks).
    pub fn gates(&self, id: TaskId) -> impl Iterator<Item = Timestamp> + '_ {
        self.tasks[id.0 as usize]
            .inputs
            .iter()
            .filter_map(|d| d.gate)
    }

    /// Does any task carry a timestamp (i.e. is this a frontier-mode graph)?
    pub fn is_timed(&self) -> bool {
        self.tasks.iter().any(|t| t.timestamp.is_some())
    }

    /// A topological order (Kahn); `Err(Cycle)` if none exists. Ties are
    /// broken by task id, so the order is deterministic.
    pub fn topo_order(&self) -> Result<Vec<TaskId>> {
        let n = self.tasks.len();
        let mut indeg: Vec<usize> = (0..n).map(|i| self.preds[i].len()).collect();
        let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<u64>> = (0..n as u64)
            .filter(|&i| indeg[i as usize] == 0)
            .map(std::cmp::Reverse)
            .collect();
        let mut order = Vec::with_capacity(n);
        while let Some(std::cmp::Reverse(i)) = heap.pop() {
            order.push(TaskId(i));
            for &s in &self.succs[i as usize] {
                indeg[s.0 as usize] -= 1;
                if indeg[s.0 as usize] == 0 {
                    heap.push(std::cmp::Reverse(s.0));
                }
            }
        }
        if order.len() != n {
            return Err(SchedError::Cycle);
        }
        Ok(order)
    }
}

/// Incremental ready-set tracking: feed completions, get newly ready tasks.
/// "All tasks that do not have any unprocessed predecessors are marked as
/// ready."
#[derive(Clone, Debug)]
pub struct ReadyTracker {
    indeg: Vec<usize>,
    done: Vec<bool>,
}

impl ReadyTracker {
    /// Initializes from a graph.
    pub fn new(graph: &TaskGraph) -> Self {
        Self {
            indeg: graph.ids().map(|i| graph.preds(i).len()).collect(),
            done: vec![false; graph.len()],
        }
    }

    /// Tasks ready at start (no predecessors).
    pub fn initially_ready(&self) -> Vec<TaskId> {
        self.indeg
            .iter()
            .enumerate()
            .filter(|(_, &d)| d == 0)
            .map(|(i, _)| TaskId(i as u64))
            .collect()
    }

    /// Marks `id` complete; returns tasks that became ready.
    pub fn complete(&mut self, graph: &TaskGraph, id: TaskId) -> Vec<TaskId> {
        assert!(!self.done[id.0 as usize], "task {id} completed twice");
        self.done[id.0 as usize] = true;
        let mut newly = Vec::new();
        for &s in graph.succs(id) {
            let d = &mut self.indeg[s.0 as usize];
            *d -= 1;
            if *d == 0 {
                newly.push(s);
            }
        }
        newly
    }

    /// Has the task completed?
    pub fn is_done(&self, id: TaskId) -> bool {
        self.done[id.0 as usize]
    }

    /// Have all tasks completed?
    pub fn all_done(&self) -> bool {
        self.done.iter().all(|&d| d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> TaskGraph {
        // a -> b, c -> d
        TaskGraph::new(vec![
            TaskSpec::new("a", "k").output("A", 10),
            TaskSpec::new("b", "k").input("A", 10).output("B", 10),
            TaskSpec::new("c", "k").input("A", 10).output("C", 10),
            TaskSpec::new("d", "k")
                .input("B", 10)
                .input("C", 10)
                .output("D", 10),
        ])
        .expect("valid diamond")
    }

    #[test]
    fn dag_edges_derived_from_data() {
        let g = diamond();
        assert_eq!(g.preds(TaskId(0)), &[]);
        assert_eq!(g.preds(TaskId(1)), &[TaskId(0)]);
        assert_eq!(g.preds(TaskId(3)), &[TaskId(1), TaskId(2)]);
        assert_eq!(g.succs(TaskId(0)), &[TaskId(1), TaskId(2)]);
        assert_eq!(g.producer_of("C"), Some(TaskId(2)));
        assert_eq!(g.producer_of("external"), None);
    }

    #[test]
    fn duplicate_producer_rejected() {
        let err = TaskGraph::new(vec![
            TaskSpec::new("a", "k").output("X", 1),
            TaskSpec::new("b", "k").output("X", 1),
        ]);
        assert_eq!(
            err.unwrap_err(),
            SchedError::DuplicateProducer { array: "X".into() }
        );
    }

    #[test]
    fn cycle_rejected() {
        let err = TaskGraph::new(vec![
            TaskSpec::new("a", "k").input("Y", 1).output("X", 1),
            TaskSpec::new("b", "k").input("X", 1).output("Y", 1),
        ]);
        assert_eq!(err.unwrap_err(), SchedError::Cycle);
    }

    #[test]
    fn external_inputs_have_no_edge() {
        let g = TaskGraph::new(vec![TaskSpec::new("m", "k")
            .input("file_on_disk", 100)
            .output("Y", 10)])
        .expect("valid");
        assert_eq!(g.preds(TaskId(0)), &[]);
    }

    #[test]
    fn topo_order_respects_deps() {
        let g = diamond();
        let order = g.topo_order().expect("acyclic");
        let pos: HashMap<TaskId, usize> = order.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        for id in g.ids() {
            for &p in g.preds(id) {
                assert!(pos[&p] < pos[&id]);
            }
        }
        assert_eq!(order.len(), 4);
    }

    #[test]
    fn ready_tracker_progression() {
        let g = diamond();
        let mut rt = ReadyTracker::new(&g);
        assert_eq!(rt.initially_ready(), vec![TaskId(0)]);
        let newly = rt.complete(&g, TaskId(0));
        assert_eq!(newly, vec![TaskId(1), TaskId(2)]);
        assert!(rt.complete(&g, TaskId(1)).is_empty(), "d still blocked");
        assert_eq!(rt.complete(&g, TaskId(2)), vec![TaskId(3)]);
        assert!(!rt.all_done());
        rt.complete(&g, TaskId(3));
        assert!(rt.all_done());
    }

    #[test]
    #[should_panic(expected = "completed twice")]
    fn double_completion_panics() {
        let g = diamond();
        let mut rt = ReadyTracker::new(&g);
        rt.complete(&g, TaskId(0));
        rt.complete(&g, TaskId(0));
    }

    #[test]
    fn self_input_no_self_loop() {
        // A task may list its own output as input (in-place style); no edge.
        let g = TaskGraph::new(vec![TaskSpec::new("a", "k").input("X", 1).output("X", 1)])
            .expect("valid");
        assert!(g.preds(TaskId(0)).is_empty());
    }

    #[test]
    fn gated_inputs_have_no_edge_but_need_a_capable_producer() {
        use crate::progress::Timestamp;
        let g = TaskGraph::new(vec![
            TaskSpec::new("x_1", "sum")
                .output("x_1", 8)
                .at(Timestamp::new(1, 0)),
            TaskSpec::new("p_2", "multiply")
                .input_gated("x_1", 8, Timestamp::new(1, 0))
                .output("p_2", 8),
        ])
        .expect("valid gated graph");
        assert_eq!(g.preds(TaskId(1)), &[], "gate derives no DAG edge");
        assert_eq!(
            g.gates(TaskId(1)).collect::<Vec<_>>(),
            [Timestamp::new(1, 0)]
        );
        assert!(g.is_timed());
    }

    #[test]
    fn gate_without_capable_producer_rejected() {
        use crate::progress::Timestamp;
        // Producer untimed: closing the gate proves nothing about the seal.
        let err = TaskGraph::new(vec![
            TaskSpec::new("x_1", "sum").output("x_1", 8),
            TaskSpec::new("p_2", "multiply")
                .input_gated("x_1", 8, Timestamp::new(1, 0))
                .output("p_2", 8),
        ]);
        assert!(matches!(err.unwrap_err(), SchedError::BadGate { .. }));
        // Producer timed beyond the gate (wrong chain): also rejected.
        let err = TaskGraph::new(vec![
            TaskSpec::new("x_1", "sum")
                .output("x_1", 8)
                .at(Timestamp::new(1, 1)),
            TaskSpec::new("p_2", "multiply")
                .input_gated("x_1", 8, Timestamp::new(1, 0))
                .output("p_2", 8),
        ]);
        assert!(matches!(err.unwrap_err(), SchedError::BadGate { .. }));
    }

    #[test]
    fn gated_external_input_is_allowed() {
        use crate::progress::Timestamp;
        // x_0 is staged externally; the gate closes once the frontier of
        // chain 0 moves past iteration 0, which holds zero capabilities.
        let g = TaskGraph::new(vec![TaskSpec::new("p_1", "multiply")
            .input_gated("x_0", 8, Timestamp::new(0, 0))
            .output("p_1", 8)])
        .expect("external gated input");
        assert_eq!(g.preds(TaskId(0)), &[]);
    }

    #[test]
    fn builder_accessors() {
        let t = TaskSpec::new("n", "mul")
            .input("A", 5)
            .input("B", 7)
            .output("C", 3)
            .flops(99)
            .splittable();
        assert_eq!(t.input_bytes(), 12);
        assert_eq!(t.flops, 99);
        assert!(t.splittable);
        assert_eq!(t.kind, "mul");
    }
}
