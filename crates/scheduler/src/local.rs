//! The local scheduler: per-node ordering, splitting, prefetching.
//!
//! "The local scheduler on each node receives tasks from the global
//! scheduler, and splits them (if possible) to match the parallelism
//! available on the node. All tasks that do not have any unprocessed
//! predecessors are marked as ready. The local scheduler periodically
//! queries the state of the storage to know which data are available in
//! memory and which are not. When a computing filter is free, a task which
//! is ready and whose data input are available in memory is sent to the
//! computing filter. The local scheduler makes sure that there are a given
//! number of ready tasks whose data are in memory by sending sufficient
//! prefetch requests to the storage layer."
//!
//! The data-aware pick (prefer the ready task with the most resident input
//! bytes) is what turns the naive per-iteration sweep of Fig. 5(a) into the
//! back-and-forth traversal of Fig. 5(b): after finishing the last multiply
//! of iteration *i*, the only task with its (large) matrix input resident is
//! the matching multiply of iteration *i+1*, so the next iteration runs
//! backwards "automatically … without requiring any effort or input from the
//! application programmer".

use crate::progress::FrontierOracle;
use crate::task::{ReadyTracker, TaskGraph, TaskId};
use std::collections::HashSet;

/// How the local scheduler orders ready tasks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum OrderPolicy {
    /// Submission (FIFO) order — the "regular" plan of Fig. 5(a); ablation
    /// baseline.
    Fifo,
    /// Prefer ready tasks with the most resident input bytes (ties: FIFO) —
    /// the DOoC behaviour, yielding Fig. 5(b).
    #[default]
    DataAware,
}

/// The storage-map oracle the local scheduler queries. Implemented over a
/// `StorageClient::map()` snapshot in live runs, or over a model in the
/// simulator and tests.
pub trait MemoryOracle {
    /// Is the array fully resident in this node's memory?
    fn resident(&self, array: &str) -> bool;
}

impl MemoryOracle for HashSet<String> {
    fn resident(&self, array: &str) -> bool {
        self.contains(array)
    }
}

/// Per-node scheduling state over the global [`TaskGraph`].
///
/// The driver feeds *cluster-wide* completions via
/// [`LocalScheduler::on_complete`] (remote completions matter: a local task
/// may depend on a remote one) and asks for work with
/// [`LocalScheduler::next_task`].
pub struct LocalScheduler {
    policy: OrderPolicy,
    /// Tasks assigned to this node.
    mine: HashSet<TaskId>,
    tracker: ReadyTracker,
    /// Ready-but-unscheduled local tasks, in readiness order.
    ready: Vec<TaskId>,
    /// Local tasks whose DAG predecessors are done but whose frontier gates
    /// are still open; [`LocalScheduler::release_frontier`] moves them to
    /// `ready` the moment the frontier closes every gate.
    gated: Vec<TaskId>,
    /// Number of outstanding prefetches to aim for.
    prefetch_window: usize,
    /// Tasks handed out but not yet completed.
    running: HashSet<TaskId>,
    /// Node id used when tracing scheduling decisions (-1 when unknown).
    node: i64,
}

impl LocalScheduler {
    /// Creates the scheduler for the node owning `mine`.
    pub fn new(
        graph: &TaskGraph,
        mine: impl IntoIterator<Item = TaskId>,
        policy: OrderPolicy,
    ) -> Self {
        let tracker = ReadyTracker::new(graph);
        let mine: HashSet<TaskId> = mine.into_iter().collect();
        let (gated, ready) = tracker
            .initially_ready()
            .into_iter()
            .filter(|t| mine.contains(t))
            .partition(|&t| graph.gates(t).next().is_some());
        Self {
            policy,
            mine,
            tracker,
            ready,
            gated,
            prefetch_window: 2,
            running: HashSet::new(),
            node: -1,
        }
    }

    /// Sets the prefetch window (number of upcoming tasks whose inputs are
    /// kept warm).
    pub fn with_prefetch_window(mut self, w: usize) -> Self {
        self.prefetch_window = w;
        self
    }

    /// Sets the node id attached to traced scheduling decisions.
    pub fn with_node(mut self, node: i64) -> Self {
        self.node = node;
        self
    }

    /// Records a completion (local or remote); newly ready *local* tasks
    /// enter the ready queue.
    pub fn on_complete(&mut self, graph: &TaskGraph, id: TaskId) {
        self.running.remove(&id);
        for t in self.tracker.complete(graph, id) {
            if self.mine.contains(&t) {
                if graph.gates(t).next().is_some() {
                    self.gated.push(t);
                } else {
                    self.ready.push(t);
                }
            }
        }
    }

    /// Moves gated tasks whose every gate the frontier has closed into the
    /// ready queue; returns how many were released. The runtime calls this
    /// whenever the frontier advances — so task `(i+1, j)` is released the
    /// moment the blocks of `x^i` it reads are behind the frontier, while
    /// iteration `i`'s tail is still executing.
    pub fn release_frontier(&mut self, graph: &TaskGraph, oracle: &dyn FrontierOracle) -> usize {
        let mut released = 0;
        let mut i = 0;
        while i < self.gated.len() {
            let t = self.gated[i];
            if graph.gates(t).all(|g| oracle.closed(g)) {
                self.gated.remove(i);
                self.ready.push(t);
                released += 1;
            } else {
                i += 1;
            }
        }
        if released > 0 && dooc_obs::enabled() {
            dooc_obs::metrics::counter("sched.frontier_releases").add(released as u64);
        }
        released
    }

    /// Number of local tasks still held behind open frontier gates.
    pub fn gated_count(&self) -> usize {
        self.gated.len()
    }

    /// Number of ready local tasks.
    pub fn ready_count(&self) -> usize {
        self.ready.len()
    }

    /// Are all this node's tasks done?
    pub fn idle(&self) -> bool {
        self.ready.is_empty() && self.running.is_empty() && self.gated.is_empty()
    }

    /// Is every task in the graph complete?
    pub fn graph_done(&self) -> bool {
        self.tracker.all_done()
    }

    /// Score of a task under the data-aware policy: resident input bytes.
    fn score(graph: &TaskGraph, oracle: &dyn MemoryOracle, id: TaskId) -> u64 {
        graph
            .task(id)
            .inputs
            .iter()
            .filter(|d| oracle.resident(&d.array))
            .map(|d| d.bytes)
            .sum()
    }

    /// Picks the next task for a free computing filter, or `None` if no
    /// local task is ready. Data-aware policy prefers the ready task with
    /// the most resident input bytes; FIFO takes readiness order.
    pub fn next_task(&mut self, graph: &TaskGraph, oracle: &dyn MemoryOracle) -> Option<TaskId> {
        if self.ready.is_empty() {
            return None;
        }
        let idx = match self.policy {
            OrderPolicy::Fifo => 0,
            OrderPolicy::DataAware => {
                let mut best = 0usize;
                let mut best_score = Self::score(graph, oracle, self.ready[0]);
                for (i, &t) in self.ready.iter().enumerate().skip(1) {
                    let s = Self::score(graph, oracle, t);
                    if s > best_score {
                        best = i;
                        best_score = s;
                    }
                }
                if best != 0 && dooc_obs::enabled() {
                    // Data-aware reorder: a later-ready task jumped the queue
                    // because more of its inputs are resident.
                    dooc_obs::metrics::counter("sched.reorders").inc();
                    let picked = self.ready[best];
                    dooc_obs::instant_arg(
                        dooc_obs::Category::Scheduler,
                        "sched:reorder",
                        self.node,
                        || {
                            format!(
                                "{} over {} ({best_score} resident input bytes)",
                                graph.task(picked).name,
                                graph.task(self.ready[0]).name
                            )
                        },
                    );
                }
                best
            }
        };
        let t = self.ready.remove(idx);
        self.running.insert(t);
        Some(t)
    }

    /// Returns a handed-out task to the *front* of the ready queue: its
    /// worker died (or was crashed by fault injection) before reporting
    /// completion. Replay is safe because task inputs are immutable arrays —
    /// re-reading them yields the bytes the first attempt saw. Returns
    /// `false` (and does nothing) if the task was not running.
    pub fn requeue(&mut self, id: TaskId) -> bool {
        if !self.running.remove(&id) {
            return false;
        }
        self.ready.insert(0, id);
        if dooc_obs::enabled() {
            dooc_obs::metrics::counter("sched.requeues").inc();
            dooc_obs::instant_arg(
                dooc_obs::Category::Scheduler,
                "sched:requeue",
                self.node,
                move || format!("task {} requeued for re-execution", id.0),
            );
        }
        true
    }

    /// The order the scheduler currently *plans* to run its ready tasks in
    /// (best-score first under data-aware). Prefetch planning peeks at this.
    pub fn planned_order(&self, graph: &TaskGraph, oracle: &dyn MemoryOracle) -> Vec<TaskId> {
        let mut order: Vec<TaskId> = self.ready.clone();
        if self.policy == OrderPolicy::DataAware {
            // Stable sort keeps FIFO order among equal scores.
            order.sort_by_key(|&t| std::cmp::Reverse(Self::score(graph, oracle, t)));
        }
        order
    }

    /// Arrays to prefetch now: the non-resident inputs of the next
    /// `prefetch_window` planned tasks, in plan order, deduplicated.
    /// "The local scheduler makes sure that there are a given number of
    /// ready tasks whose data are in memory."
    pub fn prefetch_candidates(&self, graph: &TaskGraph, oracle: &dyn MemoryOracle) -> Vec<String> {
        let mut out = Vec::new();
        let mut seen = HashSet::new();
        for t in self
            .planned_order(graph, oracle)
            .into_iter()
            .take(self.prefetch_window)
        {
            for d in &graph.task(t).inputs {
                if !oracle.resident(&d.array) && seen.insert(d.array.clone()) {
                    out.push(d.array.clone());
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskSpec;

    /// Iterated SpMV on one node, 3 sub-matrices, 2 iterations — the Fig. 5
    /// setting. Tasks: mul(i, v) reads M_v (big) and x_{i-1} (small),
    /// produces p_i_v; sum(i) reads the three p's, produces x_i.
    fn iterated_spmv(iters: u64, k: u64) -> TaskGraph {
        let mut tasks = Vec::new();
        for i in 1..=iters {
            for v in 0..k {
                tasks.push(
                    TaskSpec::new(format!("p_{i}_{v}"), "multiply")
                        .input(format!("M_{v}"), 1000)
                        .input(format!("x_{}", i - 1), 8)
                        .output(format!("p_{i}_{v}"), 8)
                        .flops(100)
                        .splittable(),
                );
            }
            let mut sum = TaskSpec::new(format!("x_{i}"), "sum").output(format!("x_{i}"), 8);
            for v in 0..k {
                sum = sum.input(format!("p_{i}_{v}"), 8);
            }
            tasks.push(sum.flops(10));
        }
        TaskGraph::new(tasks).expect("valid")
    }

    /// Oracle: x vectors always resident; exactly one matrix slot.
    struct OneMatrixSlot {
        loaded: std::cell::RefCell<Option<String>>,
        loads: std::cell::RefCell<u64>,
    }

    impl OneMatrixSlot {
        fn new() -> Self {
            Self {
                loaded: None.into(),
                loads: 0u64.into(),
            }
        }
        fn ensure(&self, arrays: &[String]) {
            for a in arrays {
                if a.starts_with("M_") && self.loaded.borrow().as_deref() != Some(a.as_str()) {
                    *self.loaded.borrow_mut() = Some(a.clone());
                    *self.loads.borrow_mut() += 1;
                }
            }
        }
    }

    impl MemoryOracle for OneMatrixSlot {
        fn resident(&self, array: &str) -> bool {
            if array.starts_with("M_") {
                self.loaded.borrow().as_deref() == Some(array)
            } else {
                true // vectors are small and always cached
            }
        }
    }

    /// Runs the whole graph sequentially on one node and counts matrix
    /// loads under the given policy.
    fn run_and_count_loads(policy: OrderPolicy) -> u64 {
        let g = iterated_spmv(2, 3);
        let oracle = OneMatrixSlot::new();
        let mut ls = LocalScheduler::new(&g, g.ids(), policy);
        while let Some(t) = ls.next_task(&g, &oracle) {
            let arrays: Vec<String> = g.task(t).inputs.iter().map(|d| d.array.clone()).collect();
            oracle.ensure(&arrays);
            ls.on_complete(&g, t);
        }
        assert!(ls.graph_done());
        let loads = *oracle.loads.borrow();
        loads
    }

    #[test]
    fn fifo_reloads_every_iteration() {
        // Fig. 5(a): 3 loads per iteration.
        assert_eq!(run_and_count_loads(OrderPolicy::Fifo), 6);
    }

    #[test]
    fn data_aware_discovers_back_and_forth() {
        // Fig. 5(b): 3 loads for the first iteration, 2 for the second —
        // "this plan is automatically discovered and executed by the DOoC
        // middleware".
        assert_eq!(run_and_count_loads(OrderPolicy::DataAware), 5);
    }

    #[test]
    fn data_aware_never_worse_than_fifo_on_longer_chains() {
        for iters in 2..6 {
            let g = iterated_spmv(iters, 3);
            for policy in [OrderPolicy::Fifo, OrderPolicy::DataAware] {
                let oracle = OneMatrixSlot::new();
                let mut ls = LocalScheduler::new(&g, g.ids(), policy);
                while let Some(t) = ls.next_task(&g, &oracle) {
                    let arrays: Vec<String> =
                        g.task(t).inputs.iter().map(|d| d.array.clone()).collect();
                    oracle.ensure(&arrays);
                    ls.on_complete(&g, t);
                }
                let loads = *oracle.loads.borrow();
                match policy {
                    OrderPolicy::Fifo => assert_eq!(loads, 3 * iters),
                    // 3 + 2*(iters-1): the paper's "3 matrix loads for the
                    // first iteration and 2 for each subsequent".
                    OrderPolicy::DataAware => assert_eq!(loads, 3 + 2 * (iters - 1)),
                }
            }
        }
    }

    #[test]
    fn only_local_tasks_are_offered() {
        let g = iterated_spmv(1, 3);
        // Own only multiply 0 (TaskId 0).
        let oracle: HashSet<String> = HashSet::new();
        let mut ls = LocalScheduler::new(&g, [TaskId(0)], OrderPolicy::Fifo);
        assert_eq!(ls.next_task(&g, &oracle), Some(TaskId(0)));
        assert_eq!(ls.next_task(&g, &oracle), None);
        ls.on_complete(&g, TaskId(0));
        assert!(ls.idle());
        assert!(!ls.graph_done(), "remote tasks still pending");
    }

    #[test]
    fn remote_completions_unblock_local_tasks() {
        let g = iterated_spmv(1, 2); // t0, t1 multiplies; t2 sum
        let oracle: HashSet<String> = HashSet::new();
        let mut ls = LocalScheduler::new(&g, [TaskId(2)], OrderPolicy::Fifo);
        assert_eq!(ls.next_task(&g, &oracle), None, "sum blocked");
        ls.on_complete(&g, TaskId(0));
        ls.on_complete(&g, TaskId(1));
        assert_eq!(ls.next_task(&g, &oracle), Some(TaskId(2)));
    }

    #[test]
    fn prefetch_candidates_follow_plan_order() {
        let g = iterated_spmv(1, 3);
        let mut resident: HashSet<String> = HashSet::new();
        resident.insert("x_0".into());
        resident.insert("M_1".into());
        let ls = LocalScheduler::new(&g, g.ids(), OrderPolicy::DataAware).with_prefetch_window(2);
        let pf = ls.prefetch_candidates(&g, &resident);
        // Plan: p_1_1 first (M_1 resident), then p_1_0 (FIFO among zeros):
        // prefetch M_0 (x_0 already resident, M_1 resident).
        assert_eq!(pf, vec!["M_0".to_string()]);
    }

    #[test]
    fn prefetch_window_limits_candidates() {
        let g = iterated_spmv(1, 3);
        let resident: HashSet<String> = ["x_0".to_string()].into_iter().collect();
        let ls = LocalScheduler::new(&g, g.ids(), OrderPolicy::Fifo).with_prefetch_window(1);
        assert_eq!(
            ls.prefetch_candidates(&g, &resident),
            vec!["M_0".to_string()]
        );
        let ls = LocalScheduler::new(&g, g.ids(), OrderPolicy::Fifo).with_prefetch_window(3);
        assert_eq!(
            ls.prefetch_candidates(&g, &resident),
            vec!["M_0".to_string(), "M_1".to_string(), "M_2".to_string()]
        );
    }

    #[test]
    fn requeue_replays_a_running_task() {
        let g = iterated_spmv(1, 2);
        let oracle: HashSet<String> = HashSet::new();
        let mut ls = LocalScheduler::new(&g, g.ids(), OrderPolicy::Fifo);
        let t = ls.next_task(&g, &oracle).expect("ready");
        assert!(ls.requeue(t), "running task goes back to the queue");
        assert_eq!(
            ls.next_task(&g, &oracle),
            Some(t),
            "requeued task is offered first"
        );
        ls.on_complete(&g, t);
        assert!(!ls.requeue(t), "completed task cannot be requeued");
        assert!(
            !ls.requeue(TaskId(999)),
            "never-scheduled task cannot be requeued"
        );
    }

    #[test]
    fn gated_tasks_wait_for_the_frontier() {
        use crate::progress::{ClosedNever, Timestamp};
        let ts = Timestamp::new(1, 0);
        let g = TaskGraph::new(vec![
            TaskSpec::new("x_1", "sum").output("x_1", 8).at(ts),
            TaskSpec::new("p_2", "multiply")
                .input_gated("x_1", 8, ts)
                .output("p_2", 8),
        ])
        .expect("valid");
        let oracle: HashSet<String> = HashSet::new();
        let mut ls = LocalScheduler::new(&g, g.ids(), OrderPolicy::Fifo);
        let t = ls.next_task(&g, &oracle).expect("sum ready");
        assert_eq!(t, TaskId(0));
        ls.on_complete(&g, t);
        // p_2 has no DAG preds left, but its gate is open: not offered.
        assert_eq!(ls.gated_count(), 1);
        assert_eq!(ls.next_task(&g, &oracle), None);
        assert!(!ls.idle(), "gated work pending");
        assert_eq!(ls.release_frontier(&g, &ClosedNever), 0);
        // Once the frontier closes the gate the task is released.
        struct Closed;
        impl FrontierOracle for Closed {
            fn closed(&self, _ts: Timestamp) -> bool {
                true
            }
        }
        assert_eq!(ls.release_frontier(&g, &Closed), 1);
        assert_eq!(ls.next_task(&g, &oracle), Some(TaskId(1)));
    }

    #[test]
    fn initially_ready_gated_task_starts_in_the_pen() {
        use crate::progress::Timestamp;
        let g = TaskGraph::new(vec![TaskSpec::new("p_1", "multiply")
            .input_gated("x_0", 8, Timestamp::new(0, 0))
            .output("p_1", 8)])
        .expect("valid");
        let oracle: HashSet<String> = HashSet::new();
        let mut ls = LocalScheduler::new(&g, g.ids(), OrderPolicy::Fifo);
        assert_eq!(ls.next_task(&g, &oracle), None, "gate still open");
        assert_eq!(ls.gated_count(), 1);
        struct Closed;
        impl FrontierOracle for Closed {
            fn closed(&self, _ts: Timestamp) -> bool {
                true
            }
        }
        assert_eq!(ls.release_frontier(&g, &Closed), 1);
        assert_eq!(ls.next_task(&g, &oracle), Some(TaskId(0)));
    }

    #[test]
    fn idle_tracks_running_tasks() {
        let g = iterated_spmv(1, 2);
        let oracle: HashSet<String> = HashSet::new();
        let mut ls = LocalScheduler::new(&g, g.ids(), OrderPolicy::Fifo);
        let t = ls.next_task(&g, &oracle).expect("ready");
        assert!(!ls.idle(), "a task is running");
        ls.on_complete(&g, t);
        assert!(!ls.idle(), "more tasks ready");
    }
}
