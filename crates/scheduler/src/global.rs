//! The global scheduler: task-to-node placement.
//!
//! "The global scheduler currently uses the following simple, affinity-based,
//! heuristic … Tasks are sent to the compute nodes which host most of the
//! data required to process them."
//!
//! External inputs (files staged on a node's scratch disk) are located by the
//! caller-supplied map; intermediate arrays are located on the node their
//! producer was assigned to, so placement proceeds in topological order. Ties
//! are broken toward the least-loaded node (by assigned flops) so that a
//! cold-start graph still spreads.

use crate::task::{TaskGraph, TaskId};
use crate::Result;
use dooc_filterstream::NodeId;
use std::collections::HashMap;

/// A complete task-to-node assignment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Placement {
    /// `node_of_task[t]` is the node executing task `t`.
    pub node_of_task: Vec<u64>,
}

impl Placement {
    /// Node assigned to `id`.
    pub fn node(&self, id: TaskId) -> NodeId {
        NodeId(self.node_of_task[id.0 as usize] as usize)
    }

    /// Task ids assigned to `node`.
    pub fn tasks_of(&self, node: NodeId) -> Vec<TaskId> {
        self.node_of_task
            .iter()
            .enumerate()
            .filter(|(_, &n)| n as usize == node.0)
            .map(|(i, _)| TaskId(i as u64))
            .collect()
    }

    /// Bytes of input data each task must pull from other nodes under this
    /// placement (0 when every input is co-located) — the quantity the
    /// affinity heuristic minimizes greedily.
    pub fn remote_input_bytes(
        &self,
        graph: &TaskGraph,
        external_location: &HashMap<String, u64>,
    ) -> u64 {
        let mut total = 0;
        for id in graph.ids() {
            let here = self.node_of_task[id.0 as usize];
            for inp in &graph.task(id).inputs {
                let loc = graph
                    .producer_of(&inp.array)
                    .map(|p| self.node_of_task[p.0 as usize])
                    .or_else(|| external_location.get(&inp.array).copied());
                if let Some(loc) = loc {
                    if loc != here {
                        total += inp.bytes;
                    }
                }
            }
        }
        total
    }
}

/// Affinity-based placement (the paper's heuristic).
///
/// `external_location` maps file-backed array names to the node hosting
/// them; arrays absent from both the graph and the map contribute no
/// affinity (they can be fetched from anywhere).
pub fn assign_affinity(
    graph: &TaskGraph,
    external_location: &HashMap<String, u64>,
    nnodes: u64,
) -> Result<Placement> {
    assert!(nnodes > 0, "need at least one node");
    let _span = dooc_obs::enabled()
        .then(|| dooc_obs::span(dooc_obs::Category::Scheduler, "sched:assign", -1));
    let order = graph.topo_order()?;
    let mut node_of_task = vec![0u64; graph.len()];
    let mut load = vec![0u64; nnodes as usize]; // assigned flops per node
    for id in order {
        let t = graph.task(id);
        if let Some(pin) = t.pin {
            assert!(pin < nnodes, "task {id} pinned to nonexistent node {pin}");
            node_of_task[id.0 as usize] = pin;
            load[pin as usize] += t.flops.max(1);
            continue;
        }
        let mut bytes_on = vec![0u64; nnodes as usize];
        for inp in &t.inputs {
            let loc = graph
                .producer_of(&inp.array)
                .filter(|p| *p != id)
                .map(|p| node_of_task[p.0 as usize])
                .or_else(|| external_location.get(&inp.array).copied());
            if let Some(loc) = loc {
                if loc < nnodes {
                    bytes_on[loc as usize] += inp.bytes;
                }
            }
        }
        // Argmax affinity; ties toward the least-loaded node.
        let best = (0..nnodes)
            .max_by(|&a, &b| {
                bytes_on[a as usize]
                    .cmp(&bytes_on[b as usize])
                    .then(load[b as usize].cmp(&load[a as usize])) // lower load wins
                    .then(b.cmp(&a)) // lowest id wins
            })
            .unwrap_or(0); // non-empty: nnodes > 0 asserted on entry
        node_of_task[id.0 as usize] = best;
        load[best as usize] += t.flops.max(1);
        if dooc_obs::enabled() {
            dooc_obs::metrics::counter("sched.assignments").inc();
            dooc_obs::instant_arg(
                dooc_obs::Category::Scheduler,
                "sched:place",
                best as i64,
                || {
                    format!(
                        "{} -> node {best} ({} affinity bytes)",
                        t.name, bytes_on[best as usize]
                    )
                },
            );
        }
    }
    Ok(Placement { node_of_task })
}

/// Round-robin placement (ablation baseline: ignores data locality).
pub fn assign_round_robin(graph: &TaskGraph, nnodes: u64) -> Placement {
    assert!(nnodes > 0, "need at least one node");
    Placement {
        node_of_task: graph.ids().map(|i| i.0 % nnodes).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskSpec;

    /// Two multiply tasks reading big files on different nodes, one sum
    /// reading both results.
    fn spmv_like() -> (TaskGraph, HashMap<String, u64>) {
        let g = TaskGraph::new(vec![
            TaskSpec::new("m0", "multiply")
                .input("A_0", 1000)
                .input("x", 8)
                .output("p0", 8)
                .flops(100),
            TaskSpec::new("m1", "multiply")
                .input("A_1", 1000)
                .input("x", 8)
                .output("p1", 8)
                .flops(100),
            TaskSpec::new("s", "sum")
                .input("p0", 8)
                .input("p1", 8)
                .output("y", 8)
                .flops(10),
        ])
        .expect("valid");
        let mut loc = HashMap::new();
        loc.insert("A_0".to_string(), 0u64);
        loc.insert("A_1".to_string(), 1u64);
        loc.insert("x".to_string(), 0u64);
        (g, loc)
    }

    #[test]
    fn affinity_follows_large_inputs() {
        let (g, loc) = spmv_like();
        let p = assign_affinity(&g, &loc, 2).expect("placed");
        assert_eq!(p.node(TaskId(0)), NodeId(0), "m0 goes to its matrix");
        assert_eq!(p.node(TaskId(1)), NodeId(1), "m1 goes to its matrix");
        // The sum reads 8 bytes from each side: tie -> less-loaded node.
        let s = p.node(TaskId(2));
        assert!(s.0 < 2);
    }

    #[test]
    fn affinity_beats_round_robin_on_remote_bytes() {
        let (g, loc) = spmv_like();
        let aff = assign_affinity(&g, &loc, 2).expect("placed");
        let rr = assign_round_robin(&g, 2);
        assert!(
            aff.remote_input_bytes(&g, &loc) <= rr.remote_input_bytes(&g, &loc),
            "affinity must not move more bytes than round-robin"
        );
        // In this instance it is strictly better: round-robin puts m1 on
        // node 1? id 1 % 2 == 1 -> actually optimal here; craft a worse one:
        let rr_bytes = rr.remote_input_bytes(&g, &loc);
        let aff_bytes = aff.remote_input_bytes(&g, &loc);
        assert!(aff_bytes <= rr_bytes);
    }

    #[test]
    fn intermediates_locate_at_their_producer() {
        // chain: a (file on node 1) -> t0 -> t1; t1 must follow t0's output.
        let g = TaskGraph::new(vec![
            TaskSpec::new("t0", "k")
                .input("f", 100)
                .output("u", 50)
                .flops(1),
            TaskSpec::new("t1", "k")
                .input("u", 50)
                .output("v", 1)
                .flops(1),
        ])
        .expect("valid");
        let mut loc = HashMap::new();
        loc.insert("f".to_string(), 1u64);
        let p = assign_affinity(&g, &loc, 3).expect("placed");
        assert_eq!(p.node(TaskId(0)), NodeId(1));
        assert_eq!(p.node(TaskId(1)), NodeId(1), "follows the intermediate");
        assert_eq!(p.remote_input_bytes(&g, &loc), 0);
    }

    #[test]
    fn no_affinity_spreads_by_load() {
        // Four independent tasks with no located inputs on 2 nodes: the tie
        // break must alternate (least-loaded).
        let g = TaskGraph::new(
            (0..4)
                .map(|i| {
                    TaskSpec::new(format!("t{i}"), "k")
                        .output(format!("o{i}"), 1)
                        .flops(10)
                })
                .collect(),
        )
        .expect("valid");
        let p = assign_affinity(&g, &HashMap::new(), 2).expect("placed");
        let n0 = p.tasks_of(NodeId(0)).len();
        let n1 = p.tasks_of(NodeId(1)).len();
        assert_eq!(n0 + n1, 4);
        assert_eq!(n0, 2, "balanced: {:?}", p.node_of_task);
    }

    #[test]
    fn tasks_of_partitions_all_tasks() {
        let (g, loc) = spmv_like();
        let p = assign_affinity(&g, &loc, 2).expect("placed");
        let total: usize = (0..2).map(|n| p.tasks_of(NodeId(n)).len()).sum();
        assert_eq!(total, g.len());
    }

    #[test]
    fn pinned_tasks_override_affinity() {
        let g = TaskGraph::new(vec![TaskSpec::new("t", "k")
            .input("big", 1_000_000)
            .output("o", 1)
            .pin_to(2)])
        .expect("valid");
        let mut loc = HashMap::new();
        loc.insert("big".to_string(), 0u64);
        let p = assign_affinity(&g, &loc, 3).expect("placed");
        assert_eq!(p.node(TaskId(0)), NodeId(2), "pin wins over affinity");
    }

    #[test]
    fn round_robin_cycles() {
        let g = TaskGraph::new(
            (0..5)
                .map(|i| TaskSpec::new(format!("t{i}"), "k").output(format!("o{i}"), 1))
                .collect(),
        )
        .expect("valid");
        let p = assign_round_robin(&g, 2);
        assert_eq!(p.node_of_task, vec![0, 1, 0, 1, 0]);
    }
}
