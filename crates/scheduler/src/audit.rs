//! Static task-graph audit: pre-run verification of the properties the
//! runtime otherwise only discovers dynamically (ROADMAP item 2 groundwork).
//!
//! The paper's middleware receives the whole task DAG up front, so almost
//! every runtime failure mode is statically decidable before a single block
//! is read. This module implements three whole-graph analyses over a
//! [`TaskGraph`] and its PR-9 gates/timestamps:
//!
//! * **Progress-protocol stall detection** ([`audit_progress`]) — a static
//!   frontier simulation over `Timestamp {iter, block}` capabilities that
//!   proves every gated task is eventually releasable. The simulation
//!   mirrors the dynamic protocol exactly: a capability is live while its
//!   timestamped task is incomplete, and a gate closes once no live
//!   capability sits at or below it on its block chain. A fixpoint with
//!   incomplete tasks is a stall, and because every stalled task waits on
//!   another incomplete task, the wait-for graph (DAG predecessor edges
//!   plus gated-task → capability-holder edges) always contains a cycle —
//!   reported as [`AuditError::GateCycle`], or [`AuditError::CapabilityLeak`]
//!   when the cycle is a self-loop (a task holding the very capability its
//!   own gate waits for). Gates that synchronize against *nothing* — a
//!   nonzero iteration on a chain where no task ever holds a capability at
//!   or below the gate — release immediately without ordering anything and
//!   are almost certainly a typo'd chain index; they are reported as
//!   [`AuditError::UnanchoredGate`]. Iteration-0 gates are the legitimate
//!   external-`x₀` idiom (the chain holds no capabilities at iteration 0 by
//!   construction) and stay exempt.
//!
//! * **Peak-residency bound** ([`audit_residency`]) — the grant-ledger
//!   high-watermark under worst-case scheduler reordering. A running task
//!   pins its inputs (read pins) and outputs (write grants) for its whole
//!   execution; tasks that can run concurrently are exactly the antichains
//!   of the precedence order (DAG edges *plus* gate-derived edges: the
//!   frontier protocol guarantees every capability holder at or below a
//!   gate completes before the gated task starts). The bound is therefore
//!   the maximum-weight antichain of the order, computed exactly by the
//!   classic min-flow-with-lower-bounds reduction, together with the
//!   longest chain ([`AuditReport::critical_path`]) and the widest
//!   (unweighted) antichain. The runtime compares the per-task component
//!   against the per-node storage budget — a task whose own working set
//!   cannot fit is rejected with [`AuditError::Overcommit`] (no schedule or
//!   eviction policy can save it: pinned blocks are not reclaimable).
//!
//! * **Channel-capacity deadlock freedom** ([`audit_lanes`]) — the runtime
//!   declares its bounded lanes as [`LaneSpec`]s (capacity plus a
//!   worst-case outstanding-message bound derived from the graph). A lane
//!   on a communication cycle (e.g. the worker↔worker broadcast lanes) can
//!   only deadlock if a send blocks, and a send can only block if more
//!   messages than `capacity` are outstanding — so `bound ≤ capacity` on
//!   every cyclic lane proves full-cycle waits impossible. The progress
//!   lane sizing `2·len + 64` becomes a checked fact instead of a comment.
//!
//! [`audit`] runs all three and is what `DoocRuntime::run` calls by default
//! before assembling the cluster (`DOOC_AUDIT=off` opts out).

use crate::progress::Timestamp;
use crate::task::{TaskGraph, TaskId};
use std::collections::{HashMap, HashSet};

/// Exact max-weight-antichain computation runs Dinic on a network of
/// `2n + 2` nodes and `5n + |E|` edges; beyond this many tasks the
/// residency sweep falls back to the conservative sum-of-all-weights bound
/// and flags the report as inexact.
const EXACT_ANTICHAIN_LIMIT: usize = 2048;

/// One bounded lane of the runtime's stream wiring, as declared by the
/// component that sizes it. `bound` is the worst-case number of messages
/// that can be outstanding in the lane before the receiver's next drain;
/// `cyclic` marks lanes on a communication cycle (a broadcast group wired
/// back to itself, or any loop in the stream topology), where a blocked
/// send can participate in a full-cycle wait.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LaneSpec {
    /// Lane name (e.g. `done`, `progress`).
    pub name: String,
    /// Configured channel capacity in messages.
    pub capacity: u64,
    /// Worst-case outstanding messages, derived from the graph.
    pub bound: u64,
    /// Does the lane sit on a communication cycle?
    pub cyclic: bool,
}

/// The audit's per-graph result: the statically derived resource envelope
/// the admission controller of ROADMAP item 2 consumes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuditReport {
    /// Grant-ledger high-watermark in bytes under worst-case reordering:
    /// the maximum-weight antichain of the precedence order, weighting each
    /// task by its pinned working set (distinct input + output arrays).
    pub peak_bytes: u64,
    /// Length (task count) of the longest precedence chain — the minimum
    /// number of sequential steps any schedule needs.
    pub critical_path: usize,
    /// Cardinality of the widest antichain — the maximum number of tasks
    /// any schedule can have in flight simultaneously.
    pub widest_antichain: usize,
    /// The largest single-task working set and the task holding it: the
    /// irreducible per-node residency no eviction policy can shrink.
    pub max_task_bytes: u64,
    /// Name of the task with the largest working set.
    pub max_task: String,
    /// Number of frontier-gated tasks the stall simulation released.
    pub gated_tasks: usize,
    /// `false` when the graph exceeded [`EXACT_ANTICHAIN_LIMIT`] and
    /// `peak_bytes`/`widest_antichain` are the conservative fallback.
    pub exact: bool,
}

/// A statically detected graph defect. Each variant is caught by exactly
/// one analysis; the seeded-bug twins in the tests pin that mapping.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AuditError {
    /// The frontier simulation reached a fixpoint with incomplete tasks
    /// and the wait-for cycle runs through at least two tasks: a gate
    /// waits on a capability whose holder (transitively) waits on the
    /// gated task.
    GateCycle {
        /// Task names along the wait-for cycle, in order.
        cycle: Vec<String>,
    },
    /// A task holds the very capability its own gate waits for (the
    /// wait-for cycle is a self-loop), so the capability can never drop.
    CapabilityLeak {
        /// The self-deadlocked task.
        task: String,
        /// The gate that waits on the task's own capability.
        gate: Timestamp,
    },
    /// A gate at a nonzero iteration on a chain where no task ever holds a
    /// capability at or below it: the gate closes immediately and
    /// synchronizes against nothing (almost certainly a typo'd chain or
    /// iteration index).
    UnanchoredGate {
        /// The gated task.
        task: String,
        /// The gated input array.
        array: String,
        /// The unanchored gate timestamp.
        gate: Timestamp,
    },
    /// A single task's pinned working set exceeds the per-node storage
    /// budget: pinned blocks are not reclaimable, so no schedule or
    /// eviction policy can run this task within budget.
    Overcommit {
        /// The oversized task.
        task: String,
        /// Its working-set bytes (distinct input + output arrays).
        bytes: u64,
        /// The per-node budget it exceeds.
        budget: u64,
    },
    /// A bounded lane on a communication cycle can hold fewer messages
    /// than the graph can leave outstanding, so a full-cycle wait (every
    /// sender blocked on a full lane) is not statically excluded.
    LaneDeadlock {
        /// The undersized lane.
        lane: String,
        /// Its configured capacity.
        capacity: u64,
        /// The worst-case outstanding-message bound that must fit.
        required: u64,
    },
}

impl std::fmt::Display for AuditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuditError::GateCycle { cycle } => {
                write!(f, "progress stall: gate cycle {}", cycle.join(" -> "))
            }
            AuditError::CapabilityLeak { task, gate } => write!(
                f,
                "progress stall: task '{task}' holds the capability its own gate {gate} waits for"
            ),
            AuditError::UnanchoredGate { task, array, gate } => write!(
                f,
                "task '{task}': gate {gate} on input '{array}' synchronizes against nothing \
                 (no capability ever exists at or below it)"
            ),
            AuditError::Overcommit {
                task,
                bytes,
                budget,
            } => write!(
                f,
                "task '{task}' pins {bytes} bytes but the per-node budget is {budget}: \
                 no schedule fits"
            ),
            AuditError::LaneDeadlock {
                lane,
                capacity,
                required,
            } => write!(
                f,
                "lane '{lane}' holds {capacity} messages but the graph can leave {required} \
                 outstanding on a cycle"
            ),
        }
    }
}

impl std::error::Error for AuditError {}

/// Convenience alias for audit results.
pub type AuditResult<T> = std::result::Result<T, AuditError>;

/// Runs all three analyses: progress stalls, the residency sweep checked
/// against `budget` (per-node bytes), and the lane-capacity check. This is
/// the entry point `DoocRuntime::run` gates admission on.
pub fn audit(graph: &TaskGraph, budget: u64, lanes: &[LaneSpec]) -> AuditResult<AuditReport> {
    audit_progress(graph)?;
    let report = audit_residency(graph)?;
    if report.max_task_bytes > budget {
        return Err(AuditError::Overcommit {
            task: report.max_task.clone(),
            bytes: report.max_task_bytes,
            budget,
        });
    }
    audit_lanes(lanes)?;
    Ok(report)
}

/// Is every capability at or below `gate` held by an incomplete task gone?
/// Mirrors `FrontierOracle::closed` over the static capability table.
fn gate_closed(graph: &TaskGraph, done: &[bool], gate: Timestamp) -> bool {
    graph.ids().all(|id| {
        done[id.0 as usize]
            || graph
                .task(id)
                .timestamp
                .is_none_or(|ts| !ts.less_equal(&gate))
    })
}

/// Static frontier simulation: proves every task (gated or not) completes.
///
/// Returns the number of gated tasks on success. On a stall, diagnoses the
/// wait-for cycle (see the module docs) and reports it as
/// [`AuditError::GateCycle`] or [`AuditError::CapabilityLeak`]. Also flags
/// [`AuditError::UnanchoredGate`]s, which do not stall but synchronize
/// against nothing.
pub fn audit_progress(graph: &TaskGraph) -> AuditResult<usize> {
    let n = graph.len();
    // Unanchored gates first: a nonzero-iteration gate must have at least
    // one capability at or below it, otherwise it closes instantly and the
    // gated read races the producer it was meant to wait for.
    for id in graph.ids() {
        for d in &graph.task(id).inputs {
            if let Some(gate) = d.gate {
                let anchored = gate.iter == 0
                    || graph.ids().any(|h| {
                        graph
                            .task(h)
                            .timestamp
                            .is_some_and(|ts| ts.less_equal(&gate))
                    });
                if !anchored {
                    return Err(AuditError::UnanchoredGate {
                        task: graph.task(id).name.clone(),
                        array: d.array.clone(),
                        gate,
                    });
                }
            }
        }
    }

    // Worklist fixpoint: run any task whose predecessors completed and
    // whose gates are closed; completing a timestamped task drops its
    // capability (it is simply no longer live).
    let mut done = vec![false; n];
    let mut remaining = n;
    let mut gated = 0usize;
    for id in graph.ids() {
        if graph.gates(id).next().is_some() {
            gated += 1;
        }
    }
    let mut progressed = true;
    while progressed && remaining > 0 {
        progressed = false;
        for id in graph.ids() {
            let i = id.0 as usize;
            if done[i] {
                continue;
            }
            let preds_done = graph.preds(id).iter().all(|p| done[p.0 as usize]);
            let gates_closed = graph.gates(id).all(|g| gate_closed(graph, &done, g));
            if preds_done && gates_closed {
                done[i] = true;
                remaining -= 1;
                progressed = true;
            }
        }
    }
    if remaining == 0 {
        return Ok(gated);
    }

    // Stall: build the wait-for graph over incomplete tasks and report the
    // cycle it must contain.
    let mut waits: Vec<Vec<usize>> = vec![Vec::new(); n];
    for id in graph.ids() {
        let i = id.0 as usize;
        if done[i] {
            continue;
        }
        for p in graph.preds(id) {
            if !done[p.0 as usize] {
                waits[i].push(p.0 as usize);
            }
        }
        for g in graph.gates(id) {
            if gate_closed(graph, &done, g) {
                continue;
            }
            for h in graph.ids() {
                let j = h.0 as usize;
                if !done[j] && graph.task(h).timestamp.is_some_and(|ts| ts.less_equal(&g)) {
                    if i == j {
                        // Self-loop: the task holds the capability its own
                        // gate waits for.
                        return Err(AuditError::CapabilityLeak {
                            task: graph.task(id).name.clone(),
                            gate: g,
                        });
                    }
                    waits[i].push(j);
                }
            }
        }
    }
    Err(AuditError::GateCycle {
        cycle: find_wait_cycle(graph, &waits, &done),
    })
}

/// Finds a cycle in the wait-for graph (one must exist at a stalled
/// fixpoint: every incomplete task waits on at least one other).
fn find_wait_cycle(graph: &TaskGraph, waits: &[Vec<usize>], done: &[bool]) -> Vec<String> {
    let n = waits.len();
    // Iterative DFS with colors; reconstruct the cycle from the path on a
    // back edge.
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let mut color = vec![Color::White; n];
    for start in 0..n {
        if done[start] || color[start] != Color::White {
            continue;
        }
        let mut path: Vec<usize> = Vec::new();
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        color[start] = Color::Gray;
        path.push(start);
        while let Some(&mut (node, ref mut idx)) = stack.last_mut() {
            if *idx >= waits[node].len() {
                color[node] = Color::Black;
                stack.pop();
                path.pop();
                continue;
            }
            let next = waits[node][*idx];
            *idx += 1;
            match color[next] {
                Color::Gray => {
                    let from = path.iter().position(|&x| x == next).unwrap_or(0);
                    return path[from..]
                        .iter()
                        .map(|&i| graph.task(TaskId(i as u64)).name.clone())
                        .collect();
                }
                Color::White => {
                    color[next] = Color::Gray;
                    path.push(next);
                    stack.push((next, 0));
                }
                Color::Black => {}
            }
        }
    }
    Vec::new()
}

/// A task's pinned working set: distinct input and output arrays, each
/// counted once at its largest declared size. Mirrors the worker's pin
/// behavior — whole-array read views plus windowed write grants — from
/// above (transient pipelined reads pin less, never more).
fn task_weight(graph: &TaskGraph, id: TaskId) -> u64 {
    let t = graph.task(id);
    let mut seen: HashMap<&str, u64> = HashMap::new();
    for d in t.inputs.iter().chain(t.outputs.iter()) {
        let e = seen.entry(d.array.as_str()).or_insert(0);
        *e = (*e).max(d.bytes);
    }
    seen.values().sum()
}

/// Residency sweep: computes the [`AuditReport`] envelope. The precedence
/// order is the DAG plus gate-derived edges (capability holders at or
/// below a gate complete before the gated task starts), so the antichain
/// shrinks soundly when gates serialize iterations.
pub fn audit_residency(graph: &TaskGraph) -> AuditResult<AuditReport> {
    let n = graph.len();
    let weights: Vec<u64> = graph.ids().map(|id| task_weight(graph, id)).collect();
    let (max_task_bytes, max_task) = graph
        .ids()
        .map(|id| (weights[id.0 as usize], graph.task(id).name.clone()))
        .max_by(|a, b| a.0.cmp(&b.0).then_with(|| b.1.cmp(&a.1)))
        .unwrap_or((0, String::new()));
    let gated_tasks = graph
        .ids()
        .filter(|&id| graph.gates(id).next().is_some())
        .count();

    if n == 0 {
        return Ok(AuditReport {
            peak_bytes: 0,
            critical_path: 0,
            widest_antichain: 0,
            max_task_bytes,
            max_task,
            gated_tasks,
            exact: true,
        });
    }

    // Precedence successors: DAG edges plus gate edges.
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for id in graph.ids() {
        for s in graph.succs(id) {
            succs[id.0 as usize].push(s.0 as usize);
        }
    }
    for id in graph.ids() {
        for g in graph.gates(id) {
            for h in graph.ids() {
                if h != id && graph.task(h).timestamp.is_some_and(|ts| ts.less_equal(&g)) {
                    succs[h.0 as usize].push(id.0 as usize);
                }
            }
        }
    }
    for s in &mut succs {
        s.sort_unstable();
        s.dedup();
    }

    // Longest chain by dynamic programming over a topological order of the
    // augmented precedence graph (acyclic: audit_progress ran first in
    // `audit`; standalone callers get a best-effort order).
    let order = topo(&succs);
    let mut depth = vec![1usize; n];
    for &u in order.iter().rev() {
        for &v in &succs[u] {
            depth[u] = depth[u].max(1 + depth[v]);
        }
    }
    let critical_path = depth.iter().copied().max().unwrap_or(0);

    if n > EXACT_ANTICHAIN_LIMIT {
        return Ok(AuditReport {
            peak_bytes: weights.iter().sum(),
            critical_path,
            widest_antichain: n,
            max_task_bytes,
            max_task,
            gated_tasks,
            exact: false,
        });
    }

    // One network, two weightings: the byte-weighted peak and the
    // unit-weighted width share the flow topology.
    let net = AntichainNet::build(n, &succs);
    let peak_bytes = net.max_weight(&weights);
    let ones = vec![1u64; n];
    let widest_antichain = net.max_weight(&ones) as usize;

    Ok(AuditReport {
        peak_bytes,
        critical_path,
        widest_antichain,
        max_task_bytes,
        max_task,
        gated_tasks,
        exact: true,
    })
}

/// Best-effort topological order of an adjacency list (Kahn). Nodes on a
/// cycle (impossible after `audit_progress`) are appended at the end so
/// the sweep still terminates.
fn topo(succs: &[Vec<usize>]) -> Vec<usize> {
    let n = succs.len();
    let mut indeg = vec![0usize; n];
    for s in succs {
        for &v in s {
            indeg[v] += 1;
        }
    }
    let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    let mut head = 0;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        order.push(u);
        for &v in &succs[u] {
            indeg[v] -= 1;
            if indeg[v] == 0 {
                queue.push(v);
            }
        }
    }
    if order.len() < n {
        let placed: HashSet<usize> = order.iter().copied().collect();
        order.extend((0..n).filter(|i| !placed.contains(i)));
    }
    order
}

/// Residual arc capacity standing in for "unbounded" (large enough that
/// no augmenting path ever saturates it, small enough not to overflow
/// when bottlenecks are added back).
const FLOW_INF: u64 = u64::MAX / 4;

/// Min-flow network for maximum-weight-antichain queries over the partial
/// order generated by a DAG, built once per graph and solved once per
/// weight vector (`audit_residency` asks twice: byte weights for the peak,
/// unit weights for the width — the topology is identical).
///
/// Reduction: split every task `v` into `v_in → v_out` with lower bound
/// `w(v)`, wire `u_out → v_in` for every *direct* edge `u → v`, route the
/// trivial feasible flow (Σw, one private chain per task), then push as
/// much flow as possible *back* from sink to source through the residual
/// network. What cannot be pushed back is the min flow, which equals the
/// max-weight antichain (Dilworth).
///
/// Direct edges suffice — no transitive closure: every `v_in → v_out` arc
/// has infinite capacity, so a flow path realizes the chain `u < w` by
/// running *through* any intermediate `v` (and conversely every S→T path
/// visits a chain of the order). Min flow on the DAG therefore equals min
/// flow on its closure, and the network stays at `5n + |E|` edge pairs.
struct AntichainNet {
    n: usize,
    nodes: usize,
    /// Target of each directed residual edge; edge `e ^ 1` reverses `e`.
    edge_to: Vec<usize>,
    /// Capacity template: INF arcs filled in, the two per-task weight arcs
    /// (edge ids `10i` and `10i + 2`) left 0 for [`Self::max_weight`].
    cap_template: Vec<u64>,
    /// CSR adjacency: edge ids incident to `v` (forward and reverse) are
    /// `adj[adj_off[v]..adj_off[v + 1]]`.
    adj_off: Vec<usize>,
    adj: Vec<usize>,
}

impl AntichainNet {
    // Residual network nodes: 0 = S, 1 = T, 2+2i = v_in(i), 3+2i = v_out(i).
    // Max-flow runs from T back to S. Arcs (with residual capacities):
    //   T -> v_out    cap w(v)  (undo the v_out -> T feasible flow)
    //   v_in -> S     cap w(v)  (undo the S -> v_in feasible flow)
    //   v_in -> v_out cap INF   (raise flow above the lower bound)
    //   u_out -> v_in cap INF   (route through a precedence edge)
    //   S -> v_in, v_out -> T cap INF (raise the outer arcs)
    // plus the implicit reverse-residual arcs max-flow maintains itself.
    const S: usize = 0;
    const T: usize = 1;

    fn v_in(i: usize) -> usize {
        2 + 2 * i
    }

    fn v_out(i: usize) -> usize {
        3 + 2 * i
    }

    fn build(n: usize, succs: &[Vec<usize>]) -> Self {
        let nodes = 2 + 2 * n;
        let dag_edges: usize = succs
            .iter()
            .enumerate()
            .map(|(u, vs)| vs.iter().filter(|&&v| v != u).count())
            .sum();
        let pairs = 5 * n + dag_edges;
        let mut edge_to = Vec::with_capacity(2 * pairs);
        let mut cap_template = Vec::with_capacity(2 * pairs);
        let mut edge_from = Vec::with_capacity(2 * pairs);
        let mut push = |a: usize, b: usize, cap: u64| {
            edge_from.push(a);
            edge_to.push(b);
            cap_template.push(cap);
            edge_from.push(b);
            edge_to.push(a);
            cap_template.push(0);
        };
        for i in 0..n {
            push(Self::T, Self::v_out(i), 0); // weight arc, edge id 10i
            push(Self::v_in(i), Self::S, 0); // weight arc, edge id 10i + 2
            push(Self::v_in(i), Self::v_out(i), FLOW_INF);
            push(Self::S, Self::v_in(i), FLOW_INF);
            push(Self::v_out(i), Self::T, FLOW_INF);
        }
        for (u, vs) in succs.iter().enumerate() {
            for &v in vs {
                if u != v {
                    push(Self::v_out(u), Self::v_in(v), FLOW_INF);
                }
            }
        }
        // Counting-sort the edge list into CSR adjacency.
        let mut adj_off = vec![0usize; nodes + 1];
        for &a in &edge_from {
            adj_off[a + 1] += 1;
        }
        for i in 0..nodes {
            adj_off[i + 1] += adj_off[i];
        }
        let mut cursor = adj_off.clone();
        let mut adj = vec![0usize; edge_from.len()];
        for (e, &a) in edge_from.iter().enumerate() {
            adj[cursor[a]] = e;
            cursor[a] += 1;
        }
        Self {
            n,
            nodes,
            edge_to,
            cap_template,
            adj_off,
            adj,
        }
    }

    /// Maximum total `weights` over any antichain of the order. Runs Dinic
    /// on a fresh copy of the capacity template with the per-task lower
    /// bounds set to `weights`, then reads the antichain
    /// `{ v : v_out ∈ R, v_in ∉ R }` (R = residual-reachable from T) off
    /// the final min cut.
    fn max_weight(&self, weights: &[u64]) -> u64 {
        let mut cap = self.cap_template.clone();
        for (i, &w) in weights.iter().enumerate().take(self.n) {
            cap[10 * i] = w;
            cap[10 * i + 2] = w;
        }

        // Dinic max-flow from T to S.
        let mut level = vec![-1i32; self.nodes];
        let mut it = vec![0usize; self.nodes];
        let mut queue: Vec<usize> = Vec::with_capacity(self.nodes);
        let mut path: Vec<usize> = Vec::with_capacity(16); // edge indices
        loop {
            // BFS levels.
            for l in level.iter_mut() {
                *l = -1;
            }
            level[Self::T] = 0;
            queue.clear();
            queue.push(Self::T);
            let mut head = 0;
            while head < queue.len() {
                let u = queue[head];
                head += 1;
                for &e in &self.adj[self.adj_off[u]..self.adj_off[u + 1]] {
                    let v = self.edge_to[e];
                    if cap[e] > 0 && level[v] < 0 {
                        level[v] = level[u] + 1;
                        queue.push(v);
                    }
                }
            }
            if level[Self::S] < 0 {
                break;
            }
            it.copy_from_slice(&self.adj_off[..self.nodes]);
            // Iterative DFS blocking flow.
            loop {
                path.clear();
                let mut node = Self::T;
                let mut advanced = true;
                while node != Self::S && advanced {
                    advanced = false;
                    while it[node] < self.adj_off[node + 1] {
                        let e = self.adj[it[node]];
                        let v = self.edge_to[e];
                        if cap[e] > 0 && level[v] == level[node] + 1 {
                            path.push(e);
                            node = v;
                            advanced = true;
                            break;
                        }
                        it[node] += 1;
                    }
                    if !advanced {
                        break;
                    }
                }
                if node != Self::S {
                    // Dead end: retreat (or no more augmenting paths).
                    match path.pop() {
                        Some(e) => {
                            // The tail node has no admissible arcs; exhaust
                            // the edge that led here and retry from its
                            // origin.
                            let from = self.edge_to[e ^ 1];
                            it[from] += 1;
                            // Reset the walk (simple but correct: path
                            // lengths are short — at most 4 + chain hops).
                            continue;
                        }
                        None => break,
                    }
                }
                let bottleneck = path.iter().map(|&e| cap[e]).min().unwrap_or(0);
                if bottleneck == 0 {
                    break;
                }
                for &e in &path {
                    cap[e] -= bottleneck;
                    cap[e ^ 1] += bottleneck;
                }
            }
        }

        // Min cut: R = reachable from T in the final residual. The antichain
        // is { v : v_out ∈ R, v_in ∉ R }; its weight is Σw − maxflow, which
        // we compute directly from the cut for robustness.
        let mut in_r = vec![false; self.nodes];
        in_r[Self::T] = true;
        queue.clear();
        queue.push(Self::T);
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            for &e in &self.adj[self.adj_off[u]..self.adj_off[u + 1]] {
                let v = self.edge_to[e];
                if cap[e] > 0 && !in_r[v] {
                    in_r[v] = true;
                    queue.push(v);
                }
            }
        }
        (0..self.n)
            .filter(|&i| in_r[Self::v_out(i)] && !in_r[Self::v_in(i)])
            .map(|i| weights[i])
            .sum()
    }
}

/// Lane-capacity deadlock check: every cyclic bounded lane must hold its
/// worst-case outstanding-message bound without a send ever blocking.
pub fn audit_lanes(lanes: &[LaneSpec]) -> AuditResult<()> {
    for lane in lanes {
        if lane.cyclic && lane.bound > lane.capacity {
            return Err(AuditError::LaneDeadlock {
                lane: lane.name.clone(),
                capacity: lane.capacity,
                required: lane.bound,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskSpec;

    fn ts(iter: u32, block: u32) -> Timestamp {
        Timestamp::new(iter, block)
    }

    /// The frontier-mode iterated pattern of `spmv_app`: per iteration a
    /// multiply gated on the previous iteration's vector, then a stamped
    /// sum producing this iteration's vector.
    fn frontier_chain(iters: u32) -> TaskGraph {
        let mut tasks = Vec::new();
        for i in 1..=iters {
            tasks.push(
                TaskSpec::new(format!("p_{i}"), "multiply")
                    .input_gated(format!("x_{}", i - 1), 64, ts(i - 1, 0))
                    .output(format!("p_{i}"), 64),
            );
            tasks.push(
                TaskSpec::new(format!("x_{i}"), "sum")
                    .input(format!("p_{i}"), 64)
                    .output(format!("x_{i}"), 64)
                    .at(ts(i, 0)),
            );
        }
        TaskGraph::new(tasks).expect("valid frontier chain")
    }

    #[test]
    fn frontier_chain_audits_clean() {
        let g = frontier_chain(4);
        let gated = audit_progress(&g).expect("no stall");
        assert_eq!(gated, 4);
        let r = audit_residency(&g).expect("residency");
        assert!(r.exact);
        // Gate edges serialize the iterations: only one iteration's
        // multiply+sum pair can ever be in flight together.
        assert_eq!(r.widest_antichain, 1, "{r:?}");
        assert_eq!(r.critical_path, 8);
        assert_eq!(r.peak_bytes, 128);
        assert_eq!(r.max_task_bytes, 128);
    }

    #[test]
    fn untimed_diamond_antichain() {
        let g = TaskGraph::new(vec![
            TaskSpec::new("a", "k").output("A", 10),
            TaskSpec::new("b", "k").input("A", 10).output("B", 30),
            TaskSpec::new("c", "k").input("A", 10).output("C", 20),
            TaskSpec::new("d", "k")
                .input("B", 30)
                .input("C", 20)
                .output("D", 10),
        ])
        .expect("diamond");
        let r = audit_residency(&g).expect("residency");
        // b (10+30) and c (10+20) run concurrently: 70 bytes pinned.
        assert_eq!(r.peak_bytes, 70, "{r:?}");
        assert_eq!(r.widest_antichain, 2);
        assert_eq!(r.critical_path, 3);
        assert_eq!(r.max_task_bytes, 60, "{r:?}");
        assert_eq!(r.max_task, "d");
    }

    #[test]
    fn independent_tasks_sum() {
        let g = TaskGraph::new(vec![
            TaskSpec::new("a", "k").input("ea", 5).output("A", 5),
            TaskSpec::new("b", "k").input("eb", 7).output("B", 7),
            TaskSpec::new("c", "k").input("ec", 9).output("C", 9),
        ])
        .expect("independent");
        let r = audit_residency(&g).expect("residency");
        assert_eq!(r.peak_bytes, 2 * (5 + 7 + 9));
        assert_eq!(r.widest_antichain, 3);
        assert_eq!(r.critical_path, 1);
    }

    #[test]
    fn duplicate_array_counted_once_in_weight() {
        // In-place style: the same array as input and output pins once.
        let g = TaskGraph::new(vec![TaskSpec::new("a", "k").input("X", 8).output("X", 8)])
            .expect("in-place");
        let r = audit_residency(&g).expect("residency");
        assert_eq!(r.max_task_bytes, 8);
    }

    // --- seeded-bug twins -------------------------------------------------

    /// Seeded bug (stall / gate cycle): two chains, each gated on the
    /// *other* chain's capability — neither gate ever closes.
    fn seeded_gate_cycle() -> TaskGraph {
        TaskGraph::new(vec![
            TaskSpec::new("a", "k")
                .input_gated("xb", 8, ts(1, 1))
                .output("xa", 8)
                .at(ts(1, 0)),
            TaskSpec::new("b", "k")
                .input_gated("xa", 8, ts(1, 0))
                .output("xb", 8)
                .at(ts(1, 1)),
        ])
        .expect("constructible (TaskGraph validation is per-gate, not global)")
    }

    #[test]
    fn gate_cycle_detected() {
        let err = audit_progress(&seeded_gate_cycle()).expect_err("must stall");
        match err {
            AuditError::GateCycle { cycle } => {
                assert_eq!(cycle.len(), 2, "{cycle:?}");
                assert!(cycle.contains(&"a".to_string()) && cycle.contains(&"b".to_string()));
            }
            other => panic!("wrong analysis caught it: {other}"),
        }
    }

    /// Seeded bug (stall / capability leak): a task gated on a timestamp at
    /// or above its *own* capability — it waits for its own completion.
    fn seeded_capability_leak() -> TaskGraph {
        TaskGraph::new(vec![
            TaskSpec::new("x_1", "sum").output("x_1", 8).at(ts(1, 0)),
            TaskSpec::new("x_2", "sum")
                .input_gated("x_1", 8, ts(2, 0))
                .output("x_2", 8)
                .at(ts(2, 0)),
        ])
        .expect("constructible")
    }

    #[test]
    fn capability_leak_detected() {
        let err = audit_progress(&seeded_capability_leak()).expect_err("must stall");
        match err {
            AuditError::CapabilityLeak { task, gate } => {
                assert_eq!(task, "x_2");
                assert_eq!(gate, ts(2, 0));
            }
            other => panic!("wrong analysis caught it: {other}"),
        }
    }

    #[test]
    fn unanchored_gate_detected() {
        // Gate on chain 9 where no capability ever exists: closes
        // immediately, synchronizing nothing.
        let g = TaskGraph::new(vec![
            TaskSpec::new("x_1", "sum").output("x_1", 8).at(ts(1, 0)),
            TaskSpec::new("p_2", "multiply")
                .input_gated("ext", 8, ts(1, 9))
                .output("p_2", 8),
        ])
        .expect("constructible (ext is external)");
        let err = audit_progress(&g).expect_err("unanchored");
        match err {
            AuditError::UnanchoredGate { task, array, gate } => {
                assert_eq!(task, "p_2");
                assert_eq!(array, "ext");
                assert_eq!(gate, ts(1, 9));
            }
            other => panic!("wrong analysis caught it: {other}"),
        }
    }

    #[test]
    fn iteration_zero_gate_is_exempt() {
        // The external-x₀ idiom: gate at iteration 0 holds no capabilities
        // by construction and must audit clean.
        let g = TaskGraph::new(vec![TaskSpec::new("p_1", "multiply")
            .input_gated("x_0", 8, ts(0, 0))
            .output("p_1", 8)
            .at(ts(1, 0))])
        .expect("external gated input");
        assert_eq!(audit_progress(&g).expect("clean"), 1);
    }

    /// Seeded bug (overcommit): a single task pinning more than the budget.
    #[test]
    fn overcommit_detected() {
        let g = TaskGraph::new(vec![TaskSpec::new("big", "k")
            .input("huge", 1 << 20)
            .output("out", 1 << 20)])
        .expect("graph");
        let err = audit(&g, 1 << 20, &[]).expect_err("over budget");
        match err {
            AuditError::Overcommit {
                task,
                bytes,
                budget,
            } => {
                assert_eq!(task, "big");
                assert_eq!(bytes, 2 << 20);
                assert_eq!(budget, 1 << 20);
            }
            other => panic!("wrong analysis caught it: {other}"),
        }
        // Exactly at budget is admitted (the tiny-budget e2e test runs
        // 64-byte working sets against a 64-byte budget).
        assert!(audit(&g, 2 << 20, &[]).is_ok());
    }

    /// Seeded bug (lane deadlock): a cyclic lane sized below its bound.
    #[test]
    fn undersized_cyclic_lane_detected() {
        let lanes = [
            LaneSpec {
                name: "done".into(),
                capacity: 20,
                bound: 16,
                cyclic: true,
            },
            LaneSpec {
                name: "progress".into(),
                capacity: 8,
                bound: 40,
                cyclic: true,
            },
        ];
        let err = audit_lanes(&lanes).expect_err("undersized");
        match err {
            AuditError::LaneDeadlock {
                lane,
                capacity,
                required,
            } => {
                assert_eq!(lane, "progress");
                assert_eq!(capacity, 8);
                assert_eq!(required, 40);
            }
            other => panic!("wrong analysis caught it: {other}"),
        }
        // Acyclic lanes may be undersized (a blocked send cannot cycle).
        let acyclic = [LaneSpec {
            name: "requests".into(),
            capacity: 1,
            bound: 100,
            cyclic: false,
        }];
        assert!(audit_lanes(&acyclic).is_ok());
    }

    #[test]
    fn audit_runs_all_three() {
        let g = frontier_chain(3);
        let lanes = [
            LaneSpec {
                name: "done".into(),
                capacity: g.len() as u64 + 16,
                bound: g.len() as u64,
                cyclic: true,
            },
            LaneSpec {
                name: "progress".into(),
                capacity: 2 * g.len() as u64 + 64,
                bound: 2 * 3 + 1,
                cyclic: true,
            },
        ];
        let r = audit(&g, 1 << 20, &lanes).expect("clean");
        assert_eq!(r.gated_tasks, 3);
        let stall = audit(&seeded_gate_cycle(), 1 << 20, &lanes);
        assert!(matches!(stall, Err(AuditError::GateCycle { .. })));
    }

    #[test]
    fn gate_edges_tighten_the_antichain() {
        // Without the gate edge, p_2 and x_1 look concurrent; the gate
        // orders x_1 (capability at (1,0)) before p_2.
        let g = TaskGraph::new(vec![
            TaskSpec::new("x_1", "sum").output("x_1", 64).at(ts(1, 0)),
            TaskSpec::new("p_2", "multiply")
                .input_gated("x_1", 64, ts(1, 0))
                .output("p_2", 64),
        ])
        .expect("gated pair");
        let r = audit_residency(&g).expect("residency");
        assert_eq!(r.widest_antichain, 1, "{r:?}");
        assert_eq!(r.critical_path, 2);
    }
}
