//! Logical timestamps and the frontier oracle interface (ROADMAP item 4).
//!
//! Iterated solves stamp each vector-block producer with a `(iteration,
//! block)` [`Timestamp`]. Timestamps of the *same* block chain are totally
//! ordered by iteration; timestamps of different blocks are incomparable —
//! the partial order of timely dataflow's `progress` module restricted to
//! per-chain pointstamps. A *frontier* is an antichain of timestamps: for
//! each block chain, the least iteration that still holds an undropped
//! capability. A timestamp is *behind* (closed under) the frontier once
//! every capability at or below it has been dropped, which is exactly when
//! a consumer may read the block that producer sealed.
//!
//! This module holds only the pure vocabulary — the timestamp type, its
//! order, a dense `u64` packing for wire tags and digests, and the
//! [`FrontierOracle`] trait the local scheduler consults when releasing
//! gated tasks. The capability accounting and change-batch plumbing that
//! *implement* the oracle live in `dooc-core::progress` (they need the
//! runtime's lanes); the scheduler stays pure policy.

/// A logical time in an iterated solve: iteration `iter` of vector-block
/// chain `block`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Timestamp {
    /// Iteration number (1-based for produced vectors; 0 is the external
    /// initial vector, which no task produces).
    pub iter: u32,
    /// Vector block (row-block) index the chain is keyed on.
    pub block: u32,
}

impl Timestamp {
    /// Creates a timestamp.
    pub fn new(iter: u32, block: u32) -> Self {
        Self { iter, block }
    }

    /// The partial order: `self ≤ other` iff they are on the same block
    /// chain and `self` is not a later iteration. Cross-block timestamps
    /// are incomparable (neither `≤` holds).
    pub fn less_equal(&self, other: &Timestamp) -> bool {
        self.block == other.block && self.iter <= other.iter
    }

    /// Dense packing for wire tags, digests and map keys:
    /// `iter` in the high half, `block` in the low half.
    pub fn pack(&self) -> u64 {
        ((self.iter as u64) << 32) | self.block as u64
    }

    /// Inverse of [`Timestamp::pack`].
    pub fn unpack(raw: u64) -> Self {
        Self {
            iter: (raw >> 32) as u32,
            block: raw as u32,
        }
    }
}

impl std::fmt::Display for Timestamp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(i{}, b{})", self.iter, self.block)
    }
}

/// The frontier the local scheduler consults before releasing a gated task.
///
/// Implementations track capability counts (one per timestamped producer,
/// dropped when the producer completes and its outputs are sealed) and
/// answer: is `ts` *behind* the frontier — i.e. have all capabilities at or
/// below `ts` on its block chain been dropped? Once `closed(ts)` returns
/// `true` it must never return `false` again (frontiers do not retreat);
/// the model-checker invariant 9 and the shuttle tier both enforce this.
pub trait FrontierOracle {
    /// Is every capability at or below `ts` dropped (so every array sealed
    /// at `ts` is safe to read)?
    fn closed(&self, ts: Timestamp) -> bool;
}

/// The trivial oracle of barriered runs: nothing is ever behind the
/// frontier, so gated inputs would never release. Barrier-mode graphs have
/// no gates, making this the correct (and vacuous) default.
#[derive(Clone, Copy, Debug, Default)]
pub struct ClosedNever;

impl FrontierOracle for ClosedNever {
    fn closed(&self, _ts: Timestamp) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_chain_ordered_by_iteration() {
        let a = Timestamp::new(1, 3);
        let b = Timestamp::new(2, 3);
        assert!(a.less_equal(&b));
        assert!(!b.less_equal(&a));
        assert!(a.less_equal(&a));
    }

    #[test]
    fn cross_chain_incomparable() {
        let a = Timestamp::new(1, 0);
        let b = Timestamp::new(5, 1);
        assert!(!a.less_equal(&b));
        assert!(!b.less_equal(&a));
    }

    #[test]
    fn pack_roundtrips() {
        for ts in [
            Timestamp::new(0, 0),
            Timestamp::new(1, 2),
            Timestamp::new(u32::MAX, 7),
            Timestamp::new(3, u32::MAX),
        ] {
            assert_eq!(Timestamp::unpack(ts.pack()), ts);
        }
    }

    #[test]
    fn pack_orders_iterations_within_chain() {
        // Within one block chain the packed value is monotone in iteration,
        // so packed keys sort in frontier order.
        assert!(Timestamp::new(1, 5).pack() < Timestamp::new(2, 5).pack());
    }

    #[test]
    fn closed_never_is_vacuous() {
        assert!(!ClosedNever.closed(Timestamp::new(0, 0)));
    }
}
