//! DOoC's hierarchical data-aware task scheduler (paper §III-C).
//!
//! "DOoC features a hierarchical data-aware task scheduler … the hierarchy
//! is composed of two levels: *global scheduler* and *local scheduler*. At
//! the coarse level, global scheduler allocates tasks to the computing nodes
//! which have the capabilities to process them. At the fine level, local
//! scheduler decomposes the tasks to expose more parallelism when necessary,
//! and reorders the tasks to minimize the cost of memory transfers."
//!
//! * [`task`] — task specifications (input/output data declarations) and the
//!   DAG derived from them: "The input and output data information is used to
//!   derive a DAG of the tasks." Immutability makes the derivation trivial —
//!   each array has exactly one producer.
//! * [`global`] — the affinity heuristic: "Tasks are sent to the compute
//!   nodes which host most of the data required to process them."
//! * [`local`] — per-node ordering and prefetching: ready-task tracking,
//!   data-aware reordering (which reproduces the back-and-forth traversal of
//!   Fig. 5b without any application input), task splitting, and prefetch
//!   planning against the storage map.
//! * [`audit`] — static pre-run verification over the whole graph: progress
//!   stall detection, peak-residency bounds, and channel-capacity deadlock
//!   freedom, consumed by the runtime as an admission gate.
//!
//! The crate is pure policy — no threads, no I/O — so every scheduling
//! decision is deterministic and unit-testable; the `dooc-core` crate mounts
//! these policies onto the dataflow runtime, and the testbed simulator
//! replays their decisions against a hardware model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod global;
pub mod local;
pub mod progress;
pub mod task;

pub use audit::{audit, AuditError, AuditReport, LaneSpec};
pub use dooc_filterstream::NodeId;
pub use global::{assign_affinity, assign_round_robin, Placement};
pub use local::{LocalScheduler, MemoryOracle, OrderPolicy};
pub use progress::{ClosedNever, FrontierOracle, Timestamp};
pub use task::{DataRef, ReadyTracker, TaskGraph, TaskId, TaskSpec};

/// Errors surfaced by the scheduler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedError {
    /// Two tasks declare the same output array (violates immutability).
    DuplicateProducer {
        /// The array with two producers.
        array: String,
    },
    /// The task graph contains a dependency cycle.
    Cycle,
    /// A task id was out of range.
    UnknownTask(u64),
    /// A gated input's in-graph producer holds no capability at or below
    /// the gate, so closing the gate would not prove the array sealed.
    BadGate {
        /// The gated task's name.
        task: String,
        /// The gated input array.
        array: String,
    },
}

impl std::fmt::Display for SchedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedError::DuplicateProducer { array } => {
                write!(
                    f,
                    "array '{array}' has two producers (immutability violation)"
                )
            }
            SchedError::Cycle => write!(f, "task graph contains a cycle"),
            SchedError::UnknownTask(t) => write!(f, "unknown task id {t}"),
            SchedError::BadGate { task, array } => write!(
                f,
                "task '{task}': gated input '{array}' has a producer with no \
                 capability at or below the gate"
            ),
        }
    }
}

impl std::error::Error for SchedError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, SchedError>;
