//! Property-based tests over the scheduler's invariants: arbitrary layered
//! DAGs, arbitrary completion interleavings, arbitrary placements.

use dooc_scheduler::{
    assign_affinity, assign_round_robin, LocalScheduler, NodeId, OrderPolicy, ReadyTracker,
    TaskGraph, TaskId, TaskSpec,
};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

/// Builds a random layered DAG: `widths[l]` tasks in layer `l`, each task
/// consuming a random subset of the previous layer's outputs.
fn arb_layered_graph() -> impl Strategy<Value = TaskGraph> {
    (proptest::collection::vec(1usize..5, 1..5), any::<u64>()).prop_map(|(widths, seed)| {
        let mut tasks = Vec::new();
        let mut rng = seed;
        let mut next = move || {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            rng >> 33
        };
        let mut prev_outputs: Vec<String> = Vec::new();
        for (l, &w) in widths.iter().enumerate() {
            let mut outs = Vec::new();
            for i in 0..w {
                let name = format!("t{l}_{i}");
                let mut t = TaskSpec::new(&name, "k")
                    .output(format!("o{l}_{i}"), 1 + next() % 100)
                    .flops(1 + next() % 50);
                for o in &prev_outputs {
                    if next() % 2 == 0 {
                        t = t.input(o.clone(), 1 + next() % 100);
                    }
                }
                outs.push(format!("o{l}_{i}"));
                tasks.push(t);
            }
            prev_outputs = outs;
        }
        TaskGraph::new(tasks).expect("layered construction is acyclic")
    })
}

proptest! {
    /// Every generated layered DAG has a valid topological order covering
    /// every task exactly once.
    #[test]
    fn topo_order_is_a_permutation(g in arb_layered_graph()) {
        let order = g.topo_order().expect("acyclic");
        let set: HashSet<TaskId> = order.iter().copied().collect();
        prop_assert_eq!(set.len(), g.len());
        let pos: HashMap<TaskId, usize> =
            order.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        for id in g.ids() {
            for &p in g.preds(id) {
                prop_assert!(pos[&p] < pos[&id]);
            }
        }
    }

    /// Driving the ready tracker to completion in *any* greedy order visits
    /// every task exactly once and never offers a task before its preds.
    #[test]
    fn ready_tracker_exhausts_any_order(g in arb_layered_graph(), pick in any::<u64>()) {
        let mut rt = ReadyTracker::new(&g);
        let mut ready: Vec<TaskId> = rt.initially_ready();
        let mut done: HashSet<TaskId> = HashSet::new();
        let mut rng = pick;
        while !ready.is_empty() {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(99991);
            let idx = (rng >> 33) as usize % ready.len();
            let t = ready.swap_remove(idx);
            for &p in g.preds(t) {
                prop_assert!(done.contains(&p), "{t} offered before {p}");
            }
            done.insert(t);
            ready.extend(rt.complete(&g, t));
        }
        prop_assert_eq!(done.len(), g.len());
        prop_assert!(rt.all_done());
    }

    /// For independent tasks whose inputs each live on a single node (the
    /// SpMV multiply phase), affinity placement achieves *zero* remote input
    /// bytes — the invariant the heuristic is designed around. (On deep
    /// adversarial DAGs a greedy heuristic can lose to any fixed placement;
    /// the paper notes the underlying caching problem is NP-hard.)
    #[test]
    fn affinity_colocates_single_source_tasks(
        ntasks in 1usize..30,
        nnodes in 1u64..5,
        locseed in any::<u64>(),
    ) {
        let mut rng = locseed;
        let mut next = move || {
            rng = rng.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            rng >> 33
        };
        let mut loc = HashMap::new();
        let mut tasks = Vec::new();
        for i in 0..ntasks {
            let node = next() % nnodes;
            let file = format!("f{i}");
            loc.insert(file.clone(), node);
            tasks.push(
                TaskSpec::new(format!("t{i}"), "k")
                    .input(file, 100 + next() % 1000)
                    .output(format!("o{i}"), 8)
                    .flops(1 + next() % 10),
            );
        }
        let g = TaskGraph::new(tasks).expect("independent tasks");
        let aff = assign_affinity(&g, &loc, nnodes).expect("placed");
        prop_assert_eq!(aff.remote_input_bytes(&g, &loc), 0);
        // And it is never worse than round-robin here.
        let rr = assign_round_robin(&g, nnodes);
        prop_assert!(aff.remote_input_bytes(&g, &loc) <= rr.remote_input_bytes(&g, &loc));
    }

    /// A set of local schedulers covering a partition of the graph, fed the
    /// same completion stream, collectively executes every task exactly once
    /// regardless of policy and partitioning.
    #[test]
    fn partitioned_schedulers_cover_graph(
        g in arb_layered_graph(),
        nnodes in 1u64..4,
        policy in prop_oneof![Just(OrderPolicy::Fifo), Just(OrderPolicy::DataAware)],
    ) {
        let placement = assign_round_robin(&g, nnodes);
        let mut schedulers: Vec<LocalScheduler> = (0..nnodes)
            .map(|n| LocalScheduler::new(&g, placement.tasks_of(NodeId(n as usize)), policy))
            .collect();
        let oracle: HashSet<String> = HashSet::new();
        let mut executed: Vec<TaskId> = Vec::new();
        loop {
            let mut progressed = false;
            let mut completed_now = Vec::new();
            for s in schedulers.iter_mut() {
                while let Some(t) = s.next_task(&g, &oracle) {
                    completed_now.push(t);
                    progressed = true;
                }
            }
            for t in completed_now {
                executed.push(t);
                for s in schedulers.iter_mut() {
                    s.on_complete(&g, t);
                }
            }
            if !progressed {
                break;
            }
        }
        let unique: HashSet<TaskId> = executed.iter().copied().collect();
        prop_assert_eq!(executed.len(), g.len(), "every task exactly once");
        prop_assert_eq!(unique.len(), g.len());
        for s in &schedulers {
            prop_assert!(s.graph_done());
        }
    }

    /// Prefetch candidates are always non-resident inputs of ready tasks,
    /// deduplicated.
    #[test]
    fn prefetch_candidates_sound(g in arb_layered_graph(), w in 0usize..6) {
        let oracle: HashSet<String> = HashSet::new();
        let ls = LocalScheduler::new(&g, g.ids(), OrderPolicy::DataAware)
            .with_prefetch_window(w);
        let cands = ls.prefetch_candidates(&g, &oracle);
        let mut seen = HashSet::new();
        for c in &cands {
            prop_assert!(seen.insert(c.clone()), "duplicate candidate {c}");
        }
        // Every candidate is an input of some initially-ready task.
        let ready: HashSet<TaskId> = ReadyTracker::new(&g).initially_ready().into_iter().collect();
        for c in &cands {
            let found = ready.iter().any(|&t| {
                g.task(t).inputs.iter().any(|d| &d.array == c)
            });
            prop_assert!(found, "candidate {c} not an input of any ready task");
        }
    }
}
