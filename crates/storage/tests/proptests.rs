//! Property-based tests of the storage layer's core invariants, driven
//! against the synchronous state machine (no threads, fully deterministic).

use bytes::Bytes;
use dooc_storage::meta::{ArrayMeta, Interval};
use dooc_storage::node::{Action, DiscoveredBlock, NodeConfig, RecoveryPolicy, StorageState};
use dooc_storage::proto::{ClientMsg, IoCmd, IoReply, Reply};
use dooc_storage::rangeset::RangeSet;
use proptest::prelude::*;

fn cfg(budget: u64) -> NodeConfig {
    NodeConfig {
        node: 0,
        nnodes: 1,
        memory_budget: budget,
        seed: 7,
        recovery: RecoveryPolicy::default(),
    }
}

proptest! {
    /// Writing disjoint intervals covering a block, in any order, seals the
    /// block and every read returns exactly the written bytes.
    #[test]
    fn write_any_order_read_back(perm in proptest::sample::subsequence((0..8u64).collect::<Vec<_>>(), 8)) {
        // perm is a subsequence but we need a permutation; derive one by
        // appending the missing items.
        let mut order: Vec<u64> = perm.clone();
        for i in 0..8 {
            if !order.contains(&i) {
                order.push(i);
            }
        }
        let mut st = StorageState::new(cfg(1 << 20), vec![]);
        st.handle_client(ClientMsg::Create {
            req: 0,
            client: 0,
            meta: ArrayMeta::new("a", 64, 64),
        });
        for (step, &i) in order.iter().enumerate() {
            let iv = Interval::new(i * 8, 8);
            let acts = st.handle_client(ClientMsg::WriteReq {
                req: 100 + step as u64,
                client: 0,
                array: "a".into(),
                iv,
            });
            let granted = matches!(
                acts.first(),
                Some(Action::Reply { reply: Reply::WriteGranted { .. }, .. })
            );
            prop_assert!(granted, "grant refused at step {}", step);
            st.handle_client(ClientMsg::ReleaseWrite {
                req: 200 + step as u64,
                client: 0,
                array: "a".into(),
                iv,
                data: Bytes::from(vec![i as u8 + 1; 8]),
            });
        }
        // Full-block read sees each segment's fill byte.
        let acts = st.handle_client(ClientMsg::ReadReq {
            req: 999,
            client: 0,
            array: "a".into(),
            iv: Interval::new(0, 64),
        });
        let data = acts.iter().find_map(|a| match a {
            Action::Reply { reply: Reply::ReadReady { data, .. }, .. } => Some(data.clone()),
            _ => None,
        });
        let data = data.expect("sealed block readable");
        for i in 0..8u64 {
            for b in 0..8 {
                prop_assert_eq!(data[(i * 8 + b) as usize], i as u8 + 1);
            }
        }
    }

    /// No sequence of valid writes can ever double-write a byte: second
    /// grant on any overlapping interval is refused.
    #[test]
    fn no_double_write(a in 0u64..56, la in 1u64..8, b in 0u64..56, lb in 1u64..8) {
        let mut st = StorageState::new(cfg(1 << 20), vec![]);
        st.handle_client(ClientMsg::Create {
            req: 0,
            client: 0,
            meta: ArrayMeta::new("a", 64, 64),
        });
        let g1 = st.handle_client(ClientMsg::WriteReq {
            req: 1,
            client: 0,
            array: "a".into(),
            iv: Interval::new(a, la),
        });
        let first_granted = matches!(
            g1.first(),
            Some(Action::Reply { reply: Reply::WriteGranted { .. }, .. })
        );
        prop_assert!(first_granted);
        let g2 = st.handle_client(ClientMsg::WriteReq {
            req: 2,
            client: 0,
            array: "a".into(),
            iv: Interval::new(b, lb),
        });
        let overlaps = a < b + lb && b < a + la;
        let granted = matches!(
            g2.first(),
            Some(Action::Reply { reply: Reply::WriteGranted { .. }, .. })
        );
        prop_assert_eq!(granted, !overlaps, "a=[{},{}) b=[{},{})", a, a+la, b, b+lb);
    }

    /// Memory accounting: resident bytes never exceed budget + one block
    /// (the transient overshoot before eviction completes), and spills are
    /// issued whenever the budget is exceeded with evictable blocks.
    #[test]
    fn budget_respected_with_spills(nblocks in 2u64..8, budget_blocks in 1u64..4) {
        let bs = 64u64;
        let budget = budget_blocks * bs;
        let mut st = StorageState::new(cfg(budget), vec![]);
        st.handle_client(ClientMsg::Create {
            req: 0,
            client: 0,
            meta: ArrayMeta::new("a", nblocks * bs, bs),
        });
        let mut pending_spills: Vec<(String, u64)> = Vec::new();
        for i in 0..nblocks {
            let iv = Interval::new(i * bs, bs);
            let mut acts = st.handle_client(ClientMsg::WriteReq {
                req: 1,
                client: 0,
                array: "a".into(),
                iv,
            });
            let mut rel = st.handle_client(ClientMsg::ReleaseWrite {
                req: 2,
                client: 0,
                array: "a".into(),
                iv,
                data: Bytes::from(vec![i as u8; bs as usize]),
            });
            acts.append(&mut rel);
            for a in &acts {
                if let Action::Io(IoCmd::Write { array, block, .. }) = a {
                    pending_spills.push((array.clone(), *block));
                }
            }
            // Complete spills immediately (synchronous disk).
            for (array, block) in pending_spills.drain(..) {
                st.handle_io(IoReply::WriteDone {
                    array,
                    block,
                    bytes: bs,
                });
            }
            prop_assert!(
                st.resident_bytes() <= budget + bs,
                "resident {} budget {}",
                st.resident_bytes(),
                budget
            );
        }
    }
}

/// Reads logged before any write are all served after the block seals, in
/// request order, with correct data.
#[test]
fn logged_reads_fifo_served() {
    let mut st = StorageState::new(cfg(1 << 20), vec![]);
    st.handle_client(ClientMsg::Create {
        req: 0,
        client: 0,
        meta: ArrayMeta::new("a", 32, 32),
    });
    for r in 0..5u64 {
        let acts = st.handle_client(ClientMsg::ReadReq {
            req: r,
            client: r,
            array: "a".into(),
            iv: Interval::new(r, 4),
        });
        assert!(acts.is_empty());
    }
    st.handle_client(ClientMsg::WriteReq {
        req: 100,
        client: 0,
        array: "a".into(),
        iv: Interval::new(0, 32),
    });
    let acts = st.handle_client(ClientMsg::ReleaseWrite {
        req: 101,
        client: 0,
        array: "a".into(),
        iv: Interval::new(0, 32),
        data: Bytes::from((0..32u8).collect::<Vec<_>>()),
    });
    let served: Vec<u64> = acts
        .iter()
        .filter_map(|a| match a {
            Action::Reply {
                reply: Reply::ReadReady { req, data },
                ..
            } => {
                assert_eq!(data[0], *req as u8, "data starts at the request offset");
                Some(*req)
            }
            _ => None,
        })
        .collect();
    assert_eq!(served, vec![0, 1, 2, 3, 4]);
}

proptest! {
    /// RangeSet models a set of bytes: insert/covers agree with a bitmap
    /// reference for arbitrary operation sequences.
    #[test]
    fn rangeset_matches_bitmap(ops in proptest::collection::vec((0u64..64, 1u64..16), 1..20)) {
        let mut rs = RangeSet::new();
        let mut bits = [false; 96];
        for (start, len) in ops {
            let end = start + len;
            rs.insert(start, end);
            for i in start..end {
                bits[i as usize] = true;
            }
            // Check covers/intersects on a grid of probes.
            for ps in (0..80u64).step_by(7) {
                for pl in [1u64, 3, 9] {
                    let pe = ps + pl;
                    let all = (ps..pe).all(|i| bits[i as usize]);
                    let any = (ps..pe).any(|i| bits[i as usize]);
                    prop_assert_eq!(rs.covers(ps, pe), all);
                    prop_assert_eq!(rs.intersects(ps, pe), any);
                }
            }
            let total: u64 = bits.iter().filter(|&&b| b).count() as u64;
            prop_assert_eq!(rs.covered(), total);
        }
    }
}

proptest! {
    /// Fault interleavings: a script of injected disk-read failures, applied
    /// to an arbitrary stream of out-of-core reads, never corrupts the grant
    /// ledger. Every request terminates — `ReadReady` (then released) or a
    /// typed [`StorageError::IoFailed`] once the retry budget is spent — and
    /// afterwards the node is back at a quiescent point: no pinned block, no
    /// `loading` flag stuck, no retry queued ([`StorageState::crash_safe`]
    /// checks exactly the ledger + evictability state this satellite is
    /// about).
    #[test]
    fn injected_read_failures_preserve_ledger(
        nblocks in 1u64..4,
        reqs in proptest::collection::vec((0u64..4, 0u64..3), 1..12),
        failures in proptest::collection::vec(any::<bool>(), 1..24),
    ) {
        let bs = 64u64;
        let recovery = RecoveryPolicy {
            io_retry_max: 2,
            io_retry_backoff_ticks: 1,
            fetch_deadline_ticks: None,
            stall_retry_max: None,
        };
        let discovered: Vec<DiscoveredBlock> = (0..nblocks)
            .map(|b| DiscoveredBlock {
                meta: ArrayMeta::new("m", nblocks * bs, bs),
                block: b,
            })
            .collect();
        let mut st = StorageState::new(
            NodeConfig {
                node: 0,
                nnodes: 1,
                memory_budget: 1 << 20,
                seed: 7,
                recovery,
            },
            discovered,
        );

        // The failure script decides each emitted `IoCmd::Read`'s fate.
        let mut script = failures.iter().cycle();
        let mut answered = vec![0usize; reqs.len()];
        let mut queue: std::collections::VecDeque<Action> = Default::default();
        let mut drive = |st: &mut StorageState,
                         queue: &mut std::collections::VecDeque<Action>,
                         answered: &mut [usize],
                         acts: Vec<Action>| {
            queue.extend(acts);
            let mut steps = 0usize;
            while let Some(act) = queue.pop_front() {
                steps += 1;
                assert!(steps < 10_000, "action cascade did not terminate");
                match act {
                    Action::Io(IoCmd::Read { array, block, len }) => {
                        let reply = if *script.next().expect("cyclic") {
                            IoReply::Error {
                                array,
                                block,
                                message: "injected read failure".into(),
                            }
                        } else {
                            IoReply::ReadDone {
                                array,
                                block,
                                data: Bytes::from(vec![block as u8 + 1; len as usize]),
                            }
                        };
                        queue.extend(st.handle_io(reply));
                    }
                    Action::Io(_) => {} // spill/persist traffic: irrelevant here
                    Action::Reply { reply: Reply::ReadReady { req, data }, .. } => {
                        answered[req as usize] += 1;
                        let (blk, _) = reqs[req as usize];
                        let block = blk % nblocks;
                        assert_eq!(data[0], block as u8 + 1, "read served wrong block");
                        let rel = st.handle_client(ClientMsg::ReleaseRead {
                            array: "m".into(),
                            iv: Interval::new(block * bs, bs),
                        });
                        queue.extend(rel);
                    }
                    Action::Reply { reply: Reply::Err { req, error }, .. } => {
                        answered[req as usize] += 1;
                        assert!(
                            matches!(error, dooc_storage::StorageError::IoFailed(_)),
                            "read failure must surface as IoFailed, got {error:?}"
                        );
                    }
                    Action::Reply { .. } | Action::Peer { .. } => {}
                }
            }
        };

        for (req, &(blk, client)) in reqs.iter().enumerate() {
            let block = blk % nblocks;
            let acts = st.handle_client(ClientMsg::ReadReq {
                req: req as u64,
                client,
                array: "m".into(),
                iv: Interval::new(block * bs, bs),
            });
            drive(&mut st, &mut queue, &mut answered, acts);
        }
        // Drain the recovery clock: backoff retries must either succeed or
        // exhaust the budget — never leave the node needing ticks forever.
        let mut ticks = 0;
        while st.needs_tick() {
            ticks += 1;
            prop_assert!(ticks < 1_000, "recovery clock never quiesced");
            let acts = st.on_tick();
            drive(&mut st, &mut queue, &mut answered, acts);
        }

        for (req, n) in answered.iter().enumerate() {
            prop_assert_eq!(*n, 1, "request {} answered {} times", req, n);
        }
        // Ledger clean: no pins, no write grants, no loading/spilling block,
        // no parked waiter, nothing unevictable.
        prop_assert!(
            st.crash_safe(),
            "node not quiescent after fault interleaving (leaked pin/grant/loading state)"
        );
    }
}

/// Startup discovery + read path: discovered blocks are immediately
/// readable through the implicit out-of-core read.
#[test]
fn discovery_read_path() {
    let mut st = StorageState::new(
        cfg(1 << 20),
        vec![
            DiscoveredBlock {
                meta: ArrayMeta::new("m", 128, 64),
                block: 0,
            },
            DiscoveredBlock {
                meta: ArrayMeta::new("m", 128, 64),
                block: 1,
            },
        ],
    );
    let acts = st.handle_client(ClientMsg::ReadReq {
        req: 1,
        client: 0,
        array: "m".into(),
        iv: Interval::new(64, 64),
    });
    assert!(matches!(
        &acts[..],
        [Action::Io(IoCmd::Read {
            block: 1,
            len: 64,
            ..
        })]
    ));
}
