//! Property test for the RAII read-guard protocol: however guards are
//! acquired, held, cloned into collections, and dropped, every read pin
//! must be handed back — `outstanding_grants()` returns to zero and the
//! unpinned blocks become evictable.

use bytes::Bytes;
use dooc_filterstream::{FilterContext, Layout, NodeId, Runtime};
use dooc_storage::meta::Interval;
use dooc_storage::proto::BlockAvail;
use dooc_storage::{ReadGuard, StorageClient, StorageCluster};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;

const NBLOCKS: u64 = 4;
const BLOCK: u64 = 64;

/// One step of the driver script: acquire a pin on a block, or drop the
/// oldest / newest held guard.
#[derive(Clone, Copy, Debug)]
enum Step {
    Acquire(u64),
    DropOldest,
    DropNewest,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0..NBLOCKS).prop_map(Step::Acquire),
        Just(Step::DropOldest),
        Just(Step::DropNewest),
    ]
}

fn run_single_node<F>(tag: &str, driver: F)
where
    F: Fn(&mut StorageClient) + Send + Sync + 'static,
{
    let dir: PathBuf =
        std::env::temp_dir().join(format!("dooc-readguard-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("mkdir");
    let mut layout = Layout::new();
    let mut cluster = StorageCluster::build(&mut layout, vec![dir.clone()], 1 << 20, 7);
    let driver = Arc::new(driver);
    let drivers = layout.add_replicated("driver", vec![NodeId(0)], move |_| {
        let driver = Arc::clone(&driver);
        Box::new(
            move |ctx: &mut FilterContext| -> dooc_filterstream::Result<()> {
                let to = ctx.take_output("sreq")?;
                let from = ctx.take_input("srep")?;
                let mut sc = StorageClient::new(to, from, ctx.instance, ctx.instance as u64);
                driver(&mut sc);
                sc.shutdown().ok();
                Ok(())
            },
        )
    });
    cluster.attach_clients(&mut layout, drivers, 1, "sreq", "srep");
    Runtime::run(layout).expect("cluster run");
    std::fs::remove_dir_all(&dir).ok();
}

/// Writes a 4-block array and replays `steps`, keeping held guards in a
/// deque. At the end all remaining guards drop, the grant count must hit
/// zero, and an explicit evict must be able to push every block out of
/// memory (nothing left pinned).
fn check_script(tag: &str, steps: Vec<Step>) {
    run_single_node(tag, move |sc| {
        sc.create("arr", NBLOCKS * BLOCK, BLOCK).expect("create");
        for b in 0..NBLOCKS {
            sc.write(
                "arr",
                Interval::new(b * BLOCK, BLOCK),
                Bytes::from(vec![b as u8; BLOCK as usize]),
            )
            .expect("write");
        }
        let mut held: Vec<ReadGuard> = Vec::new();
        for step in &steps {
            match *step {
                Step::Acquire(b) => {
                    let g = sc
                        .read("arr", Interval::new(b * BLOCK, BLOCK))
                        .expect("read");
                    assert_eq!(g.array(), "arr");
                    assert_eq!(g.interval(), Interval::new(b * BLOCK, BLOCK));
                    assert_eq!(&g[..], &vec![b as u8; BLOCK as usize][..]);
                    held.push(g);
                }
                Step::DropOldest => {
                    if !held.is_empty() {
                        drop(held.remove(0));
                    }
                }
                Step::DropNewest => {
                    held.pop();
                }
            }
            assert_eq!(
                sc.outstanding_grants(),
                held.len() as u64,
                "grant count tracks live guards exactly"
            );
        }
        drop(held);
        assert_eq!(sc.outstanding_grants(), 0, "all pins returned on drop");
        // With zero pins every block must be evictable: spill + evict, then
        // poll the map until no block reports InMemory.
        sc.evict("arr").expect("evict");
        for attempt in 0..200 {
            let resident = sc
                .map()
                .expect("map")
                .into_iter()
                .filter(|e| e.array == "arr" && e.state == BlockAvail::InMemory)
                .count();
            if resident == 0 {
                return;
            }
            if attempt % 20 == 19 {
                // Spills may still be in flight; re-request the eviction.
                sc.evict("arr").expect("re-evict");
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        panic!("blocks still resident after drop + evict: pins leaked");
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn dropped_guards_balance_refcounts(steps in proptest::collection::vec(step_strategy(), 1..24)) {
        check_script("prop", steps);
    }
}

#[test]
fn interleaved_acquire_drop_balances() {
    check_script(
        "fixed",
        vec![
            Step::Acquire(0),
            Step::Acquire(1),
            Step::DropOldest,
            Step::Acquire(2),
            Step::Acquire(3),
            Step::DropNewest,
            Step::Acquire(0),
            Step::DropOldest,
        ],
    );
}
