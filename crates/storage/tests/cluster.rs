//! End-to-end tests of the storage layer running as real filters: per-node
//! storage + I/O filters on the dataflow runtime, driver clients on every
//! node, real scratch directories.

use bytes::Bytes;
use dooc_filterstream::{FilterContext, Layout, NodeId, Runtime};
use dooc_storage::meta::Interval;
use dooc_storage::proto::BlockAvail;
use dooc_storage::{StorageClient, StorageCluster};
use std::path::PathBuf;
use std::sync::Arc;

fn scratch_dirs(tag: &str, n: usize) -> Vec<PathBuf> {
    (0..n)
        .map(|i| {
            let d =
                std::env::temp_dir().join(format!("dooc-cluster-{tag}-{}-{i}", std::process::id()));
            std::fs::remove_dir_all(&d).ok();
            std::fs::create_dir_all(&d).expect("mkdir");
            d
        })
        .collect()
}

fn cleanup(dirs: &[PathBuf]) {
    for d in dirs {
        std::fs::remove_dir_all(d).ok();
    }
}

/// Runs `driver(instance, &mut client)` on every node of a fresh K-node
/// cluster; instance i is placed on node i. Every driver must leave the
/// system quiescent; shutdown is sent automatically when a driver returns.
fn run_cluster<F>(tag: &str, nnodes: usize, budget: u64, driver: F) -> Vec<PathBuf>
where
    F: Fn(usize, &mut StorageClient) + Send + Sync + 'static,
{
    let dirs = scratch_dirs(tag, nnodes);
    run_cluster_in(&dirs, budget, driver);
    dirs
}

/// Same as [`run_cluster`] but over existing scratch directories (for
/// restart-discovery tests).
fn run_cluster_in<F>(dirs: &[PathBuf], budget: u64, driver: F)
where
    F: Fn(usize, &mut StorageClient) + Send + Sync + 'static,
{
    let nnodes = dirs.len();
    let mut layout = Layout::new();
    let mut cluster = StorageCluster::build(&mut layout, dirs.to_vec(), budget, 7);
    let driver = Arc::new(driver);
    let nodes: Vec<NodeId> = (0..nnodes).map(NodeId).collect();
    let drivers = layout.add_replicated("driver", nodes, move |_| {
        let driver = Arc::clone(&driver);
        Box::new(
            move |ctx: &mut FilterContext| -> dooc_filterstream::Result<()> {
                let to = ctx.take_output("sreq")?;
                let from = ctx.take_input("srep")?;
                // attach_clients assigned this declaration base id 0, so the
                // global client id equals the instance index.
                let mut sc = StorageClient::new(to, from, ctx.instance, ctx.instance as u64);
                driver(ctx.instance, &mut sc);
                sc.shutdown().ok();
                Ok(())
            },
        )
    });
    let base = cluster.attach_clients(&mut layout, drivers, nnodes, "sreq", "srep");
    assert_eq!(base, 0);
    Runtime::run(layout).expect("cluster run");
}

#[test]
fn single_node_write_read_roundtrip() {
    let dirs = run_cluster("wr", 1, 1 << 20, |_, sc| {
        sc.create("a", 100, 40).expect("create");
        sc.write("a", Interval::new(0, 40), Bytes::from(vec![1u8; 40]))
            .expect("write b0");
        sc.write("a", Interval::new(40, 40), Bytes::from(vec![2u8; 40]))
            .expect("write b1");
        sc.write("a", Interval::new(80, 20), Bytes::from(vec![3u8; 20]))
            .expect("write b2");
        let d = sc.read("a", Interval::new(40, 40)).expect("read");
        assert_eq!(&d[..], &[2u8; 40]);
        drop(d);
        let d = sc.read("a", Interval::new(90, 10)).expect("tail read");
        assert_eq!(&d[..], &[3u8; 10]);
        drop(d);
        assert_eq!(sc.outstanding_grants(), 0, "guards returned every pin");
    });
    cleanup(&dirs);
}

#[test]
fn cross_node_read_via_peer_fetch() {
    // Node 0 writes; node 1 reads without knowing the geometry.
    let dirs = run_cluster("xnode", 3, 1 << 20, |i, sc| match i {
        0 => {
            sc.create("shared", 64, 32).expect("create");
            sc.write("shared", Interval::new(0, 32), Bytes::from(vec![7u8; 32]))
                .expect("write");
            sc.write("shared", Interval::new(32, 32), Bytes::from(vec![8u8; 32]))
                .expect("write");
            // Stay alive until the reader is done: the reader writes a flag
            // array we wait on (pure dataflow synchronization).
            let d = sc.read("flag", Interval::new(0, 1)).expect("flag");
            assert_eq!(&d[..], &[1u8]);
        }
        1 => {
            // Geometry unknown: first read resolves it via peer probing.
            let d = sc
                .read("shared", Interval::new(0, 32))
                .expect("remote read");
            assert_eq!(&d[..], &[7u8; 32]);
            drop(d);
            let d = sc
                .read("shared", Interval::new(32, 32))
                .expect("remote read 2");
            assert_eq!(&d[..], &[8u8; 32]);
            drop(d);
            let st = sc.stats().expect("stats");
            assert_eq!(st.peer_recv_bytes, 64, "both blocks fetched remotely");
            sc.create("flag", 1, 1).expect("flag create");
            sc.write("flag", Interval::new(0, 1), Bytes::from(vec![1u8]))
                .expect("flag write");
        }
        _ => { /* idle node: exercises not-found probing */ }
    });
    cleanup(&dirs);
}

#[test]
fn read_blocks_until_remote_writer_finishes() {
    // Reader asks BEFORE the writer creates the array on another node; the
    // request must eventually succeed (logged at the writer's home once
    // probing reaches it, or found on a later probe).
    let dirs = run_cluster("order", 2, 1 << 20, |i, sc| match i {
        0 => {
            // Give the reader a head start so its request really is early.
            std::thread::sleep(std::time::Duration::from_millis(100));
            sc.create("late", 16, 16).expect("create");
            sc.write("late", Interval::new(0, 16), Bytes::from(vec![5u8; 16]))
                .expect("write");
            let d = sc.read("done", Interval::new(0, 1)).expect("done flag");
            assert_eq!(&d[..], &[1u8]);
        }
        _ => {
            sc.register("late", 16, 16).expect("register hint");
            match sc.read("late", Interval::new(0, 16)) {
                Ok(d) => {
                    assert_eq!(&d[..], &[5u8; 16]);
                }
                Err(e) => {
                    // Racing all-peers-denied is possible if probing beats
                    // the writer; retry once after it must exist.
                    std::thread::sleep(std::time::Duration::from_millis(300));
                    let d = sc
                        .read("late", Interval::new(0, 16))
                        .unwrap_or_else(|e2| panic!("retry failed: {e} then {e2}"));
                    assert_eq!(&d[..], &[5u8; 16]);
                }
            }
            sc.create("done", 1, 1).expect("create");
            sc.write("done", Interval::new(0, 1), Bytes::from(vec![1u8]))
                .expect("write");
        }
    });
    cleanup(&dirs);
}

#[test]
fn out_of_core_spill_and_reload() {
    // Budget of 64 bytes, two 64-byte blocks: writing the second spills the
    // first; reading the first reloads it from scratch.
    let dirs = run_cluster("ooc", 1, 64, |_, sc| {
        sc.create("big", 128, 64).expect("create");
        sc.write("big", Interval::new(0, 64), Bytes::from(vec![1u8; 64]))
            .expect("write b0");
        sc.write("big", Interval::new(64, 64), Bytes::from(vec![2u8; 64]))
            .expect("write b1");
        // Allow the async spill to land.
        std::thread::sleep(std::time::Duration::from_millis(100));
        let st = sc.stats().expect("stats");
        assert!(st.disk_write_bytes >= 64, "spill happened: {st:?}");
        assert!(st.resident_bytes <= 64, "budget respected: {st:?}");
        let d = sc.read("big", Interval::new(0, 64)).expect("reload");
        assert_eq!(&d[..], &[1u8; 64]);
        drop(d);
        let st = sc.stats().expect("stats");
        assert!(st.disk_read_bytes >= 64, "reload went through disk: {st:?}");
        assert!(st.evictions >= 1);
    });
    cleanup(&dirs);
}

#[test]
fn persist_then_restart_discovers_arrays() {
    let dirs = scratch_dirs("restart", 1);
    run_cluster_in(&dirs, 1 << 20, |_, sc| {
        sc.create("kept", 48, 16).expect("create");
        for b in 0..3u64 {
            sc.write(
                "kept",
                Interval::new(b * 16, 16),
                Bytes::from(vec![b as u8 + 1; 16]),
            )
            .expect("write");
        }
        sc.persist("kept").expect("persist");
    });
    // Second life: a brand-new cluster over the same scratch directory must
    // discover the array and serve it.
    run_cluster_in(&dirs, 1 << 20, |_, sc| {
        let map = sc.map().expect("map");
        let kept: Vec<_> = map.iter().filter(|e| e.array == "kept").collect();
        assert_eq!(kept.len(), 3, "all blocks discovered: {map:?}");
        assert!(kept.iter().all(|e| e.state == BlockAvail::OnDisk));
        let d = sc.read("kept", Interval::new(16, 16)).expect("read");
        assert_eq!(&d[..], &[2u8; 16]);
    });
    cleanup(&dirs);
}

#[test]
fn staged_plain_file_is_readable_as_array() {
    // Simulates the SpMV setup: a sub-matrix file staged into the scratch
    // directory out-of-band becomes a readable single-block array.
    let dirs = scratch_dirs("staged", 2);
    std::fs::write(dirs[1].join("A_0_0.crs"), vec![9u8; 200]).expect("stage");
    run_cluster_in(&dirs, 1 << 20, |i, sc| {
        if i == 0 {
            // Remote read of a file that lives on node 1's disk.
            let d = sc
                .read("A_0_0.crs", Interval::new(0, 200))
                .expect("remote staged read");
            assert_eq!(&d[..], &[9u8; 200]);
        }
    });
    cleanup(&dirs);
}

#[test]
fn delete_propagates_cluster_wide() {
    let dirs = run_cluster("del", 2, 1 << 20, |i, sc| match i {
        0 => {
            sc.create("gone", 16, 16).expect("create");
            sc.write("gone", Interval::new(0, 16), Bytes::from(vec![1u8; 16]))
                .expect("write");
            // Wait for node 1 to read it (it sets a flag), then delete.
            let d = sc.read("flag", Interval::new(0, 1)).expect("flag");
            assert_eq!(&d[..], &[1u8]);
            drop(d);
            sc.delete("gone").expect("delete");
            let err = sc.read("gone", Interval::new(0, 16));
            assert!(err.is_err(), "deleted array unreadable");
        }
        _ => {
            let d = sc.read("gone", Interval::new(0, 16)).expect("read");
            assert_eq!(&d[..], &[1u8; 16]);
            drop(d);
            sc.create("flag", 1, 1).expect("create");
            sc.write("flag", Interval::new(0, 1), Bytes::from(vec![1u8]))
                .expect("write");
        }
    });
    cleanup(&dirs);
}

#[test]
fn prefetch_brings_block_to_memory() {
    let dirs = scratch_dirs("pf", 1);
    std::fs::write(dirs[0].join("mat"), vec![4u8; 128]).expect("stage");
    run_cluster_in(&dirs, 1 << 20, |_, sc| {
        sc.prefetch("mat", Interval::new(0, 128)).expect("prefetch");
        // Poll the map until the block is resident (the local scheduler's
        // pattern: issue prefetches, query the map).
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            let map = sc.map().expect("map");
            if map
                .iter()
                .any(|e| e.array == "mat" && e.state == BlockAvail::InMemory)
            {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "prefetch never landed"
            );
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        // The read is now served from memory without further disk reads.
        let before = sc.stats().expect("stats").disk_read_bytes;
        let d = sc.read("mat", Interval::new(0, 128)).expect("read");
        assert_eq!(&d[..], &[4u8; 128]);
        drop(d);
        let after = sc.stats().expect("stats").disk_read_bytes;
        assert_eq!(before, after, "no extra disk read after prefetch");
    });
    cleanup(&dirs);
}

/// Negative tests: with recovery *disabled*, injected faults must surface
/// as the typed errors of the fault model — never as hangs or panics.
#[cfg(feature = "faultline")]
mod faults {
    use super::*;
    use dooc_faultline as faultline;
    use dooc_storage::node::RecoveryPolicy;
    use dooc_storage::{RetryPolicy, StorageError};

    /// [`run_cluster_in`] with explicit recovery + client retry policies.
    fn run_cluster_faulty<F>(
        dirs: &[PathBuf],
        recovery: RecoveryPolicy,
        retry: RetryPolicy,
        driver: F,
    ) where
        F: Fn(usize, &mut StorageClient) + Send + Sync + 'static,
    {
        let nnodes = dirs.len();
        let mut layout = Layout::new();
        let mut cluster =
            StorageCluster::build_with(&mut layout, dirs.to_vec(), 1 << 20, 7, recovery);
        let driver = Arc::new(driver);
        let nodes: Vec<NodeId> = (0..nnodes).map(NodeId).collect();
        let drivers = layout.add_replicated("driver", nodes, move |_| {
            let driver = Arc::clone(&driver);
            let retry = retry.clone();
            Box::new(
                move |ctx: &mut FilterContext| -> dooc_filterstream::Result<()> {
                    let to = ctx.take_output("sreq")?;
                    let from = ctx.take_input("srep")?;
                    let mut sc = StorageClient::new(to, from, ctx.instance, ctx.instance as u64);
                    sc.set_retry_policy(retry.clone());
                    driver(ctx.instance, &mut sc);
                    sc.shutdown().ok();
                    Ok(())
                },
            )
        });
        cluster.attach_clients(&mut layout, drivers, nnodes, "sreq", "srep");
        Runtime::run(layout).expect("cluster run");
    }

    #[test]
    fn injected_io_error_without_retries_is_io_failed() {
        let _g = faultline::test_gate();
        let dirs = scratch_dirs("neg-ioerr", 1);
        std::fs::write(dirs[0].join("mat"), vec![3u8; 64]).expect("stage");
        faultline::reset();
        faultline::seed(1);
        faultline::configure(
            "storage.io.read",
            faultline::FaultSpec::error().with_prob(1.0),
        );
        faultline::enable();
        run_cluster_faulty(
            &dirs,
            RecoveryPolicy {
                io_retry_max: 0, // retries disabled: the first error is final
                ..RecoveryPolicy::default()
            },
            RetryPolicy::default(),
            |_, sc| {
                let err = sc
                    .read("mat", Interval::new(0, 64))
                    .expect_err("injected I/O error must fail the read");
                assert!(
                    matches!(err, StorageError::IoFailed(_)),
                    "expected typed IoFailed, got {err:?}"
                );
            },
        );
        faultline::reset();
        cleanup(&dirs);
    }

    #[test]
    fn too_short_deadline_surfaces_timeout() {
        let _g = faultline::test_gate();
        faultline::reset();
        let dirs = scratch_dirs("neg-deadline", 1);
        run_cluster_faulty(
            &dirs,
            RecoveryPolicy::default(),
            RetryPolicy {
                deadline: Some(std::time::Duration::from_millis(40)),
                max_retries: 1,
                backoff: std::time::Duration::from_millis(5),
            },
            |_, sc| {
                // Registered but never written: the read parks server-side
                // forever; only the client deadline can end the wait.
                sc.register("ghost", 16, 16).expect("register");
                let err = sc
                    .read("ghost", Interval::new(0, 16))
                    .expect_err("read of never-written data must time out");
                assert!(
                    matches!(err, StorageError::Timeout(_)),
                    "expected typed Timeout, got {err:?}"
                );
            },
        );
        cleanup(&dirs);
    }
}

#[test]
fn many_concurrent_async_reads() {
    // One node, many interleaved outstanding reads (the overlap pattern the
    // local scheduler relies on).
    let dirs = scratch_dirs("async", 1);
    std::fs::write(dirs[0].join("blob"), (0..=255u8).collect::<Vec<u8>>()).expect("stage");
    run_cluster_in(&dirs, 1 << 20, |_, sc| {
        sc.register("blob", 256, 256).expect("register");
        let tickets: Vec<_> = (0..16u64)
            .map(|k| {
                sc.read_async("blob", Interval::new(k * 16, 16))
                    .expect("issue")
            })
            .collect();
        for (k, t) in tickets.into_iter().enumerate().rev() {
            let d = sc.wait_read(t).expect("wait");
            let want: Vec<u8> = (k as u64 * 16..k as u64 * 16 + 16)
                .map(|x| x as u8)
                .collect();
            assert_eq!(&d[..], &want[..]);
            assert_eq!(d.array(), "blob");
            assert_eq!(d.interval(), Interval::new(k as u64 * 16, 16));
        }
        assert_eq!(sc.outstanding_grants(), 0);
    });
    cleanup(&dirs);
}
