//! The storage and I/O filters (paper Fig. 2).
//!
//! [`StorageFilter`] wraps a [`StorageState`] in a dataflow filter: it
//! multiplexes three input ports (client requests, peer messages, I/O
//! completions), feeds them to the state machine, and performs the returned
//! actions on its output ports.
//!
//! [`IoFilter`] is "a separate I/O filter … only connected to the storage
//! filter", turning [`IoCmd`]s into filesystem operations against the node's
//! scratch directory so that "the interactions with the file system [are]
//! completely asynchronous".

use crate::meta::ArrayMeta;
use crate::node::{Action, DiscoveredBlock, NodeConfig, StorageState};
use crate::proto::{ClientMsg, IoCmd, IoReply, PeerMsg};
use bytes::Bytes;
use dooc_filterstream::stream::{SelectEvent, SelectOutcome, StreamSet};
use dooc_filterstream::{Filter, FilterContext, NodeId};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// What a storage filter needs to rebuild its state machine after an
/// injected whole-node crash: its configuration, its scratch directory (for
/// restart discovery) and a journal of the metadata messages it consumed
/// (standing in for the durable metadata log a production deployment would
/// keep). Requests in flight are *not* journaled — crashes are only injected
/// at locally-quiescent points ([`StorageState::crash_safe`]), and clients
/// recover cross-node losses through retries and map re-resolution.
#[cfg(feature = "faultline")]
struct RestartContext {
    cfg: NodeConfig,
    scratch: PathBuf,
    journal: Vec<ClientMsg>,
}

/// Port names used by the storage filter.
pub mod ports {
    /// Input: client requests (addressed fan-in).
    pub const CLIENTS_IN: &str = "clients";
    /// Input: peer messages.
    pub const PEER_IN: &str = "peer_in";
    /// Output: peer messages (addressed, self-loop on the storage filter).
    pub const PEER_OUT: &str = "peer_out";
    /// Input: I/O completions.
    pub const IO_IN: &str = "io_in";
    /// Output: I/O commands (aligned to the node's I/O filter).
    pub const IO_OUT: &str = "io_out";
    /// I/O filter input port.
    pub const IO_CMD: &str = "cmd";
    /// I/O filter output port.
    pub const IO_REPLY: &str = "reply";
}

/// Maps global client ids to (output port, local instance): several client
/// filter *declarations* can share one storage cluster; each declaration gets
/// a contiguous id range and its own reply port.
#[derive(Clone, Debug, Default)]
pub struct ClientPortMap {
    /// (port name, base id, instance count).
    pub entries: Vec<(String, u64, u64)>,
}

impl ClientPortMap {
    /// Resolves a global client id to `(port, local instance)`.
    pub fn resolve(&self, client: u64) -> Option<(&str, usize)> {
        self.entries
            .iter()
            .find(|(_, base, count)| client >= *base && client < base + count)
            .map(|(port, base, _)| (port.as_str(), (client - base) as usize))
    }
}

/// The per-node storage filter.
pub struct StorageFilter {
    state: StorageState,
    ports: Arc<ClientPortMap>,
    #[cfg(feature = "faultline")]
    restart: Option<RestartContext>,
}

impl StorageFilter {
    /// Wraps a prepared state machine.
    pub fn new(state: StorageState, ports: Arc<ClientPortMap>) -> Self {
        Self {
            state,
            ports,
            #[cfg(feature = "faultline")]
            restart: None,
        }
    }

    /// Builds the state machine from `cfg` + scratch-directory discovery and
    /// keeps both around so an injected `storage.node.crash` failpoint can
    /// rebuild the node from scratch (crash-restart recovery).
    pub fn recoverable(cfg: NodeConfig, scratch: PathBuf, ports: Arc<ClientPortMap>) -> Self {
        let discovered = scan_scratch(&scratch).unwrap_or_default();
        let state = StorageState::new(cfg.clone(), discovered);
        #[cfg(not(feature = "faultline"))]
        let _ = (cfg, scratch);
        Self {
            state,
            ports,
            #[cfg(feature = "faultline")]
            restart: Some(RestartContext {
                cfg,
                scratch,
                journal: Vec::new(),
            }),
        }
    }

    /// Consults the `storage.node.crash` failpoint at a locally-quiescent
    /// point and, when it fires, rebuilds the node: fresh state machine,
    /// restart discovery of the scratch directory, metadata journal replay
    /// (replies re-generated during replay are dropped — the clients already
    /// received them in the previous incarnation).
    #[cfg(feature = "faultline")]
    fn maybe_crash(&mut self, node: i64) {
        // Gate first: with injection disarmed this is one relaxed atomic
        // load, not an O(blocks) `crash_safe` scan per filter-loop turn.
        if !dooc_faultline::enabled() {
            return;
        }
        let Some(rc) = self.restart.as_ref() else {
            return;
        };
        if !self.state.crash_safe() {
            return;
        }
        if dooc_faultline::fail::at("storage.node.crash").is_none() {
            return;
        }
        dooc_obs::instant_arg(
            dooc_obs::Category::Fault,
            "storage:node_crash",
            node,
            || format!("node {node}: crash-restart injected"),
        );
        dooc_obs::metrics::counter("storage.node_restarts").inc();
        let discovered = scan_scratch(&rc.scratch).unwrap_or_default();
        let mut st = StorageState::new(rc.cfg.clone(), discovered);
        for msg in &rc.journal {
            let _ = st.handle_client(msg.clone());
        }
        self.state = st;
    }

    fn perform(
        &mut self,
        ctx: &mut FilterContext,
        actions: Vec<Action>,
    ) -> dooc_filterstream::Result<()> {
        for a in actions {
            match a {
                Action::Reply { client, reply } => {
                    let (port, inst) = self
                        .ports
                        .resolve(client)
                        .ok_or_else(|| ctx.error(format!("no client port for id {client}")))?;
                    let port = port.to_string();
                    ctx.output(&port)?.send_to(NodeId(inst), reply.encode())?;
                }
                Action::Peer { node, msg } => {
                    ctx.output(ports::PEER_OUT)?
                        .send_to(NodeId(node as usize), msg.encode())?;
                }
                Action::Io(cmd) => {
                    ctx.output(ports::IO_OUT)?.send(cmd.encode())?;
                }
            }
        }
        Ok(())
    }
}

impl Filter for StorageFilter {
    fn run(&mut self, ctx: &mut FilterContext) -> dooc_filterstream::Result<()> {
        // Own the three input endpoints in one StreamSet: indices 0/1/2 are
        // clients/peers/io for the SelectEvent arms below.
        let mut set = StreamSet::new(vec![
            ctx.take_input(ports::CLIENTS_IN)?,
            ctx.take_input(ports::PEER_IN)?,
            ctx.take_input(ports::IO_IN)?,
        ]);
        loop {
            #[cfg(feature = "faultline")]
            self.maybe_crash(ctx.node.0 as i64);
            // While the recovery clock has work (stalled fetches, read
            // retries in backoff, fetch deadlines), poll with a short
            // timeout and advance it on each tick.
            let timeout = self
                .state
                .needs_tick()
                .then(|| std::time::Duration::from_millis(2));
            let event = match set.event_timeout(timeout) {
                SelectOutcome::Event(ev) => ev,
                SelectOutcome::AllClosed => return Ok(()), // every input closed
                SelectOutcome::Timeout => {
                    let acts = self.state.on_tick();
                    self.perform(ctx, acts)?;
                    continue;
                }
            };
            let node = ctx.node.0 as i64;
            let actions = match event {
                SelectEvent::Buffer(0, buf) => {
                    let _span = dooc_obs::enabled().then(|| {
                        dooc_obs::span(dooc_obs::Category::Storage, "storage:client", node)
                    });
                    let msg = ClientMsg::decode(&buf)
                        .map_err(|e| ctx.error(format!("client decode: {e}")))?;
                    #[cfg(feature = "faultline")]
                    if let Some(rc) = self.restart.as_mut() {
                        // Metadata journal for crash-restart replay.
                        if matches!(msg, ClientMsg::Create { .. } | ClientMsg::Register { .. }) {
                            rc.journal.push(msg.clone());
                        }
                    }
                    self.state.handle_client(msg)
                }
                SelectEvent::Buffer(1, buf) => {
                    let _span = dooc_obs::enabled()
                        .then(|| dooc_obs::span(dooc_obs::Category::Storage, "storage:peer", node));
                    // The sender's node id is embedded in messages that need
                    // it (Fetch carries from_node); other peer messages are
                    // source-agnostic.
                    let msg = PeerMsg::decode(&buf)
                        .map_err(|e| ctx.error(format!("peer decode: {e}")))?;
                    let from = match &msg {
                        PeerMsg::Fetch { from_node, .. } => *from_node,
                        _ => u64::MAX,
                    };
                    self.state.handle_peer(from, msg)
                }
                SelectEvent::Buffer(_, buf) => {
                    let _span = dooc_obs::enabled()
                        .then(|| dooc_obs::span(dooc_obs::Category::Storage, "storage:io", node));
                    let msg =
                        IoReply::decode(&buf).map_err(|e| ctx.error(format!("io decode: {e}")))?;
                    self.state.handle_io(msg)
                }
                SelectEvent::Closed(0) => {
                    // Every client link gone (driver finished or crashed):
                    // implicit shutdown so the cluster can quiesce.
                    self.state.force_local_done()
                }
                SelectEvent::Closed(_) => Vec::new(),
            };
            self.perform(ctx, actions)?;
            if self.state.ready_to_exit() {
                // The whole cluster is quiescent: no peer will fetch again.
                // Close outgoing links (cascading I/O filter exit and, once
                // every node does this, peer-stream closure), then drain.
                ctx.close_output(ports::PEER_OUT);
                ctx.close_output(ports::IO_OUT);
                while set.event().is_some() {}
                return Ok(());
            }
        }
    }
}

/// Separator between array name and block index in scratch file names.
const SEP: char = '@';

fn block_path(scratch: &Path, array: &str, block: u64) -> PathBuf {
    scratch.join(format!("{array}{SEP}{block}"))
}

fn meta_path(scratch: &Path, array: &str) -> PathBuf {
    scratch.join(format!("{array}{SEP}meta"))
}

/// The per-node I/O filter: executes filesystem commands for its storage
/// filter until the command stream closes.
pub struct IoFilter {
    scratch: PathBuf,
}

impl IoFilter {
    /// Creates an I/O filter rooted at `scratch` (created if missing).
    pub fn new(scratch: PathBuf) -> Self {
        Self { scratch }
    }

    fn exec(&self, cmd: IoCmd) -> IoReply {
        // Deterministic fault injection on the async I/O path: an injected
        // error reports the command as failed without touching the disk (the
        // storage node's retry policy takes over); an injected delay models
        // a slow device.
        #[cfg(feature = "faultline")]
        {
            let (fault, site) = match &cmd {
                IoCmd::Read { .. } => (dooc_faultline::fail::at("storage.io.read"), "read"),
                IoCmd::Write { .. } | IoCmd::DeleteFiles { .. } => {
                    (dooc_faultline::fail::at("storage.io.write"), "write")
                }
            };
            match fault {
                Some(dooc_faultline::Fault::Delay(ms)) => {
                    dooc_sync::thread::sleep(std::time::Duration::from_millis(ms));
                }
                Some(_) => {
                    let (array, block) = match &cmd {
                        IoCmd::Read { array, block, .. } | IoCmd::Write { array, block, .. } => {
                            (array.clone(), *block)
                        }
                        IoCmd::DeleteFiles { array } => (array.clone(), u64::MAX),
                    };
                    return IoReply::Error {
                        array,
                        block,
                        message: format!("injected fault at storage.io.{site}"),
                    };
                }
                None => {}
            }
        }
        match cmd {
            IoCmd::Read { array, block, len } => match self.read_block(&array, block, len) {
                Ok(data) => IoReply::ReadDone { array, block, data },
                Err(e) => IoReply::Error {
                    array,
                    block,
                    message: e.to_string(),
                },
            },
            IoCmd::Write {
                array,
                block,
                len,
                block_size,
                data,
            } => match self.write_block(&array, block, len, block_size, &data) {
                Ok(bytes) => IoReply::WriteDone {
                    array,
                    block,
                    bytes,
                },
                Err(e) => IoReply::Error {
                    array,
                    block,
                    message: e.to_string(),
                },
            },
            IoCmd::DeleteFiles { array } => match self.delete_files(&array) {
                Ok(()) => IoReply::WriteDone {
                    array,
                    block: u64::MAX,
                    bytes: 0,
                },
                Err(e) => IoReply::Error {
                    array,
                    block: u64::MAX,
                    message: e.to_string(),
                },
            },
        }
    }

    fn read_block(&self, array: &str, block: u64, len: u64) -> std::io::Result<Bytes> {
        let path = block_path(&self.scratch, array, block);
        let path = if path.exists() {
            path
        } else {
            // Discovered single-file arrays live under their bare name.
            self.scratch.join(array)
        };
        let mut f = std::fs::File::open(&path)?;
        let mut buf = Vec::with_capacity(len as usize);
        f.read_to_end(&mut buf)?;
        if buf.len() as u64 != len {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!(
                    "block file {} has {} bytes, expected {len}",
                    path.display(),
                    buf.len()
                ),
            ));
        }
        Ok(Bytes::from(buf))
    }

    fn write_block(
        &self,
        array: &str,
        block: u64,
        len: u64,
        block_size: u64,
        data: &Bytes,
    ) -> std::io::Result<u64> {
        std::fs::create_dir_all(&self.scratch)?;
        // Geometry sidecar first (idempotent).
        let mpath = meta_path(&self.scratch, array);
        if !mpath.exists() {
            let mut mf = std::fs::File::create(&mpath)?;
            mf.write_all(&len.to_le_bytes())?;
            mf.write_all(&block_size.to_le_bytes())?;
        }
        let path = block_path(&self.scratch, array, block);
        let tmp = path.with_extension("tmp");
        {
            let mut f = std::io::BufWriter::new(std::fs::File::create(&tmp)?);
            f.write_all(data)?;
            f.flush()?;
        }
        std::fs::rename(&tmp, &path)?;
        Ok(data.len() as u64)
    }

    fn delete_files(&self, array: &str) -> std::io::Result<()> {
        if !self.scratch.exists() {
            return Ok(());
        }
        let prefix = format!("{array}{SEP}");
        for entry in std::fs::read_dir(&self.scratch)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if name == array || name.starts_with(&prefix) {
                std::fs::remove_file(entry.path())?;
            }
        }
        Ok(())
    }
}

impl Filter for IoFilter {
    fn run(&mut self, ctx: &mut FilterContext) -> dooc_filterstream::Result<()> {
        while let Some(buf) = ctx.input(ports::IO_CMD)?.recv() {
            let cmd = IoCmd::decode(&buf).map_err(|e| ctx.error(format!("cmd decode: {e}")))?;
            let reply = self.exec(cmd);
            // The storage may already be shutting down; a closed reply
            // stream then just ends this filter.
            if ctx.output(ports::IO_REPLY)?.send(reply.encode()).is_err() {
                return Ok(());
            }
        }
        Ok(())
    }
}

/// Scans a scratch directory at startup and reports every block found, with
/// geometry from sidecars (spilled arrays) or file sizes (externally staged
/// single-file arrays such as the SpMV sub-matrices).
pub fn scan_scratch(dir: &Path) -> std::io::Result<Vec<DiscoveredBlock>> {
    let mut out = Vec::new();
    if !dir.exists() {
        return Ok(out);
    }
    // First pass: sidecars.
    let mut geometry: std::collections::HashMap<String, (u64, u64)> =
        std::collections::HashMap::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if let Some(array) = name.strip_suffix(&format!("{SEP}meta")) {
            let mut f = std::fs::File::open(entry.path())?;
            let mut w = [0u8; 16];
            if f.read_exact(&mut w).is_ok() {
                let (mut lo, mut hi) = ([0u8; 8], [0u8; 8]);
                lo.copy_from_slice(&w[0..8]);
                hi.copy_from_slice(&w[8..16]);
                let len = u64::from_le_bytes(lo);
                let bs = u64::from_le_bytes(hi);
                if bs > 0 {
                    geometry.insert(array.to_string(), (len, bs));
                }
            }
        }
    }
    // Second pass: blocks and single-file arrays.
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if !entry.file_type()?.is_file() {
            continue;
        }
        let name = entry.file_name().to_string_lossy().into_owned();
        match name.rsplit_once(SEP) {
            Some((array, suffix)) => {
                if suffix == "meta" {
                    continue;
                }
                let Ok(block) = suffix.parse::<u64>() else {
                    continue; // stray .tmp or foreign file
                };
                let Some(&(len, bs)) = geometry.get(array) else {
                    continue; // block without sidecar: unusable
                };
                out.push(DiscoveredBlock {
                    meta: ArrayMeta::new(array, len, bs),
                    block,
                });
            }
            None => {
                // Whole-array single-block file.
                let len = entry.metadata()?.len();
                if len == 0 {
                    continue;
                }
                out.push(DiscoveredBlock {
                    meta: ArrayMeta::new(name, len, len),
                    block: 0,
                });
            }
        }
    }
    out.sort_by(|a, b| (&a.meta.name, a.block).cmp(&(&b.meta.name, b.block)));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("dooc-io-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        std::fs::create_dir_all(&d).expect("mkdir");
        d
    }

    #[test]
    fn io_write_then_read_roundtrip() {
        let dir = tmpdir("rt");
        let io = IoFilter::new(dir.clone());
        let data = Bytes::from(vec![7u8; 64]);
        let rep = io.exec(IoCmd::Write {
            array: "arr".into(),
            block: 2,
            len: 300,
            block_size: 64,
            data: data.clone(),
        });
        assert_eq!(
            rep,
            IoReply::WriteDone {
                array: "arr".into(),
                block: 2,
                bytes: 64
            }
        );
        let rep = io.exec(IoCmd::Read {
            array: "arr".into(),
            block: 2,
            len: 64,
        });
        assert_eq!(
            rep,
            IoReply::ReadDone {
                array: "arr".into(),
                block: 2,
                data
            }
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn io_read_missing_is_error() {
        let dir = tmpdir("miss");
        let io = IoFilter::new(dir.clone());
        assert!(matches!(
            io.exec(IoCmd::Read {
                array: "ghost".into(),
                block: 0,
                len: 8
            }),
            IoReply::Error { .. }
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn io_read_length_mismatch_is_error() {
        let dir = tmpdir("len");
        let io = IoFilter::new(dir.clone());
        io.exec(IoCmd::Write {
            array: "a".into(),
            block: 0,
            len: 8,
            block_size: 8,
            data: Bytes::from_static(&[1; 8]),
        });
        assert!(matches!(
            io.exec(IoCmd::Read {
                array: "a".into(),
                block: 0,
                len: 9
            }),
            IoReply::Error { .. }
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scan_finds_spilled_blocks_and_plain_files() {
        let dir = tmpdir("scan");
        let io = IoFilter::new(dir.clone());
        io.exec(IoCmd::Write {
            array: "spilled".into(),
            block: 1,
            len: 100,
            block_size: 64,
            data: Bytes::from(vec![1u8; 36]),
        });
        io.exec(IoCmd::Write {
            array: "spilled".into(),
            block: 0,
            len: 100,
            block_size: 64,
            data: Bytes::from(vec![2u8; 64]),
        });
        std::fs::write(dir.join("plainfile"), vec![5u8; 42]).expect("stage file");
        let found = scan_scratch(&dir).expect("scan");
        assert_eq!(found.len(), 3);
        assert_eq!(found[0].meta.name, "plainfile");
        assert_eq!(found[0].meta.len, 42);
        assert_eq!(found[0].meta.block_size, 42);
        assert_eq!(found[1].meta.name, "spilled");
        assert_eq!(found[1].block, 0);
        assert_eq!(found[2].block, 1);
        assert_eq!(found[1].meta.len, 100);
        assert_eq!(found[1].meta.block_size, 64);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scan_ignores_orphan_blocks_and_empty_files() {
        let dir = tmpdir("orphan");
        std::fs::write(dir.join("orphan@3"), vec![1u8; 8]).expect("write");
        std::fs::write(dir.join("empty"), Vec::<u8>::new()).expect("write");
        let found = scan_scratch(&dir).expect("scan");
        assert!(found.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn delete_files_removes_all_forms() {
        let dir = tmpdir("del");
        let io = IoFilter::new(dir.clone());
        io.exec(IoCmd::Write {
            array: "a".into(),
            block: 0,
            len: 8,
            block_size: 8,
            data: Bytes::from_static(&[1; 8]),
        });
        std::fs::write(dir.join("a"), vec![2u8; 4]).expect("stage");
        std::fs::write(dir.join("ab"), vec![2u8; 4]).expect("stage similar name");
        io.exec(IoCmd::DeleteFiles { array: "a".into() });
        let names: Vec<String> = std::fs::read_dir(&dir)
            .expect("dir")
            .map(|e| e.expect("entry").file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["ab"], "only the unrelated file remains");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn client_port_map_resolution() {
        let m = ClientPortMap {
            entries: vec![("a".into(), 0, 2), ("b".into(), 2, 3)],
        };
        assert_eq!(m.resolve(0), Some(("a", 0)));
        assert_eq!(m.resolve(1), Some(("a", 1)));
        assert_eq!(m.resolve(2), Some(("b", 0)));
        assert_eq!(m.resolve(4), Some(("b", 2)));
        assert_eq!(m.resolve(5), None);
    }
}
