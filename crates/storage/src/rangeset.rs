//! Sets of disjoint byte ranges.
//!
//! Blocks may be written interval-by-interval; a [`RangeSet`] tracks which
//! byte ranges of a block have been *sealed* (write-released) so the storage
//! can answer "is this read interval fully available?" and "is the whole
//! block sealed (and therefore spillable)?".

/// A set of disjoint, coalesced half-open ranges `[start, end)` over `u64`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RangeSet {
    /// Sorted, pairwise-disjoint, non-adjacent ranges.
    ranges: Vec<(u64, u64)>,
}

impl RangeSet {
    /// The empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// A set holding one range (empty if `start >= end`).
    pub fn from_range(start: u64, end: u64) -> Self {
        let mut s = Self::new();
        s.insert(start, end);
        s
    }

    /// Inserts `[start, end)`, coalescing with neighbours. Returns `true` if
    /// any byte was newly covered (i.e. the insert was not fully redundant).
    pub fn insert(&mut self, start: u64, end: u64) -> bool {
        if start >= end {
            return false;
        }
        // Find insertion window: all ranges overlapping or adjacent.
        let lo = self.ranges.partition_point(|&(_, e)| e < start);
        let hi = self.ranges.partition_point(|&(s, _)| s <= end);
        if lo == hi {
            self.ranges.insert(lo, (start, end));
            return true;
        }
        let merged_start = start.min(self.ranges[lo].0);
        let merged_end = end.max(self.ranges[hi - 1].1);
        let newly_covered = {
            let covered: u64 = self.ranges[lo..hi].iter().map(|&(s, e)| e - s).sum();
            merged_end - merged_start > covered
        };
        self.ranges.drain(lo..hi);
        self.ranges.insert(lo, (merged_start, merged_end));
        newly_covered
    }

    /// Removes `[start, end)`, splitting ranges that partially overlap.
    /// Returns `true` if any byte was actually removed.
    pub fn remove(&mut self, start: u64, end: u64) -> bool {
        if start >= end {
            return false;
        }
        // Window of strictly overlapping ranges (adjacency is unaffected).
        let lo = self.ranges.partition_point(|&(_, e)| e <= start);
        let hi = self.ranges.partition_point(|&(s, _)| s < end);
        if lo == hi {
            return false;
        }
        let mut remnants = Vec::with_capacity(2);
        let (first_s, _) = self.ranges[lo];
        let (_, last_e) = self.ranges[hi - 1];
        if first_s < start {
            remnants.push((first_s, start));
        }
        if last_e > end {
            remnants.push((end, last_e));
        }
        self.ranges.splice(lo..hi, remnants);
        true
    }

    /// Splits the set at `point`: returns `(left, right)` where `left`
    /// covers exactly the set's bytes below `point` and `right` those at or
    /// above it. A range straddling `point` is cut in two.
    pub fn split_at(&self, point: u64) -> (Self, Self) {
        let mut left = self.clone();
        left.remove(point, u64::MAX);
        let mut right = self.clone();
        right.remove(0, point);
        (left, right)
    }

    /// Does the set fully cover `[start, end)`?
    pub fn covers(&self, start: u64, end: u64) -> bool {
        if start >= end {
            return true;
        }
        let i = self.ranges.partition_point(|&(_, e)| e <= start);
        match self.ranges.get(i) {
            Some(&(s, e)) => s <= start && end <= e,
            None => false,
        }
    }

    /// Does the set intersect `[start, end)` at all?
    pub fn intersects(&self, start: u64, end: u64) -> bool {
        if start >= end {
            return false;
        }
        let i = self.ranges.partition_point(|&(_, e)| e <= start);
        match self.ranges.get(i) {
            Some(&(s, _)) => s < end,
            None => false,
        }
    }

    /// Total number of covered bytes.
    pub fn covered(&self) -> u64 {
        self.ranges.iter().map(|&(s, e)| e - s).sum()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// The coalesced ranges, sorted.
    pub fn ranges(&self) -> &[(u64, u64)] {
        &self.ranges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_cover() {
        let mut s = RangeSet::new();
        assert!(s.insert(10, 20));
        assert!(s.covers(10, 20));
        assert!(s.covers(12, 15));
        assert!(!s.covers(5, 12));
        assert!(!s.covers(15, 25));
        assert!(s.covers(7, 7), "empty interval trivially covered");
    }

    #[test]
    fn coalesce_adjacent() {
        let mut s = RangeSet::new();
        s.insert(0, 10);
        s.insert(10, 20);
        assert_eq!(s.ranges(), &[(0, 20)]);
        assert!(s.covers(0, 20));
    }

    #[test]
    fn coalesce_overlapping_and_bridging() {
        let mut s = RangeSet::new();
        s.insert(0, 5);
        s.insert(10, 15);
        s.insert(3, 12); // bridges both
        assert_eq!(s.ranges(), &[(0, 15)]);
    }

    #[test]
    fn redundant_insert_reports_false() {
        let mut s = RangeSet::from_range(0, 100);
        assert!(!s.insert(10, 20));
        assert!(!s.insert(0, 100));
        assert!(s.insert(100, 101), "extension is new coverage");
    }

    #[test]
    fn empty_insert_ignored() {
        let mut s = RangeSet::new();
        assert!(!s.insert(5, 5));
        assert!(s.is_empty());
    }

    #[test]
    fn covered_counts_bytes() {
        let mut s = RangeSet::new();
        s.insert(0, 10);
        s.insert(20, 25);
        assert_eq!(s.covered(), 15);
    }

    #[test]
    fn intersects_detects_partial_overlap() {
        let s = RangeSet::from_range(10, 20);
        assert!(s.intersects(15, 30));
        assert!(s.intersects(0, 11));
        assert!(!s.intersects(0, 10));
        assert!(!s.intersects(20, 30));
        assert!(!s.intersects(12, 12));
    }

    #[test]
    fn disjoint_inserts_stay_sorted() {
        let mut s = RangeSet::new();
        s.insert(30, 40);
        s.insert(0, 5);
        s.insert(10, 20);
        assert_eq!(s.ranges(), &[(0, 5), (10, 20), (30, 40)]);
    }

    #[test]
    fn remove_exact_overlap_empties_range() {
        let mut s = RangeSet::from_range(10, 20);
        assert!(s.remove(10, 20));
        assert!(s.is_empty());
        assert!(!s.remove(10, 20), "second removal is a no-op");
    }

    #[test]
    fn remove_splits_straddled_range() {
        let mut s = RangeSet::from_range(0, 100);
        assert!(s.remove(40, 60));
        assert_eq!(s.ranges(), &[(0, 40), (60, 100)]);
        assert_eq!(s.covered(), 80);
    }

    #[test]
    fn remove_spanning_multiple_ranges_keeps_outer_remnants() {
        let mut s = RangeSet::new();
        s.insert(0, 10);
        s.insert(20, 30);
        s.insert(40, 50);
        assert!(s.remove(5, 45));
        assert_eq!(s.ranges(), &[(0, 5), (45, 50)]);
    }

    #[test]
    fn remove_empty_or_disjoint_interval_is_noop() {
        let mut s = RangeSet::from_range(10, 20);
        assert!(!s.remove(15, 15), "empty interval");
        assert!(!s.remove(0, 10), "touching below is not overlap");
        assert!(!s.remove(20, 30), "touching above is not overlap");
        assert_eq!(s.ranges(), &[(10, 20)]);
        let mut empty = RangeSet::new();
        assert!(!empty.remove(0, 100));
    }

    #[test]
    fn split_at_cuts_straddling_range() {
        let mut s = RangeSet::new();
        s.insert(0, 10);
        s.insert(20, 30);
        let (l, r) = s.split_at(25);
        assert_eq!(l.ranges(), &[(0, 10), (20, 25)]);
        assert_eq!(r.ranges(), &[(25, 30)]);
    }

    proptest::proptest! {
        /// Splitting at any point and re-inserting both halves reconstructs
        /// the original set exactly (split -> merge is the identity).
        #[test]
        fn split_then_merge_is_identity(
            ivs in proptest::collection::vec((0u64..200, 1u64..40), 0..12),
            point in 0u64..250,
        ) {
            let mut s = RangeSet::new();
            for (start, len) in ivs {
                s.insert(start, start + len);
            }
            let (left, right) = s.split_at(point);
            let mut merged = RangeSet::new();
            for &(a, b) in left.ranges().iter().chain(right.ranges()) {
                merged.insert(a, b);
            }
            proptest::prop_assert_eq!(&merged, &s);
            // The halves partition the byte count.
            proptest::prop_assert_eq!(left.covered() + right.covered(), s.covered());
            // And respect the split point.
            proptest::prop_assert!(!left.intersects(point, u64::MAX));
            proptest::prop_assert!(!right.intersects(0, point));
        }

        /// Inserting an interval then removing it leaves at most the
        /// original bytes; removing then re-inserting covers the interval.
        #[test]
        fn remove_is_inverse_of_insert_on_coverage(
            ivs in proptest::collection::vec((0u64..200, 1u64..40), 0..12),
            start in 0u64..200,
            len in 1u64..50,
        ) {
            let mut s = RangeSet::new();
            for (a, l) in ivs {
                s.insert(a, a + l);
            }
            let end = start + len;
            let mut removed = s.clone();
            removed.remove(start, end);
            proptest::prop_assert!(!removed.intersects(start, end));
            let mut back = removed.clone();
            back.insert(start, end);
            proptest::prop_assert!(back.covers(start, end));
        }
    }
}
