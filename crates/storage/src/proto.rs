//! Wire protocol of the storage layer.
//!
//! All interactions with the storage are asynchronous messages in untyped
//! data buffers (paper §III-B: "the implementation in DataCutter is achieved
//! by making the storage subsystem a specific filter and all filters that
//! need to interact with the storage have a bidirectional link to it").
//!
//! Four message families:
//! * [`ClientMsg`] — filter → local storage requests;
//! * [`Reply`] — storage → filter responses;
//! * [`PeerMsg`] — storage ↔ storage (the partitioned global map protocol);
//! * [`IoCmd`] / [`IoReply`] — storage ↔ I/O filter.
//!
//! Every variant round-trips through [`dooc_filterstream::DataBuffer`];
//! block payloads ride as zero-copy [`Bytes`] slices.

use crate::meta::{ArrayMeta, Interval};
use crate::StorageError;
use bytes::Bytes;
use dooc_filterstream::buffer::{PayloadBuilder, PayloadReader};
use dooc_filterstream::DataBuffer;

/// Availability of a block as reported by a map query ("obtain a map of
/// which part of the arrays are currently available in the storage
/// subsystem").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockAvail {
    /// Fully sealed and resident in this node's memory.
    InMemory,
    /// Fully sealed and on this node's disk (not resident).
    OnDisk,
    /// Some intervals sealed, others not yet written.
    Partial,
    /// Known (array created here) but no byte written yet.
    Unwritten,
}

impl BlockAvail {
    fn code(self) -> u64 {
        match self {
            BlockAvail::InMemory => 0,
            BlockAvail::OnDisk => 1,
            BlockAvail::Partial => 2,
            BlockAvail::Unwritten => 3,
        }
    }

    fn from_code(c: u64) -> Option<Self> {
        Some(match c {
            0 => BlockAvail::InMemory,
            1 => BlockAvail::OnDisk,
            2 => BlockAvail::Partial,
            3 => BlockAvail::Unwritten,
            _ => return None,
        })
    }
}

/// One entry of a map reply.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MapEntry {
    /// Array name.
    pub array: String,
    /// Block index.
    pub block: u64,
    /// Local availability.
    pub state: BlockAvail,
}

/// Counters a storage node maintains; exposed to clients via
/// [`ClientMsg::StatsQuery`] and used by the experiment harness as the
/// "logs" bandwidth is extracted from.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Bytes read from the local filesystem (I/O filter completions).
    pub disk_read_bytes: u64,
    /// Bytes written to the local filesystem.
    pub disk_write_bytes: u64,
    /// Block bytes served to peers.
    pub peer_sent_bytes: u64,
    /// Block bytes fetched from peers.
    pub peer_recv_bytes: u64,
    /// Blocks evicted by the LRU reclaimer.
    pub evictions: u64,
    /// Bytes currently resident in memory.
    pub resident_bytes: u64,
    /// Configured memory budget in bytes.
    pub budget_bytes: u64,
    /// High-watermark of bytes simultaneously pinned (read pins plus write
    /// grants) over the node's lifetime — the observed grant-ledger peak the
    /// static audit's `peak_bytes` bound must dominate.
    pub pinned_peak_bytes: u64,
}

/// Filter → storage requests.
#[derive(Clone, Debug, PartialEq)]
pub enum ClientMsg {
    /// Create a new immutable array with the given geometry. This node
    /// becomes the array's home.
    Create {
        /// Request id (echoed in the reply).
        req: u64,
        /// Requesting client instance (reply address).
        client: u64,
        /// Geometry.
        meta: ArrayMeta,
    },
    /// Register an array's geometry without becoming its home (a hint so
    /// interval→block mapping works before any data arrives). No reply.
    Register {
        /// Geometry.
        meta: ArrayMeta,
    },
    /// Request read access to an interval. The reply is delayed until the
    /// interval has been written and released (possibly on a remote node).
    ReadReq {
        /// Request id.
        req: u64,
        /// Reply address.
        client: u64,
        /// Array name.
        array: String,
        /// Interval (must lie within one block).
        iv: Interval,
    },
    /// Request write access to an interval (write-once).
    WriteReq {
        /// Request id.
        req: u64,
        /// Reply address.
        client: u64,
        /// Array name.
        array: String,
        /// Interval (must lie within one block).
        iv: Interval,
    },
    /// Release a read interval previously granted (unpins the block).
    ReleaseRead {
        /// Array name.
        array: String,
        /// The interval being released.
        iv: Interval,
    },
    /// Release a write interval, shipping the written bytes; the data
    /// becomes readable by other filters only now.
    ReleaseWrite {
        /// Request id of a confirmation reply.
        req: u64,
        /// Reply address.
        client: u64,
        /// Array name.
        array: String,
        /// The interval written.
        iv: Interval,
        /// The bytes (must be exactly `iv.len` long).
        data: Bytes,
    },
    /// Hint: bring an interval's block into memory soon.
    Prefetch {
        /// Array name.
        array: String,
        /// Interval whose block should be made resident.
        iv: Interval,
    },
    /// Explicitly write an array's sealed blocks to this node's disk
    /// ("the write operations are performed explicitly upon request of a
    /// filter").
    Persist {
        /// Request id (replied when every block hit disk).
        req: u64,
        /// Reply address.
        client: u64,
        /// Array name.
        array: String,
    },
    /// Delete an array cluster-wide.
    Delete {
        /// Request id.
        req: u64,
        /// Reply address.
        client: u64,
        /// Array name.
        array: String,
    },
    /// Ask for the local availability map.
    MapQuery {
        /// Request id.
        req: u64,
        /// Reply address.
        client: u64,
    },
    /// Ask for the availability entries that changed after map version
    /// `since` (0 means "everything", i.e. a full snapshot). The reply is a
    /// [`Reply::MapDelta`] carrying the node's current version, so repeated
    /// queries form an incremental snapshot protocol: the client folds each
    /// delta into its mirror instead of re-receiving every entry per tick.
    MapSince {
        /// Request id.
        req: u64,
        /// Reply address.
        client: u64,
        /// Last map version the client has folded in.
        since: u64,
    },
    /// Ask for this node's counters.
    StatsQuery {
        /// Request id.
        req: u64,
        /// Reply address.
        client: u64,
    },
    /// Explicit memory management ("explicit memory management can also be
    /// directly provided by the programmer"): drop the in-memory copies of
    /// an array's sealed, unpinned blocks, spilling any that are not yet on
    /// disk. No reply.
    Evict {
        /// Array name.
        array: String,
    },
    /// Orderly shutdown: the storage filter finishes pending work, closes
    /// its peer/I/O links and exits.
    Shutdown,
}

/// Storage → filter responses.
#[derive(Clone, Debug, PartialEq)]
pub enum Reply {
    /// Array created.
    Created {
        /// Echoed request id.
        req: u64,
    },
    /// Read interval available; `data` is valid until the interval is
    /// released.
    ReadReady {
        /// Echoed request id.
        req: u64,
        /// The interval's bytes.
        data: Bytes,
    },
    /// Write access granted; ship data with
    /// [`ClientMsg::ReleaseWrite`] when done.
    WriteGranted {
        /// Echoed request id.
        req: u64,
    },
    /// Write release accepted and sealed.
    WriteSealed {
        /// Echoed request id.
        req: u64,
    },
    /// Persist finished: all sealed blocks of the array are on disk.
    Persisted {
        /// Echoed request id.
        req: u64,
    },
    /// Delete finished locally (peers informed asynchronously).
    Deleted {
        /// Echoed request id.
        req: u64,
    },
    /// The availability map.
    Map {
        /// Echoed request id.
        req: u64,
        /// Entries for every locally known block.
        entries: Vec<MapEntry>,
    },
    /// Incremental availability map: only blocks whose availability changed
    /// after the `since` version of the matching [`ClientMsg::MapSince`],
    /// plus arrays deleted since then. Folding `entries`/`deleted` into the
    /// client's mirror of version `since` yields the full map at `version`.
    MapDelta {
        /// Echoed request id.
        req: u64,
        /// The node's map version at reply time; pass as the next `since`.
        version: u64,
        /// Entries whose availability changed in `(since, version]`.
        entries: Vec<MapEntry>,
        /// Arrays deleted in `(since, version]` (drop them from the mirror).
        deleted: Vec<String>,
    },
    /// Node counters.
    Stats {
        /// Echoed request id.
        req: u64,
        /// The counters.
        stats: NodeStats,
    },
    /// The request failed.
    Err {
        /// Echoed request id.
        req: u64,
        /// What went wrong.
        error: StorageError,
    },
}

/// Storage ↔ storage messages.
#[derive(Clone, Debug, PartialEq)]
pub enum PeerMsg {
    /// Ask a peer for a sealed block. The peer answers when it can: found
    /// (data attached), or not-found if it has never heard of the block.
    /// A peer that *hosts* the block but has not sealed it yet logs the
    /// request and answers once sealed ("it logs the request and replies
    /// back when all the relevant information becomes available").
    Fetch {
        /// Requester-local request id.
        req: u64,
        /// Requesting node (reply address).
        from_node: u64,
        /// Array name.
        array: String,
        /// Any byte offset inside the wanted block. The serving peer — which
        /// knows the geometry — maps it to a block; the requester may not
        /// know the block size yet.
        offset: u64,
    },
    /// Positive answer to a fetch: geometry plus the sealed block bytes.
    FetchFound {
        /// Echoed request id.
        req: u64,
        /// Array length (geometry travels with data since the global map is
        /// partitioned).
        len: u64,
        /// Array block size.
        block_size: u64,
        /// Index of the block being returned.
        block: u64,
        /// The sealed block's bytes.
        data: Bytes,
    },
    /// Negative answer: this peer has never heard of the block.
    FetchNotFound {
        /// Echoed request id.
        req: u64,
    },
    /// Cluster-wide delete notice.
    DeleteNotice {
        /// Array name.
        array: String,
    },
    /// Shutdown notice: the sending node's clients are quiescent and it will
    /// issue no further fetches. A node closes its peer links only after
    /// hearing `Bye` from every peer, so in-flight fetches are never
    /// orphaned.
    Bye,
}

/// Storage → I/O filter commands. "Interactions with the filesystem (both
/// read and write) are performed by a separate I/O filter."
#[derive(Clone, Debug, PartialEq)]
pub enum IoCmd {
    /// Read a block file from the scratch directory.
    Read {
        /// Array name.
        array: String,
        /// Block index.
        block: u64,
        /// Expected byte length (for validation).
        len: u64,
    },
    /// Write a sealed block file (and its geometry sidecar) to scratch.
    Write {
        /// Array name.
        array: String,
        /// Block index.
        block: u64,
        /// Array length (for the sidecar).
        len: u64,
        /// Array block size (for the sidecar).
        block_size: u64,
        /// The block's bytes.
        data: Bytes,
    },
    /// Remove every file belonging to an array.
    DeleteFiles {
        /// Array name.
        array: String,
    },
}

/// I/O filter → storage completions.
#[derive(Clone, Debug, PartialEq)]
pub enum IoReply {
    /// A read completed.
    ReadDone {
        /// Array name.
        array: String,
        /// Block index.
        block: u64,
        /// The bytes read.
        data: Bytes,
    },
    /// A write completed.
    WriteDone {
        /// Array name.
        array: String,
        /// Block index.
        block: u64,
        /// Bytes written (payload + sidecar accounting).
        bytes: u64,
    },
    /// An operation failed.
    Error {
        /// Array name.
        array: String,
        /// Block index (`u64::MAX` for array-wide operations).
        block: u64,
        /// Error description.
        message: String,
    },
}

// ---------------------------------------------------------------------------
// Encoding. Tags partition the space per family so a misrouted buffer fails
// loudly at decode.
// ---------------------------------------------------------------------------

const T_CLIENT: u64 = 0x100;
const T_REPLY: u64 = 0x200;
const T_PEER: u64 = 0x300;
const T_IOCMD: u64 = 0x400;
const T_IOREP: u64 = 0x500;

fn iv_put(pb: &mut PayloadBuilder, iv: Interval) {
    pb.put_u64(iv.offset).put_u64(iv.len);
}

fn iv_get(r: &mut PayloadReader) -> Option<Interval> {
    Some(Interval::new(r.u64()?, r.u64()?))
}

fn err_put(pb: &mut PayloadBuilder, e: &StorageError) {
    let (k, a, b): (u64, &str, &str) = match e {
        StorageError::UnknownArray(a) => (0, a, ""),
        StorageError::BadInterval { array, reason } => (1, array, reason),
        StorageError::Immutability(m) => (2, m, ""),
        StorageError::AlreadyExists(a) => (3, a, ""),
        StorageError::Deleted(a) => (4, a, ""),
        StorageError::Io(m) => (5, m, ""),
        StorageError::Protocol(m) => (6, m, ""),
        StorageError::IoFailed(m) => (7, m, ""),
        StorageError::Timeout(m) => (8, m, ""),
    };
    pb.put_u64(k).put_str(a).put_str(b);
}

fn err_get(r: &mut PayloadReader) -> Option<StorageError> {
    let k = r.u64()?;
    let a = r.str()?;
    let b = r.str()?;
    Some(match k {
        0 => StorageError::UnknownArray(a),
        1 => StorageError::BadInterval {
            array: a,
            reason: b,
        },
        2 => StorageError::Immutability(a),
        3 => StorageError::AlreadyExists(a),
        4 => StorageError::Deleted(a),
        5 => StorageError::Io(a),
        6 => StorageError::Protocol(a),
        7 => StorageError::IoFailed(a),
        8 => StorageError::Timeout(a),
        _ => return None,
    })
}

fn decode_err(what: &str) -> StorageError {
    StorageError::Protocol(format!("malformed {what} message"))
}

impl ClientMsg {
    /// Encodes into an untyped buffer.
    pub fn encode(&self) -> DataBuffer {
        let mut pb = PayloadBuilder::new();
        match self {
            ClientMsg::Create { req, client, meta } => {
                pb.put_u64(*req)
                    .put_u64(*client)
                    .put_str(&meta.name)
                    .put_u64(meta.len)
                    .put_u64(meta.block_size);
                pb.build(T_CLIENT)
            }
            ClientMsg::Register { meta } => {
                pb.put_str(&meta.name)
                    .put_u64(meta.len)
                    .put_u64(meta.block_size);
                pb.build(T_CLIENT + 11)
            }
            ClientMsg::ReadReq {
                req,
                client,
                array,
                iv,
            } => {
                pb.put_u64(*req).put_u64(*client).put_str(array);
                iv_put(&mut pb, *iv);
                pb.build(T_CLIENT + 1)
            }
            ClientMsg::WriteReq {
                req,
                client,
                array,
                iv,
            } => {
                pb.put_u64(*req).put_u64(*client).put_str(array);
                iv_put(&mut pb, *iv);
                pb.build(T_CLIENT + 2)
            }
            ClientMsg::ReleaseRead { array, iv } => {
                pb.put_str(array);
                iv_put(&mut pb, *iv);
                pb.build(T_CLIENT + 3)
            }
            ClientMsg::ReleaseWrite {
                req,
                client,
                array,
                iv,
                data,
            } => {
                pb.put_u64(*req).put_u64(*client).put_str(array);
                iv_put(&mut pb, *iv);
                pb.put_blob(data);
                pb.build(T_CLIENT + 4)
            }
            ClientMsg::Prefetch { array, iv } => {
                pb.put_str(array);
                iv_put(&mut pb, *iv);
                pb.build(T_CLIENT + 5)
            }
            ClientMsg::Persist { req, client, array } => {
                pb.put_u64(*req).put_u64(*client).put_str(array);
                pb.build(T_CLIENT + 6)
            }
            ClientMsg::Delete { req, client, array } => {
                pb.put_u64(*req).put_u64(*client).put_str(array);
                pb.build(T_CLIENT + 7)
            }
            ClientMsg::MapQuery { req, client } => {
                pb.put_u64(*req).put_u64(*client);
                pb.build(T_CLIENT + 8)
            }
            ClientMsg::StatsQuery { req, client } => {
                pb.put_u64(*req).put_u64(*client);
                pb.build(T_CLIENT + 9)
            }
            ClientMsg::Evict { array } => {
                pb.put_str(array);
                pb.build(T_CLIENT + 12)
            }
            ClientMsg::MapSince { req, client, since } => {
                pb.put_u64(*req).put_u64(*client).put_u64(*since);
                pb.build(T_CLIENT + 13)
            }
            ClientMsg::Shutdown => pb.build(T_CLIENT + 10),
        }
    }

    /// Decodes from a buffer.
    pub fn decode(b: &DataBuffer) -> crate::Result<Self> {
        let mut r = PayloadReader::new(b);
        let e = || decode_err("client");
        Ok(match b.tag {
            t if t == T_CLIENT => ClientMsg::Create {
                req: r.u64().ok_or_else(e)?,
                client: r.u64().ok_or_else(e)?,
                meta: ArrayMeta::new(
                    r.str().ok_or_else(e)?,
                    r.u64().ok_or_else(e)?,
                    r.u64().ok_or_else(e)?,
                ),
            },
            t if t == T_CLIENT + 1 => ClientMsg::ReadReq {
                req: r.u64().ok_or_else(e)?,
                client: r.u64().ok_or_else(e)?,
                array: r.str().ok_or_else(e)?,
                iv: iv_get(&mut r).ok_or_else(e)?,
            },
            t if t == T_CLIENT + 2 => ClientMsg::WriteReq {
                req: r.u64().ok_or_else(e)?,
                client: r.u64().ok_or_else(e)?,
                array: r.str().ok_or_else(e)?,
                iv: iv_get(&mut r).ok_or_else(e)?,
            },
            t if t == T_CLIENT + 3 => ClientMsg::ReleaseRead {
                array: r.str().ok_or_else(e)?,
                iv: iv_get(&mut r).ok_or_else(e)?,
            },
            t if t == T_CLIENT + 4 => ClientMsg::ReleaseWrite {
                req: r.u64().ok_or_else(e)?,
                client: r.u64().ok_or_else(e)?,
                array: r.str().ok_or_else(e)?,
                iv: iv_get(&mut r).ok_or_else(e)?,
                data: r.blob().ok_or_else(e)?,
            },
            t if t == T_CLIENT + 5 => ClientMsg::Prefetch {
                array: r.str().ok_or_else(e)?,
                iv: iv_get(&mut r).ok_or_else(e)?,
            },
            t if t == T_CLIENT + 6 => ClientMsg::Persist {
                req: r.u64().ok_or_else(e)?,
                client: r.u64().ok_or_else(e)?,
                array: r.str().ok_or_else(e)?,
            },
            t if t == T_CLIENT + 7 => ClientMsg::Delete {
                req: r.u64().ok_or_else(e)?,
                client: r.u64().ok_or_else(e)?,
                array: r.str().ok_or_else(e)?,
            },
            t if t == T_CLIENT + 8 => ClientMsg::MapQuery {
                req: r.u64().ok_or_else(e)?,
                client: r.u64().ok_or_else(e)?,
            },
            t if t == T_CLIENT + 9 => ClientMsg::StatsQuery {
                req: r.u64().ok_or_else(e)?,
                client: r.u64().ok_or_else(e)?,
            },
            t if t == T_CLIENT + 10 => ClientMsg::Shutdown,
            t if t == T_CLIENT + 12 => ClientMsg::Evict {
                array: r.str().ok_or_else(e)?,
            },
            t if t == T_CLIENT + 13 => ClientMsg::MapSince {
                req: r.u64().ok_or_else(e)?,
                client: r.u64().ok_or_else(e)?,
                since: r.u64().ok_or_else(e)?,
            },
            t if t == T_CLIENT + 11 => ClientMsg::Register {
                meta: ArrayMeta::new(
                    r.str().ok_or_else(e)?,
                    r.u64().ok_or_else(e)?,
                    r.u64().ok_or_else(e)?,
                ),
            },
            t => {
                return Err(StorageError::Protocol(format!(
                    "unexpected tag {t:#x} for client message"
                )))
            }
        })
    }

    /// The client instance a reply should be addressed to, if any.
    pub fn reply_client(&self) -> Option<u64> {
        match self {
            ClientMsg::Create { client, .. }
            | ClientMsg::ReadReq { client, .. }
            | ClientMsg::WriteReq { client, .. }
            | ClientMsg::ReleaseWrite { client, .. }
            | ClientMsg::Persist { client, .. }
            | ClientMsg::Delete { client, .. }
            | ClientMsg::MapQuery { client, .. }
            | ClientMsg::MapSince { client, .. }
            | ClientMsg::StatsQuery { client, .. } => Some(*client),
            ClientMsg::ReleaseRead { .. }
            | ClientMsg::Prefetch { .. }
            | ClientMsg::Register { .. }
            | ClientMsg::Evict { .. }
            | ClientMsg::Shutdown => None,
        }
    }
}

impl Reply {
    /// Encodes into an untyped buffer.
    pub fn encode(&self) -> DataBuffer {
        let mut pb = PayloadBuilder::new();
        match self {
            Reply::Created { req } => {
                pb.put_u64(*req);
                pb.build(T_REPLY)
            }
            Reply::ReadReady { req, data } => {
                pb.put_u64(*req).put_blob(data);
                pb.build(T_REPLY + 1)
            }
            Reply::WriteGranted { req } => {
                pb.put_u64(*req);
                pb.build(T_REPLY + 2)
            }
            Reply::WriteSealed { req } => {
                pb.put_u64(*req);
                pb.build(T_REPLY + 3)
            }
            Reply::Persisted { req } => {
                pb.put_u64(*req);
                pb.build(T_REPLY + 4)
            }
            Reply::Deleted { req } => {
                pb.put_u64(*req);
                pb.build(T_REPLY + 5)
            }
            Reply::Map { req, entries } => {
                pb.put_u64(*req).put_u64(entries.len() as u64);
                for en in entries {
                    pb.put_str(&en.array)
                        .put_u64(en.block)
                        .put_u64(en.state.code());
                }
                pb.build(T_REPLY + 6)
            }
            Reply::Stats { req, stats } => {
                pb.put_u64(*req)
                    .put_u64(stats.disk_read_bytes)
                    .put_u64(stats.disk_write_bytes)
                    .put_u64(stats.peer_sent_bytes)
                    .put_u64(stats.peer_recv_bytes)
                    .put_u64(stats.evictions)
                    .put_u64(stats.resident_bytes)
                    .put_u64(stats.budget_bytes)
                    .put_u64(stats.pinned_peak_bytes);
                pb.build(T_REPLY + 7)
            }
            Reply::Err { req, error } => {
                pb.put_u64(*req);
                err_put(&mut pb, error);
                pb.build(T_REPLY + 8)
            }
            Reply::MapDelta {
                req,
                version,
                entries,
                deleted,
            } => {
                pb.put_u64(*req)
                    .put_u64(*version)
                    .put_u64(entries.len() as u64);
                for en in entries {
                    pb.put_str(&en.array)
                        .put_u64(en.block)
                        .put_u64(en.state.code());
                }
                pb.put_u64(deleted.len() as u64);
                for a in deleted {
                    pb.put_str(a);
                }
                pb.build(T_REPLY + 9)
            }
        }
    }

    /// Decodes from a buffer.
    pub fn decode(b: &DataBuffer) -> crate::Result<Self> {
        let mut r = PayloadReader::new(b);
        let e = || decode_err("reply");
        Ok(match b.tag {
            t if t == T_REPLY => Reply::Created {
                req: r.u64().ok_or_else(e)?,
            },
            t if t == T_REPLY + 1 => Reply::ReadReady {
                req: r.u64().ok_or_else(e)?,
                data: r.blob().ok_or_else(e)?,
            },
            t if t == T_REPLY + 2 => Reply::WriteGranted {
                req: r.u64().ok_or_else(e)?,
            },
            t if t == T_REPLY + 3 => Reply::WriteSealed {
                req: r.u64().ok_or_else(e)?,
            },
            t if t == T_REPLY + 4 => Reply::Persisted {
                req: r.u64().ok_or_else(e)?,
            },
            t if t == T_REPLY + 5 => Reply::Deleted {
                req: r.u64().ok_or_else(e)?,
            },
            t if t == T_REPLY + 6 => {
                let req = r.u64().ok_or_else(e)?;
                let n = r.u64().ok_or_else(e)?;
                let mut entries = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    entries.push(MapEntry {
                        array: r.str().ok_or_else(e)?,
                        block: r.u64().ok_or_else(e)?,
                        state: BlockAvail::from_code(r.u64().ok_or_else(e)?).ok_or_else(e)?,
                    });
                }
                Reply::Map { req, entries }
            }
            t if t == T_REPLY + 7 => Reply::Stats {
                req: r.u64().ok_or_else(e)?,
                stats: NodeStats {
                    disk_read_bytes: r.u64().ok_or_else(e)?,
                    disk_write_bytes: r.u64().ok_or_else(e)?,
                    peer_sent_bytes: r.u64().ok_or_else(e)?,
                    peer_recv_bytes: r.u64().ok_or_else(e)?,
                    evictions: r.u64().ok_or_else(e)?,
                    resident_bytes: r.u64().ok_or_else(e)?,
                    budget_bytes: r.u64().ok_or_else(e)?,
                    pinned_peak_bytes: r.u64().ok_or_else(e)?,
                },
            },
            t if t == T_REPLY + 8 => Reply::Err {
                req: r.u64().ok_or_else(e)?,
                error: err_get(&mut r).ok_or_else(e)?,
            },
            t if t == T_REPLY + 9 => {
                let req = r.u64().ok_or_else(e)?;
                let version = r.u64().ok_or_else(e)?;
                let n = r.u64().ok_or_else(e)?;
                let mut entries = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    entries.push(MapEntry {
                        array: r.str().ok_or_else(e)?,
                        block: r.u64().ok_or_else(e)?,
                        state: BlockAvail::from_code(r.u64().ok_or_else(e)?).ok_or_else(e)?,
                    });
                }
                let nd = r.u64().ok_or_else(e)?;
                let mut deleted = Vec::with_capacity(nd as usize);
                for _ in 0..nd {
                    deleted.push(r.str().ok_or_else(e)?);
                }
                Reply::MapDelta {
                    req,
                    version,
                    entries,
                    deleted,
                }
            }
            t => {
                return Err(StorageError::Protocol(format!(
                    "unexpected tag {t:#x} for reply message"
                )))
            }
        })
    }

    /// The request id this reply answers.
    pub fn req(&self) -> u64 {
        match self {
            Reply::Created { req }
            | Reply::ReadReady { req, .. }
            | Reply::WriteGranted { req }
            | Reply::WriteSealed { req }
            | Reply::Persisted { req }
            | Reply::Deleted { req }
            | Reply::Map { req, .. }
            | Reply::MapDelta { req, .. }
            | Reply::Stats { req, .. }
            | Reply::Err { req, .. } => *req,
        }
    }
}

impl PeerMsg {
    /// Encodes into an untyped buffer.
    pub fn encode(&self) -> DataBuffer {
        let mut pb = PayloadBuilder::new();
        match self {
            PeerMsg::Fetch {
                req,
                from_node,
                array,
                offset,
            } => {
                pb.put_u64(*req)
                    .put_u64(*from_node)
                    .put_str(array)
                    .put_u64(*offset);
                pb.build(T_PEER)
            }
            PeerMsg::FetchFound {
                req,
                len,
                block_size,
                block,
                data,
            } => {
                pb.put_u64(*req)
                    .put_u64(*len)
                    .put_u64(*block_size)
                    .put_u64(*block)
                    .put_blob(data);
                pb.build(T_PEER + 1)
            }
            PeerMsg::FetchNotFound { req } => {
                pb.put_u64(*req);
                pb.build(T_PEER + 2)
            }
            PeerMsg::DeleteNotice { array } => {
                pb.put_str(array);
                pb.build(T_PEER + 3)
            }
            PeerMsg::Bye => pb.build(T_PEER + 4),
        }
    }

    /// Decodes from a buffer.
    pub fn decode(b: &DataBuffer) -> crate::Result<Self> {
        let mut r = PayloadReader::new(b);
        let e = || decode_err("peer");
        Ok(match b.tag {
            t if t == T_PEER => PeerMsg::Fetch {
                req: r.u64().ok_or_else(e)?,
                from_node: r.u64().ok_or_else(e)?,
                array: r.str().ok_or_else(e)?,
                offset: r.u64().ok_or_else(e)?,
            },
            t if t == T_PEER + 1 => PeerMsg::FetchFound {
                req: r.u64().ok_or_else(e)?,
                len: r.u64().ok_or_else(e)?,
                block_size: r.u64().ok_or_else(e)?,
                block: r.u64().ok_or_else(e)?,
                data: r.blob().ok_or_else(e)?,
            },
            t if t == T_PEER + 2 => PeerMsg::FetchNotFound {
                req: r.u64().ok_or_else(e)?,
            },
            t if t == T_PEER + 3 => PeerMsg::DeleteNotice {
                array: r.str().ok_or_else(e)?,
            },
            t if t == T_PEER + 4 => PeerMsg::Bye,
            t => {
                return Err(StorageError::Protocol(format!(
                    "unexpected tag {t:#x} for peer message"
                )))
            }
        })
    }
}

impl IoCmd {
    /// Encodes into an untyped buffer.
    pub fn encode(&self) -> DataBuffer {
        let mut pb = PayloadBuilder::new();
        match self {
            IoCmd::Read { array, block, len } => {
                pb.put_str(array).put_u64(*block).put_u64(*len);
                pb.build(T_IOCMD)
            }
            IoCmd::Write {
                array,
                block,
                len,
                block_size,
                data,
            } => {
                pb.put_str(array)
                    .put_u64(*block)
                    .put_u64(*len)
                    .put_u64(*block_size)
                    .put_blob(data);
                pb.build(T_IOCMD + 1)
            }
            IoCmd::DeleteFiles { array } => {
                pb.put_str(array);
                pb.build(T_IOCMD + 2)
            }
        }
    }

    /// Decodes from a buffer.
    pub fn decode(b: &DataBuffer) -> crate::Result<Self> {
        let mut r = PayloadReader::new(b);
        let e = || decode_err("io command");
        Ok(match b.tag {
            t if t == T_IOCMD => IoCmd::Read {
                array: r.str().ok_or_else(e)?,
                block: r.u64().ok_or_else(e)?,
                len: r.u64().ok_or_else(e)?,
            },
            t if t == T_IOCMD + 1 => IoCmd::Write {
                array: r.str().ok_or_else(e)?,
                block: r.u64().ok_or_else(e)?,
                len: r.u64().ok_or_else(e)?,
                block_size: r.u64().ok_or_else(e)?,
                data: r.blob().ok_or_else(e)?,
            },
            t if t == T_IOCMD + 2 => IoCmd::DeleteFiles {
                array: r.str().ok_or_else(e)?,
            },
            t => {
                return Err(StorageError::Protocol(format!(
                    "unexpected tag {t:#x} for io command"
                )))
            }
        })
    }
}

impl IoReply {
    /// Encodes into an untyped buffer.
    pub fn encode(&self) -> DataBuffer {
        let mut pb = PayloadBuilder::new();
        match self {
            IoReply::ReadDone { array, block, data } => {
                pb.put_str(array).put_u64(*block).put_blob(data);
                pb.build(T_IOREP)
            }
            IoReply::WriteDone {
                array,
                block,
                bytes,
            } => {
                pb.put_str(array).put_u64(*block).put_u64(*bytes);
                pb.build(T_IOREP + 1)
            }
            IoReply::Error {
                array,
                block,
                message,
            } => {
                pb.put_str(array).put_u64(*block).put_str(message);
                pb.build(T_IOREP + 2)
            }
        }
    }

    /// Decodes from a buffer.
    pub fn decode(b: &DataBuffer) -> crate::Result<Self> {
        let mut r = PayloadReader::new(b);
        let e = || decode_err("io reply");
        Ok(match b.tag {
            t if t == T_IOREP => IoReply::ReadDone {
                array: r.str().ok_or_else(e)?,
                block: r.u64().ok_or_else(e)?,
                data: r.blob().ok_or_else(e)?,
            },
            t if t == T_IOREP + 1 => IoReply::WriteDone {
                array: r.str().ok_or_else(e)?,
                block: r.u64().ok_or_else(e)?,
                bytes: r.u64().ok_or_else(e)?,
            },
            t if t == T_IOREP + 2 => IoReply::Error {
                array: r.str().ok_or_else(e)?,
                block: r.u64().ok_or_else(e)?,
                message: r.str().ok_or_else(e)?,
            },
            t => {
                return Err(StorageError::Protocol(format!(
                    "unexpected tag {t:#x} for io reply"
                )))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(o: u64, l: u64) -> Interval {
        Interval::new(o, l)
    }

    #[test]
    fn client_msgs_roundtrip() {
        let msgs = vec![
            ClientMsg::Create {
                req: 1,
                client: 2,
                meta: ArrayMeta::new("arr", 100, 32),
            },
            ClientMsg::ReadReq {
                req: 3,
                client: 0,
                array: "a".into(),
                iv: iv(0, 8),
            },
            ClientMsg::WriteReq {
                req: 4,
                client: 9,
                array: "b".into(),
                iv: iv(8, 8),
            },
            ClientMsg::ReleaseRead {
                array: "a".into(),
                iv: iv(0, 8),
            },
            ClientMsg::ReleaseWrite {
                req: 5,
                client: 1,
                array: "b".into(),
                iv: iv(8, 4),
                data: Bytes::from_static(&[1, 2, 3, 4]),
            },
            ClientMsg::Prefetch {
                array: "c".into(),
                iv: iv(64, 32),
            },
            ClientMsg::Persist {
                req: 6,
                client: 2,
                array: "c".into(),
            },
            ClientMsg::Delete {
                req: 7,
                client: 3,
                array: "d".into(),
            },
            ClientMsg::Register {
                meta: ArrayMeta::new("reg", 64, 16),
            },
            ClientMsg::Evict { array: "ev".into() },
            ClientMsg::MapQuery { req: 8, client: 4 },
            ClientMsg::MapSince {
                req: 10,
                client: 4,
                since: 17,
            },
            ClientMsg::StatsQuery { req: 9, client: 5 },
            ClientMsg::Shutdown,
        ];
        for m in msgs {
            let b = m.encode();
            assert_eq!(ClientMsg::decode(&b).expect("roundtrip"), m);
        }
    }

    #[test]
    fn replies_roundtrip() {
        let msgs = vec![
            Reply::Created { req: 1 },
            Reply::ReadReady {
                req: 2,
                data: Bytes::from_static(b"xyz"),
            },
            Reply::WriteGranted { req: 3 },
            Reply::WriteSealed { req: 4 },
            Reply::Persisted { req: 5 },
            Reply::Deleted { req: 6 },
            Reply::Map {
                req: 7,
                entries: vec![
                    MapEntry {
                        array: "a".into(),
                        block: 0,
                        state: BlockAvail::InMemory,
                    },
                    MapEntry {
                        array: "b".into(),
                        block: 3,
                        state: BlockAvail::Unwritten,
                    },
                ],
            },
            Reply::MapDelta {
                req: 10,
                version: 42,
                entries: vec![MapEntry {
                    array: "c".into(),
                    block: 1,
                    state: BlockAvail::OnDisk,
                }],
                deleted: vec!["gone".into(), "also-gone".into()],
            },
            Reply::MapDelta {
                req: 11,
                version: 0,
                entries: vec![],
                deleted: vec![],
            },
            Reply::Stats {
                req: 8,
                stats: NodeStats {
                    disk_read_bytes: 1,
                    disk_write_bytes: 2,
                    peer_sent_bytes: 3,
                    peer_recv_bytes: 4,
                    evictions: 5,
                    resident_bytes: 6,
                    budget_bytes: 7,
                    pinned_peak_bytes: 8,
                },
            },
            Reply::Err {
                req: 9,
                error: StorageError::BadInterval {
                    array: "a".into(),
                    reason: "spans blocks".into(),
                },
            },
            Reply::Err {
                req: 12,
                error: StorageError::IoFailed("a@0: 3 attempts".into()),
            },
            Reply::Err {
                req: 13,
                error: StorageError::Timeout("fetch of a@0".into()),
            },
        ];
        for m in msgs {
            let b = m.encode();
            assert_eq!(Reply::decode(&b).expect("roundtrip"), m);
            let _ = Reply::decode(&b).expect("roundtrip").req();
        }
    }

    #[test]
    fn peer_msgs_roundtrip() {
        let msgs = vec![
            PeerMsg::Fetch {
                req: 1,
                from_node: 2,
                array: "a".into(),
                offset: 3,
            },
            PeerMsg::FetchFound {
                req: 4,
                len: 100,
                block_size: 32,
                block: 0,
                data: Bytes::from_static(&[9; 16]),
            },
            PeerMsg::FetchNotFound { req: 5 },
            PeerMsg::DeleteNotice { array: "b".into() },
            PeerMsg::Bye,
        ];
        for m in msgs {
            let b = m.encode();
            assert_eq!(PeerMsg::decode(&b).expect("roundtrip"), m);
        }
    }

    #[test]
    fn io_msgs_roundtrip() {
        let cmds = vec![
            IoCmd::Read {
                array: "a".into(),
                block: 1,
                len: 64,
            },
            IoCmd::Write {
                array: "a".into(),
                block: 1,
                len: 100,
                block_size: 64,
                data: Bytes::from_static(&[7; 8]),
            },
            IoCmd::DeleteFiles { array: "a".into() },
        ];
        for m in cmds {
            let b = m.encode();
            assert_eq!(IoCmd::decode(&b).expect("roundtrip"), m);
        }
        let reps = vec![
            IoReply::ReadDone {
                array: "a".into(),
                block: 1,
                data: Bytes::from_static(&[7; 8]),
            },
            IoReply::WriteDone {
                array: "a".into(),
                block: 1,
                bytes: 8,
            },
            IoReply::Error {
                array: "a".into(),
                block: u64::MAX,
                message: "disk on fire".into(),
            },
        ];
        for m in reps {
            let b = m.encode();
            assert_eq!(IoReply::decode(&b).expect("roundtrip"), m);
        }
    }

    #[test]
    fn cross_family_decode_fails() {
        let b = ClientMsg::Shutdown.encode();
        assert!(Reply::decode(&b).is_err());
        assert!(PeerMsg::decode(&b).is_err());
        assert!(IoCmd::decode(&b).is_err());
        assert!(IoReply::decode(&b).is_err());
    }

    #[test]
    fn truncated_payload_fails() {
        let b = ClientMsg::ReadReq {
            req: 1,
            client: 2,
            array: "abc".into(),
            iv: iv(0, 8),
        }
        .encode();
        let cut = DataBuffer::from_bytes(b.tag, b.payload.slice(0..12));
        assert!(ClientMsg::decode(&cut).is_err());
    }

    #[test]
    fn reply_client_extraction() {
        assert_eq!(
            ClientMsg::MapQuery { req: 1, client: 7 }.reply_client(),
            Some(7)
        );
        assert_eq!(
            ClientMsg::MapSince {
                req: 1,
                client: 6,
                since: 0
            }
            .reply_client(),
            Some(6)
        );
        assert_eq!(ClientMsg::Shutdown.reply_client(), None);
        assert_eq!(
            ClientMsg::Prefetch {
                array: "a".into(),
                iv: iv(0, 1)
            }
            .reply_client(),
            None
        );
    }
}
