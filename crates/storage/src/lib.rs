//! DOoC's distributed data storage layer (paper §III-B).
//!
//! "A distributed-memory data storage layer allows any computational task
//! (i.e., filter) to access data stored on any node. It supports prefetching,
//! automatic memory management and out-of-core operations. … Our technique
//! relies on *immutable arrays* which alleviates the need for a complex
//! communication protocol."
//!
//! The layer exposes data as one-dimensional arrays structured in fixed-size
//! blocks. Filters `request` access to an `interval` of an array with *read*
//! or *write* permission; an interval may not span blocks. Under the
//! immutable-object paradigm a memory location is written at most once and
//! cannot be read before it has been written **and released** — this removes
//! races and coherence protocols by construction.
//!
//! Architecture (paper Fig. 2), reproduced filter-for-filter:
//!
//! * one **storage filter** per compute node ([`filterimpl::StorageFilter`])
//!   holding a [`node::StorageState`] — a synchronous, fully unit-testable
//!   protocol state machine;
//! * one (or more) **I/O filter** per node ([`filterimpl::IoFilter`]),
//!   connected only to its storage filter, performing all filesystem reads
//!   and writes asynchronously against the node's scratch directory;
//! * complete **peer-to-peer** connections between storage filters (an
//!   addressed stream); the global block map is *partitioned*, not
//!   replicated — a node that misses an interval asks a randomly selected
//!   peer, tracking in-flight requests so no interval is requested twice;
//! * client filters hold a bidirectional (request/reply) link to their local
//!   storage filter and speak the [`proto`] message protocol, usually through
//!   the blocking convenience handle [`client::StorageClient`].
//!
//! Memory is reclaimed by reference counting + LRU: when a node's resident
//! bytes exceed its budget, unpinned blocks that are safe on some disk are
//! evicted least-recently-used first; dirty blocks are spilled through the
//! I/O filter before their memory is reclaimed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod cluster;
pub mod filterimpl;
pub mod meta;
pub mod node;
pub mod proto;
pub mod rangeset;

pub use client::{
    MapDelta, ReadGuard, ReadTicket, RetryPolicy, SealTicket, StorageClient, Ticket, WriteTicket,
};
pub use cluster::StorageCluster;
pub use meta::{ArrayMeta, BlockKey, Interval};
pub use node::{NodeConfig, RecoveryPolicy, StorageState};

/// Errors surfaced by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// The named array is not known anywhere in the cluster.
    UnknownArray(String),
    /// An interval was rejected (spans blocks, out of bounds, zero length…).
    BadInterval {
        /// Array the interval addressed.
        array: String,
        /// Explanation.
        reason: String,
    },
    /// Immutability violation: double write, read-before-write on a location
    /// the protocol can prove will never be written, etc.
    Immutability(String),
    /// An array was created twice (array names are cluster-unique).
    AlreadyExists(String),
    /// The operation addressed a deleted array.
    Deleted(String),
    /// An I/O filter reported a filesystem error.
    Io(String),
    /// Internal protocol violation (malformed message, unknown request id).
    Protocol(String),
    /// An out-of-core read failed even after the node's bounded retry
    /// policy was exhausted (or retries were disabled). Unlike [`Self::Io`]
    /// — which reports a single filesystem error verbatim — this is the
    /// storage node's final verdict on a block it could not produce.
    IoFailed(String),
    /// A request exceeded its deadline: either the client-side wait deadline
    /// (`StorageClient` retry policy) or the node's fetch/stall deadline on
    /// a random-peer map lookup. Surfaced instead of hanging forever.
    Timeout(String),
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::UnknownArray(a) => write!(f, "unknown array '{a}'"),
            StorageError::BadInterval { array, reason } => {
                write!(f, "bad interval on '{array}': {reason}")
            }
            StorageError::Immutability(m) => write!(f, "immutability violation: {m}"),
            StorageError::AlreadyExists(a) => write!(f, "array '{a}' already exists"),
            StorageError::Deleted(a) => write!(f, "array '{a}' was deleted"),
            StorageError::Io(m) => write!(f, "storage I/O error: {m}"),
            StorageError::Protocol(m) => write!(f, "storage protocol error: {m}"),
            StorageError::IoFailed(m) => write!(f, "storage read failed: {m}"),
            StorageError::Timeout(m) => write!(f, "storage request timed out: {m}"),
        }
    }
}

impl std::error::Error for StorageError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, StorageError>;
