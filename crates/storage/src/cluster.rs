//! Cluster wiring: mounts the storage architecture of paper Fig. 2 onto a
//! filter-stream layout.
//!
//! One storage filter instance and one I/O filter instance per node; storage
//! filters are fully peer-to-peer connected (an addressed self-loop stream);
//! each storage talks to its node's I/O filter over an aligned stream. Any
//! number of client filter declarations can then be attached with
//! [`StorageCluster::attach_clients`], which assigns each declaration a
//! contiguous global client-id range used as the reply address space.

use crate::filterimpl::{ports, ClientPortMap, IoFilter, StorageFilter};
use crate::node::{NodeConfig, RecoveryPolicy};
use dooc_filterstream::{Delivery, FilterId, Layout, NodeId};
use dooc_sync::OrderedMutex;
use std::path::PathBuf;
use std::sync::Arc;

/// Capacity of storage-related streams (requests can be large block
/// payloads; a modest bound keeps backpressure effective).
const STORAGE_STREAM_CAP: usize = 1024;

/// Handle to a storage cluster mounted in a layout.
pub struct StorageCluster {
    /// The storage filter declaration (one instance per node).
    pub storage: FilterId,
    /// The I/O filter declaration (one instance per node).
    pub io: FilterId,
    nnodes: usize,
    port_map: Arc<OrderedMutex<ClientPortMap>>,
    next_client_port: usize,
    next_client_base: u64,
}

impl StorageCluster {
    /// Mounts storage + I/O filters for `scratch_dirs.len()` nodes into
    /// `layout`. Node `i` uses `scratch_dirs[i]` and `memory_budget` bytes of
    /// block cache. Blocks already present in a scratch directory are
    /// discovered at startup.
    pub fn build(
        layout: &mut Layout,
        scratch_dirs: Vec<PathBuf>,
        memory_budget: u64,
        seed: u64,
    ) -> Self {
        Self::build_with(
            layout,
            scratch_dirs,
            memory_budget,
            seed,
            RecoveryPolicy::default(),
        )
    }

    /// Like [`StorageCluster::build`] but with an explicit fault-recovery
    /// policy (I/O retry budget, fetch deadlines) applied to every node.
    pub fn build_with(
        layout: &mut Layout,
        scratch_dirs: Vec<PathBuf>,
        memory_budget: u64,
        seed: u64,
        recovery: RecoveryPolicy,
    ) -> Self {
        let nnodes = scratch_dirs.len();
        assert!(nnodes > 0, "a cluster needs at least one node");
        let nodes: Vec<NodeId> = (0..nnodes).map(NodeId).collect();
        let port_map = Arc::new(OrderedMutex::new(
            "storage.cluster.port_map",
            ClientPortMap::default(),
        ));

        let pm = Arc::clone(&port_map);
        let dirs = scratch_dirs.clone();
        let storage = layout.add_replicated("storage", nodes.clone(), move |i| {
            let cfg = NodeConfig {
                node: i as u64,
                nnodes: nnodes as u64,
                memory_budget,
                seed: seed.wrapping_add(i as u64),
                recovery: recovery.clone(),
            };
            // Snapshot the port map at spawn time (attach_clients must run
            // before Runtime::run, which is guaranteed since both consume
            // the layout by value).
            let snapshot = {
                let map = pm.lock();
                // dooc-race: this read on the filter thread must be ordered
                // (by the map's lock) against attach_clients' writes.
                dooc_sync::record::data_read(dooc_sync::record::addr_of(&*pm));
                Arc::new(map.clone())
            };
            Box::new(StorageFilter::recoverable(cfg, dirs[i].clone(), snapshot))
        });

        let dirs = scratch_dirs;
        let io = layout.add_replicated("io", nodes, move |i| {
            Box::new(IoFilter::new(dirs[i].clone()))
        });

        // Peer-to-peer: addressed self-loop between storage instances.
        layout.connect_with(
            storage,
            ports::PEER_OUT,
            storage,
            ports::PEER_IN,
            Delivery::Addressed,
            STORAGE_STREAM_CAP,
        );
        // Storage <-> I/O, instance-aligned.
        layout.connect_with(
            storage,
            ports::IO_OUT,
            io,
            ports::IO_CMD,
            Delivery::Aligned,
            STORAGE_STREAM_CAP,
        );
        layout.connect_with(
            io,
            ports::IO_REPLY,
            storage,
            ports::IO_IN,
            Delivery::Aligned,
            STORAGE_STREAM_CAP,
        );

        Self {
            storage,
            io,
            nnodes,
            port_map,
            next_client_port: 0,
            next_client_base: 0,
        }
    }

    /// Number of nodes in the cluster.
    pub fn nnodes(&self) -> usize {
        self.nnodes
    }

    /// Attaches a client filter declaration with `ninstances` instances.
    ///
    /// Wires `clients.{req_port} -> storage.clients` (addressed: instance `j`
    /// sends to its node's storage) and a dedicated addressed reply stream
    /// back to `clients.{rep_port}`. Returns the declaration's base global
    /// client id: instance `j` must identify itself as `base + j` in
    /// requests (pass `base + ctx.instance` to
    /// [`crate::StorageClient::new`]).
    pub fn attach_clients(
        &mut self,
        layout: &mut Layout,
        clients: FilterId,
        ninstances: usize,
        req_port: &str,
        rep_port: &str,
    ) -> u64 {
        let base = self.next_client_base;
        let reply_out = format!("to_clients_{}", self.next_client_port);
        self.next_client_port += 1;
        self.next_client_base += ninstances as u64;
        {
            let mut map = self.port_map.lock();
            // dooc-race twin of the spawn-time snapshot read: writes to the
            // shared port map stay ordered by its lock.
            dooc_sync::record::data_write(dooc_sync::record::addr_of(&*self.port_map));
            map.entries
                .push((reply_out.clone(), base, ninstances as u64));
        }
        layout.connect_with(
            clients,
            req_port,
            self.storage,
            ports::CLIENTS_IN,
            Delivery::Addressed,
            STORAGE_STREAM_CAP,
        );
        layout.connect_with(
            self.storage,
            reply_out,
            clients,
            rep_port,
            Delivery::Addressed,
            STORAGE_STREAM_CAP,
        );
        base
    }
}
