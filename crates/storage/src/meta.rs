//! Array geometry and interval addressing.
//!
//! "In our current prototype, the storage subsystem exposes the data to the
//! filters as one dimensional arrays. … Arrays can be of arbitrary size, but
//! they are structured in blocks. If one needs to access data that span
//! across multiple blocks, it is required to use one interval per block."

use crate::{Result, StorageError};

/// Geometry of a distributed array: a byte length split into fixed-size
/// blocks (the last block may be shorter).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArrayMeta {
    /// Cluster-unique array name.
    pub name: String,
    /// Total length in bytes.
    pub len: u64,
    /// Block size in bytes (> 0).
    pub block_size: u64,
}

impl ArrayMeta {
    /// Creates geometry, validating the block size.
    pub fn new(name: impl Into<String>, len: u64, block_size: u64) -> Self {
        assert!(block_size > 0, "block size must be positive");
        Self {
            name: name.into(),
            len,
            block_size,
        }
    }

    /// Number of blocks (`ceil(len / block_size)`; zero-length arrays have
    /// zero blocks).
    pub fn nblocks(&self) -> u64 {
        self.len.div_ceil(self.block_size)
    }

    /// Length in bytes of block `b`.
    pub fn block_len(&self, b: u64) -> u64 {
        debug_assert!(b < self.nblocks());
        if b + 1 == self.nblocks() && !self.len.is_multiple_of(self.block_size) {
            self.len % self.block_size
        } else {
            self.block_size
        }
    }

    /// Global byte offset where block `b` starts.
    pub fn block_start(&self, b: u64) -> u64 {
        b * self.block_size
    }

    /// Resolves a global interval to `(block, offset-within-block)`; errors
    /// if the interval is empty, out of bounds, or spans a block boundary.
    pub fn locate(&self, iv: Interval) -> Result<(u64, u64)> {
        if iv.len == 0 {
            return Err(StorageError::BadInterval {
                array: self.name.clone(),
                reason: "zero-length interval".into(),
            });
        }
        if iv.offset + iv.len > self.len {
            return Err(StorageError::BadInterval {
                array: self.name.clone(),
                reason: format!(
                    "interval [{}, {}) exceeds array length {}",
                    iv.offset,
                    iv.offset + iv.len,
                    self.len
                ),
            });
        }
        let block = iv.offset / self.block_size;
        let last_block = (iv.offset + iv.len - 1) / self.block_size;
        if block != last_block {
            return Err(StorageError::BadInterval {
                array: self.name.clone(),
                reason: format!(
                    "interval [{}, {}) spans blocks {} and {} — use one interval per block",
                    iv.offset,
                    iv.offset + iv.len,
                    block,
                    last_block
                ),
            });
        }
        Ok((block, iv.offset - block * self.block_size))
    }

    /// Splits an arbitrary global `[offset, offset+len)` range into per-block
    /// intervals (the helper an application uses when a logical access spans
    /// blocks — "one can easily build an abstraction that allows to access
    /// memory independently of the block it is stored in").
    pub fn split(&self, offset: u64, len: u64) -> Vec<Interval> {
        let mut out = Vec::new();
        let mut cur = offset;
        let end = offset + len;
        while cur < end {
            let block = cur / self.block_size;
            let block_end = ((block + 1) * self.block_size).min(end);
            out.push(Interval {
                offset: cur,
                len: block_end - cur,
            });
            cur = block_end;
        }
        out
    }
}

/// A byte interval of an array (global coordinates).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Interval {
    /// Starting byte offset.
    pub offset: u64,
    /// Length in bytes.
    pub len: u64,
}

impl Interval {
    /// Creates an interval.
    pub fn new(offset: u64, len: u64) -> Self {
        Self { offset, len }
    }

    /// One-past-the-end offset.
    pub fn end(&self) -> u64 {
        self.offset + self.len
    }
}

/// Identity of one block of one array.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockKey {
    /// Array name.
    pub array: String,
    /// Block index.
    pub block: u64,
}

impl BlockKey {
    /// Creates a key.
    pub fn new(array: impl Into<String>, block: u64) -> Self {
        Self {
            array: array.into(),
            block,
        }
    }
}

impl std::fmt::Display for BlockKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}[{}]", self.array, self.block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> ArrayMeta {
        ArrayMeta::new("a", 100, 32)
    }

    #[test]
    fn nblocks_and_lengths() {
        let m = meta();
        assert_eq!(m.nblocks(), 4);
        assert_eq!(m.block_len(0), 32);
        assert_eq!(m.block_len(3), 4, "trailing partial block");
        let exact = ArrayMeta::new("b", 64, 32);
        assert_eq!(exact.nblocks(), 2);
        assert_eq!(exact.block_len(1), 32);
    }

    #[test]
    fn zero_length_array_has_no_blocks() {
        assert_eq!(ArrayMeta::new("z", 0, 8).nblocks(), 0);
    }

    #[test]
    fn locate_within_block() {
        let m = meta();
        assert_eq!(m.locate(Interval::new(0, 32)).expect("ok"), (0, 0));
        assert_eq!(m.locate(Interval::new(40, 8)).expect("ok"), (1, 8));
        assert_eq!(m.locate(Interval::new(96, 4)).expect("ok"), (3, 0));
    }

    #[test]
    fn locate_rejects_spanning() {
        let m = meta();
        assert!(matches!(
            m.locate(Interval::new(30, 4)),
            Err(StorageError::BadInterval { .. })
        ));
    }

    #[test]
    fn locate_rejects_out_of_bounds() {
        let m = meta();
        assert!(m.locate(Interval::new(98, 4)).is_err());
        assert!(m.locate(Interval::new(100, 1)).is_err());
    }

    #[test]
    fn locate_rejects_empty() {
        assert!(meta().locate(Interval::new(10, 0)).is_err());
    }

    #[test]
    fn split_covers_range_per_block() {
        let m = meta();
        let parts = m.split(30, 40); // spans blocks 0,1,2
        assert_eq!(
            parts,
            vec![
                Interval::new(30, 2),
                Interval::new(32, 32),
                Interval::new(64, 6)
            ]
        );
        let total: u64 = parts.iter().map(|p| p.len).sum();
        assert_eq!(total, 40);
        for p in parts {
            assert!(m.locate(p).is_ok(), "each part is single-block");
        }
    }

    #[test]
    fn split_of_aligned_range_is_single() {
        let m = meta();
        assert_eq!(m.split(32, 32), vec![Interval::new(32, 32)]);
        assert_eq!(m.split(0, 0), vec![]);
    }

    #[test]
    fn block_key_display() {
        assert_eq!(format!("{}", BlockKey::new("x", 3)), "x[3]");
    }
}
