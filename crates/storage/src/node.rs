//! The storage filter's protocol state machine.
//!
//! [`StorageState`] is deliberately *synchronous and I/O-free*: every message
//! handler consumes one message and returns the list of [`Action`]s the
//! surrounding filter must perform (reply to a client, message a peer, issue
//! an I/O command). This makes the entire protocol — request logging,
//! write-once enforcement, peer probing, LRU reclamation — unit-testable
//! without threads or a filesystem.
//!
//! Protocol recap (paper §III-B):
//! * "When a request is received, either the storage has all the information
//!   to answer it and it replies immediately, or it logs the request and
//!   replies back when all the relevant information becomes available."
//! * "When a data interval which is not contained in the storage is
//!   requested, since global mapping … is not replicated on each node but
//!   instead partitioned, the storage asks the storage filter on a randomly
//!   selected compute node for this interval. To avoid asking for an
//!   interval multiple times, the storage keeps track of which interval it
//!   has requested from other computing nodes."
//! * "All reading of the data stored on the filesystem are performed
//!   implicitly … the write operations are performed explicitly upon request
//!   of a filter."
//! * "When reclaiming memory, the storage reclaims blocks that are stored on
//!   the disk … and which are not currently used according to the Least
//!   Recently Used policy."

use crate::meta::{ArrayMeta, Interval};
use crate::proto::{BlockAvail, ClientMsg, IoCmd, IoReply, MapEntry, NodeStats, PeerMsg, Reply};
use crate::rangeset::RangeSet;
use crate::StorageError;
use bytes::Bytes;
use dooc_obs::metrics::{counter, Counter};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, HashMap};
use std::sync::OnceLock;

/// Storage-layer metric handles, resolved once. Forced in
/// [`StorageState::new`] so every counter appears (zeroed) in metric dumps
/// even before its first event.
struct StorageObs {
    bytes_loaded: &'static Counter,
    blocks_loaded: &'static Counter,
    blocks_evicted: &'static Counter,
    blocks_spilled: &'static Counter,
    blocks_sealed: &'static Counter,
    read_hits: &'static Counter,
    read_misses: &'static Counter,
    io_retries: &'static Counter,
    fetch_retries: &'static Counter,
}

fn storage_obs() -> &'static StorageObs {
    static O: OnceLock<StorageObs> = OnceLock::new();
    O.get_or_init(|| StorageObs {
        bytes_loaded: counter("storage.bytes_loaded"),
        blocks_loaded: counter("storage.blocks_loaded"),
        blocks_evicted: counter("storage.blocks_evicted"),
        blocks_spilled: counter("storage.blocks_spilled"),
        blocks_sealed: counter("storage.blocks_sealed"),
        read_hits: counter("storage.read_hits"),
        read_misses: counter("storage.read_misses"),
        io_retries: counter("storage.io_retries"),
        fetch_retries: counter("storage.fetch_retries"),
    })
}

/// Fault-recovery knobs of one storage node. The defaults keep the seed
/// behaviour except for bounded I/O-read retries: fetch deadlines and stall
/// limits are opt-in because a fetch may legitimately wait forever for a
/// producer task that has not run yet.
#[derive(Clone, Debug)]
pub struct RecoveryPolicy {
    /// How many times a failed out-of-core *read* is re-issued before the
    /// waiters get [`StorageError::IoFailed`]. 0 disables retries.
    pub io_retry_max: u32,
    /// Ticks to wait before the first read retry; doubles on every further
    /// attempt (exponential backoff).
    pub io_retry_backoff_ticks: u64,
    /// Ticks an in-flight peer fetch may stay unanswered before the probe is
    /// abandoned and the next random peer is asked. `None` waits forever
    /// (seed behaviour: only an explicit `FetchNotFound` moves on).
    pub fetch_deadline_ticks: Option<u64>,
    /// How many whole stall/retry rounds (every peer denied, tick, re-probe
    /// everyone) a fetch may go through before its waiters get
    /// [`StorageError::Timeout`]. `None` retries forever (seed behaviour).
    pub stall_retry_max: Option<u64>,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        Self {
            io_retry_max: 2,
            io_retry_backoff_ticks: 1,
            fetch_deadline_ticks: None,
            stall_retry_max: None,
        }
    }
}

/// Configuration of one storage node.
#[derive(Clone, Debug)]
pub struct NodeConfig {
    /// This node's id (also its peer-stream instance index).
    pub node: u64,
    /// Total number of nodes in the cluster.
    pub nnodes: u64,
    /// Memory budget in bytes; exceeding it triggers reclamation.
    pub memory_budget: u64,
    /// Seed for random peer selection.
    pub seed: u64,
    /// Retry/deadline policy for I/O errors and peer fetches.
    pub recovery: RecoveryPolicy,
}

/// Side effect requested by a handler.
#[derive(Clone, Debug, PartialEq)]
pub enum Action {
    /// Send a reply to a local client instance.
    Reply {
        /// Destination client instance.
        client: u64,
        /// The reply.
        reply: Reply,
    },
    /// Send a message to a peer storage node.
    Peer {
        /// Destination node id.
        node: u64,
        /// The message.
        msg: PeerMsg,
    },
    /// Issue a command to the local I/O filter.
    Io(IoCmd),
}

/// Resident form of a block.
enum BlockMem {
    /// Being assembled from write intervals; partial reads copy out.
    Building(Vec<u8>),
    /// Fully sealed; reads are zero-copy slices.
    Sealed(Bytes),
}

/// A local read waiting for data ("logged" request).
struct ReadWaiter {
    req: u64,
    client: u64,
    /// Offset within the block.
    off: u64,
    len: u64,
}

/// State of an outstanding remote fetch for one block.
struct FetchState {
    /// Our fetch request id.
    req: u64,
    /// Peers already asked (includes the one currently in flight).
    tried: Vec<u64>,
    /// Ticks the current probe has been in flight (for the optional
    /// [`RecoveryPolicy::fetch_deadline_ticks`] deadline).
    age: u64,
}

/// Deliberately seeded invariant violations for dooc-check's schedule
/// exploration negative tests. Each flag disables one guard the positive
/// exploration tests prove necessary; the explorer must then find an
/// interleaving that turns the missing guard into an observable failure.
/// Without the `model` feature every flag is a compile-time `false`
/// ([`StorageState::bug`]), so real builds carry no extra state or branches.
#[derive(Debug, Default, Clone, Copy)]
pub struct SeededBugs {
    /// Eviction ignores `pins`: blocks with live read guards get dropped.
    pub evict_ignores_pins: bool,
    /// [`StorageState::map_delta`] detects changes but never bumps
    /// `map_version`, so incremental deltas go stale instead of composing.
    pub skip_map_version_bump: bool,
    /// Reclaim drops not-yet-spilled blocks without writing them first,
    /// losing the only copy of the data.
    pub evict_skips_spill: bool,
}

/// A failed out-of-core read scheduled for re-issue at tick `due`.
struct IoRetry {
    due: u64,
    array: String,
    block: u64,
    len: u64,
}

#[derive(Default)]
struct BlockInfo {
    /// Ranges sealed (written + released), block-local coordinates.
    sealed: RangeSet,
    /// Ranges with an outstanding write grant.
    write_granted: RangeSet,
    /// Resident bytes, if any.
    mem: Option<BlockMem>,
    /// A full sealed copy exists in the local scratch directory.
    on_disk: bool,
    /// An I/O read for this block is in flight.
    loading: bool,
    /// An I/O write (spill or persist) for this block is in flight.
    spilling: bool,
    /// Reclaim memory as soon as the in-flight spill completes.
    evict_after_spill: bool,
    /// Active grants (read pins + write grants); pinned blocks are not
    /// reclaimable.
    pins: u64,
    /// LRU clock value of the last access.
    last_use: u64,
    /// Logged local reads waiting for the data.
    read_waiters: Vec<ReadWaiter>,
    /// Peer fetches waiting for this block to seal (req, from_node).
    peer_waiters: Vec<(u64, u64)>,
    /// Outstanding remote fetch, if this node is trying to pull the block.
    fetch: Option<FetchState>,
    /// Availability last reported through a map query (lazy change
    /// detection for [`ClientMsg::MapSince`] deltas).
    last_avail: Option<BlockAvail>,
}

impl BlockInfo {
    fn fully_sealed(&self, block_len: u64) -> bool {
        self.sealed.covered() == block_len
    }

    /// Copies `[off, off+len)` out of the resident buffer, if any.
    fn slice_resident(&self, off: u64, len: u64) -> Option<Bytes> {
        match self.mem.as_ref()? {
            BlockMem::Sealed(b) => Some(b.slice(off as usize..(off + len) as usize)),
            BlockMem::Building(v) => Some(Bytes::copy_from_slice(
                &v[off as usize..(off + len) as usize],
            )),
        }
    }

    fn avail(&self, block_len: u64) -> BlockAvail {
        if self.fully_sealed(block_len) {
            if matches!(self.mem, Some(BlockMem::Sealed(_))) {
                BlockAvail::InMemory
            } else if self.on_disk {
                BlockAvail::OnDisk
            } else {
                // Sealed but only building-buffer resident (transient) or
                // remote; report as in-memory if resident at all.
                if self.mem.is_some() {
                    BlockAvail::InMemory
                } else {
                    BlockAvail::Unwritten
                }
            }
        } else if self.sealed.is_empty() {
            BlockAvail::Unwritten
        } else {
            BlockAvail::Partial
        }
    }
}

struct ArrayInfo {
    meta: ArrayMeta,
    /// Created or discovered on this node (its "home"): reads of unwritten
    /// intervals may be logged here instead of erroring.
    home: bool,
    blocks: HashMap<u64, BlockInfo>,
    /// Pending persist: (req, client, blocks whose disk write is awaited).
    persist: Option<(u64, u64, std::collections::HashSet<u64>)>,
    /// Map version at which any of this array's block availabilities last
    /// changed. Deltas ship at array granularity: a client folding a delta
    /// replaces the array's whole block set, which also makes block re-keys
    /// (placeholder-geometry resolution) expressible.
    avail_version: u64,
    /// Block count at the last map query (detects block additions/removals
    /// that leave every surviving block's availability untouched).
    last_nblocks: usize,
}

impl ArrayInfo {
    fn new(meta: ArrayMeta, home: bool) -> Self {
        Self {
            meta,
            home,
            blocks: HashMap::new(),
            persist: None,
            avail_version: 0,
            last_nblocks: 0,
        }
    }
}

/// A block found in the scratch directory at startup.
#[derive(Clone, Debug)]
pub struct DiscoveredBlock {
    /// Array geometry from the file (single-file arrays) or sidecar.
    pub meta: ArrayMeta,
    /// Block index present on disk.
    pub block: u64,
}

/// The storage node state machine.
pub struct StorageState {
    cfg: NodeConfig,
    arrays: HashMap<String, ArrayInfo>,
    /// Tombstones of deleted arrays, with the map version of the deletion.
    deleted: HashMap<String, u64>,
    /// Monotonic availability-map version; bumped whenever a map query
    /// detects a changed array or an array is deleted. Clients use it as the
    /// `since` cursor of [`ClientMsg::MapSince`].
    map_version: u64,
    /// LRU index: clock value -> (array, block). Values are unique.
    lru: BTreeMap<u64, (String, u64)>,
    clock: u64,
    /// Outstanding fetch request ids -> (array, block).
    fetches: HashMap<u64, (String, u64)>,
    next_fetch_req: u64,
    resident: u64,
    /// Bytes of blocks currently pinned (pins > 0); feeds the
    /// `pinned_peak_bytes` high-watermark in [`NodeStats`] that the static
    /// audit's residency bound must dominate.
    pinned_now: u64,
    stats: NodeStats,
    rng: StdRng,
    /// Fetches that exhausted every peer without an answer: retried on the
    /// next tick ("replies back when all the relevant information becomes
    /// available" — the information may simply not exist *yet*).
    stalled: Vec<(String, u64, u64)>,
    /// Monotonic tick counter ([`Self::on_tick`]); the clock retries and
    /// deadlines are measured against.
    tick: u64,
    /// Failed out-of-core reads awaiting their backoff tick.
    io_retry: Vec<IoRetry>,
    /// Read-retry attempts already spent per block.
    io_attempts: HashMap<(String, u64), u32>,
    /// Completed stall/re-probe rounds per block (for
    /// [`RecoveryPolicy::stall_retry_max`]).
    stall_rounds: HashMap<(String, u64), u64>,
    /// This node's clients are quiescent (local Shutdown consumed).
    local_done: bool,
    /// Number of peers that sent a `Bye`.
    byes: u64,
    /// Seeded invariant violations for negative exploration tests.
    #[cfg(feature = "model")]
    seeded_bugs: SeededBugs,
}

impl StorageState {
    /// Creates a node, registering any blocks discovered in its scratch
    /// directory ("upon start of the system, the storage looks for files in
    /// that directory and records the name of the arrays as well as their
    /// sizes").
    pub fn new(cfg: NodeConfig, discovered: Vec<DiscoveredBlock>) -> Self {
        // Register the storage metrics up front so dumps show them zeroed
        // rather than omitting layers that saw no traffic.
        let _ = storage_obs();
        let rng = StdRng::seed_from_u64(cfg.seed ^ 0xD00C_D00C);
        let mut st = Self {
            cfg,
            arrays: HashMap::new(),
            deleted: HashMap::new(),
            map_version: 0,
            lru: BTreeMap::new(),
            clock: 0,
            fetches: HashMap::new(),
            next_fetch_req: 0,
            resident: 0,
            pinned_now: 0,
            stats: NodeStats::default(),
            rng,
            stalled: Vec::new(),
            tick: 0,
            io_retry: Vec::new(),
            io_attempts: HashMap::new(),
            stall_rounds: HashMap::new(),
            local_done: false,
            byes: 0,
            #[cfg(feature = "model")]
            seeded_bugs: SeededBugs::default(),
        };
        for d in discovered {
            let entry = st
                .arrays
                .entry(d.meta.name.clone())
                .or_insert_with(|| ArrayInfo::new(d.meta.clone(), true));
            let block_len = entry.meta.block_len(d.block);
            let info = entry.blocks.entry(d.block).or_default();
            info.sealed = RangeSet::from_range(0, block_len);
            info.on_disk = true;
        }
        st.stats.budget_bytes = st.cfg.memory_budget;
        st
    }

    /// Plants deliberate bugs for negative schedule-exploration tests.
    #[cfg(feature = "model")]
    pub fn set_seeded_bugs(&mut self, bugs: SeededBugs) {
        self.seeded_bugs = bugs;
    }

    #[cfg(feature = "model")]
    fn bug(&self) -> SeededBugs {
        self.seeded_bugs
    }

    #[cfg(not(feature = "model"))]
    fn bug(&self) -> SeededBugs {
        SeededBugs::default()
    }

    /// Model-build inspection: `(pins, resident_in_memory, on_disk)` for a
    /// block, if known. Exploration tests assert residency invariants (e.g.
    /// "evict never fires under a live guard") against this directly.
    #[cfg(feature = "model")]
    pub fn debug_block(&self, array: &str, block: u64) -> Option<(u64, bool, bool)> {
        let info = self.arrays.get(array)?.blocks.get(&block)?;
        Some((info.pins, info.mem.is_some(), info.on_disk))
    }

    /// Current counters.
    pub fn stats(&self) -> NodeStats {
        let mut s = self.stats;
        s.resident_bytes = self.resident;
        s
    }

    /// Number of bytes currently resident.
    pub fn resident_bytes(&self) -> u64 {
        self.resident
    }

    /// Current availability-map version (monotonic; 0 = nothing reported).
    pub fn map_version(&self) -> u64 {
        self.map_version
    }

    /// Computes the incremental availability map for a client that last saw
    /// version `since` (0 = full snapshot). Changes are detected lazily by
    /// comparing each block's current availability against the one recorded
    /// at the previous query, so handlers never need to stamp versions at
    /// every mutation site. Returns `(version, entries, deleted)`; `entries`
    /// holds *every* block of each changed array (replacement granularity is
    /// the array — see [`ArrayInfo::avail_version`]).
    fn map_delta(&mut self, since: u64) -> (u64, Vec<MapEntry>, Vec<String>) {
        let bugs = self.bug();
        let mut entries = Vec::new();
        for (name, ainfo) in self.arrays.iter_mut() {
            let meta = ainfo.meta.clone();
            let mut changed = ainfo.blocks.len() != ainfo.last_nblocks;
            ainfo.last_nblocks = ainfo.blocks.len();
            for (&b, info) in ainfo.blocks.iter_mut() {
                let now = info.avail(meta.block_len(b));
                if info.last_avail != Some(now) {
                    info.last_avail = Some(now);
                    changed = true;
                }
            }
            if changed && !bugs.skip_map_version_bump {
                self.map_version += 1;
                ainfo.avail_version = self.map_version;
            }
            if ainfo.avail_version > since {
                for (&b, info) in ainfo.blocks.iter() {
                    entries.push(MapEntry {
                        array: name.clone(),
                        block: b,
                        state: info.avail(meta.block_len(b)),
                    });
                }
            }
        }
        entries.sort_by(|a, b| (&a.array, a.block).cmp(&(&b.array, b.block)));
        let mut deleted: Vec<String> = self
            .deleted
            .iter()
            .filter(|(_, &v)| v > since)
            .map(|(a, _)| a.clone())
            .collect();
        deleted.sort();
        (self.map_version, entries, deleted)
    }

    /// Marks the local side quiescent without a Shutdown message (used when
    /// every client link closed, e.g. after a client crash). Returns the
    /// `Bye` broadcast actions if this is the first quiescence signal.
    pub fn force_local_done(&mut self) -> Vec<Action> {
        if self.local_done {
            return Vec::new();
        }
        self.handle_client(ClientMsg::Shutdown)
    }

    /// The whole cluster is quiescent: safe to close peer and I/O links.
    pub fn ready_to_exit(&self) -> bool {
        self.local_done && self.byes == self.cfg.nnodes.saturating_sub(1)
    }

    /// Are any remote fetches stalled awaiting a retry?
    pub fn has_stalled_fetches(&self) -> bool {
        !self.stalled.is_empty()
    }

    /// Is this node at a locally-quiescent point where a fail-stop crash
    /// loses no unrecoverable state? True when no grant is outstanding, no
    /// request is logged, no I/O or fetch is in flight, and every sealed
    /// byte is safe on the local disk. Fault injection
    /// (`storage.node.crash`) only fires at such points: a crash-restart
    /// then forgets nothing that cannot be rebuilt from the scratch
    /// directory, the metadata journal, and peer retries.
    pub fn crash_safe(&self) -> bool {
        if !self.fetches.is_empty()
            || !self.stalled.is_empty()
            || !self.io_retry.is_empty()
            || self.local_done
        {
            return false;
        }
        self.arrays.values().all(|a| {
            a.persist.is_none()
                && a.blocks.iter().all(|(&b, i)| {
                    i.pins == 0
                        && i.write_granted.is_empty()
                        && !i.loading
                        && !i.spilling
                        && i.read_waiters.is_empty()
                        && i.peer_waiters.is_empty()
                        && i.fetch.is_none()
                        && (i.sealed.is_empty()
                            || (i.fully_sealed(a.meta.block_len(b)) && i.on_disk))
                })
        })
    }

    /// Does the state machine need periodic [`Self::on_tick`] calls right
    /// now? True while fetches are stalled, failed reads await their backoff
    /// tick, or in-flight fetches are aging against a deadline.
    pub fn needs_tick(&self) -> bool {
        !self.stalled.is_empty()
            || !self.io_retry.is_empty()
            || (self.cfg.recovery.fetch_deadline_ticks.is_some() && !self.fetches.is_empty())
    }

    /// One step of the recovery clock. Retries every stalled fetch with a
    /// fresh random probe cycle (or times its waiters out once
    /// [`RecoveryPolicy::stall_retry_max`] rounds are spent), re-issues
    /// failed reads whose backoff expired, and abandons in-flight peer
    /// probes older than [`RecoveryPolicy::fetch_deadline_ticks`]. Called
    /// periodically by the storage filter while [`Self::needs_tick`].
    pub fn on_tick(&mut self) -> Vec<Action> {
        self.tick += 1;
        let mut out = Vec::new();
        // Stalled fetches: every peer denied in the last round.
        let stall_max = self.cfg.recovery.stall_retry_max;
        for (array, block, offset) in std::mem::take(&mut self.stalled) {
            let still_wanted = self
                .arrays
                .get(&array)
                .and_then(|a| a.blocks.get(&block))
                .map(|i| !i.read_waiters.is_empty() && i.fetch.is_none() && i.mem.is_none())
                .unwrap_or(false);
            if !still_wanted {
                self.stall_rounds.remove(&(array, block));
                continue;
            }
            let rounds = self
                .stall_rounds
                .entry((array.clone(), block))
                .and_modify(|r| *r += 1)
                .or_insert(1);
            if stall_max.is_some_and(|max| *rounds > max) {
                // The data never appeared anywhere: stop hiding the hang.
                self.stall_rounds.remove(&(array.clone(), block));
                if let Some(info) = self
                    .arrays
                    .get_mut(&array)
                    .and_then(|a| a.blocks.get_mut(&block))
                {
                    for w in info.read_waiters.drain(..) {
                        out.push(Action::Reply {
                            client: w.client,
                            reply: Reply::Err {
                                req: w.req,
                                error: StorageError::Timeout(format!(
                                    "fetch of {array}@{block}: no peer produced the data"
                                )),
                            },
                        });
                    }
                }
                dooc_obs::instant_arg(
                    dooc_obs::Category::Fault,
                    "storage:fetch_timeout",
                    self.cfg.node as i64,
                    || format!("{array}@{block} after {stall_max:?} stall rounds"),
                );
            } else {
                storage_obs().fetch_retries.inc();
                self.start_fetch(array, block, offset, &mut out);
            }
        }
        // Failed reads whose backoff expired: re-issue the I/O command.
        // `loading` stayed true across the backoff, so no duplicate read was
        // started meanwhile.
        let tick = self.tick;
        let due: Vec<IoRetry> = {
            let (due, later) = std::mem::take(&mut self.io_retry)
                .into_iter()
                .partition(|r| r.due <= tick);
            self.io_retry = later;
            due
        };
        for r in due {
            let still_loading = self
                .arrays
                .get(&r.array)
                .and_then(|a| a.blocks.get(&r.block))
                .is_some_and(|i| i.loading);
            if !still_loading {
                self.io_attempts.remove(&(r.array, r.block));
                continue; // deleted or satisfied some other way meanwhile
            }
            storage_obs().io_retries.inc();
            dooc_obs::instant_arg(
                dooc_obs::Category::Fault,
                "storage:io_retry",
                self.cfg.node as i64,
                || format!("{}@{} re-issued", r.array, r.block),
            );
            out.push(Action::Io(IoCmd::Read {
                array: r.array,
                block: r.block,
                len: r.len,
            }));
        }
        // Age in-flight peer probes; past the deadline, treat the silent
        // peer as having answered FetchNotFound and move to the next one.
        if let Some(deadline) = self.cfg.recovery.fetch_deadline_ticks {
            let mut expired = Vec::new();
            for (&req, (array, block)) in self.fetches.iter() {
                if let Some(f) = self
                    .arrays
                    .get_mut(array)
                    .and_then(|a| a.blocks.get_mut(block))
                    .and_then(|i| i.fetch.as_mut())
                {
                    f.age += 1;
                    if f.age >= deadline {
                        expired.push(req);
                    }
                }
            }
            for req in expired {
                storage_obs().fetch_retries.inc();
                dooc_obs::instant_arg(
                    dooc_obs::Category::Fault,
                    "storage:fetch_deadline",
                    self.cfg.node as i64,
                    || format!("fetch req {req} unanswered for {deadline} ticks"),
                );
                self.fetch_setback(req, &mut out);
            }
        }
        out
    }

    // -- LRU bookkeeping ----------------------------------------------------

    fn touch(&mut self, array: &str, block: u64) {
        let Some(info) = self
            .arrays
            .get_mut(array)
            .and_then(|a| a.blocks.get_mut(&block))
        else {
            return; // unknown block: nothing to age
        };
        if info.last_use != 0 {
            self.lru.remove(&info.last_use);
        }
        self.clock += 1;
        info.last_use = self.clock;
        self.lru.insert(self.clock, (array.to_string(), block));
    }

    fn lru_remove(&mut self, last_use: u64) {
        if last_use != 0 {
            self.lru.remove(&last_use);
        }
    }

    fn charge(&mut self, bytes: u64, out: &mut Vec<Action>) {
        self.resident += bytes;
        self.reclaim(out);
    }

    fn discharge(&mut self, bytes: u64) {
        debug_assert!(self.resident >= bytes);
        self.resident -= bytes;
    }

    /// LRU reclamation: walk blocks least-recently-used first; drop sealed,
    /// unpinned, disk-backed blocks; spill sealed, unpinned, *not*-on-disk
    /// blocks through the I/O filter and drop them on completion.
    fn reclaim(&mut self, out: &mut Vec<Action>) {
        if self.resident <= self.cfg.memory_budget {
            return;
        }
        let bugs = self.bug();
        // Projected residency counts in-flight spills as already released.
        let mut projected = self.resident;
        let order: Vec<(u64, (String, u64))> =
            self.lru.iter().map(|(k, v)| (*k, v.clone())).collect();
        for (_, (array, block)) in order {
            if projected <= self.cfg.memory_budget {
                break;
            }
            let Some(ainfo) = self.arrays.get_mut(&array) else {
                continue;
            };
            let block_len = ainfo.meta.block_len(block);
            let meta = ainfo.meta.clone();
            let Some(info) = ainfo.blocks.get_mut(&block) else {
                continue;
            };
            if (info.pins > 0 && !bugs.evict_ignores_pins)
                || info.loading
                || !info.fully_sealed(block_len)
            {
                continue;
            }
            match (&info.mem, info.on_disk, info.spilling) {
                (Some(BlockMem::Sealed(_)), true, false) => {
                    info.mem = None;
                    let lu = info.last_use;
                    info.last_use = 0;
                    self.lru_remove(lu);
                    self.discharge(block_len);
                    projected -= block_len;
                    self.stats.evictions += 1;
                    storage_obs().blocks_evicted.inc();
                    dooc_obs::instant_arg(
                        dooc_obs::Category::Storage,
                        "storage:evict",
                        self.cfg.node as i64,
                        || format!("{array}@{block} (lru reclaim)"),
                    );
                }
                (Some(BlockMem::Sealed(_)), false, false) if bugs.evict_skips_spill => {
                    info.mem = None;
                    let lu = info.last_use;
                    info.last_use = 0;
                    self.lru_remove(lu);
                    self.discharge(block_len);
                    projected -= block_len;
                    self.stats.evictions += 1;
                }
                (Some(BlockMem::Sealed(data)), false, false) => {
                    info.spilling = true;
                    info.evict_after_spill = true;
                    storage_obs().blocks_spilled.inc();
                    out.push(Action::Io(IoCmd::Write {
                        array: array.clone(),
                        block,
                        len: meta.len,
                        block_size: meta.block_size,
                        data: data.clone(),
                    }));
                    projected -= block_len;
                }
                (Some(BlockMem::Sealed(_)), _, true) => {
                    info.evict_after_spill = true;
                    projected -= block_len;
                }
                _ => {}
            }
        }
    }

    // -- client messages ----------------------------------------------------

    /// Handles one client request.
    pub fn handle_client(&mut self, msg: ClientMsg) -> Vec<Action> {
        let mut out = Vec::new();
        match msg {
            ClientMsg::Create { req, client, meta } => {
                // A geometry hint (Register) may already sit here; creation
                // upgrades it to home status as long as no data exists here
                // and the geometry agrees.
                let hint_only = self.arrays.get(&meta.name).is_some_and(|a| {
                    !a.home
                        && a.blocks.values().all(|b| {
                            b.sealed.is_empty()
                                && b.write_granted.is_empty()
                                && b.mem.is_none()
                                && !b.on_disk
                        })
                });
                if let Some(a) = self.arrays.get_mut(&meta.name).filter(|_| hint_only) {
                    if a.meta.len != u64::MAX
                        && (a.meta.len != meta.len || a.meta.block_size != meta.block_size)
                    {
                        out.push(Action::Reply {
                            client,
                            reply: Reply::Err {
                                req,
                                error: StorageError::Protocol(format!(
                                    "create of '{}' conflicts with registered geometry",
                                    meta.name
                                )),
                            },
                        });
                    } else {
                        a.meta = meta;
                        a.home = true;
                        out.push(Action::Reply {
                            client,
                            reply: Reply::Created { req },
                        });
                    }
                } else if self.arrays.contains_key(&meta.name)
                    || self.deleted.contains_key(&meta.name)
                {
                    out.push(Action::Reply {
                        client,
                        reply: Reply::Err {
                            req,
                            error: StorageError::AlreadyExists(meta.name),
                        },
                    });
                } else {
                    self.arrays
                        .insert(meta.name.clone(), ArrayInfo::new(meta, true));
                    out.push(Action::Reply {
                        client,
                        reply: Reply::Created { req },
                    });
                }
            }
            ClientMsg::Register { meta } => {
                // Geometry hint: adopt only if unknown or placeholder.
                match self.arrays.get_mut(&meta.name) {
                    Some(a) if a.meta.len == u64::MAX => {
                        let name = meta.name.clone();
                        a.meta = meta;
                        self.redistribute_placeholder_waiters(&name, &mut out);
                    }
                    Some(_) => {}
                    None => {
                        if !self.deleted.contains_key(&meta.name) {
                            self.arrays
                                .insert(meta.name.clone(), ArrayInfo::new(meta, false));
                        }
                    }
                }
            }
            ClientMsg::ReadReq {
                req,
                client,
                array,
                iv,
            } => self.client_read(req, client, array, iv, &mut out),
            ClientMsg::WriteReq {
                req,
                client,
                array,
                iv,
            } => self.client_write(req, client, array, iv, &mut out),
            ClientMsg::ReleaseRead { array, iv } => self.release_read(array, iv),
            ClientMsg::ReleaseWrite {
                req,
                client,
                array,
                iv,
                data,
            } => self.release_write(req, client, array, iv, data, &mut out),
            ClientMsg::Prefetch { array, iv } => self.prefetch(array, iv, &mut out),
            ClientMsg::Persist { req, client, array } => self.persist(req, client, array, &mut out),
            ClientMsg::Delete { req, client, array } => self.delete(req, client, array, &mut out),
            ClientMsg::MapQuery { req, client } => {
                let mut entries = Vec::new();
                for (name, ainfo) in &self.arrays {
                    for (&b, info) in &ainfo.blocks {
                        entries.push(MapEntry {
                            array: name.clone(),
                            block: b,
                            state: info.avail(ainfo.meta.block_len(b)),
                        });
                    }
                }
                entries.sort_by(|a, b| (&a.array, a.block).cmp(&(&b.array, b.block)));
                out.push(Action::Reply {
                    client,
                    reply: Reply::Map { req, entries },
                });
            }
            ClientMsg::MapSince { req, client, since } => {
                // A cursor ahead of our version means the client talked to a
                // previous incarnation of this node (crash + restart): serve
                // a full snapshot so it can rebuild its mirror. The client
                // detects the regression by `version < since`.
                let since = if since > self.map_version { 0 } else { since };
                let (version, entries, deleted) = self.map_delta(since);
                out.push(Action::Reply {
                    client,
                    reply: Reply::MapDelta {
                        req,
                        version,
                        entries,
                        deleted,
                    },
                });
            }
            ClientMsg::StatsQuery { req, client } => {
                out.push(Action::Reply {
                    client,
                    reply: Reply::Stats {
                        req,
                        stats: self.stats(),
                    },
                });
            }
            ClientMsg::Evict { array } => self.explicit_evict(array, &mut out),
            ClientMsg::Shutdown => {
                if !self.local_done {
                    self.local_done = true;
                    for n in 0..self.cfg.nnodes {
                        if n != self.cfg.node {
                            out.push(Action::Peer {
                                node: n,
                                msg: PeerMsg::Bye,
                            });
                        }
                    }
                }
            }
        }
        out
    }

    /// Explicit programmer-driven eviction of an array's resident blocks.
    fn explicit_evict(&mut self, array: String, out: &mut Vec<Action>) {
        let bugs = self.bug();
        let Some(ainfo) = self.arrays.get_mut(&array) else {
            return;
        };
        let meta = ainfo.meta.clone();
        let mut freed: Vec<(u64, u64, u64)> = Vec::new(); // (block, block_len, last_use)
        for (&b, info) in ainfo.blocks.iter_mut() {
            let block_len = meta.block_len(b);
            if (info.pins > 0 && !bugs.evict_ignores_pins)
                || info.loading
                || !info.fully_sealed(block_len)
            {
                continue;
            }
            match (&info.mem, info.on_disk, info.spilling) {
                (Some(BlockMem::Sealed(_)), true, false) => {
                    info.mem = None;
                    freed.push((b, block_len, std::mem::take(&mut info.last_use)));
                }
                (Some(BlockMem::Sealed(data)), false, false) => {
                    info.spilling = true;
                    info.evict_after_spill = true;
                    storage_obs().blocks_spilled.inc();
                    out.push(Action::Io(IoCmd::Write {
                        array: array.clone(),
                        block: b,
                        len: meta.len,
                        block_size: meta.block_size,
                        data: data.clone(),
                    }));
                }
                (Some(BlockMem::Sealed(_)), _, true) => {
                    info.evict_after_spill = true;
                }
                _ => {}
            }
        }
        for (block, len, lu) in freed {
            self.lru_remove(lu);
            self.discharge(len);
            self.stats.evictions += 1;
            storage_obs().blocks_evicted.inc();
            dooc_obs::instant_arg(
                dooc_obs::Category::Storage,
                "storage:evict",
                self.cfg.node as i64,
                || format!("{array}@{block} (explicit)"),
            );
        }
    }

    /// Takes one grant on a block, charging its bytes to the pinned ledger
    /// on the 0 → 1 transition (a block's bytes count once no matter how
    /// many grants hold it) and updating the high-watermark.
    fn pin_block(pinned_now: &mut u64, stats: &mut NodeStats, info: &mut BlockInfo, bytes: u64) {
        if info.pins == 0 {
            *pinned_now += bytes;
            if *pinned_now > stats.pinned_peak_bytes {
                stats.pinned_peak_bytes = *pinned_now;
            }
        }
        info.pins += 1;
    }

    /// Drops one grant, discharging the block's bytes on the 1 → 0
    /// transition.
    fn unpin_block(pinned_now: &mut u64, info: &mut BlockInfo, bytes: u64) {
        if info.pins == 1 {
            *pinned_now = pinned_now.saturating_sub(bytes);
        }
        info.pins = info.pins.saturating_sub(1);
    }

    fn err(client: u64, req: u64, error: StorageError, out: &mut Vec<Action>) {
        out.push(Action::Reply {
            client,
            reply: Reply::Err { req, error },
        });
    }

    fn client_read(
        &mut self,
        req: u64,
        client: u64,
        array: String,
        iv: Interval,
        out: &mut Vec<Action>,
    ) {
        if self.deleted.contains_key(&array) {
            return Self::err(client, req, StorageError::Deleted(array), out);
        }
        match self.arrays.get_mut(&array) {
            Some(ainfo) => {
                let (block, off) = match ainfo.meta.locate(iv) {
                    Ok(x) => x,
                    Err(e) => return Self::err(client, req, e, out),
                };
                let block_len = ainfo.meta.block_len(block);
                let info = ainfo.blocks.entry(block).or_default();
                let sealed_here = info.sealed.covers(off, off + iv.len);
                let resident = if sealed_here {
                    info.slice_resident(off, iv.len)
                } else {
                    None
                };
                if let Some(data) = resident {
                    // Serve immediately.
                    storage_obs().read_hits.inc();
                    Self::pin_block(&mut self.pinned_now, &mut self.stats, info, block_len);
                    out.push(Action::Reply {
                        client,
                        reply: Reply::ReadReady { req, data },
                    });
                    self.touch(&array, block);
                } else if sealed_here && info.on_disk {
                    // Implicit out-of-core read.
                    storage_obs().read_misses.inc();
                    info.read_waiters.push(ReadWaiter {
                        req,
                        client,
                        off,
                        len: iv.len,
                    });
                    if !info.loading {
                        info.loading = true;
                        out.push(Action::Io(IoCmd::Read {
                            array,
                            block,
                            len: block_len,
                        }));
                    }
                } else if ainfo.home || !info.sealed.is_empty() || info.mem.is_some() {
                    // The block lives (or will live) here but the interval is
                    // not written yet: log the request.
                    storage_obs().read_misses.inc();
                    info.read_waiters.push(ReadWaiter {
                        req,
                        client,
                        off,
                        len: iv.len,
                    });
                } else {
                    // Not ours: pull the block from a peer.
                    storage_obs().read_misses.inc();
                    info.read_waiters.push(ReadWaiter {
                        req,
                        client,
                        off,
                        len: iv.len,
                    });
                    self.start_fetch(array, block, iv.offset, out);
                }
            }
            None => {
                // Unknown geometry: remember the *global* interval and probe
                // peers by offset.
                storage_obs().read_misses.inc();
                let ainfo = self.arrays.entry(array.clone()).or_insert_with(|| {
                    // Placeholder geometry: a single huge block; replaced
                    // by the real geometry when a peer answers.
                    ArrayInfo::new(ArrayMeta::new(array.clone(), u64::MAX, u64::MAX), false)
                });
                let info = ainfo.blocks.entry(0).or_default();
                info.read_waiters.push(ReadWaiter {
                    req,
                    client,
                    off: iv.offset,
                    len: iv.len,
                });
                self.start_fetch(array, 0, iv.offset, out);
            }
        }
    }

    /// Begins (or joins) a remote fetch of `array`'s block containing
    /// `offset`. `block` is this node's best guess of the block index (0 if
    /// geometry unknown — re-keyed on reply).
    fn start_fetch(&mut self, array: String, block: u64, offset: u64, out: &mut Vec<Action>) {
        let Some(ainfo) = self.arrays.get_mut(&array) else {
            return; // callers register the array first; a miss is a no-op
        };
        let info = ainfo.blocks.entry(block).or_default();
        if info.fetch.is_some() {
            return; // already in flight — "avoid asking for an interval multiple times"
        }
        let req = self.next_fetch_req;
        self.next_fetch_req += 1;
        let me = self.cfg.node;
        // Pick a random peer.
        let peer = loop {
            let p = self.rng.gen_range(0..self.cfg.nnodes);
            if p != me || self.cfg.nnodes == 1 {
                break p;
            }
        };
        info.fetch = Some(FetchState {
            req,
            tried: vec![peer],
            age: 0,
        });
        self.fetches.insert(req, (array.clone(), block));
        out.push(Action::Peer {
            node: peer,
            msg: PeerMsg::Fetch {
                req,
                from_node: me,
                array,
                offset,
            },
        });
    }

    /// One peer probe of fetch `req` came back empty — by an explicit
    /// `FetchNotFound` or by exceeding the fetch deadline. Try the next
    /// random untried peer; once every peer denied, stall the fetch for the
    /// tick loop ("the data may not exist *yet*").
    fn fetch_setback(&mut self, req: u64, out: &mut Vec<Action>) {
        let Some((array, block)) = self.fetches.get(&req).cloned() else {
            return;
        };
        let me = self.cfg.node;
        let nnodes = self.cfg.nnodes;
        let Some(ainfo) = self.arrays.get_mut(&array) else {
            return;
        };
        let offset = if ainfo.meta.len == u64::MAX {
            // Geometry unknown: waiters hold global offsets.
            ainfo
                .blocks
                .get(&block)
                .and_then(|i| i.read_waiters.first().map(|w| w.off))
                .unwrap_or(0)
        } else {
            ainfo.meta.block_start(block)
        };
        let Some(info) = ainfo.blocks.get_mut(&block) else {
            return;
        };
        let Some(fetch) = info.fetch.as_mut() else {
            return;
        };
        // Try the next random untried peer.
        let untried: Vec<u64> = (0..nnodes)
            .filter(|&n| n != me && !fetch.tried.contains(&n))
            .collect();
        if untried.is_empty() {
            // Every peer denied *right now*: the data may not exist
            // yet (the producing task has not run). Stall the fetch
            // and retry on the next tick, preserving the paper's
            // "reply when the information becomes available"
            // semantics.
            info.fetch = None;
            self.fetches.remove(&req);
            self.stalled.push((array.clone(), block, offset));
        } else {
            let peer = untried[self.rng.gen_range(0..untried.len())];
            fetch.tried.push(peer);
            fetch.age = 0;
            out.push(Action::Peer {
                node: peer,
                msg: PeerMsg::Fetch {
                    req,
                    from_node: me,
                    array: array.clone(),
                    offset,
                },
            });
        }
    }

    /// After learning real geometry for an array that had placeholder
    /// geometry, move waiters parked under block 0 (with *global* offsets) to
    /// their true blocks and fetch any block that now lacks one.
    fn redistribute_placeholder_waiters(&mut self, array: &str, out: &mut Vec<Action>) {
        let Some(ainfo) = self.arrays.get_mut(array) else {
            return;
        };
        let meta = ainfo.meta.clone();
        debug_assert_ne!(meta.len, u64::MAX, "geometry must be real now");
        let parked = ainfo.blocks.remove(&0);
        let had_fetch = parked.as_ref().and_then(|p| p.fetch.as_ref()).is_some();
        if let Some(parked) = parked {
            if let Some(f) = &parked.fetch {
                self.fetches.remove(&f.req);
            }
            if let Some(ainfo) = self.arrays.get_mut(array) {
                for w in parked.read_waiters {
                    let b = w.off / meta.block_size;
                    let local = w.off - meta.block_start(b);
                    ainfo
                        .blocks
                        .entry(b)
                        .or_default()
                        .read_waiters
                        .push(ReadWaiter {
                            req: w.req,
                            client: w.client,
                            off: local,
                            len: w.len,
                        });
                }
            }
        }
        let _ = had_fetch;
        let pending: Vec<(u64, u64)> = self
            .arrays
            .get(array)
            .map(|a| {
                a.blocks
                    .iter()
                    .filter(|(_, i)| !i.read_waiters.is_empty() && i.fetch.is_none())
                    .map(|(&b, _)| (b, meta.block_start(b)))
                    .collect()
            })
            .unwrap_or_default();
        for (b, off) in pending {
            self.start_fetch(array.to_string(), b, off, out);
        }
    }

    fn client_write(
        &mut self,
        req: u64,
        client: u64,
        array: String,
        iv: Interval,
        out: &mut Vec<Action>,
    ) {
        if self.deleted.contains_key(&array) {
            return Self::err(client, req, StorageError::Deleted(array), out);
        }
        let Some(ainfo) = self.arrays.get_mut(&array) else {
            return Self::err(client, req, StorageError::UnknownArray(array), out);
        };
        let (block, off) = match ainfo.meta.locate(iv) {
            Ok(x) => x,
            Err(e) => return Self::err(client, req, e, out),
        };
        let block_len = ainfo.meta.block_len(block);
        let info = ainfo.blocks.entry(block).or_default();
        if info.sealed.intersects(off, off + iv.len)
            || info.write_granted.intersects(off, off + iv.len)
            || info.on_disk
        {
            return Self::err(
                client,
                req,
                StorageError::Immutability(format!(
                    "interval [{}, {}) of {}[{}] already written or being written",
                    off,
                    off + iv.len,
                    array,
                    block
                )),
                out,
            );
        }
        info.write_granted.insert(off, off + iv.len);
        Self::pin_block(&mut self.pinned_now, &mut self.stats, info, block_len);
        let newly_resident = if info.mem.is_none() {
            info.mem = Some(BlockMem::Building(vec![0u8; block_len as usize]));
            true
        } else {
            false
        };
        out.push(Action::Reply {
            client,
            reply: Reply::WriteGranted { req },
        });
        self.touch(&array, block);
        if newly_resident {
            self.charge(block_len, out);
        }
    }

    fn release_read(&mut self, array: String, iv: Interval) {
        let Some(ainfo) = self.arrays.get_mut(&array) else {
            return;
        };
        let Ok((block, _)) = ainfo.meta.locate(iv) else {
            return;
        };
        let block_len = ainfo.meta.block_len(block);
        if let Some(info) = ainfo.blocks.get_mut(&block) {
            Self::unpin_block(&mut self.pinned_now, info, block_len);
        }
    }

    fn release_write(
        &mut self,
        req: u64,
        client: u64,
        array: String,
        iv: Interval,
        data: Bytes,
        out: &mut Vec<Action>,
    ) {
        let Some(ainfo) = self.arrays.get_mut(&array) else {
            return Self::err(client, req, StorageError::UnknownArray(array), out);
        };
        let (block, off) = match ainfo.meta.locate(iv) {
            Ok(x) => x,
            Err(e) => return Self::err(client, req, e, out),
        };
        if data.len() as u64 != iv.len {
            return Self::err(
                client,
                req,
                StorageError::Protocol(format!(
                    "release data length {} != interval length {}",
                    data.len(),
                    iv.len
                )),
                out,
            );
        }
        let block_len = ainfo.meta.block_len(block);
        let meta = ainfo.meta.clone();
        let Some(info) = ainfo.blocks.get_mut(&block) else {
            return Self::err(
                client,
                req,
                StorageError::Protocol("release of unknown block".into()),
                out,
            );
        };
        if !info.write_granted.covers(off, off + iv.len) {
            return Self::err(
                client,
                req,
                StorageError::Protocol(format!(
                    "release of never-granted interval [{}, {})",
                    off,
                    off + iv.len
                )),
                out,
            );
        }
        // Copy the payload into the building buffer.
        match info.mem.as_mut() {
            Some(BlockMem::Building(buf)) => {
                buf[off as usize..(off + iv.len) as usize].copy_from_slice(&data);
            }
            _ => {
                return Self::err(
                    client,
                    req,
                    StorageError::Protocol("release on non-building block".into()),
                    out,
                )
            }
        }
        info.sealed.insert(off, off + iv.len);
        storage_obs().blocks_sealed.inc();
        Self::unpin_block(&mut self.pinned_now, info, block_len);
        out.push(Action::Reply {
            client,
            reply: Reply::WriteSealed { req },
        });
        // Full seal: freeze and notify peers waiting for the whole block.
        if info.fully_sealed(block_len) {
            if let Some(BlockMem::Building(buf)) = info.mem.take() {
                info.mem = Some(BlockMem::Sealed(Bytes::from(buf)));
            }
        }
        // Serve any logged reads that are now covered.
        Self::flush_waiters(
            info,
            &meta,
            block,
            &mut self.pinned_now,
            &mut self.stats,
            out,
        );
        self.touch(&array, block);
    }

    /// Serves logged local reads whose interval is sealed and resident, and
    /// peer fetches if the block is fully sealed.
    fn flush_waiters(
        info: &mut BlockInfo,
        meta: &ArrayMeta,
        block: u64,
        pinned_now: &mut u64,
        stats: &mut NodeStats,
        out: &mut Vec<Action>,
    ) {
        let block_len = meta.block_len(block);
        let waiters = std::mem::take(&mut info.read_waiters);
        let mut still_waiting = Vec::new();
        for w in waiters {
            let covered = info.sealed.covers(w.off, w.off + w.len);
            let data = if covered {
                info.slice_resident(w.off, w.len)
            } else {
                None
            };
            match data {
                Some(data) => {
                    Self::pin_block(pinned_now, stats, info, block_len);
                    out.push(Action::Reply {
                        client: w.client,
                        reply: Reply::ReadReady { req: w.req, data },
                    });
                }
                None => still_waiting.push(w),
            }
        }
        info.read_waiters = still_waiting;
        if info.fully_sealed(block_len) {
            if let Some(BlockMem::Sealed(bytes)) = &info.mem {
                for (req, from_node) in info.peer_waiters.drain(..) {
                    stats.peer_sent_bytes += bytes.len() as u64;
                    out.push(Action::Peer {
                        node: from_node,
                        msg: PeerMsg::FetchFound {
                            req,
                            len: meta.len,
                            block_size: meta.block_size,
                            block,
                            data: bytes.clone(),
                        },
                    });
                }
            }
        }
    }

    fn prefetch(&mut self, array: String, iv: Interval, out: &mut Vec<Action>) {
        if self.deleted.contains_key(&array) {
            return;
        }
        let Some(ainfo) = self.arrays.get_mut(&array) else {
            // Unknown array: treat like a read miss without a waiter.
            self.arrays
                .entry(array.clone())
                .or_insert_with(|| {
                    ArrayInfo::new(ArrayMeta::new(array.clone(), u64::MAX, u64::MAX), false)
                })
                .blocks
                .entry(0)
                .or_default();
            self.start_fetch(array, 0, iv.offset, out);
            return;
        };
        let Ok((block, _)) = ainfo.meta.locate(iv) else {
            return; // prefetch is a hint; bad hints are dropped
        };
        let block_len = ainfo.meta.block_len(block);
        let home = ainfo.home;
        let info = ainfo.blocks.entry(block).or_default();
        if info.mem.is_some() || info.loading || info.fetch.is_some() {
            return; // already resident or on its way
        }
        if info.on_disk {
            info.loading = true;
            out.push(Action::Io(IoCmd::Read {
                array,
                block,
                len: block_len,
            }));
        } else if !home && info.sealed.is_empty() {
            self.start_fetch(array, block, iv.offset, out);
        }
        // Home + unwritten: nothing to do until a writer shows up.
    }

    fn persist(&mut self, req: u64, client: u64, array: String, out: &mut Vec<Action>) {
        let Some(ainfo) = self.arrays.get_mut(&array) else {
            return Self::err(client, req, StorageError::UnknownArray(array), out);
        };
        if ainfo.persist.is_some() {
            return Self::err(
                client,
                req,
                StorageError::Protocol("persist already in progress".into()),
                out,
            );
        }
        let meta = ainfo.meta.clone();
        let mut awaited = std::collections::HashSet::new();
        for (&b, info) in ainfo.blocks.iter_mut() {
            let block_len = meta.block_len(b);
            if info.fully_sealed(block_len) && !info.on_disk && !info.spilling {
                if let Some(BlockMem::Sealed(data)) = &info.mem {
                    info.spilling = true;
                    awaited.insert(b);
                    out.push(Action::Io(IoCmd::Write {
                        array: array.clone(),
                        block: b,
                        len: meta.len,
                        block_size: meta.block_size,
                        data: data.clone(),
                    }));
                }
            } else if info.spilling {
                awaited.insert(b); // piggyback on the in-flight spill
            }
        }
        if awaited.is_empty() {
            out.push(Action::Reply {
                client,
                reply: Reply::Persisted { req },
            });
        } else {
            ainfo.persist = Some((req, client, awaited));
        }
    }

    fn delete(&mut self, req: u64, client: u64, array: String, out: &mut Vec<Action>) {
        let Some(ainfo) = self.arrays.get(&array) else {
            return Self::err(client, req, StorageError::UnknownArray(array), out);
        };
        if ainfo.blocks.values().any(|b| b.pins > 0) {
            return Self::err(
                client,
                req,
                StorageError::Immutability(format!("delete of '{array}' while intervals are held")),
                out,
            );
        }
        let had_disk = ainfo.blocks.values().any(|b| b.on_disk);
        self.drop_array_local(&array);
        self.map_version += 1;
        self.deleted.insert(array.clone(), self.map_version);
        if had_disk {
            out.push(Action::Io(IoCmd::DeleteFiles {
                array: array.clone(),
            }));
        }
        for n in 0..self.cfg.nnodes {
            if n != self.cfg.node {
                out.push(Action::Peer {
                    node: n,
                    msg: PeerMsg::DeleteNotice {
                        array: array.clone(),
                    },
                });
            }
        }
        out.push(Action::Reply {
            client,
            reply: Reply::Deleted { req },
        });
    }

    fn drop_array_local(&mut self, array: &str) {
        if let Some(ainfo) = self.arrays.remove(array) {
            for (b, info) in ainfo.blocks {
                if info.mem.is_some() {
                    self.discharge(ainfo.meta.block_len(b));
                }
                self.lru_remove(info.last_use);
                if let Some(f) = info.fetch {
                    self.fetches.remove(&f.req);
                }
            }
        }
    }

    // -- peer messages ------------------------------------------------------

    /// Handles one peer message arriving from node `from`.
    pub fn handle_peer(&mut self, from: u64, msg: PeerMsg) -> Vec<Action> {
        let mut out = Vec::new();
        match msg {
            PeerMsg::Fetch {
                req,
                from_node,
                array,
                offset,
            } => {
                debug_assert_eq!(from, from_node, "fetch reply address mismatch");
                match self.arrays.get_mut(&array) {
                    Some(ainfo) if ainfo.meta.len != u64::MAX => {
                        let meta = ainfo.meta.clone();
                        if offset >= meta.len {
                            out.push(Action::Peer {
                                node: from_node,
                                msg: PeerMsg::FetchNotFound { req },
                            });
                            return out;
                        }
                        let block = offset / meta.block_size;
                        let block_len = meta.block_len(block);
                        let info = ainfo.blocks.entry(block).or_default();
                        if let Some(BlockMem::Sealed(bytes)) = &info.mem {
                            self.stats.peer_sent_bytes += bytes.len() as u64;
                            out.push(Action::Peer {
                                node: from_node,
                                msg: PeerMsg::FetchFound {
                                    req,
                                    len: meta.len,
                                    block_size: meta.block_size,
                                    block,
                                    data: bytes.clone(),
                                },
                            });
                            self.touch(&array, block);
                        } else if info.on_disk {
                            info.peer_waiters.push((req, from_node));
                            if !info.loading {
                                info.loading = true;
                                out.push(Action::Io(IoCmd::Read {
                                    array,
                                    block,
                                    len: block_len,
                                }));
                            }
                        } else if ainfo.home
                            || !info.write_granted.is_empty()
                            || !info.sealed.is_empty()
                            || info.mem.is_some()
                        {
                            // Production is local (home, or writes already in
                            // flight): log the request, answer once sealed.
                            info.peer_waiters.push((req, from_node));
                        } else {
                            out.push(Action::Peer {
                                node: from_node,
                                msg: PeerMsg::FetchNotFound { req },
                            });
                        }
                    }
                    _ => {
                        out.push(Action::Peer {
                            node: from_node,
                            msg: PeerMsg::FetchNotFound { req },
                        });
                    }
                }
            }
            PeerMsg::FetchFound {
                req,
                len,
                block_size,
                block,
                data,
            } => {
                let Some((array, local_key)) = self.fetches.remove(&req) else {
                    return out; // stale (array deleted meanwhile)
                };
                self.stall_rounds.remove(&(array.clone(), block));
                self.stall_rounds.remove(&(array.clone(), local_key));
                self.stats.peer_recv_bytes += data.len() as u64;
                let Some(ainfo) = self.arrays.get_mut(&array) else {
                    return out;
                };
                // Learn the real geometry if we had a placeholder, then move
                // waiters parked under the placeholder key to their real
                // blocks.
                let had_placeholder = ainfo.meta.len == u64::MAX;
                if had_placeholder {
                    ainfo.meta = ArrayMeta::new(array.clone(), len, block_size);
                }
                let meta = ainfo.meta.clone();
                if had_placeholder {
                    // Remove the placeholder entry entirely; waiter offsets
                    // in it are global.
                    let parked = ainfo.blocks.remove(&local_key);
                    if let Some(parked) = parked {
                        for w in parked.read_waiters {
                            let b = w.off / meta.block_size;
                            let local = w.off - meta.block_start(b);
                            ainfo
                                .blocks
                                .entry(b)
                                .or_default()
                                .read_waiters
                                .push(ReadWaiter {
                                    req: w.req,
                                    client: w.client,
                                    off: local,
                                    len: w.len,
                                });
                        }
                    }
                }
                let block_len = meta.block_len(block);
                let info = ainfo.blocks.entry(block).or_default();
                info.fetch = None;
                debug_assert_eq!(data.len() as u64, block_len);
                let newly = info.mem.is_none();
                info.mem = Some(BlockMem::Sealed(data));
                info.sealed = RangeSet::from_range(0, block_len);
                Self::flush_waiters(
                    info,
                    &meta,
                    block,
                    &mut self.pinned_now,
                    &mut self.stats,
                    &mut out,
                );
                self.touch(&array, block);
                if newly {
                    self.charge(block_len, &mut out);
                }
                if had_placeholder {
                    // Waiters redistributed to *other* blocks need their own
                    // fetches.
                    let pending: Vec<(u64, u64)> = self
                        .arrays
                        .get(&array)
                        .map(|a| {
                            a.blocks
                                .iter()
                                .filter(|(&b, i)| {
                                    b != block && !i.read_waiters.is_empty() && i.fetch.is_none()
                                })
                                .map(|(&b, _)| (b, meta.block_start(b)))
                                .collect()
                        })
                        .unwrap_or_default();
                    for (b, off) in pending {
                        self.start_fetch(array.clone(), b, off, &mut out);
                    }
                }
            }
            PeerMsg::FetchNotFound { req } => self.fetch_setback(req, &mut out),
            PeerMsg::Bye => {
                self.byes += 1;
            }
            PeerMsg::DeleteNotice { array } => {
                let had_disk = self
                    .arrays
                    .get(&array)
                    .map(|a| a.blocks.values().any(|b| b.on_disk))
                    .unwrap_or(false);
                self.drop_array_local(&array);
                self.map_version += 1;
                self.deleted.insert(array.clone(), self.map_version);
                if had_disk {
                    out.push(Action::Io(IoCmd::DeleteFiles { array }));
                }
            }
        }
        out
    }

    // -- I/O completions ----------------------------------------------------

    /// Handles one I/O filter completion.
    pub fn handle_io(&mut self, reply: IoReply) -> Vec<Action> {
        let mut out = Vec::new();
        match reply {
            IoReply::ReadDone { array, block, data } => {
                self.stats.disk_read_bytes += data.len() as u64;
                storage_obs().bytes_loaded.add(data.len() as u64);
                storage_obs().blocks_loaded.inc();
                self.io_attempts.remove(&(array.clone(), block));
                let Some(ainfo) = self.arrays.get_mut(&array) else {
                    return out; // deleted while loading
                };
                let meta = ainfo.meta.clone();
                let Some(info) = ainfo.blocks.get_mut(&block) else {
                    return out;
                };
                info.loading = false;
                let newly = info.mem.is_none();
                info.mem = Some(BlockMem::Sealed(data));
                info.sealed = RangeSet::from_range(0, meta.block_len(block));
                Self::flush_waiters(
                    info,
                    &meta,
                    block,
                    &mut self.pinned_now,
                    &mut self.stats,
                    &mut out,
                );
                self.touch(&array, block);
                if newly {
                    self.charge(meta.block_len(block), &mut out);
                }
            }
            IoReply::WriteDone {
                array,
                block,
                bytes,
            } => {
                self.stats.disk_write_bytes += bytes;
                let bugs = self.bug();
                let Some(ainfo) = self.arrays.get_mut(&array) else {
                    return out;
                };
                let meta = ainfo.meta.clone();
                let mut evicted = None;
                if let Some(info) = ainfo.blocks.get_mut(&block) {
                    info.spilling = false;
                    info.on_disk = true;
                    if info.evict_after_spill
                        && (info.pins == 0 || bugs.evict_ignores_pins)
                        && info.mem.take().is_some()
                    {
                        info.evict_after_spill = false;
                        evicted = Some(info.last_use);
                        info.last_use = 0;
                    }
                }
                if let Some((req, client, mut awaited)) = ainfo.persist.take() {
                    awaited.remove(&block);
                    if awaited.is_empty() {
                        out.push(Action::Reply {
                            client,
                            reply: Reply::Persisted { req },
                        });
                    } else {
                        ainfo.persist = Some((req, client, awaited));
                    }
                }
                if let Some(lu) = evicted {
                    self.lru_remove(lu);
                    self.discharge(meta.block_len(block));
                    self.stats.evictions += 1;
                    storage_obs().blocks_evicted.inc();
                    dooc_obs::instant_arg(
                        dooc_obs::Category::Storage,
                        "storage:evict",
                        self.cfg.node as i64,
                        || format!("{array}@{block} (after spill)"),
                    );
                }
            }
            IoReply::Error {
                array,
                block,
                message,
            } => self.io_error(array, block, message, &mut out),
        }
        out
    }

    /// An I/O command failed. Read failures go through the bounded-retry
    /// policy: `loading` stays true across the backoff (new readers keep
    /// parking as waiters instead of issuing duplicate reads) and the read
    /// is re-issued on a later tick; once [`RecoveryPolicy::io_retry_max`]
    /// attempts are spent, waiters get [`StorageError::IoFailed`] and peers
    /// a `FetchNotFound`. Write (spill/persist) failures are not retried —
    /// the block is still resident, so nothing was lost — but a pending
    /// persist awaiting the block fails instead of hanging.
    fn io_error(&mut self, array: String, block: u64, message: String, out: &mut Vec<Action>) {
        let policy = self.cfg.recovery.clone();
        let Some(ainfo) = self.arrays.get_mut(&array) else {
            return; // deleted while in flight (also covers DeleteFiles errors)
        };
        let block_len = ainfo.meta.block_len(block);
        let Some(info) = ainfo.blocks.get_mut(&block) else {
            return;
        };
        if info.loading {
            let key = (array.clone(), block);
            let attempt = *self.io_attempts.get(&key).unwrap_or(&0);
            if attempt < policy.io_retry_max {
                self.io_attempts.insert(key, attempt + 1);
                let backoff = policy.io_retry_backoff_ticks.max(1) << attempt.min(32);
                self.io_retry.push(IoRetry {
                    due: self.tick + backoff,
                    array: array.clone(),
                    block,
                    len: block_len,
                });
                dooc_obs::instant_arg(
                    dooc_obs::Category::Fault,
                    "storage:io_error",
                    self.cfg.node as i64,
                    || {
                        format!(
                            "{array}@{block}: {message} (retry {}/{} in {backoff} ticks)",
                            attempt + 1,
                            policy.io_retry_max
                        )
                    },
                );
                return;
            }
            // Retries exhausted (or disabled): this node's final verdict.
            self.io_attempts.remove(&key);
            info.loading = false;
            let attempts = attempt + 1;
            for w in info.read_waiters.drain(..) {
                out.push(Action::Reply {
                    client: w.client,
                    reply: Reply::Err {
                        req: w.req,
                        error: StorageError::IoFailed(format!(
                            "{array}@{block}: {message} ({attempts} attempts)"
                        )),
                    },
                });
            }
            for (req, from_node) in info.peer_waiters.drain(..) {
                out.push(Action::Peer {
                    node: from_node,
                    msg: PeerMsg::FetchNotFound { req },
                });
            }
            return;
        }
        // Write path: clear the in-flight spill and surface the error to a
        // pending persist instead of letting it wait forever.
        info.spilling = false;
        info.evict_after_spill = false;
        if let Some((req, client, awaited)) = ainfo.persist.take() {
            if awaited.contains(&block) {
                out.push(Action::Reply {
                    client,
                    reply: Reply::Err {
                        req,
                        error: StorageError::Io(format!("persist of {array}@{block}: {message}")),
                    },
                });
            } else {
                ainfo.persist = Some((req, client, awaited));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(node: u64, nnodes: u64, budget: u64) -> NodeConfig {
        NodeConfig {
            node,
            nnodes,
            memory_budget: budget,
            seed: 42,
            recovery: RecoveryPolicy {
                // Unit tests drive the state machine message by message;
                // retries would force every I/O-error test through the tick
                // loop, so keep the seed behaviour unless a test opts in.
                io_retry_max: 0,
                ..RecoveryPolicy::default()
            },
        }
    }

    fn state(budget: u64) -> StorageState {
        StorageState::new(cfg(0, 1, budget), vec![])
    }

    fn create(st: &mut StorageState, name: &str, len: u64, bs: u64) {
        let acts = st.handle_client(ClientMsg::Create {
            req: 1000,
            client: 0,
            meta: ArrayMeta::new(name, len, bs),
        });
        assert!(
            matches!(
                &acts[..],
                [Action::Reply {
                    reply: Reply::Created { .. },
                    ..
                }]
            ),
            "create failed: {acts:?}"
        );
    }

    fn write_all(st: &mut StorageState, name: &str, iv: Interval, byte: u8) -> Vec<Action> {
        let mut acts = st.handle_client(ClientMsg::WriteReq {
            req: 1,
            client: 0,
            array: name.into(),
            iv,
        });
        assert!(
            matches!(
                acts.first(),
                Some(Action::Reply {
                    reply: Reply::WriteGranted { .. },
                    ..
                })
            ),
            "grant failed: {acts:?}"
        );
        // Keep any grant-time side effects (e.g. eviction spills) visible to
        // the caller alongside the release actions.
        acts.remove(0);
        let mut rel = st.handle_client(ClientMsg::ReleaseWrite {
            req: 2,
            client: 0,
            array: name.into(),
            iv,
            data: Bytes::from(vec![byte; iv.len as usize]),
        });
        acts.append(&mut rel);
        acts
    }

    #[test]
    fn create_then_write_then_read() {
        let mut st = state(1 << 20);
        create(&mut st, "a", 64, 32);
        let acts = write_all(&mut st, "a", Interval::new(0, 32), 7);
        assert!(acts.iter().any(|a| matches!(
            a,
            Action::Reply {
                reply: Reply::WriteSealed { .. },
                ..
            }
        )));
        let acts = st.handle_client(ClientMsg::ReadReq {
            req: 3,
            client: 5,
            array: "a".into(),
            iv: Interval::new(4, 8),
        });
        match &acts[..] {
            [Action::Reply {
                client: 5,
                reply: Reply::ReadReady { data, .. },
            }] => assert_eq!(&data[..], &[7u8; 8]),
            other => panic!("expected ReadReady, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_create_rejected() {
        let mut st = state(1 << 20);
        create(&mut st, "a", 64, 32);
        let acts = st.handle_client(ClientMsg::Create {
            req: 9,
            client: 0,
            meta: ArrayMeta::new("a", 64, 32),
        });
        assert!(matches!(
            &acts[..],
            [Action::Reply {
                reply: Reply::Err {
                    error: StorageError::AlreadyExists(_),
                    ..
                },
                ..
            }]
        ));
    }

    #[test]
    fn double_write_is_immutability_error() {
        let mut st = state(1 << 20);
        create(&mut st, "a", 64, 32);
        write_all(&mut st, "a", Interval::new(0, 32), 1);
        let acts = st.handle_client(ClientMsg::WriteReq {
            req: 5,
            client: 0,
            array: "a".into(),
            iv: Interval::new(0, 32),
        });
        assert!(matches!(
            &acts[..],
            [Action::Reply {
                reply: Reply::Err {
                    error: StorageError::Immutability(_),
                    ..
                },
                ..
            }]
        ));
    }

    #[test]
    fn overlapping_write_grants_rejected() {
        let mut st = state(1 << 20);
        create(&mut st, "a", 64, 64);
        let acts = st.handle_client(ClientMsg::WriteReq {
            req: 1,
            client: 0,
            array: "a".into(),
            iv: Interval::new(0, 16),
        });
        assert!(matches!(
            &acts[..],
            [Action::Reply {
                reply: Reply::WriteGranted { .. },
                ..
            }]
        ));
        let acts = st.handle_client(ClientMsg::WriteReq {
            req: 2,
            client: 0,
            array: "a".into(),
            iv: Interval::new(8, 16),
        });
        assert!(matches!(
            &acts[..],
            [Action::Reply {
                reply: Reply::Err {
                    error: StorageError::Immutability(_),
                    ..
                },
                ..
            }]
        ));
        // Disjoint grant on the same block is fine.
        let acts = st.handle_client(ClientMsg::WriteReq {
            req: 3,
            client: 0,
            array: "a".into(),
            iv: Interval::new(16, 16),
        });
        assert!(matches!(
            &acts[..],
            [Action::Reply {
                reply: Reply::WriteGranted { .. },
                ..
            }]
        ));
    }

    #[test]
    fn read_before_write_is_logged_then_served() {
        let mut st = state(1 << 20);
        create(&mut st, "a", 32, 32);
        let acts = st.handle_client(ClientMsg::ReadReq {
            req: 7,
            client: 3,
            array: "a".into(),
            iv: Interval::new(0, 8),
        });
        assert!(acts.is_empty(), "request must be logged, got {acts:?}");
        let acts = write_all(&mut st, "a", Interval::new(0, 32), 9);
        let read = acts.iter().find_map(|a| match a {
            Action::Reply {
                client: 3,
                reply: Reply::ReadReady { req: 7, data },
            } => Some(data.clone()),
            _ => None,
        });
        assert_eq!(&read.expect("logged read served")[..], &[9u8; 8]);
    }

    #[test]
    fn partial_seal_serves_covered_reads_only() {
        let mut st = state(1 << 20);
        create(&mut st, "a", 32, 32);
        // Two logged reads: one inside the first half, one in the second.
        st.handle_client(ClientMsg::ReadReq {
            req: 1,
            client: 0,
            array: "a".into(),
            iv: Interval::new(0, 16),
        });
        st.handle_client(ClientMsg::ReadReq {
            req: 2,
            client: 0,
            array: "a".into(),
            iv: Interval::new(16, 16),
        });
        let acts = write_all(&mut st, "a", Interval::new(0, 16), 4);
        let served: Vec<u64> = acts
            .iter()
            .filter_map(|a| match a {
                Action::Reply {
                    reply: Reply::ReadReady { req, .. },
                    ..
                } => Some(*req),
                _ => None,
            })
            .collect();
        assert_eq!(served, vec![1], "only the covered read is served");
        let acts = write_all(&mut st, "a", Interval::new(16, 16), 5);
        let served: Vec<u64> = acts
            .iter()
            .filter_map(|a| match a {
                Action::Reply {
                    reply: Reply::ReadReady { req, .. },
                    ..
                } => Some(*req),
                _ => None,
            })
            .collect();
        assert_eq!(served, vec![2]);
    }

    /// Runs a MapSince query and unpacks the reply.
    fn map_delta_of(st: &mut StorageState, since: u64) -> (u64, Vec<MapEntry>, Vec<String>) {
        let acts = st.handle_client(ClientMsg::MapSince {
            req: 900,
            client: 0,
            since,
        });
        match &acts[..] {
            [Action::Reply {
                reply:
                    Reply::MapDelta {
                        version,
                        entries,
                        deleted,
                        ..
                    },
                ..
            }] => (*version, entries.clone(), deleted.clone()),
            other => panic!("expected MapDelta, got {other:?}"),
        }
    }

    fn full_map(st: &mut StorageState) -> Vec<MapEntry> {
        let acts = st.handle_client(ClientMsg::MapQuery {
            req: 901,
            client: 0,
        });
        match &acts[..] {
            [Action::Reply {
                reply: Reply::Map { entries, .. },
                ..
            }] => entries.clone(),
            other => panic!("expected Map, got {other:?}"),
        }
    }

    /// Folds one delta into a client-side mirror (array-granularity
    /// replacement, deletions drop the whole array).
    fn fold_delta(
        mirror: &mut HashMap<String, BTreeMap<u64, BlockAvail>>,
        entries: &[MapEntry],
        deleted: &[String],
    ) {
        for a in deleted {
            mirror.remove(a);
        }
        let mut touched: std::collections::HashSet<&str> = std::collections::HashSet::new();
        for en in entries {
            if touched.insert(&en.array) {
                mirror.insert(en.array.clone(), BTreeMap::new());
            }
        }
        for en in entries {
            if let Some(blocks) = mirror.get_mut(&en.array) {
                blocks.insert(en.block, en.state);
            }
        }
    }

    fn flatten(mirror: &HashMap<String, BTreeMap<u64, BlockAvail>>) -> Vec<MapEntry> {
        let mut v: Vec<MapEntry> = mirror
            .iter()
            .flat_map(|(a, blocks)| {
                blocks.iter().map(|(&b, &s)| MapEntry {
                    array: a.clone(),
                    block: b,
                    state: s,
                })
            })
            .collect();
        v.sort_by(|a, b| (&a.array, a.block).cmp(&(&b.array, b.block)));
        v
    }

    #[test]
    fn map_since_zero_is_full_snapshot() {
        let mut st = state(1 << 20);
        create(&mut st, "a", 64, 32);
        write_all(&mut st, "a", Interval::new(0, 32), 1);
        create(&mut st, "b", 16, 16);
        let (v, entries, deleted) = map_delta_of(&mut st, 0);
        assert!(v > 0, "changes must have bumped the version");
        assert_eq!(entries, full_map(&mut st));
        assert!(deleted.is_empty());
    }

    #[test]
    fn map_since_version_monotonic_and_quiescent() {
        let mut st = state(1 << 20);
        create(&mut st, "a", 64, 32);
        let (v1, _, _) = map_delta_of(&mut st, 0);
        write_all(&mut st, "a", Interval::new(0, 32), 1);
        let (v2, e2, _) = map_delta_of(&mut st, v1);
        assert!(v2 >= v1, "map version must be monotonic");
        assert!(
            e2.iter().any(|e| e.array == "a" && e.block == 0),
            "the sealed block must appear in the delta: {e2:?}"
        );
        // No changes since v2: the delta is empty and the version stable.
        let (v3, e3, d3) = map_delta_of(&mut st, v2);
        assert_eq!(v3, v2);
        assert!(e3.is_empty(), "quiescent delta must be empty: {e3:?}");
        assert!(d3.is_empty());
    }

    #[test]
    fn map_since_deltas_compose_to_full_map() {
        let mut st = state(1 << 20);
        let mut mirror: HashMap<String, BTreeMap<u64, BlockAvail>> = HashMap::new();
        let mut cursor = 0u64;
        let step = |st: &mut StorageState,
                    mirror: &mut HashMap<String, BTreeMap<u64, BlockAvail>>,
                    cursor: &mut u64| {
            let (v, entries, deleted) = map_delta_of(st, *cursor);
            assert!(v >= *cursor, "version went backwards");
            fold_delta(mirror, &entries, &deleted);
            *cursor = v;
            assert_eq!(
                flatten(mirror),
                full_map(st),
                "delta ∘ base must equal the full map"
            );
        };
        step(&mut st, &mut mirror, &mut cursor);
        create(&mut st, "a", 96, 32);
        step(&mut st, &mut mirror, &mut cursor);
        write_all(&mut st, "a", Interval::new(0, 32), 1);
        write_all(&mut st, "a", Interval::new(32, 16), 2);
        step(&mut st, &mut mirror, &mut cursor);
        create(&mut st, "b", 32, 32);
        write_all(&mut st, "b", Interval::new(0, 32), 3);
        // Persist then evict: b's block transitions InMemory -> OnDisk.
        let acts = st.handle_client(ClientMsg::Persist {
            req: 50,
            client: 0,
            array: "b".into(),
        });
        for a in acts {
            if let Action::Io(IoCmd::Write { array, block, .. }) = a {
                st.handle_io(IoReply::WriteDone {
                    array,
                    block,
                    bytes: 32,
                });
            }
        }
        st.handle_client(ClientMsg::Evict { array: "b".into() });
        step(&mut st, &mut mirror, &mut cursor);
        // Finish a, then delete it.
        write_all(&mut st, "a", Interval::new(48, 16), 4);
        write_all(&mut st, "a", Interval::new(64, 32), 5);
        step(&mut st, &mut mirror, &mut cursor);
        let acts = st.handle_client(ClientMsg::Delete {
            req: 60,
            client: 0,
            array: "a".into(),
        });
        assert!(acts.iter().any(|a| matches!(
            a,
            Action::Reply {
                reply: Reply::Deleted { .. },
                ..
            }
        )));
        let before = cursor;
        let (v, entries, deleted) = map_delta_of(&mut st, cursor);
        assert!(v > before, "deletion must bump the version");
        assert_eq!(deleted, vec!["a".to_string()]);
        fold_delta(&mut mirror, &entries, &deleted);
        cursor = v;
        assert_eq!(flatten(&mirror), full_map(&mut st));
        let _ = cursor;
    }

    #[test]
    fn release_of_ungranted_interval_is_protocol_error() {
        let mut st = state(1 << 20);
        create(&mut st, "a", 32, 32);
        let acts = st.handle_client(ClientMsg::ReleaseWrite {
            req: 1,
            client: 0,
            array: "a".into(),
            iv: Interval::new(0, 8),
            data: Bytes::from(vec![0u8; 8]),
        });
        assert!(matches!(
            &acts[..],
            [Action::Reply {
                reply: Reply::Err {
                    error: StorageError::Protocol(_),
                    ..
                },
                ..
            }]
        ));
    }

    #[test]
    fn interval_spanning_blocks_rejected() {
        let mut st = state(1 << 20);
        create(&mut st, "a", 64, 32);
        let acts = st.handle_client(ClientMsg::ReadReq {
            req: 1,
            client: 0,
            array: "a".into(),
            iv: Interval::new(30, 4),
        });
        assert!(matches!(
            &acts[..],
            [Action::Reply {
                reply: Reply::Err {
                    error: StorageError::BadInterval { .. },
                    ..
                },
                ..
            }]
        ));
    }

    #[test]
    fn lru_eviction_spills_then_drops() {
        // Budget of one block: writing a second block must spill the first.
        let mut st = state(32);
        create(&mut st, "a", 64, 32);
        write_all(&mut st, "a", Interval::new(0, 32), 1);
        assert_eq!(st.resident_bytes(), 32);
        let acts = write_all(&mut st, "a", Interval::new(32, 32), 2);
        // Budget exceeded: the LRU (block 0) must be spilled via Io.
        let spill = acts.iter().find_map(|a| match a {
            Action::Io(IoCmd::Write { array, block, .. }) => Some((array.clone(), *block)),
            _ => None,
        });
        assert_eq!(spill, Some(("a".into(), 0)), "LRU block spilled");
        assert_eq!(st.resident_bytes(), 64, "memory freed only on completion");
        let acts = st.handle_io(IoReply::WriteDone {
            array: "a".into(),
            block: 0,
            bytes: 32,
        });
        assert!(acts.is_empty());
        assert_eq!(st.resident_bytes(), 32, "block 0 dropped after spill");
        assert_eq!(st.stats().evictions, 1);
    }

    #[test]
    fn evicted_block_reloaded_from_disk() {
        let mut st = state(32);
        create(&mut st, "a", 64, 32);
        write_all(&mut st, "a", Interval::new(0, 32), 1);
        write_all(&mut st, "a", Interval::new(32, 32), 2);
        st.handle_io(IoReply::WriteDone {
            array: "a".into(),
            block: 0,
            bytes: 32,
        });
        // Read of block 0 now requires an implicit out-of-core read.
        let acts = st.handle_client(ClientMsg::ReadReq {
            req: 9,
            client: 1,
            array: "a".into(),
            iv: Interval::new(0, 32),
        });
        assert!(matches!(
            &acts[..],
            [Action::Io(IoCmd::Read { block: 0, .. })]
        ));
        let acts = st.handle_io(IoReply::ReadDone {
            array: "a".into(),
            block: 0,
            data: Bytes::from(vec![1u8; 32]),
        });
        // The reload evicts block 1 (budget) and serves the read.
        assert!(acts.iter().any(|a| matches!(
            a,
            Action::Reply {
                client: 1,
                reply: Reply::ReadReady { req: 9, .. }
            }
        )));
        assert_eq!(st.stats().disk_read_bytes, 32);
    }

    #[test]
    fn pinned_blocks_are_not_evicted() {
        let mut st = state(32);
        create(&mut st, "a", 64, 32);
        write_all(&mut st, "a", Interval::new(0, 32), 1);
        // Pin block 0 with a read.
        let acts = st.handle_client(ClientMsg::ReadReq {
            req: 1,
            client: 0,
            array: "a".into(),
            iv: Interval::new(0, 32),
        });
        assert!(matches!(
            &acts[..],
            [Action::Reply {
                reply: Reply::ReadReady { .. },
                ..
            }]
        ));
        // Write block 1: over budget, but block 0 is pinned -> no spill of it
        // is allowed to drop it; it may spill (to prepare) but not evict.
        let acts = write_all(&mut st, "a", Interval::new(32, 32), 2);
        assert!(
            !acts
                .iter()
                .any(|a| matches!(a, Action::Io(IoCmd::Write { block: 0, .. }))),
            "pinned block must not be spill-evicted: {acts:?}"
        );
        assert_eq!(st.resident_bytes(), 64);
        // Release the pin; next pressure event can evict it.
        st.handle_client(ClientMsg::ReleaseRead {
            array: "a".into(),
            iv: Interval::new(0, 32),
        });
    }

    #[test]
    fn discovered_blocks_read_from_disk() {
        let st = StorageState::new(
            cfg(0, 1, 1 << 20),
            vec![DiscoveredBlock {
                meta: ArrayMeta::new("m", 100, 100),
                block: 0,
            }],
        );
        let mut st = st;
        let acts = st.handle_client(ClientMsg::ReadReq {
            req: 1,
            client: 0,
            array: "m".into(),
            iv: Interval::new(0, 100),
        });
        assert!(matches!(
            &acts[..],
            [Action::Io(IoCmd::Read {
                block: 0,
                len: 100,
                ..
            })]
        ));
        let acts = st.handle_io(IoReply::ReadDone {
            array: "m".into(),
            block: 0,
            data: Bytes::from(vec![3u8; 100]),
        });
        assert!(acts.iter().any(|a| matches!(
            a,
            Action::Reply {
                reply: Reply::ReadReady { .. },
                ..
            }
        )));
    }

    #[test]
    fn concurrent_reads_share_one_io() {
        let mut st = StorageState::new(
            cfg(0, 1, 1 << 20),
            vec![DiscoveredBlock {
                meta: ArrayMeta::new("m", 64, 64),
                block: 0,
            }],
        );
        let a1 = st.handle_client(ClientMsg::ReadReq {
            req: 1,
            client: 0,
            array: "m".into(),
            iv: Interval::new(0, 8),
        });
        let a2 = st.handle_client(ClientMsg::ReadReq {
            req: 2,
            client: 1,
            array: "m".into(),
            iv: Interval::new(8, 8),
        });
        assert_eq!(a1.len(), 1, "one io read");
        assert!(a2.is_empty(), "second read joins the in-flight io");
        let acts = st.handle_io(IoReply::ReadDone {
            array: "m".into(),
            block: 0,
            data: Bytes::from(vec![1u8; 64]),
        });
        let served = acts
            .iter()
            .filter(|a| {
                matches!(
                    a,
                    Action::Reply {
                        reply: Reply::ReadReady { .. },
                        ..
                    }
                )
            })
            .count();
        assert_eq!(served, 2);
    }

    #[test]
    fn remote_read_probes_random_peers_until_found() {
        let mut st = StorageState::new(cfg(0, 4, 1 << 20), vec![]);
        let acts = st.handle_client(ClientMsg::ReadReq {
            req: 1,
            client: 0,
            array: "remote".into(),
            iv: Interval::new(0, 8),
        });
        let (first_peer, fetch_req) = match &acts[..] {
            [Action::Peer {
                node,
                msg: PeerMsg::Fetch { req, .. },
            }] => (*node, *req),
            other => panic!("expected a peer fetch, got {other:?}"),
        };
        assert_ne!(first_peer, 0, "never asks itself");
        // First peer misses.
        let acts = st.handle_peer(first_peer, PeerMsg::FetchNotFound { req: fetch_req });
        let second_peer = match &acts[..] {
            [Action::Peer {
                node,
                msg: PeerMsg::Fetch { .. },
            }] => *node,
            other => panic!("expected a retry, got {other:?}"),
        };
        assert_ne!(second_peer, first_peer, "tried peers are excluded");
        // Second peer answers with the block.
        let acts = st.handle_peer(
            second_peer,
            PeerMsg::FetchFound {
                req: fetch_req,
                len: 16,
                block_size: 16,
                block: 0,
                data: Bytes::from(vec![8u8; 16]),
            },
        );
        let data = acts.iter().find_map(|a| match a {
            Action::Reply {
                reply: Reply::ReadReady { req: 1, data },
                ..
            } => Some(data.clone()),
            _ => None,
        });
        assert_eq!(&data.expect("read served")[..], &[8u8; 8]);
        assert_eq!(st.stats().peer_recv_bytes, 16);
    }

    #[test]
    fn remote_read_stalls_after_all_peers_deny_then_retries() {
        let mut st = StorageState::new(cfg(0, 3, 1 << 20), vec![]);
        let acts = st.handle_client(ClientMsg::ReadReq {
            req: 1,
            client: 0,
            array: "ghost".into(),
            iv: Interval::new(0, 8),
        });
        let req = match &acts[..] {
            [Action::Peer {
                msg: PeerMsg::Fetch { req, .. },
                ..
            }] => *req,
            other => panic!("expected fetch, got {other:?}"),
        };
        let acts = st.handle_peer(1, PeerMsg::FetchNotFound { req });
        assert!(matches!(&acts[..], [Action::Peer { .. }]), "second probe");
        let acts = st.handle_peer(2, PeerMsg::FetchNotFound { req });
        assert!(acts.is_empty(), "no error: fetch stalls ({acts:?})");
        assert!(st.has_stalled_fetches());
        // A tick restarts the probe cycle.
        let acts = st.on_tick();
        assert!(
            matches!(
                &acts[..],
                [Action::Peer {
                    msg: PeerMsg::Fetch { .. },
                    ..
                }]
            ),
            "tick reprobes: {acts:?}"
        );
        assert!(!st.has_stalled_fetches());
    }

    #[test]
    fn duplicate_fetches_are_suppressed() {
        let mut st = StorageState::new(cfg(0, 2, 1 << 20), vec![]);
        st.register_for_test("r", 64, 32);
        let a1 = st.handle_client(ClientMsg::ReadReq {
            req: 1,
            client: 0,
            array: "r".into(),
            iv: Interval::new(0, 8),
        });
        let a2 = st.handle_client(ClientMsg::ReadReq {
            req: 2,
            client: 0,
            array: "r".into(),
            iv: Interval::new(8, 8),
        });
        assert_eq!(
            a1.iter()
                .filter(|a| matches!(a, Action::Peer { .. }))
                .count(),
            1
        );
        assert!(
            a2.iter().all(|a| !matches!(a, Action::Peer { .. })),
            "same-block fetch deduplicated: {a2:?}"
        );
        // Different block -> its own fetch.
        let a3 = st.handle_client(ClientMsg::ReadReq {
            req: 3,
            client: 0,
            array: "r".into(),
            iv: Interval::new(32, 8),
        });
        assert_eq!(
            a3.iter()
                .filter(|a| matches!(a, Action::Peer { .. }))
                .count(),
            1
        );
    }

    #[test]
    fn peer_fetch_served_from_memory() {
        let mut st = state(1 << 20);
        create(&mut st, "a", 32, 32);
        write_all(&mut st, "a", Interval::new(0, 32), 6);
        let acts = st.handle_peer(
            1,
            PeerMsg::Fetch {
                req: 77,
                from_node: 1,
                array: "a".into(),
                offset: 0,
            },
        );
        match &acts[..] {
            [Action::Peer {
                node: 1,
                msg:
                    PeerMsg::FetchFound {
                        req: 77,
                        len: 32,
                        block_size: 32,
                        block: 0,
                        data,
                    },
            }] => assert_eq!(&data[..], &[6u8; 32]),
            other => panic!("expected FetchFound, got {other:?}"),
        }
        assert_eq!(st.stats().peer_sent_bytes, 32);
    }

    #[test]
    fn peer_fetch_of_unwritten_home_block_is_queued() {
        let mut st = state(1 << 20);
        create(&mut st, "a", 32, 32);
        let acts = st.handle_peer(
            1,
            PeerMsg::Fetch {
                req: 5,
                from_node: 1,
                array: "a".into(),
                offset: 0,
            },
        );
        assert!(acts.is_empty(), "queued, not answered: {acts:?}");
        let acts = write_all(&mut st, "a", Interval::new(0, 32), 2);
        assert!(acts.iter().any(|a| matches!(
            a,
            Action::Peer {
                node: 1,
                msg: PeerMsg::FetchFound { req: 5, .. }
            }
        )));
    }

    #[test]
    fn peer_fetch_of_unknown_array_is_not_found() {
        let mut st = state(1 << 20);
        let acts = st.handle_peer(
            1,
            PeerMsg::Fetch {
                req: 5,
                from_node: 1,
                array: "nope".into(),
                offset: 0,
            },
        );
        assert!(matches!(
            &acts[..],
            [Action::Peer {
                node: 1,
                msg: PeerMsg::FetchNotFound { req: 5 }
            }]
        ));
    }

    #[test]
    fn delete_broadcasts_and_tombstones() {
        let mut st = StorageState::new(cfg(0, 3, 1 << 20), vec![]);
        create(&mut st, "a", 32, 32);
        write_all(&mut st, "a", Interval::new(0, 32), 1);
        let acts = st.handle_client(ClientMsg::Delete {
            req: 1,
            client: 0,
            array: "a".into(),
        });
        let notices = acts
            .iter()
            .filter(|a| {
                matches!(
                    a,
                    Action::Peer {
                        msg: PeerMsg::DeleteNotice { .. },
                        ..
                    }
                )
            })
            .count();
        assert_eq!(notices, 2, "both peers notified");
        assert!(acts.iter().any(|a| matches!(
            a,
            Action::Reply {
                reply: Reply::Deleted { .. },
                ..
            }
        )));
        assert_eq!(st.resident_bytes(), 0);
        // Subsequent access errors with Deleted.
        let acts = st.handle_client(ClientMsg::ReadReq {
            req: 2,
            client: 0,
            array: "a".into(),
            iv: Interval::new(0, 8),
        });
        assert!(matches!(
            &acts[..],
            [Action::Reply {
                reply: Reply::Err {
                    error: StorageError::Deleted(_),
                    ..
                },
                ..
            }]
        ));
    }

    #[test]
    fn delete_while_pinned_rejected() {
        let mut st = state(1 << 20);
        create(&mut st, "a", 32, 32);
        write_all(&mut st, "a", Interval::new(0, 32), 1);
        st.handle_client(ClientMsg::ReadReq {
            req: 1,
            client: 0,
            array: "a".into(),
            iv: Interval::new(0, 8),
        });
        let acts = st.handle_client(ClientMsg::Delete {
            req: 2,
            client: 0,
            array: "a".into(),
        });
        assert!(matches!(
            &acts[..],
            [Action::Reply {
                reply: Reply::Err {
                    error: StorageError::Immutability(_),
                    ..
                },
                ..
            }]
        ));
    }

    #[test]
    fn persist_writes_sealed_blocks_and_replies_when_done() {
        let mut st = state(1 << 20);
        create(&mut st, "a", 64, 32);
        write_all(&mut st, "a", Interval::new(0, 32), 1);
        write_all(&mut st, "a", Interval::new(32, 32), 2);
        let acts = st.handle_client(ClientMsg::Persist {
            req: 9,
            client: 0,
            array: "a".into(),
        });
        let writes = acts
            .iter()
            .filter(|a| matches!(a, Action::Io(IoCmd::Write { .. })))
            .count();
        assert_eq!(writes, 2);
        assert!(
            !acts.iter().any(|a| matches!(
                a,
                Action::Reply {
                    reply: Reply::Persisted { .. },
                    ..
                }
            )),
            "not persisted yet"
        );
        let acts = st.handle_io(IoReply::WriteDone {
            array: "a".into(),
            block: 0,
            bytes: 32,
        });
        assert!(acts.is_empty());
        let acts = st.handle_io(IoReply::WriteDone {
            array: "a".into(),
            block: 1,
            bytes: 32,
        });
        assert!(matches!(
            &acts[..],
            [Action::Reply {
                reply: Reply::Persisted { req: 9 },
                ..
            }]
        ));
        assert_eq!(st.stats().disk_write_bytes, 64);
    }

    #[test]
    fn persist_of_already_persisted_is_immediate() {
        let mut st = state(1 << 20);
        create(&mut st, "a", 32, 32);
        write_all(&mut st, "a", Interval::new(0, 32), 1);
        st.handle_client(ClientMsg::Persist {
            req: 1,
            client: 0,
            array: "a".into(),
        });
        st.handle_io(IoReply::WriteDone {
            array: "a".into(),
            block: 0,
            bytes: 32,
        });
        let acts = st.handle_client(ClientMsg::Persist {
            req: 2,
            client: 0,
            array: "a".into(),
        });
        assert!(matches!(
            &acts[..],
            [Action::Reply {
                reply: Reply::Persisted { req: 2 },
                ..
            }]
        ));
    }

    #[test]
    fn map_query_reports_states() {
        let mut st = state(1 << 20);
        create(&mut st, "a", 64, 32);
        write_all(&mut st, "a", Interval::new(0, 32), 1);
        st.handle_client(ClientMsg::WriteReq {
            req: 1,
            client: 0,
            array: "a".into(),
            iv: Interval::new(32, 16),
        });
        st.handle_client(ClientMsg::ReleaseWrite {
            req: 2,
            client: 0,
            array: "a".into(),
            iv: Interval::new(32, 16),
            data: Bytes::from(vec![1u8; 16]),
        });
        let acts = st.handle_client(ClientMsg::MapQuery { req: 3, client: 0 });
        match &acts[..] {
            [Action::Reply {
                reply: Reply::Map { entries, .. },
                ..
            }] => {
                assert_eq!(entries.len(), 2);
                assert_eq!(entries[0].state, BlockAvail::InMemory);
                assert_eq!(entries[1].state, BlockAvail::Partial);
            }
            other => panic!("expected map, got {other:?}"),
        }
    }

    #[test]
    fn io_error_fails_waiters() {
        // Retries disabled (see `cfg`): the first error is final and typed.
        let mut st = StorageState::new(
            cfg(0, 1, 1 << 20),
            vec![DiscoveredBlock {
                meta: ArrayMeta::new("m", 64, 64),
                block: 0,
            }],
        );
        st.handle_client(ClientMsg::ReadReq {
            req: 1,
            client: 2,
            array: "m".into(),
            iv: Interval::new(0, 8),
        });
        let acts = st.handle_io(IoReply::Error {
            array: "m".into(),
            block: 0,
            message: "bad sector".into(),
        });
        assert!(matches!(
            &acts[..],
            [Action::Reply {
                client: 2,
                reply: Reply::Err {
                    req: 1,
                    error: StorageError::IoFailed(_)
                }
            }]
        ));
    }

    #[test]
    fn io_error_retries_then_succeeds() {
        let recovery = RecoveryPolicy {
            io_retry_max: 2,
            ..RecoveryPolicy::default()
        };
        let mut st = StorageState::new(
            NodeConfig {
                recovery,
                ..cfg(0, 1, 1 << 20)
            },
            vec![DiscoveredBlock {
                meta: ArrayMeta::new("m", 64, 64),
                block: 0,
            }],
        );
        st.handle_client(ClientMsg::ReadReq {
            req: 1,
            client: 2,
            array: "m".into(),
            iv: Interval::new(0, 8),
        });
        // First error: absorbed, retry scheduled, nothing surfaces.
        let acts = st.handle_io(IoReply::Error {
            array: "m".into(),
            block: 0,
            message: "bad sector".into(),
        });
        assert!(acts.is_empty(), "error absorbed by retry: {acts:?}");
        assert!(st.needs_tick());
        // Backoff is 1 tick: the next tick re-issues the read.
        let acts = st.on_tick();
        assert!(
            matches!(
                &acts[..],
                [Action::Io(IoCmd::Read {
                    block: 0,
                    len: 64,
                    ..
                })]
            ),
            "expected re-issued read, got {acts:?}"
        );
        // The retried read succeeds and serves the parked waiter.
        let acts = st.handle_io(IoReply::ReadDone {
            array: "m".into(),
            block: 0,
            data: Bytes::from(vec![9u8; 64]),
        });
        assert!(
            acts.iter().any(|a| matches!(
                a,
                Action::Reply {
                    client: 2,
                    reply: Reply::ReadReady { req: 1, .. }
                }
            )),
            "waiter served after retry: {acts:?}"
        );
        assert!(!st.needs_tick());
    }

    #[test]
    fn io_error_exhausts_retries_into_iofailed() {
        let recovery = RecoveryPolicy {
            io_retry_max: 1,
            ..RecoveryPolicy::default()
        };
        let mut st = StorageState::new(
            NodeConfig {
                recovery,
                ..cfg(0, 1, 1 << 20)
            },
            vec![DiscoveredBlock {
                meta: ArrayMeta::new("m", 64, 64),
                block: 0,
            }],
        );
        st.handle_client(ClientMsg::ReadReq {
            req: 1,
            client: 2,
            array: "m".into(),
            iv: Interval::new(0, 8),
        });
        assert!(st
            .handle_io(IoReply::Error {
                array: "m".into(),
                block: 0,
                message: "bad sector".into(),
            })
            .is_empty());
        let acts = st.on_tick();
        assert!(matches!(&acts[..], [Action::Io(IoCmd::Read { .. })]));
        // Second failure exhausts the single retry: typed, final error.
        let acts = st.handle_io(IoReply::Error {
            array: "m".into(),
            block: 0,
            message: "bad sector".into(),
        });
        match &acts[..] {
            [Action::Reply {
                client: 2,
                reply:
                    Reply::Err {
                        req: 1,
                        error: StorageError::IoFailed(m),
                    },
            }] => assert!(m.contains("2 attempts"), "attempt count in '{m}'"),
            other => panic!("expected IoFailed, got {other:?}"),
        }
    }

    #[test]
    fn stall_rounds_exhaust_into_timeout() {
        let recovery = RecoveryPolicy {
            stall_retry_max: Some(2),
            ..RecoveryPolicy::default()
        };
        let mut st = StorageState::new(
            NodeConfig {
                recovery,
                ..cfg(0, 2, 1 << 20)
            },
            vec![],
        );
        // Remote read: probe peer 1, which denies -> stall.
        let acts = st.handle_client(ClientMsg::ReadReq {
            req: 1,
            client: 0,
            array: "ghost".into(),
            iv: Interval::new(0, 8),
        });
        let fetch_req = |acts: &[Action]| match acts {
            [Action::Peer {
                msg: PeerMsg::Fetch { req, .. },
                ..
            }] => *req,
            other => panic!("expected fetch, got {other:?}"),
        };
        let mut req = fetch_req(&acts);
        // Two full stall/retry rounds are allowed ...
        for _ in 0..2 {
            assert!(st.handle_peer(1, PeerMsg::FetchNotFound { req }).is_empty());
            assert!(st.has_stalled_fetches());
            let acts = st.on_tick();
            req = fetch_req(&acts);
        }
        // ... the third denial times the waiter out on the next tick.
        assert!(st.handle_peer(1, PeerMsg::FetchNotFound { req }).is_empty());
        let acts = st.on_tick();
        assert!(
            matches!(
                &acts[..],
                [Action::Reply {
                    client: 0,
                    reply: Reply::Err {
                        req: 1,
                        error: StorageError::Timeout(_)
                    }
                }]
            ),
            "expected timeout, got {acts:?}"
        );
    }

    #[test]
    fn fetch_deadline_moves_to_next_peer() {
        let recovery = RecoveryPolicy {
            fetch_deadline_ticks: Some(2),
            ..RecoveryPolicy::default()
        };
        let mut st = StorageState::new(
            NodeConfig {
                recovery,
                ..cfg(0, 3, 1 << 20)
            },
            vec![],
        );
        let acts = st.handle_client(ClientMsg::ReadReq {
            req: 1,
            client: 0,
            array: "ghost".into(),
            iv: Interval::new(0, 8),
        });
        let first_peer = match &acts[..] {
            [Action::Peer {
                node,
                msg: PeerMsg::Fetch { .. },
            }] => *node,
            other => panic!("expected fetch, got {other:?}"),
        };
        assert!(st.needs_tick(), "deadline arms the tick loop");
        // The probed peer stays silent (crashed): after the deadline the
        // probe is abandoned and the other peer is asked.
        assert!(st.on_tick().is_empty(), "first tick only ages the probe");
        let acts = st.on_tick();
        match &acts[..] {
            [Action::Peer {
                node,
                msg: PeerMsg::Fetch { .. },
            }] => assert_ne!(*node, first_peer, "silent peer not re-probed"),
            other => panic!("expected fetch to next peer, got {other:?}"),
        }
    }

    #[test]
    fn spill_error_fails_pending_persist() {
        let mut st = state(1 << 20);
        create(&mut st, "p", 32, 32);
        write_all(&mut st, "p", Interval::new(0, 32), 3);
        let acts = st.handle_client(ClientMsg::Persist {
            req: 9,
            client: 1,
            array: "p".into(),
        });
        assert!(
            matches!(&acts[..], [Action::Io(IoCmd::Write { .. })]),
            "persist spills: {acts:?}"
        );
        let acts = st.handle_io(IoReply::Error {
            array: "p".into(),
            block: 0,
            message: "disk full".into(),
        });
        assert!(
            matches!(
                &acts[..],
                [Action::Reply {
                    client: 1,
                    reply: Reply::Err {
                        req: 9,
                        error: StorageError::Io(_)
                    }
                }]
            ),
            "persist fails instead of hanging: {acts:?}"
        );
    }

    #[test]
    fn register_then_read_maps_blocks_correctly() {
        let mut st = StorageState::new(cfg(0, 2, 1 << 20), vec![]);
        st.handle_client(ClientMsg::Register {
            meta: ArrayMeta::new("r", 64, 32),
        });
        // Read of second block probes with an offset inside that block.
        let acts = st.handle_client(ClientMsg::ReadReq {
            req: 1,
            client: 0,
            array: "r".into(),
            iv: Interval::new(40, 8),
        });
        match &acts[..] {
            [Action::Peer {
                msg: PeerMsg::Fetch { offset, .. },
                ..
            }] => assert_eq!(*offset / 32, 1, "fetch addressed inside block 1"),
            other => panic!("expected fetch, got {other:?}"),
        }
    }

    #[test]
    fn shutdown_handshake_requires_all_byes() {
        let mut st = StorageState::new(cfg(0, 3, 1 << 20), vec![]);
        assert!(!st.ready_to_exit());
        let acts = st.handle_client(ClientMsg::Shutdown);
        let byes = acts
            .iter()
            .filter(|a| {
                matches!(
                    a,
                    Action::Peer {
                        msg: PeerMsg::Bye,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(byes, 2, "bye broadcast to both peers");
        assert!(!st.ready_to_exit(), "waits for peers");
        st.handle_peer(1, PeerMsg::Bye);
        assert!(!st.ready_to_exit());
        st.handle_peer(2, PeerMsg::Bye);
        assert!(st.ready_to_exit());
        // Idempotent quiescence.
        assert!(st.force_local_done().is_empty());
    }

    #[test]
    fn single_node_shutdown_is_immediate() {
        let mut st = state(1 << 20);
        assert!(!st.ready_to_exit());
        let acts = st.handle_client(ClientMsg::Shutdown);
        assert!(acts.is_empty());
        assert!(st.ready_to_exit());
    }

    impl StorageState {
        /// Test helper: register geometry as a non-home array.
        fn register_for_test(&mut self, name: &str, len: u64, bs: u64) {
            self.handle_client(ClientMsg::Register {
                meta: ArrayMeta::new(name, len, bs),
            });
        }
    }
}

#[cfg(test)]
mod evict_tests {
    use super::*;

    #[test]
    fn explicit_evict_drops_disk_backed_and_spills_dirty() {
        let mut st = StorageState::new(
            NodeConfig {
                node: 0,
                nnodes: 1,
                memory_budget: 1 << 20,
                seed: 1,
                recovery: RecoveryPolicy::default(),
            },
            vec![],
        );
        st.handle_client(ClientMsg::Create {
            req: 0,
            client: 0,
            meta: ArrayMeta::new("a", 64, 32),
        });
        for b in 0..2u64 {
            st.handle_client(ClientMsg::WriteReq {
                req: 1,
                client: 0,
                array: "a".into(),
                iv: Interval::new(b * 32, 32),
            });
            st.handle_client(ClientMsg::ReleaseWrite {
                req: 2,
                client: 0,
                array: "a".into(),
                iv: Interval::new(b * 32, 32),
                data: Bytes::from(vec![b as u8; 32]),
            });
        }
        // Persist block 0 so it is disk-backed; block 1 stays dirty.
        st.handle_client(ClientMsg::Persist {
            req: 3,
            client: 0,
            array: "a".into(),
        });
        st.handle_io(IoReply::WriteDone {
            array: "a".into(),
            block: 0,
            bytes: 32,
        });
        st.handle_io(IoReply::WriteDone {
            array: "a".into(),
            block: 1,
            bytes: 32,
        });
        assert_eq!(st.resident_bytes(), 64);
        let acts = st.handle_client(ClientMsg::Evict { array: "a".into() });
        // Both blocks are now on disk, so eviction drops both immediately.
        assert!(acts.is_empty(), "{acts:?}");
        assert_eq!(st.resident_bytes(), 0);
        assert_eq!(st.stats().evictions, 2);
        // Reads go back through the I/O filter.
        let acts = st.handle_client(ClientMsg::ReadReq {
            req: 5,
            client: 0,
            array: "a".into(),
            iv: Interval::new(0, 32),
        });
        assert!(matches!(
            &acts[..],
            [Action::Io(IoCmd::Read { block: 0, .. })]
        ));
    }

    #[test]
    fn explicit_evict_spills_unspilled_blocks_first() {
        let mut st = StorageState::new(
            NodeConfig {
                node: 0,
                nnodes: 1,
                memory_budget: 1 << 20,
                seed: 1,
                recovery: RecoveryPolicy::default(),
            },
            vec![],
        );
        st.handle_client(ClientMsg::Create {
            req: 0,
            client: 0,
            meta: ArrayMeta::new("a", 32, 32),
        });
        st.handle_client(ClientMsg::WriteReq {
            req: 1,
            client: 0,
            array: "a".into(),
            iv: Interval::new(0, 32),
        });
        st.handle_client(ClientMsg::ReleaseWrite {
            req: 2,
            client: 0,
            array: "a".into(),
            iv: Interval::new(0, 32),
            data: Bytes::from(vec![7u8; 32]),
        });
        let acts = st.handle_client(ClientMsg::Evict { array: "a".into() });
        assert!(
            matches!(&acts[..], [Action::Io(IoCmd::Write { block: 0, .. })]),
            "dirty block must spill: {acts:?}"
        );
        assert_eq!(st.resident_bytes(), 32, "freed only after the spill lands");
        st.handle_io(IoReply::WriteDone {
            array: "a".into(),
            block: 0,
            bytes: 32,
        });
        assert_eq!(st.resident_bytes(), 0);
    }

    #[test]
    fn evict_skips_pinned_blocks() {
        let mut st = StorageState::new(
            NodeConfig {
                node: 0,
                nnodes: 1,
                memory_budget: 1 << 20,
                seed: 1,
                recovery: RecoveryPolicy::default(),
            },
            vec![],
        );
        st.handle_client(ClientMsg::Create {
            req: 0,
            client: 0,
            meta: ArrayMeta::new("a", 32, 32),
        });
        st.handle_client(ClientMsg::WriteReq {
            req: 1,
            client: 0,
            array: "a".into(),
            iv: Interval::new(0, 32),
        });
        st.handle_client(ClientMsg::ReleaseWrite {
            req: 2,
            client: 0,
            array: "a".into(),
            iv: Interval::new(0, 32),
            data: Bytes::from(vec![7u8; 32]),
        });
        st.handle_client(ClientMsg::ReadReq {
            req: 3,
            client: 0,
            array: "a".into(),
            iv: Interval::new(0, 32),
        });
        let acts = st.handle_client(ClientMsg::Evict { array: "a".into() });
        assert!(acts.is_empty(), "pinned block untouched: {acts:?}");
        assert_eq!(st.resident_bytes(), 32);
    }
}
