//! Blocking client handle over the asynchronous storage protocol.
//!
//! A compute filter holds a [`StorageClient`] wrapping its bidirectional link
//! to the local storage filter. Requests are tagged with fresh ids; replies
//! arriving out of order are stashed until the matching `wait` call. The
//! split request/wait API (`read_async` + [`StorageClient::wait_read`])
//! lets a filter keep several operations in flight — the asynchrony the
//! paper's design centres on — while `read`/`write` offer one-call
//! convenience.
//!
//! Two safety layers sit on top of the wire protocol:
//!
//! * **Typed tickets.** [`Ticket`] is parameterized by the operation kind
//!   ([`Read`], [`Write`], [`Seal`]), so redeeming a write ticket with
//!   [`StorageClient::wait_read`] is a compile error, and tickets are
//!   single-use move-only tokens — a ticket cannot be redeemed twice.
//! * **RAII read pins.** [`StorageClient::read`] / `wait_read` return a
//!   [`ReadGuard`] that unpins the interval when dropped, so a pinned block
//!   can no longer be leaked by an early return. The pipelined worker data
//!   plane, which recycles pins at high rate inside a sliding window, can
//!   opt out via [`StorageClient::wait_read_raw`] +
//!   [`StorageClient::release_read_raw`]; a lint (`dooc-check`) keeps bare
//!   releases from spreading beyond it.

use crate::meta::{ArrayMeta, Interval};
use crate::proto::{ClientMsg, MapEntry, NodeStats, Reply};
use crate::{Result, StorageError};
use bytes::Bytes;
use dooc_filterstream::{NodeId, StreamReader, StreamWriter};
use dooc_sync::atomic::{AtomicU64, Ordering};
use std::collections::HashMap;
use std::marker::PhantomData;
use std::sync::Arc;

/// Ticket kind marker: a pending pinned read.
#[derive(Debug)]
pub enum Read {}

/// Ticket kind marker: a pending write grant.
#[derive(Debug)]
pub enum Write {}

/// Ticket kind marker: a pending seal confirmation.
#[derive(Debug)]
pub enum Seal {}

/// Pending-request token returned by the async API, typed by the operation
/// it belongs to and consumed (moved) by the matching `wait_*` call.
#[must_use = "a ticket must be redeemed with the matching wait_* call"]
#[derive(Debug, PartialEq, Eq, Hash)]
pub struct Ticket<K> {
    req: u64,
    _kind: PhantomData<K>,
}

impl<K> Ticket<K> {
    fn new(req: u64) -> Self {
        Self {
            req,
            _kind: PhantomData,
        }
    }
}

/// A pending pinned read ([`StorageClient::read_async`]).
pub type ReadTicket = Ticket<Read>;
/// A pending write grant ([`StorageClient::write_async`]).
pub type WriteTicket = Ticket<Write>;
/// A pending seal confirmation ([`StorageClient::release_write_async`]).
pub type SealTicket = Ticket<Seal>;

/// Client-side deadline + retry policy.
///
/// The default (`deadline: None`) preserves the protocol's "log the request,
/// reply when available" semantics: a read may legitimately wait for a
/// producer that has not run yet, so waits are unbounded unless the caller
/// opts in. With a deadline set, a wait that exceeds it surfaces as
/// [`StorageError::Timeout`] instead of hanging, and *idempotent* requests —
/// reads and map queries, which the immutable-array model lets us re-issue
/// safely — are retried up to `max_retries` times with exponential backoff
/// before the timeout is surfaced.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Per-wait deadline; `None` waits forever (seed behaviour).
    pub deadline: Option<std::time::Duration>,
    /// How many times a timed-out idempotent request is re-sent (with a
    /// fresh request id) before the error is surfaced.
    pub max_retries: u32,
    /// Backoff before the first re-send; doubles per attempt.
    pub backoff: std::time::Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            deadline: None,
            max_retries: 0,
            backoff: std::time::Duration::from_millis(10),
        }
    }
}

/// Incremental availability map returned by [`StorageClient::map_since`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MapDelta {
    /// The node's map version at reply time; pass as the next `since`.
    pub version: u64,
    /// Every block of every array whose availability changed since `since`
    /// (array-granularity replacement: fold by swapping each named array's
    /// whole block set).
    pub entries: Vec<MapEntry>,
    /// Arrays deleted since `since`.
    pub deleted: Vec<String>,
}

/// The shared half of the client a [`ReadGuard`] needs to unpin on drop:
/// the outbound stream plus the grant counter.
struct Releaser {
    to_storage: StreamWriter,
    node: usize,
    outstanding: AtomicU64,
}

impl Releaser {
    fn send(&self, msg: &ClientMsg) -> Result<()> {
        self.to_storage
            .send_to(NodeId(self.node), msg.encode())
            .map_err(|e| StorageError::Protocol(format!("storage link closed: {e}")))
    }

    /// Sends the unpin and decrements the grant count. Send failures are
    /// swallowed: a guard dropped after shutdown has nothing left to unpin.
    fn release(&self, array: &str, iv: Interval) {
        let _ = self.send(&ClientMsg::ReleaseRead {
            array: array.to_string(),
            iv,
        });
        self.take_grant();
    }

    fn take_grant(&self) {
        let prev = self.outstanding.fetch_sub(1, Ordering::AcqRel);
        debug_assert!(
            prev > 0,
            "storage grant underflow: released more than granted"
        );
        if prev == 0 {
            // Undo the wrap in release builds; the debug assertion above is
            // the real diagnostic.
            self.outstanding.fetch_add(1, Ordering::AcqRel);
        }
    }
}

/// A pinned read interval: the bytes plus the obligation to unpin them.
///
/// Dereferences to [`Bytes`]; the pin is handed back to the storage filter
/// when the guard drops, so the unpin can no longer be forgotten or skipped
/// by an early return. Guards share the client's outbound stream and may
/// outlive individual client calls (but should drop before the storage
/// filter shuts down for the release to take effect).
#[must_use = "dropping the guard immediately unpins the interval"]
pub struct ReadGuard {
    data: Bytes,
    array: String,
    iv: Interval,
    rel: Arc<Releaser>,
}

impl ReadGuard {
    /// The pinned bytes (also available through `Deref`).
    pub fn bytes(&self) -> &Bytes {
        &self.data
    }

    /// The array this interval was read from.
    pub fn array(&self) -> &str {
        &self.array
    }

    /// The interval covered by the pin.
    pub fn interval(&self) -> Interval {
        self.iv
    }
}

impl std::ops::Deref for ReadGuard {
    type Target = Bytes;

    fn deref(&self) -> &Bytes {
        &self.data
    }
}

impl std::fmt::Debug for ReadGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReadGuard")
            .field("array", &self.array)
            .field("iv", &self.iv)
            .field("len", &self.data.len())
            .finish()
    }
}

impl Drop for ReadGuard {
    fn drop(&mut self) {
        self.rel.release(&self.array, self.iv);
    }
}

/// Blocking convenience handle to the node-local storage filter.
pub struct StorageClient {
    from_storage: StreamReader,
    /// Storage filter instance of this node (the addressing destination).
    node: usize,
    /// This client's global id (reply address).
    client_id: u64,
    next_req: u64,
    stash: HashMap<u64, Reply>,
    /// Geometry of reads in flight, so `wait_read` can build the guard (the
    /// `ReadReady` reply does not echo array/interval).
    pending_reads: HashMap<u64, (String, Interval)>,
    /// Requests whose waiter gave up (deadline hit). A late reply keyed here
    /// is dropped instead of stashed; for reads (`Some(geometry)`) the grant
    /// the storage just took is released immediately so the pin cannot leak.
    abandoned: HashMap<u64, Option<(String, Interval)>>,
    /// Deadline/retry policy applied to every blocking wait.
    retry: RetryPolicy,
    /// Shared with every [`ReadGuard`] handed out.
    rel: Arc<Releaser>,
}

impl StorageClient {
    /// Wraps the two stream endpoints. `node` is the storage instance to
    /// address (the node id); `client_id` is this client's *global* id as
    /// assigned by the cluster wiring.
    pub fn new(
        to_storage: StreamWriter,
        from_storage: StreamReader,
        node: usize,
        client_id: u64,
    ) -> Self {
        Self {
            from_storage,
            node,
            client_id,
            next_req: 1,
            stash: HashMap::new(),
            pending_reads: HashMap::new(),
            abandoned: HashMap::new(),
            retry: RetryPolicy::default(),
            rel: Arc::new(Releaser {
                to_storage,
                node,
                outstanding: AtomicU64::new(0),
            }),
        }
    }

    /// Replaces the deadline/retry policy (default: wait forever, like the
    /// raw protocol).
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.retry = policy;
    }

    /// The active deadline/retry policy.
    pub fn retry_policy(&self) -> &RetryPolicy {
        &self.retry
    }

    /// Number of storage grants (pinned reads + write grants) received and
    /// not yet handed back — live [`ReadGuard`]s count. Zero at quiescence
    /// when the application is balanced; the worker asserts this under the
    /// `order-check` feature.
    pub fn outstanding_grants(&self) -> u64 {
        self.rel.outstanding.load(Ordering::Acquire)
    }

    fn fresh(&mut self) -> u64 {
        let r = self.next_req;
        self.next_req += 1;
        r
    }

    fn send(&self, msg: &ClientMsg) -> Result<()> {
        self.rel.send(msg)
    }

    fn wait(&mut self, req: u64) -> Result<Reply> {
        if let Some(r) = self.stash.remove(&req) {
            return Ok(r);
        }
        let deadline = self.retry.deadline.map(|d| std::time::Instant::now() + d);
        loop {
            let buf = match deadline {
                None => self.from_storage.recv(),
                Some(dl) => {
                    let now = std::time::Instant::now();
                    let left = dl.saturating_duration_since(now);
                    if left.is_zero() {
                        return Err(StorageError::Timeout(format!(
                            "request {req}: no reply within {:?}",
                            self.retry.deadline.unwrap_or_default()
                        )));
                    }
                    // `recv_timeout` conflates expiry and closure; a `None`
                    // before the deadline means the stream closed.
                    match self.from_storage.recv_timeout(left) {
                        Some(b) => Some(b),
                        None if std::time::Instant::now() >= dl => {
                            return Err(StorageError::Timeout(format!(
                                "request {req}: no reply within {:?}",
                                self.retry.deadline.unwrap_or_default()
                            )));
                        }
                        None => None,
                    }
                }
            };
            let buf = buf.ok_or_else(|| {
                StorageError::Protocol("storage reply stream closed while waiting".into())
            })?;
            let reply = Reply::decode(&buf)?;
            if reply.req() == req {
                return Ok(reply);
            }
            if let Some(geometry) = self.abandoned.remove(&reply.req()) {
                // Stale reply to a timed-out request. If it is a read grant,
                // unpin it right away — nobody will redeem it.
                if let (Some((array, iv)), Reply::ReadReady { .. }) = (geometry, &reply) {
                    let _ = self.rel.send(&ClientMsg::ReleaseRead { array, iv });
                }
                continue;
            }
            self.stash.insert(reply.req(), reply);
        }
    }

    /// Marks a timed-out request abandoned so its eventual reply is dropped
    /// (and, for reads, its grant released) instead of stashed forever.
    fn abandon(&mut self, req: u64, read_geometry: Option<(String, Interval)>) {
        self.abandoned.insert(req, read_geometry);
    }

    /// Exponential backoff + bookkeeping before re-sending an idempotent
    /// request that timed out.
    fn note_retry(&self, attempt: u32, what: &str) {
        dooc_obs::metrics::counter("client.retries").inc();
        dooc_obs::instant_arg(
            dooc_obs::Category::Fault,
            "client:retry",
            self.node as i64,
            || format!("{what}: retry {attempt}"),
        );
        let backoff = self.retry.backoff * 2u32.saturating_pow(attempt.min(16));
        if !backoff.is_zero() {
            dooc_sync::thread::sleep(backoff);
        }
    }

    /// Creates an immutable array homed on this node.
    pub fn create(&mut self, name: &str, len: u64, block_size: u64) -> Result<()> {
        let req = self.fresh();
        self.send(&ClientMsg::Create {
            req,
            client: self.client_id,
            meta: ArrayMeta::new(name, len, block_size),
        })?;
        match self.wait(req)? {
            Reply::Created { .. } => Ok(()),
            Reply::Err { error, .. } => Err(error),
            other => Err(StorageError::Protocol(format!(
                "unexpected reply to create: {other:?}"
            ))),
        }
    }

    /// Registers geometry without waiting (hint; no reply).
    pub fn register(&mut self, name: &str, len: u64, block_size: u64) -> Result<()> {
        self.send(&ClientMsg::Register {
            meta: ArrayMeta::new(name, len, block_size),
        })
    }

    /// Starts an asynchronous read of one interval.
    pub fn read_async(&mut self, array: &str, iv: Interval) -> Result<ReadTicket> {
        let req = self.fresh();
        self.send(&ClientMsg::ReadReq {
            req,
            client: self.client_id,
            array: array.to_string(),
            iv,
        })?;
        self.pending_reads.insert(req, (array.to_string(), iv));
        Ok(Ticket::new(req))
    }

    /// Waits for an asynchronous read; the interval stays pinned until the
    /// returned guard drops.
    pub fn wait_read(&mut self, t: ReadTicket) -> Result<ReadGuard> {
        let (array, iv) = self.take_pending(t.req)?;
        let data = self.read_reply(t.req, &array, iv)?;
        self.rel.outstanding.fetch_add(1, Ordering::AcqRel);
        Ok(ReadGuard {
            data,
            array,
            iv,
            rel: Arc::clone(&self.rel),
        })
    }

    /// Escape hatch for the pipelined worker data plane: like
    /// [`StorageClient::wait_read`] but returns the bare bytes, leaving the
    /// caller responsible for [`StorageClient::release_read_raw`].
    pub fn wait_read_raw(&mut self, t: ReadTicket) -> Result<Bytes> {
        let (array, iv) = self.take_pending(t.req)?;
        let data = self.read_reply(t.req, &array, iv)?;
        self.rel.outstanding.fetch_add(1, Ordering::AcqRel);
        Ok(data)
    }

    /// Waits out a read reply, re-sending the (idempotent) request with a
    /// fresh id on deadline expiry, up to [`RetryPolicy::max_retries`]
    /// times. Timed-out ids are abandoned so a late grant is released rather
    /// than leaked.
    fn read_reply(&mut self, first_req: u64, array: &str, iv: Interval) -> Result<Bytes> {
        let mut req = first_req;
        let mut attempt = 0u32;
        loop {
            match self.wait(req) {
                Ok(Reply::ReadReady { data, .. }) => return Ok(data),
                Ok(Reply::Err { error, .. }) => return Err(error),
                Ok(other) => {
                    return Err(StorageError::Protocol(format!(
                        "unexpected reply to read: {other:?}"
                    )))
                }
                Err(StorageError::Timeout(m)) => {
                    self.abandon(req, Some((array.to_string(), iv)));
                    if attempt >= self.retry.max_retries {
                        return Err(StorageError::Timeout(m));
                    }
                    self.note_retry(attempt + 1, "read");
                    attempt += 1;
                    req = self.fresh();
                    self.send(&ClientMsg::ReadReq {
                        req,
                        client: self.client_id,
                        array: array.to_string(),
                        iv,
                    })?;
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn take_pending(&mut self, req: u64) -> Result<(String, Interval)> {
        self.pending_reads.remove(&req).ok_or_else(|| {
            StorageError::Protocol(format!("read ticket {req} has no pending request"))
        })
    }

    /// Blocking read of one interval; unpinned when the guard drops.
    pub fn read(&mut self, array: &str, iv: Interval) -> Result<ReadGuard> {
        let t = self.read_async(array, iv)?;
        self.wait_read(t)
    }

    /// Escape hatch paired with [`StorageClient::wait_read_raw`]: releases a
    /// pin acquired through the raw API. Outside the worker's pipelined
    /// window, prefer dropping the [`ReadGuard`].
    pub fn release_read_raw(&mut self, array: &str, iv: Interval) -> Result<()> {
        self.send(&ClientMsg::ReleaseRead {
            array: array.to_string(),
            iv,
        })?;
        self.rel.take_grant();
        Ok(())
    }

    /// Starts an asynchronous write: requests the grant without waiting for
    /// it. Pair with [`StorageClient::wait_write_granted`].
    pub fn write_async(&mut self, array: &str, iv: Interval) -> Result<WriteTicket> {
        let req = self.fresh();
        self.send(&ClientMsg::WriteReq {
            req,
            client: self.client_id,
            array: array.to_string(),
            iv,
        })?;
        Ok(Ticket::new(req))
    }

    /// Waits for a write grant requested with [`StorageClient::write_async`].
    pub fn wait_write_granted(&mut self, t: WriteTicket) -> Result<()> {
        match self.wait(t.req)? {
            Reply::WriteGranted { .. } => {
                self.rel.outstanding.fetch_add(1, Ordering::AcqRel);
                Ok(())
            }
            Reply::Err { error, .. } => Err(error),
            other => Err(StorageError::Protocol(format!(
                "unexpected reply to write request: {other:?}"
            ))),
        }
    }

    /// Ships the data of a granted write without waiting for the seal. Pair
    /// with [`StorageClient::wait_write_sealed`].
    pub fn release_write_async(
        &mut self,
        array: &str,
        iv: Interval,
        data: Bytes,
    ) -> Result<SealTicket> {
        let req = self.fresh();
        self.send(&ClientMsg::ReleaseWrite {
            req,
            client: self.client_id,
            array: array.to_string(),
            iv,
            data,
        })?;
        Ok(Ticket::new(req))
    }

    /// Waits for the seal confirmation of a
    /// [`StorageClient::release_write_async`].
    pub fn wait_write_sealed(&mut self, t: SealTicket) -> Result<()> {
        match self.wait(t.req)? {
            Reply::WriteSealed { .. } => {
                self.rel.take_grant();
                Ok(())
            }
            Reply::Err { error, .. } => Err(error),
            other => Err(StorageError::Protocol(format!(
                "unexpected reply to write release: {other:?}"
            ))),
        }
    }

    /// Blocking write of one interval: request grant, ship data, await seal.
    pub fn write(&mut self, array: &str, iv: Interval, data: Bytes) -> Result<()> {
        let t = self.write_async(array, iv)?;
        self.wait_write_granted(t)?;
        let t2 = self.release_write_async(array, iv, data)?;
        self.wait_write_sealed(t2)
    }

    /// Fire-and-forget prefetch hint.
    pub fn prefetch(&mut self, array: &str, iv: Interval) -> Result<()> {
        self.send(&ClientMsg::Prefetch {
            array: array.to_string(),
            iv,
        })
    }

    /// Writes an array's sealed blocks to this node's disk and waits.
    pub fn persist(&mut self, array: &str) -> Result<()> {
        let req = self.fresh();
        self.send(&ClientMsg::Persist {
            req,
            client: self.client_id,
            array: array.to_string(),
        })?;
        match self.wait(req)? {
            Reply::Persisted { .. } => Ok(()),
            Reply::Err { error, .. } => Err(error),
            other => Err(StorageError::Protocol(format!(
                "unexpected reply to persist: {other:?}"
            ))),
        }
    }

    /// Deletes an array cluster-wide.
    pub fn delete(&mut self, array: &str) -> Result<()> {
        let req = self.fresh();
        self.send(&ClientMsg::Delete {
            req,
            client: self.client_id,
            array: array.to_string(),
        })?;
        match self.wait(req)? {
            Reply::Deleted { .. } => Ok(()),
            Reply::Err { error, .. } => Err(error),
            other => Err(StorageError::Protocol(format!(
                "unexpected reply to delete: {other:?}"
            ))),
        }
    }

    /// Queries the node's availability map ("obtain a map of which part of
    /// the arrays are currently available").
    pub fn map(&mut self) -> Result<Vec<MapEntry>> {
        let req = self.fresh();
        self.send(&ClientMsg::MapQuery {
            req,
            client: self.client_id,
        })?;
        match self.wait(req)? {
            Reply::Map { entries, .. } => Ok(entries),
            Reply::Err { error, .. } => Err(error),
            other => Err(StorageError::Protocol(format!(
                "unexpected reply to map query: {other:?}"
            ))),
        }
    }

    /// Incremental form of [`StorageClient::map`]: returns only what changed
    /// after map version `since` (0 = full snapshot) plus the node's current
    /// version to use as the next cursor.
    pub fn map_since(&mut self, since: u64) -> Result<MapDelta> {
        let mut attempt = 0u32;
        loop {
            let req = self.fresh();
            self.send(&ClientMsg::MapSince {
                req,
                client: self.client_id,
                since,
            })?;
            match self.wait(req) {
                Ok(Reply::MapDelta {
                    version,
                    entries,
                    deleted,
                    ..
                }) => {
                    return Ok(MapDelta {
                        version,
                        entries,
                        deleted,
                    })
                }
                Ok(Reply::Err { error, .. }) => return Err(error),
                Ok(other) => {
                    return Err(StorageError::Protocol(format!(
                        "unexpected reply to map-since query: {other:?}"
                    )))
                }
                // Map lookups are idempotent: re-ask on deadline expiry
                // (e.g. the node is mid crash-restart).
                Err(StorageError::Timeout(m)) => {
                    self.abandon(req, None);
                    if attempt >= self.retry.max_retries {
                        return Err(StorageError::Timeout(m));
                    }
                    self.note_retry(attempt + 1, "map_since");
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Queries the node's counters.
    pub fn stats(&mut self) -> Result<NodeStats> {
        let req = self.fresh();
        self.send(&ClientMsg::StatsQuery {
            req,
            client: self.client_id,
        })?;
        match self.wait(req)? {
            Reply::Stats { stats, .. } => Ok(stats),
            Reply::Err { error, .. } => Err(error),
            other => Err(StorageError::Protocol(format!(
                "unexpected reply to stats query: {other:?}"
            ))),
        }
    }

    /// Explicitly evicts an array's resident blocks (fire-and-forget;
    /// blocks not yet on disk are spilled first).
    pub fn evict(&mut self, array: &str) -> Result<()> {
        self.send(&ClientMsg::Evict {
            array: array.to_string(),
        })
    }

    /// Asks the local storage filter to shut down (fire-and-forget; typically
    /// sent by every node's client when the application is quiescent). Warns
    /// through the observability layer if grants are still outstanding —
    /// releases sent after the filter exits are lost.
    pub fn shutdown(&mut self) -> Result<()> {
        let leaked = self.outstanding_grants();
        if leaked > 0 {
            dooc_obs::instant_arg(
                dooc_obs::Category::Storage,
                "storage:shutdown_with_grants",
                self.node as i64,
                || format!("{leaked} grants still outstanding at shutdown"),
            );
            dooc_obs::metrics::counter("storage.shutdown_grant_leaks").add(leaked);
        }
        self.send(&ClientMsg::Shutdown)
    }

    /// This client's global id.
    pub fn client_id(&self) -> u64 {
        self.client_id
    }
}
