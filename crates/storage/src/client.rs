//! Blocking client handle over the asynchronous storage protocol.
//!
//! A compute filter holds a [`StorageClient`] wrapping its bidirectional link
//! to the local storage filter. Requests are tagged with fresh ids; replies
//! arriving out of order are stashed until the matching `wait` call. The
//! split request/wait API (`read_async` + [`StorageClient::wait_read`])
//! lets a filter keep several operations in flight — the asynchrony the
//! paper's design centres on — while `read`/`write` offer one-call
//! convenience.

use crate::meta::{ArrayMeta, Interval};
use crate::proto::{ClientMsg, MapEntry, NodeStats, Reply};
use crate::{Result, StorageError};
use bytes::Bytes;
use dooc_filterstream::{StreamReader, StreamWriter};
use std::collections::HashMap;

/// Pending-request token returned by the async API.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Ticket(u64);

/// Incremental availability map returned by [`StorageClient::map_since`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MapDelta {
    /// The node's map version at reply time; pass as the next `since`.
    pub version: u64,
    /// Every block of every array whose availability changed since `since`
    /// (array-granularity replacement: fold by swapping each named array's
    /// whole block set).
    pub entries: Vec<MapEntry>,
    /// Arrays deleted since `since`.
    pub deleted: Vec<String>,
}

/// Blocking convenience handle to the node-local storage filter.
pub struct StorageClient {
    to_storage: StreamWriter,
    from_storage: StreamReader,
    /// Storage filter instance of this node (the addressing destination).
    node: usize,
    /// This client's global id (reply address).
    client_id: u64,
    next_req: u64,
    stash: HashMap<u64, Reply>,
    /// Net grants held: +1 per pinned read / write grant received, -1 per
    /// release / seal. Zero at quiescence when the application is balanced;
    /// the worker asserts this under the `order-check` feature.
    outstanding: i64,
}

impl StorageClient {
    /// Wraps the two stream endpoints. `node` is the storage instance to
    /// address (the node id); `client_id` is this client's *global* id as
    /// assigned by the cluster wiring.
    pub fn new(
        to_storage: StreamWriter,
        from_storage: StreamReader,
        node: usize,
        client_id: u64,
    ) -> Self {
        Self {
            to_storage,
            from_storage,
            node,
            client_id,
            next_req: 1,
            stash: HashMap::new(),
            outstanding: 0,
        }
    }

    /// Net number of storage grants (pinned reads + write grants) this
    /// client has received and not yet handed back.
    pub fn outstanding_grants(&self) -> i64 {
        self.outstanding
    }

    fn fresh(&mut self) -> u64 {
        let r = self.next_req;
        self.next_req += 1;
        r
    }

    fn send(&self, msg: &ClientMsg) -> Result<()> {
        self.to_storage
            .send_to(self.node, msg.encode())
            .map_err(|e| StorageError::Protocol(format!("storage link closed: {e}")))
    }

    fn wait(&mut self, req: u64) -> Result<Reply> {
        if let Some(r) = self.stash.remove(&req) {
            return Ok(r);
        }
        loop {
            let buf = self.from_storage.recv().ok_or_else(|| {
                StorageError::Protocol("storage reply stream closed while waiting".into())
            })?;
            let reply = Reply::decode(&buf)?;
            if reply.req() == req {
                return Ok(reply);
            }
            self.stash.insert(reply.req(), reply);
        }
    }

    /// Creates an immutable array homed on this node.
    pub fn create(&mut self, name: &str, len: u64, block_size: u64) -> Result<()> {
        let req = self.fresh();
        self.send(&ClientMsg::Create {
            req,
            client: self.client_id,
            meta: ArrayMeta::new(name, len, block_size),
        })?;
        match self.wait(req)? {
            Reply::Created { .. } => Ok(()),
            Reply::Err { error, .. } => Err(error),
            other => Err(StorageError::Protocol(format!(
                "unexpected reply to create: {other:?}"
            ))),
        }
    }

    /// Registers geometry without waiting (hint; no reply).
    pub fn register(&mut self, name: &str, len: u64, block_size: u64) -> Result<()> {
        self.send(&ClientMsg::Register {
            meta: ArrayMeta::new(name, len, block_size),
        })
    }

    /// Starts an asynchronous read of one interval.
    pub fn read_async(&mut self, array: &str, iv: Interval) -> Result<Ticket> {
        let req = self.fresh();
        self.send(&ClientMsg::ReadReq {
            req,
            client: self.client_id,
            array: array.to_string(),
            iv,
        })?;
        Ok(Ticket(req))
    }

    /// Waits for an asynchronous read; the returned bytes stay valid until
    /// [`StorageClient::release_read`].
    pub fn wait_read(&mut self, t: Ticket) -> Result<Bytes> {
        match self.wait(t.0)? {
            Reply::ReadReady { data, .. } => {
                self.outstanding += 1;
                Ok(data)
            }
            Reply::Err { error, .. } => Err(error),
            other => Err(StorageError::Protocol(format!(
                "unexpected reply to read: {other:?}"
            ))),
        }
    }

    /// Blocking read of one interval.
    pub fn read(&mut self, array: &str, iv: Interval) -> Result<Bytes> {
        let t = self.read_async(array, iv)?;
        self.wait_read(t)
    }

    /// Releases a read interval (unpins its block).
    pub fn release_read(&mut self, array: &str, iv: Interval) -> Result<()> {
        self.send(&ClientMsg::ReleaseRead {
            array: array.to_string(),
            iv,
        })?;
        self.outstanding -= 1;
        Ok(())
    }

    /// Starts an asynchronous write: requests the grant without waiting for
    /// it. Pair with [`StorageClient::wait_write_granted`].
    pub fn write_async(&mut self, array: &str, iv: Interval) -> Result<Ticket> {
        let req = self.fresh();
        self.send(&ClientMsg::WriteReq {
            req,
            client: self.client_id,
            array: array.to_string(),
            iv,
        })?;
        Ok(Ticket(req))
    }

    /// Waits for a write grant requested with [`StorageClient::write_async`].
    pub fn wait_write_granted(&mut self, t: Ticket) -> Result<()> {
        match self.wait(t.0)? {
            Reply::WriteGranted { .. } => {
                self.outstanding += 1;
                Ok(())
            }
            Reply::Err { error, .. } => Err(error),
            other => Err(StorageError::Protocol(format!(
                "unexpected reply to write request: {other:?}"
            ))),
        }
    }

    /// Ships the data of a granted write without waiting for the seal. Pair
    /// with [`StorageClient::wait_write_sealed`].
    pub fn release_write_async(
        &mut self,
        array: &str,
        iv: Interval,
        data: Bytes,
    ) -> Result<Ticket> {
        let req = self.fresh();
        self.send(&ClientMsg::ReleaseWrite {
            req,
            client: self.client_id,
            array: array.to_string(),
            iv,
            data,
        })?;
        Ok(Ticket(req))
    }

    /// Waits for the seal confirmation of a
    /// [`StorageClient::release_write_async`].
    pub fn wait_write_sealed(&mut self, t: Ticket) -> Result<()> {
        match self.wait(t.0)? {
            Reply::WriteSealed { .. } => {
                self.outstanding -= 1;
                Ok(())
            }
            Reply::Err { error, .. } => Err(error),
            other => Err(StorageError::Protocol(format!(
                "unexpected reply to write release: {other:?}"
            ))),
        }
    }

    /// Blocking write of one interval: request grant, ship data, await seal.
    pub fn write(&mut self, array: &str, iv: Interval, data: Bytes) -> Result<()> {
        let t = self.write_async(array, iv)?;
        self.wait_write_granted(t)?;
        let t2 = self.release_write_async(array, iv, data)?;
        self.wait_write_sealed(t2)
    }

    /// Fire-and-forget prefetch hint.
    pub fn prefetch(&mut self, array: &str, iv: Interval) -> Result<()> {
        self.send(&ClientMsg::Prefetch {
            array: array.to_string(),
            iv,
        })
    }

    /// Writes an array's sealed blocks to this node's disk and waits.
    pub fn persist(&mut self, array: &str) -> Result<()> {
        let req = self.fresh();
        self.send(&ClientMsg::Persist {
            req,
            client: self.client_id,
            array: array.to_string(),
        })?;
        match self.wait(req)? {
            Reply::Persisted { .. } => Ok(()),
            Reply::Err { error, .. } => Err(error),
            other => Err(StorageError::Protocol(format!(
                "unexpected reply to persist: {other:?}"
            ))),
        }
    }

    /// Deletes an array cluster-wide.
    pub fn delete(&mut self, array: &str) -> Result<()> {
        let req = self.fresh();
        self.send(&ClientMsg::Delete {
            req,
            client: self.client_id,
            array: array.to_string(),
        })?;
        match self.wait(req)? {
            Reply::Deleted { .. } => Ok(()),
            Reply::Err { error, .. } => Err(error),
            other => Err(StorageError::Protocol(format!(
                "unexpected reply to delete: {other:?}"
            ))),
        }
    }

    /// Queries the node's availability map ("obtain a map of which part of
    /// the arrays are currently available").
    pub fn map(&mut self) -> Result<Vec<MapEntry>> {
        let req = self.fresh();
        self.send(&ClientMsg::MapQuery {
            req,
            client: self.client_id,
        })?;
        match self.wait(req)? {
            Reply::Map { entries, .. } => Ok(entries),
            Reply::Err { error, .. } => Err(error),
            other => Err(StorageError::Protocol(format!(
                "unexpected reply to map query: {other:?}"
            ))),
        }
    }

    /// Incremental form of [`StorageClient::map`]: returns only what changed
    /// after map version `since` (0 = full snapshot) plus the node's current
    /// version to use as the next cursor.
    pub fn map_since(&mut self, since: u64) -> Result<MapDelta> {
        let req = self.fresh();
        self.send(&ClientMsg::MapSince {
            req,
            client: self.client_id,
            since,
        })?;
        match self.wait(req)? {
            Reply::MapDelta {
                version,
                entries,
                deleted,
                ..
            } => Ok(MapDelta {
                version,
                entries,
                deleted,
            }),
            Reply::Err { error, .. } => Err(error),
            other => Err(StorageError::Protocol(format!(
                "unexpected reply to map-since query: {other:?}"
            ))),
        }
    }

    /// Queries the node's counters.
    pub fn stats(&mut self) -> Result<NodeStats> {
        let req = self.fresh();
        self.send(&ClientMsg::StatsQuery {
            req,
            client: self.client_id,
        })?;
        match self.wait(req)? {
            Reply::Stats { stats, .. } => Ok(stats),
            Reply::Err { error, .. } => Err(error),
            other => Err(StorageError::Protocol(format!(
                "unexpected reply to stats query: {other:?}"
            ))),
        }
    }

    /// Explicitly evicts an array's resident blocks (fire-and-forget;
    /// blocks not yet on disk are spilled first).
    pub fn evict(&mut self, array: &str) -> Result<()> {
        self.send(&ClientMsg::Evict {
            array: array.to_string(),
        })
    }

    /// Asks the local storage filter to shut down (fire-and-forget; typically
    /// sent by every node's client when the application is quiescent).
    pub fn shutdown(&mut self) -> Result<()> {
        self.send(&ClientMsg::Shutdown)
    }

    /// This client's global id.
    pub fn client_id(&self) -> u64 {
        self.client_id
    }
}
