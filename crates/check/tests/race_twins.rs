//! Seeded-race twin tests for the dooc-race happens-before detector.
//!
//! Every positive harness ("synchronization present, no race") has a
//! negative twin with the synchronization deliberately removed; the
//! detector must flag every twin and stay silent on every positive. Two
//! tiers:
//!
//! * **Recorded real runtime** (feature `record`): sibling OS threads
//!   spawned through the facade annotate conflicting accesses to one
//!   shared address. The racy twins (feature `seeded-race`, never on
//!   outside these tests) skip the lock / use `Relaxed` atomics; the clean
//!   twins hold a facade `Mutex` or use release/acquire edges.
//! * **Explored model runtime** (feature `model`): the same twins run
//!   under dooc-shuttle, which race-checks every explored schedule. The
//!   racy twin must fail with [`FailureKind::Race`] and a replayable
//!   schedule token across the explored schedules; the locked twin must
//!   stay clean over the same schedule count.
//!
//! Run with:
//!
//! ```text
//! cargo test -p dooc-check --features record,seeded-race --test race_twins
//! cargo test -p dooc-check --features model,seeded-race --test race_twins
//! ```

#![cfg(any(feature = "record", feature = "model"))]

use dooc_sync::record;
use dooc_sync::{thread, Mutex};
use std::sync::Arc;

/// Stable per-allocation address for annotation purposes.
fn addr<T>(cell: &Arc<T>) -> usize {
    Arc::as_ptr(cell) as usize
}

/// Runs `f` as a recorded session (exclusive: the recorder is process
/// global) and returns the analyzed report.
fn recorded(f: impl FnOnce()) -> dooc_check::race::RaceReport {
    let _session = record::session();
    record::clear();
    record::arm();
    f();
    record::disarm();
    let log = record::take_log();
    dooc_check::race::analyze(&log).expect("recorded log parses")
}

/// Two sibling threads each write the shared cell under the mutex: every
/// write pair is ordered by the lock's release→acquire edges.
fn locked_siblings() {
    let cell = Arc::new(Mutex::new(0u64));
    let handles: Vec<_> = (0..2)
        .map(|i| {
            let c = Arc::clone(&cell);
            thread::spawn(move || {
                let mut g = c.lock();
                record::data_write(addr(&c));
                *g += i;
            })
        })
        .collect();
    for h in handles {
        h.join().expect("locked sibling");
    }
}

/// Twin of [`locked_siblings`] with the lock deliberately not held around
/// the annotated write: sibling threads have no happens-before edge, so
/// the two writes race.
#[cfg(feature = "seeded-race")]
fn racy_siblings() {
    let cell = Arc::new(Mutex::new(0u64));
    let handles: Vec<_> = (0..2)
        .map(|i| {
            let c = Arc::clone(&cell);
            thread::spawn(move || {
                record::data_write(addr(&c));
                let mut g = c.lock();
                *g += i;
            })
        })
        .collect();
    for h in handles {
        h.join().expect("racy sibling");
    }
}

/// Release/acquire atomic handoff: the writer publishes with a `Release`
/// store, the reader spins on an `Acquire` load — the annotated write and
/// read are ordered through the atomic edge.
fn published_handoff(release: bool) {
    use dooc_sync::atomic::{AtomicBool, Ordering};
    let cell = Arc::new(AtomicBool::new(false));
    let flag = Arc::new(AtomicBool::new(false));
    let (c2, f2) = (Arc::clone(&cell), Arc::clone(&flag));
    let (store, load) = if release {
        (Ordering::Release, Ordering::Acquire)
    } else {
        (Ordering::Relaxed, Ordering::Relaxed)
    };
    let writer = thread::spawn(move || {
        record::data_write(addr(&c2));
        f2.store(true, store);
    });
    while !flag.load(load) {
        std::hint::spin_loop();
    }
    record::data_read(addr(&cell));
    writer.join().expect("writer");
}

// ---------------------------------------------------------------------------
// Recorded real-runtime twins.
// ---------------------------------------------------------------------------

#[test]
fn recorded_locked_siblings_are_clean() {
    let report = recorded(locked_siblings);
    assert!(report.clean(), "{}", report.render());
}

#[cfg(feature = "seeded-race")]
#[test]
fn recorded_racy_siblings_are_caught() {
    let report = recorded(racy_siblings);
    assert!(!report.races.is_empty(), "{}", report.render());
    let r = &report.races[0];
    assert_eq!(r.kind, dooc_check::race::RaceKind::WriteWrite, "{r}");
    // Both conflicting sites point into this file.
    assert!(
        r.first.site.contains("race_twins.rs") && r.second.site.contains("race_twins.rs"),
        "{r}"
    );
}

#[test]
fn recorded_release_acquire_handoff_is_clean() {
    let report = recorded(|| published_handoff(true));
    assert!(report.clean(), "{}", report.render());
}

#[cfg(feature = "seeded-race")]
#[test]
fn recorded_relaxed_handoff_is_caught() {
    // Relaxed atomics really do order the spin loop at runtime (x86 gives
    // it away for free), but carry no happens-before edge: the detector
    // must still flag the annotated pair.
    let report = recorded(|| published_handoff(false));
    assert!(!report.races.is_empty(), "{}", report.render());
    assert_eq!(
        report.races[0].kind,
        dooc_check::race::RaceKind::WriteRead,
        "{}",
        report.races[0]
    );
}

// ---------------------------------------------------------------------------
// Explored model-runtime twins: dooc-shuttle race-checks every schedule.
// ---------------------------------------------------------------------------

#[cfg(feature = "model")]
mod explored {
    use super::*;
    #[cfg(feature = "seeded-race")]
    use dooc_check::explore::replay;
    use dooc_check::explore::{explore, ExploreOpts};
    #[cfg(feature = "seeded-race")]
    use dooc_sync::model::FailureKind;

    /// At least four distinct schedules per twin (acceptance floor).
    fn opts() -> ExploreOpts {
        ExploreOpts {
            seeds: 8,
            dfs: true,
            dfs_budget: 64,
            ..ExploreOpts::default()
        }
    }

    #[test]
    fn explored_locked_siblings_are_clean_across_schedules() {
        let report = explore("race_twin[locked]", opts(), locked_siblings);
        assert!(
            report.executions >= 4,
            "only {} schedules",
            report.executions
        );
        report.assert_clean("race_twin[locked]");
    }

    #[cfg(feature = "seeded-race")]
    #[test]
    fn explored_racy_siblings_fail_with_race_and_token_replays() {
        let report = explore("race_twin[racy]", opts(), racy_siblings);
        let case = report.expect_failure("race_twin[racy]");
        assert_eq!(case.failure.kind, FailureKind::Race);
        assert!(
            case.failure.message.contains("write/write"),
            "{}",
            case.failure.message
        );
        // The schedule token replays to the same race verdict. `replay`
        // runs outside the explorer, so record the window by hand. (The
        // event-sequence comparison used by the panic twins does not apply:
        // the race verdict is attached after the run, not raised inside it.)
        let replay_report = recorded(|| {
            let outcome = replay(&case.token, racy_siblings);
            assert!(
                outcome.failure.is_none(),
                "racy twin must not fail inside the scheduler: {:?}",
                outcome.failure
            );
        });
        assert!(
            !replay_report.races.is_empty(),
            "{}",
            replay_report.render()
        );
    }
}
