//! Property test for the explorer's determinism contract: the seeded
//! random-walk chooser must produce the *identical* event sequence every
//! time it runs with the same seed, and the schedule token extracted from a
//! run must replay to that same sequence. Reproducibility of CI failures
//! rests entirely on this.
//!
//! Run with `cargo test -p dooc-check --features model -- explore`.

#![cfg(feature = "model")]

use dooc_check::explore::{replay, run_seeded, ScheduleToken};
use dooc_sync::atomic::{AtomicU64, Ordering};
use dooc_sync::Mutex;
use proptest::prelude::*;
use std::sync::Arc;

/// A small but schedule-sensitive program: two tasks race a counter, a
/// mutex-guarded log and a bounded channel, so different schedules produce
/// genuinely different event sequences (and final states).
fn racy_body() {
    let counter = Arc::new(AtomicU64::new(0));
    let log = Arc::new(Mutex::new(Vec::new()));
    let (tx, rx) = dooc_sync::channel::bounded::<u64>(1);
    let (c2, l2) = (Arc::clone(&counter), Arc::clone(&log));
    let peer = dooc_sync::thread::spawn(move || {
        for i in 0..3u64 {
            let seen = c2.fetch_add(1, Ordering::SeqCst);
            l2.lock().push(("peer", i, seen));
            tx.send(i).expect("receiver alive");
        }
    });
    for _ in 0..3 {
        let got = rx.recv().expect("sender alive");
        let seen = counter.fetch_add(1, Ordering::SeqCst);
        log.lock().push(("main", got, seen));
    }
    peer.join().expect("peer");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(100))]

    /// Same seed ⇒ identical decisions and identical event sequence; and the
    /// token of the run, replayed, reproduces that exact sequence.
    #[test]
    fn explore_same_seed_and_token_reproduces_the_event_sequence(seed in any::<u64>()) {
        let first = run_seeded(seed, racy_body);
        prop_assert!(first.failure.is_none(), "clean program failed: {:?}", first.failure);

        let second = run_seeded(seed, racy_body);
        prop_assert_eq!(&first.events, &second.events, "same seed, different events");

        let token = ScheduleToken::of(&first);
        let replayed = replay(&token, racy_body);
        prop_assert!(replayed.failure.is_none());
        prop_assert_eq!(&first.events, &replayed.events, "token replay diverged");

        // The token survives its wire format (what a CI log carries).
        let parsed: ScheduleToken = token.to_string().parse().expect("token parses");
        prop_assert_eq!(&parsed, &token);
    }
}
