//! Static sync-graph assertions over the real workspace sources.
//!
//! Pins what `--bin race -- --syncgraph` must find on this repository: the
//! known lock classes with their bindings, the one real cross-class
//! nesting (the worker's trace sink locked inside the stats sink update),
//! an acyclic lock-order graph, and a bounded-only channel topology
//! outside the sync facade itself.

use dooc_check::syncgraph::scan_workspace;
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/check has a workspace root two levels up")
        .to_path_buf()
}

#[test]
fn workspace_lock_order_graph_is_acyclic_and_complete() {
    let g = scan_workspace(&workspace_root()).expect("workspace scan");
    assert!(
        g.files_scanned > 50,
        "only {} files scanned",
        g.files_scanned
    );

    let class = |name: &str| {
        g.classes
            .iter()
            .find(|c| c.class == name)
            .unwrap_or_else(|| panic!("class {name} not found:\n{}", g.render()))
    };
    // The wrapped multi-line declaration form (rustfmt splits the call).
    assert_eq!(
        class("storage.cluster.port_map").binding.as_deref(),
        Some("port_map")
    );
    assert_eq!(class("core.sinks.trace").binding.as_deref(), Some("trace"));
    assert_eq!(class("core.sinks.stats").binding.as_deref(), Some("stats"));

    // The worker flushes trace events while updating stats: the one real
    // cross-class nesting in the runtime.
    assert!(
        g.has_edge("core.sinks.trace", "core.sinks.stats"),
        "missing worker sink edge:\n{}",
        g.render()
    );

    assert!(
        g.find_cycle().is_none(),
        "lock-order cycle:\n{}",
        g.render()
    );
}

#[test]
fn workspace_lane_topology_covers_the_progress_broadcast() {
    let g = scan_workspace(&workspace_root()).expect("workspace scan");
    assert!(!g.lanes.is_empty(), "no connect_with lanes found");

    // The PR-9 progress broadcast lane, with its audited capacity sizing.
    let prog = g
        .lanes
        .iter()
        .find(|l| l.from_port == "prog_out" && l.to_port == "prog_in")
        .unwrap_or_else(|| panic!("progress lane not extracted:\n{}", g.render()));
    assert!(
        prog.delivery.contains("Broadcast"),
        "progress lane is not a broadcast: {prog:?}"
    );
    assert_eq!(
        prog.capacity, "2 * graph.len() + 64",
        "progress-lane capacity text changed — keep the lane audit in \
         core::runtime::runtime_lane_specs in sync"
    );
    assert!(
        prog.file.ends_with("crates/core/src/runtime.rs"),
        "progress lane moved: {prog:?}"
    );

    // The completion broadcast lane next to it.
    let done = g
        .lanes
        .iter()
        .find(|l| l.from_port == "done_out" && l.to_port == "done_in")
        .unwrap_or_else(|| panic!("done lane not extracted:\n{}", g.render()));
    assert!(done.delivery.contains("Broadcast"));
    assert_eq!(done.capacity, "graph.len() + 16");
}

#[test]
fn workspace_channel_topology_is_bounded_outside_the_facade() {
    let g = scan_workspace(&workspace_root()).expect("workspace scan");
    assert!(!g.channels.is_empty(), "no channel sites found");
    for site in &g.channels {
        let in_sync_facade = site.file.components().any(|c| c.as_os_str() == "sync");
        assert!(
            site.bounded || in_sync_facade,
            "unbounded channel outside the sync facade: {}:{}",
            site.file.display(),
            site.line
        );
    }
}
