//! dooc-shuttle exploration of the *real* capability/frontier progress
//! protocol: two nodes running genuine `dooc_core::progress::ProgressState`
//! instances over real filterstream streams, pipelining an iterated
//! producer chain under every explored schedule.
//!
//! The positive harness asserts, on every interleaving, the two frontier
//! invariants the model checker proves on the abstraction
//! (`dooc_check::progress_model`):
//!
//! * a task released by the frontier only ever reads sealed data
//!   (release-behind-frontier), and
//! * a node's observed frontier never retreats as batches fold in
//!   (frontier-monotone);
//!
//! plus completion (no schedule deadlocks the pipeline). The negative twins
//! seed the two protocol bugs the exhaustive tier must catch — a *leaked*
//! capability (the frontier stalls: dooc-shuttle reports the deadlock) and
//! an *early* drop (capability released before the seal: a peer is released
//! into unsealed data) — and each failure comes with a schedule token whose
//! replay reproduces the exact failing interleaving. Every explored
//! schedule is also race-checked (FastTrack happens-before over the
//! recorded sync events).
//!
//! Run with `cargo test -p dooc-check --features model -- explore_progress`.

#![cfg(feature = "model")]

use dooc_check::explore::{explore, replay, ExploreOpts, FailureCase};
use dooc_core::progress::{decode, ProgressState};
use dooc_core::{FrontierOracle, TaskGraph, TaskSpec, Timestamp};
use dooc_filterstream::{DataBuffer, NodeId, StreamReader, StreamSet, StreamWriter};
use dooc_sync::atomic::{AtomicU64, Ordering};
use dooc_sync::model::FailureKind;
use std::sync::Arc;

const BLOCKS: u32 = 2;
const ITERS: u32 = 2;

/// The iterated-SpMV progress skeleton: producer `p_i_u` seals block `u` of
/// iterate `i`, carries capability `(i, u)` and gates on every block of the
/// previous iterate. Iteration-0 gates close immediately (external input).
fn timed_graph() -> TaskGraph {
    let mut tasks = Vec::new();
    for i in 1..=ITERS {
        for u in 0..BLOCKS {
            let mut t = TaskSpec::new(format!("p_{i}_{u}"), "prod")
                .output(format!("x_{i}_{u}"), 8)
                .at(Timestamp::new(i, u));
            for v in 0..BLOCKS {
                t = t.input_gated(format!("x_{}_{v}", i - 1), 8, Timestamp::new(i - 1, v));
            }
            tasks.push(t);
        }
    }
    TaskGraph::new(tasks).expect("timed graph is valid")
}

fn seal_bit(i: u32, u: u32) -> u64 {
    1 << (i * BLOCKS + u)
}

/// Seeded protocol bugs for the negative twins.
#[derive(Clone, Copy, Default)]
struct Bugs {
    /// Node 0 never drops its iteration-1 capability.
    leak_capability: bool,
    /// Capabilities drop (and broadcast) *before* the seal.
    early_drop: bool,
}

/// One node of the pipeline: owns block `me`'s producer chain. Blocks on
/// the peer's progress lane whenever a gate is still open, folds batches as
/// they arrive, and checks the ground truth (the shared seal bitmask) at
/// every frontier release.
fn node_loop(
    me: u32,
    graph: &TaskGraph,
    sealed: &AtomicU64,
    tx: StreamWriter,
    rx: StreamReader,
    bugs: Bugs,
) {
    let mut pg = ProgressState::new(graph, 2, me as usize).expect("graph is timed");
    let peer = (1 - me) as usize;
    for i in 1..=ITERS {
        let mut last_level: Vec<u32> = (0..BLOCKS)
            .map(|v| pg.frontier_of(v).unwrap_or(0))
            .collect();
        while !(0..BLOCKS).all(|v| pg.closed(Timestamp::new(i - 1, v))) {
            let buf = rx.recv().expect("progress lane closed with gates open");
            let entries = decode(&buf.payload).expect("well-formed batch");
            pg.fold(peer, &entries);
            for v in 0..BLOCKS {
                let now = pg.frontier_of(v).unwrap_or(0);
                assert!(
                    now >= last_level[v as usize],
                    "node {me}: block {v} frontier retreated {} -> {now}",
                    last_level[v as usize]
                );
                last_level[v as usize] = now;
            }
        }
        // Release point of p_i_me: every producer at or below each gate
        // must have sealed its output (invariant 10's ground truth).
        for v in 0..BLOCKS {
            for ii in 1..i {
                assert!(
                    sealed.load(Ordering::SeqCst) & seal_bit(ii, v) != 0,
                    "node {me}: p_{i}_{me} released while x_{ii}_{v} is unsealed"
                );
            }
        }
        let drop_and_send = |pg: &mut ProgressState| {
            pg.drop_cap(Timestamp::new(i, me));
            if let Some(batch) = pg.flush() {
                // The peer may already be past every gate this batch could
                // close; a closed lane is fine.
                let _ = tx.send_to(NodeId(0), DataBuffer::from_bytes(me as u64, batch));
            }
        };
        if bugs.early_drop {
            drop_and_send(&mut pg); // bug: frontier advances before the seal
        }
        // The seal. Each bit is set exactly once per run, so the add is an
        // or (the facade has no fetch_or).
        sealed.fetch_add(seal_bit(i, me), Ordering::SeqCst);
        let leak = bugs.leak_capability && me == 0 && i == 1;
        if !bugs.early_drop && !leak {
            drop_and_send(&mut pg); // healthy: seal-before-drop
        }
    }
}

fn pipeline(bugs: Bugs) -> impl Fn() + Send + Sync + 'static {
    move || {
        let graph = Arc::new(timed_graph());
        let sealed = Arc::new(AtomicU64::new(0));
        // One progress lane per direction, mirroring the broadcast lane's
        // per-peer edges.
        let (tx01, rx1) = StreamSet::standalone("prog_0to1", 16);
        let (tx10, rx0) = StreamSet::standalone("prog_1to0", 16);
        let peer = {
            let (graph, sealed) = (Arc::clone(&graph), Arc::clone(&sealed));
            dooc_sync::thread::spawn(move || node_loop(1, &graph, &sealed, tx10, rx1, bugs))
        };
        node_loop(0, &graph, &sealed, tx01, rx0, bugs);
        peer.join().expect("peer node");
        assert_eq!(
            sealed.load(Ordering::SeqCst).count_ones(),
            ITERS * BLOCKS,
            "pipeline finished with unsealed blocks"
        );
    }
}

fn assert_replay_reproduces(case: &FailureCase, f: impl Fn() + Send + Sync + 'static) {
    let outcome = replay(&case.token, f);
    let failure = outcome
        .failure
        .as_ref()
        .unwrap_or_else(|| panic!("replaying {} did not fail", case.token));
    assert_eq!(failure.kind, case.failure.kind, "replayed failure kind");
    assert_eq!(outcome.events, case.events, "replayed event sequence");
}

fn quick() -> ExploreOpts {
    ExploreOpts {
        seeds: 32,
        dfs_budget: 192,
        ..ExploreOpts::default()
    }
}

#[test]
fn explore_frontier_pipeline_is_clean() {
    explore("frontier_pipeline", quick(), pipeline(Bugs::default()))
        .assert_clean("frontier_pipeline");
}

#[test]
fn explore_catches_leaked_capability_as_frontier_stall() {
    // Node 0 seals x_1_0 but keeps the capability: block 0's frontier never
    // passes iteration 1, both nodes park on their progress lanes waiting
    // for a batch that will never come, and the explorer reports the
    // deadlock with its schedule.
    let bugs = Bugs {
        leak_capability: true,
        ..Default::default()
    };
    let report = explore("frontier_pipeline[leak]", quick(), pipeline(bugs));
    let case = report.expect_failure("frontier_pipeline[leak]");
    assert_eq!(case.failure.kind, FailureKind::Deadlock);
    assert_replay_reproduces(case, pipeline(bugs));
}

#[test]
fn explore_catches_early_drop_as_premature_release() {
    // Dropping the capability before the seal lets the peer's gate close
    // while the block is still unsealed; some schedule delivers the batch
    // and releases the consumer in that window.
    let bugs = Bugs {
        early_drop: true,
        ..Default::default()
    };
    let report = explore("frontier_pipeline[early]", quick(), pipeline(bugs));
    let case = report.expect_failure("frontier_pipeline[early]");
    assert_eq!(case.failure.kind, FailureKind::Panic);
    assert!(
        case.failure.message.contains("unsealed"),
        "{}",
        case.failure.message
    );
    assert_replay_reproduces(case, pipeline(bugs));
}
