//! The lint pass, run against this very workspace: the repo must be clean.

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/check sits two levels below the workspace root");
    let report = dooc_check::lint::lint_workspace(root).expect("scan succeeds");
    assert!(
        report.files_scanned > 30,
        "expected to scan the whole workspace, got {} files",
        report.files_scanned
    );
    let rendered: Vec<String> = report.findings.iter().map(|f| f.to_string()).collect();
    assert!(
        rendered.is_empty(),
        "lint findings:\n{}",
        rendered.join("\n")
    );
}
