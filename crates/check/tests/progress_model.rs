//! End-to-end runs of the frontier-protocol model checker: the faithful
//! protocol is violation-free over its whole bounded state space — including
//! every message loss and reordering — and each seeded bug is caught on the
//! invariant it breaks, with a concrete counterexample trace.

use dooc_check::progress_model::{explore, BugConfig, Model};

#[test]
fn faithful_progress_protocol_has_no_violations() {
    let stats = explore(&Model::default()).unwrap_or_else(|v| panic!("unexpected violation:\n{v}"));
    // Exhaustiveness sanity: starts, seals, deliveries, drops and re-flushes
    // interleave into a nontrivial space, fully covered.
    assert!(stats.states > 500, "suspiciously small space: {stats:?}");
    assert!(stats.transitions > stats.states, "{stats:?}");
    assert!(stats.terminals >= 1, "{stats:?}");
}

fn expect_violation(model: &Model, invariant: &str) -> Vec<String> {
    match explore(model) {
        Ok(stats) => panic!("bug {:?} went undetected over {stats:?}", model.bug),
        Err(v) => {
            assert_eq!(v.invariant, invariant, "wrong invariant:\n{v}");
            assert!(
                !v.trace.is_empty(),
                "counterexample must carry a trace:\n{v}"
            );
            v.trace
        }
    }
}

#[test]
fn leaked_capability_stalls_the_frontier() {
    // The producer of (1,0) seals but never drops its capability: block 0's
    // frontier sticks at iteration 0, every iteration-2 task stays gated,
    // and the system quiesces with work left — the stall invariant fires.
    let trace = expect_violation(
        &Model {
            bug: BugConfig {
                leak_capability: true,
                ..Default::default()
            },
        },
        "no-frontier-stall",
    );
    assert!(
        trace.iter().any(|s| s.contains("Seal(1,0)")),
        "the leaking producer did run: {trace:?}"
    );
}

#[test]
fn early_capability_drop_releases_into_unsealed_data() {
    // Capabilities dropped at task *start* advance the frontier before the
    // output is sealed; a downstream task is then released while its input
    // block is still being written — invariant 10.
    let trace = expect_violation(
        &Model {
            bug: BugConfig {
                early_drop: true,
                ..Default::default()
            },
        },
        "release-behind-frontier",
    );
    assert!(
        trace.iter().any(|s| s.contains("Start(2,")),
        "counterexample must release an iteration-2 task: {trace:?}"
    );
}

#[test]
fn stale_snapshot_overwrite_retreats_the_frontier() {
    // Assigning instead of max-folding lets a reordered older snapshot
    // lower a count the receiver already saw — invariant 9. The
    // counterexample necessarily contains two deliveries out of order.
    let trace = expect_violation(
        &Model {
            bug: BugConfig {
                stale_overwrite: true,
                ..Default::default()
            },
        },
        "frontier-monotone",
    );
    assert!(
        trace.iter().filter(|s| s.contains("Deliver")).count() >= 2,
        "retreat needs a stale delivery after a fresh one: {trace:?}"
    );
}

#[test]
fn message_loss_alone_never_stalls_the_healthy_protocol() {
    // The faithful run above already explores every Drop transition; this
    // pins the healing property explicitly: terminal states exist (so the
    // re-flush path is exercised to convergence) and none stalls.
    let stats = explore(&Model::default()).expect("healthy protocol is clean");
    assert!(stats.terminals >= 1, "{stats:?}");
}

#[test]
fn counterexamples_are_short_and_replayable() {
    // BFS yields a minimal-depth trace; the early-drop bug shows up within
    // a handful of steps, and every step is a labelled transition.
    let trace = expect_violation(
        &Model {
            bug: BugConfig {
                early_drop: true,
                ..Default::default()
            },
        },
        "release-behind-frontier",
    );
    assert!(
        trace.len() <= 10,
        "expected a short counterexample: {trace:?}"
    );
}
