//! Static/dynamic sync-graph mirror test.
//!
//! The static scan over-approximates the dynamic lock-order detector for
//! function-local nestings: every edge the `order-check` feature records
//! at runtime must already be present in the static graph of the source
//! that produced it. This file pins that containment on itself — the
//! nesting functions below are simultaneously *executed* (recording
//! dynamic edges into the process-global order graph) and *scanned* (this
//! test reads its own source off disk and runs the static extractor on
//! it), then every dynamic edge is looked up in the static edge set.
//!
//! Run with `cargo test -p dooc-check --features order-mirror --test
//! syncgraph_mirror`.

#![cfg(feature = "order-mirror")]

use dooc_check::syncgraph::{build_graph, scan_source};
use dooc_sync::{order_graph_edges, OrderedMutex};
use std::path::Path;

fn chain_head(first: &OrderedMutex<u32>, second: &OrderedMutex<u32>) {
    let _g1 = first.lock();
    let _g2 = second.lock();
}

fn chain_tail(second: &OrderedMutex<u32>, third: &OrderedMutex<u32>) {
    let _g2 = second.lock();
    let _g3 = third.lock();
}

#[test]
fn dynamic_order_edges_are_contained_in_the_static_scan() {
    let first = OrderedMutex::new("mirror.first", 0u32);
    let second = OrderedMutex::new("mirror.second", 0u32);
    let third = OrderedMutex::new("mirror.third", 0u32);
    chain_head(&first, &second);
    chain_tail(&second, &third);

    let dynamic = order_graph_edges();
    assert!(
        dynamic.len() >= 2,
        "expected at least the two edges recorded above, got {dynamic:?}"
    );

    let me = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/syncgraph_mirror.rs");
    let src = std::fs::read_to_string(&me).expect("read own source");
    let g = build_graph(vec![scan_source(&me, &src)]);

    // The binding names in the nesting functions resolve through the
    // `let` declarations in the test body: scanning is file-global.
    for ((from, to), (site_from, site_to)) in &dynamic {
        assert!(
            g.has_edge(from, to),
            "dynamic edge '{from}' (at {site_from}) then '{to}' (at {site_to}) \
             missing from the static graph:\n{}",
            g.render()
        );
    }

    // And the static side saw exactly the three classes declared here.
    let mut classes: Vec<&str> = g.classes.iter().map(|c| c.class.as_str()).collect();
    classes.sort_unstable();
    assert_eq!(classes, ["mirror.first", "mirror.second", "mirror.third"]);
}
